"""Benchmark S3.8-S3.9: valley paths and the reachability-motivated subset.

Regenerates the valley-path statistics (13% of IPv6 paths are valley
paths; 16% of those are needed for reachability) and times the valley
analysis, which dominates the measurement pipeline's cost.
"""

from __future__ import annotations

from repro.core.relationships import AFI
from repro.core.valley import ValleyAnalyzer


def test_valley_path_analysis(benchmark, snapshot, artifacts):
    """S3.8-S3.9: classify every distinct IPv6 path against the inferred ToR."""
    observations = snapshot.observations_for(AFI.IPV6)
    annotation = artifacts.inference.annotation(AFI.IPV6)

    def run():
        analyzer = ValleyAnalyzer(annotation)
        return analyzer.analyze(observations, afi=AFI.IPV6)

    report = benchmark(run)
    benchmark.extra_info.update(
        {
            "valley_fraction": round(report.valley_fraction, 3),
            "reachability_fraction": round(report.reachability_fraction, 3),
        }
    )
    print("\n[S3.8-S3.9] valley paths (paper: 13% valley; 16% of those for reachability):")
    print(f"  analysed IPv6 paths:        {report.total_paths}")
    print(f"  valley paths:               {report.valley_count} ({report.valley_fraction:.0%})")
    print(f"  needed for reachability:    {len(report.reachability_motivated)}"
          f" ({report.reachability_fraction:.0%})")
    print(f"  paths with unknown hops:    {report.unknown_paths}")

    # Shape: valley paths exist, are a minority, and a (strict) subset is
    # reachability-motivated.
    assert 0.0 < report.valley_fraction < 0.5
    assert 0 <= len(report.reachability_motivated) <= report.valley_count


def test_valley_paths_against_ground_truth(benchmark, snapshot):
    """Cross-check: the same analysis against the ground-truth annotation."""
    observations = snapshot.observations_for(AFI.IPV6)
    annotation = snapshot.ground_truth_annotation(AFI.IPV6)

    report = benchmark(
        lambda: ValleyAnalyzer(annotation).analyze(observations, afi=AFI.IPV6)
    )
    print("\n[S3.8 ground truth] valley fraction with ground-truth relationships: "
          f"{report.valley_fraction:.0%} ({report.valley_count}/{report.total_paths})")
    assert report.valley_count > 0
