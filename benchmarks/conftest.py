"""Shared fixtures for the benchmark harness.

The benchmarks operate on one mid-sized synthetic snapshot (built once
per session) so that the timing numbers describe the *analysis* stages —
inference, hybrid detection, valley analysis, customer-tree metrics —
rather than the snapshot construction, which is benchmarked separately
and exactly once.
"""

from __future__ import annotations

import pytest

from repro.analysis.stats import compute_section3
from repro.datasets import DatasetConfig, build_snapshot
from repro.topology import TopologyConfig


def bench_config(seed: int = 2010) -> DatasetConfig:
    """The snapshot configuration used throughout the benchmark harness."""
    return DatasetConfig(
        topology=TopologyConfig(
            seed=seed,
            tier1_count=7,
            tier2_count=45,
            tier3_count=180,
        ),
        seed=seed,
        vantage_points=16,
        collectors_per_project=2,
    )


@pytest.fixture(scope="session")
def snapshot():
    """The synthetic measurement snapshot shared by all benchmarks."""
    return build_snapshot(bench_config())


@pytest.fixture(scope="session")
def artifacts(snapshot):
    """Section-3 artifacts (inference, hybrid, visibility, valley) built once."""
    return compute_section3(snapshot.observations, snapshot.registry)
