"""Benchmark ablation A1: LocPrf inference without the Rosetta-Stone validation.

The paper assigns a LocPrf value to a relationship "only if we can
validate it from the collected Communities" and filters the values used
for traffic engineering.  This ablation disables (a) the communities
validation and (b) the traffic-engineering filter, and measures how much
accuracy (agreement with the ground truth) is lost in exchange for the
extra coverage.
"""

from __future__ import annotations

from repro.core.locpref_inference import LocPrefInference
from repro.core.relationships import AFI
from repro.inference.comparison import compare_annotations


def _accuracy(annotation, reference):
    report = compare_annotations(annotation, reference)
    return report.accuracy, report.common_links


def test_locpref_with_and_without_validation(benchmark, snapshot):
    """A1: calibrated (validated + TE-filtered) vs naive rank-based LocPrf."""
    observations = snapshot.observations
    registry = snapshot.registry
    reference = snapshot.ground_truth_annotation(AFI.IPV6)

    def run():
        validated = LocPrefInference(registry).infer(observations)
        naive = LocPrefInference(
            registry,
            validate_with_communities=False,
            filter_traffic_engineering=False,
        ).infer(observations)
        return validated, naive

    validated, naive = benchmark(run)
    validated_accuracy, validated_links = _accuracy(
        validated.annotation(AFI.IPV6), reference
    )
    naive_accuracy, naive_links = _accuracy(naive.annotation(AFI.IPV6), reference)
    benchmark.extra_info.update(
        {
            "validated_accuracy": round(validated_accuracy, 3),
            "validated_links": validated_links,
            "naive_accuracy": round(naive_accuracy, 3),
            "naive_links": naive_links,
            "te_routes_filtered": validated.filtered_traffic_engineering,
        }
    )
    print("\n[Ablation A1] LocPrf inference, IPv6 links (accuracy vs ground truth):")
    print(f"  with Rosetta-Stone validation: {validated_links} links, "
          f"accuracy {validated_accuracy:.0%}, "
          f"{validated.filtered_traffic_engineering} TE routes filtered")
    print(f"  naive rank-based calibration:  {naive_links} links, "
          f"accuracy {naive_accuracy:.0%}")
    # Shape: the validated variant is at least as accurate.
    if validated_links and naive_links:
        assert validated_accuracy >= naive_accuracy - 1e-9
