"""Benchmark S3.7: visibility of hybrid links in the IPv6 AS paths.

Regenerates the ">28% of the IPv6 paths contain at least one hybrid
link" statistic and times the path-visibility indexing.
"""

from __future__ import annotations

from repro.core.relationships import AFI
from repro.core.visibility import build_visibility_index


def test_hybrid_path_visibility(benchmark, snapshot, artifacts):
    """S3.7: fraction of IPv6 paths crossing at least one hybrid link."""
    observations = snapshot.observations_for(AFI.IPV6)
    hybrid_links = artifacts.hybrid.hybrid_link_set()

    def run():
        index = build_visibility_index(observations, afi=AFI.IPV6)
        return index, index.fraction_crossing_any(hybrid_links)

    index, fraction = benchmark(run)
    benchmark.extra_info.update(
        {
            "ipv6_paths": index.path_count,
            "paths_crossing_hybrid": index.paths_crossing_any(hybrid_links),
            "fraction_crossing_hybrid": round(fraction, 3),
        }
    )
    print("\n[S3.7] hybrid link visibility (paper: >28% of IPv6 paths):")
    print(f"  distinct IPv6 paths:          {index.path_count}")
    print(f"  paths crossing a hybrid link: {index.paths_crossing_any(hybrid_links)} ({fraction:.0%})")
    ranking = index.rank_links(hybrid_links)[:5]
    for link, count in ranking:
        print(f"    {link}: {count} paths")

    # Shape: the (10-15%) hybrid links are over-represented in paths.
    assert fraction > artifacts.report.hybrid_fraction
    assert fraction > 0.15
