"""Benchmark: end-to-end route propagation, optimized vs reference.

The fast-path PR's headline claim — ≥3x end-to-end propagation speedup
with route-for-route identical outcomes — is tracked here.  Two
benchmarks time the optimized :class:`PropagationSimulator` on the
session bench topology (one prefix per AS, per address family), one
times the frozen seed implementation for the speedup ratio, and one
drives the batched :class:`PropagationEngine`.

``benchmarks/run_benchmarks.py`` is the scriptable twin of this file:
it produces the machine-readable ``BENCH_propagation.json`` that future
PRs diff against.
"""

from __future__ import annotations

import pytest

from repro.core.relationships import AFI
from repro.bgp.engine import PropagationEngine
from repro.bgp.policy import default_policies
from repro.bgp.propagation import PropagationSimulator, originate_one_prefix_per_as
from repro.bgp.reference import ReferencePropagationSimulator
from repro.topology.generator import TopologyConfig, generate_topology


@pytest.fixture(scope="module")
def bench_graph():
    """The 232-AS topology the propagation numbers are quoted on."""
    topology = generate_topology(
        TopologyConfig(seed=2010, tier1_count=7, tier2_count=45, tier3_count=180)
    )
    return topology.graph


@pytest.fixture(scope="module")
def bench_policies(bench_graph):
    return default_policies(bench_graph.ases)


@pytest.mark.parametrize("afi", (AFI.IPV4, AFI.IPV6), ids=("ipv4", "ipv6"))
def test_propagation_optimized(benchmark, bench_graph, bench_policies, afi):
    """Optimized fast path: one prefix per AS over the bench topology."""
    origins = originate_one_prefix_per_as(bench_graph, afi)

    def run():
        return PropagationSimulator(bench_graph, bench_policies).run(origins)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info.update(
        {
            "ases": len(bench_graph),
            "prefixes": len(origins),
            "events": result.events,
        }
    )
    assert result.events > 0
    assert all(count >= 1 for count in result.reachable_counts.values())


def test_propagation_reference_baseline(benchmark, bench_graph, bench_policies):
    """The frozen seed implementation — the denominator of the speedup."""
    origins = originate_one_prefix_per_as(bench_graph, AFI.IPV4)

    def run():
        return ReferencePropagationSimulator(bench_graph, bench_policies).run(origins)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({"ases": len(bench_graph), "events": result.events})
    assert result.events > 0


def test_propagation_engine_batched(benchmark, bench_graph, bench_policies):
    """Batched engine, thread executor: determinism-checked fan-out."""
    origins = originate_one_prefix_per_as(bench_graph, AFI.IPV6)
    engine = PropagationEngine(bench_graph, bench_policies)

    def run():
        return engine.run_many(origins, workers=4)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info.update({"prefixes": len(origins), "events": result.events})
    assert set(result.reachable_counts) == set(origins)


def test_propagation_scale_1000(benchmark):
    """A ≥1000-AS scenario the seed implementation cannot finish quickly.

    One round: this is the scale checkpoint, not a statistical sample.
    """
    topology = generate_topology(
        TopologyConfig(seed=2026, tier1_count=10, tier2_count=150, tier3_count=900)
    )
    graph = topology.graph
    policies = default_policies(graph.ases)
    origins = originate_one_prefix_per_as(graph, AFI.IPV4)

    def run():
        return PropagationSimulator(graph, policies).run(origins)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "ases": len(graph),
            "prefixes": len(origins),
            "events": result.events,
        }
    )
    print(
        f"\n[Scale] {len(graph)} ASes, {len(origins)} prefixes, "
        f"{result.events} events"
    )
    assert len(graph) >= 1000
    assert result.events > 0
