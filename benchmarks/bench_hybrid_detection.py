"""Benchmark S3.5-S3.6: hybrid-link detection and the hybrid type mix.

Regenerates the hybrid statistics (13% of dual-stack links are hybrid;
67% of those are peering-for-IPv4 / transit-for-IPv6; a single
reversed-transit case) and times the detection step.  The synthetic
ground truth additionally allows precision/recall to be reported.
"""

from __future__ import annotations

from repro.core.hybrid import HybridDetector
from repro.core.relationships import AFI, HybridType


def test_hybrid_detection(benchmark, snapshot, artifacts):
    """S3.5-S3.6: detect hybrid links among the visible dual-stack links."""
    detector = HybridDetector(
        artifacts.inference.annotation(AFI.IPV4),
        artifacts.inference.annotation(AFI.IPV6),
    )
    dual_stack_links = artifacts.inventory.dual_stack_links

    report = benchmark(lambda: detector.detect(dual_stack_links))

    validation = detector.validate(report, snapshot.true_hybrid_links)
    benchmark.extra_info.update(
        {
            "hybrid_links": len(report.hybrid_links),
            "hybrid_fraction": round(report.hybrid_fraction, 3),
            "share_peer4_transit6": round(report.type_share(HybridType.PEER4_TRANSIT6), 3),
            "precision": round(validation.precision, 3),
            "recall": round(validation.recall, 3),
        }
    )
    print("\n[S3.5-S3.6] hybrid links (paper: 779 links, 13%; 67% p2p4/transit6; 1 reversed):")
    print(f"  assessed dual-stack links: {len(report.assessed_links)}")
    print(f"  hybrid links:              {len(report.hybrid_links)} ({report.hybrid_fraction:.0%})")
    print(f"  p2p IPv4 / transit IPv6:   {report.type_share(HybridType.PEER4_TRANSIT6):.0%}")
    print(f"  p2p IPv6 / transit IPv4:   {report.type_share(HybridType.PEER6_TRANSIT4):.0%}")
    print(f"  reversed transit:          {report.type_counts.get(HybridType.TRANSIT_REVERSED, 0)} link(s)")
    print(f"  precision / recall vs ground truth: {validation.precision:.2f} / {validation.recall:.2f}")

    assert 0.05 <= report.hybrid_fraction <= 0.25
    assert report.type_share(HybridType.PEER4_TRANSIT6) >= report.type_share(
        HybridType.PEER6_TRANSIT4
    )
    assert validation.precision >= 0.9


def test_hybrid_links_live_in_the_core(benchmark, snapshot, artifacts):
    """Paper: "the hybrid links usually happen among tier-1 or tier-2 ASes"."""
    from repro.topology.tiers import classify_tiers, tier_of_link

    graph = snapshot.graph
    hybrid_links = artifacts.hybrid.hybrid_link_set()

    def run():
        tiers = classify_tiers(graph, AFI.IPV4)
        core = sum(1 for link in hybrid_links if tier_of_link(tiers, link.a, link.b) <= 2)
        return core, len(hybrid_links)

    core, total = benchmark(run)
    benchmark.extra_info.update({"core_hybrid_links": core, "hybrid_links": total})
    print(f"\n[S3 tier observation] hybrid links on tier-1/tier-2 ASes: {core}/{total}")
    if total:
        assert core / total >= 0.5
