"""Benchmark: baseline ToR algorithms vs the Communities/LocPrf inference.

Not a table of the 2-page paper per se, but the quantitative backbone of
its argument: valley-free-based heuristics misinfer a substantial share
of the IPv6 relationships that the Communities evidence pins down.  The
benchmark times both baselines and reports their agreement with the
Communities-derived annotation and with the ground truth.
"""

from __future__ import annotations

from repro.core.relationships import AFI
from repro.inference.comparison import compare_annotations
from repro.inference.degree_based import DegreeBasedInference
from repro.inference.gao import GaoInference


def test_gao_baseline_agreement(benchmark, snapshot, artifacts):
    """Gao-2001 on the IPv6 paths vs Communities inference and ground truth."""
    observations = snapshot.observations_for(AFI.IPV6)
    reference = artifacts.inference.annotation(AFI.IPV6)
    truth = snapshot.ground_truth_annotation(AFI.IPV6)

    annotation = benchmark(lambda: GaoInference().infer(observations, AFI.IPV6))

    vs_reference = compare_annotations(annotation, reference)
    vs_truth = compare_annotations(annotation, truth)
    benchmark.extra_info.update(
        {
            "accuracy_vs_communities": round(vs_reference.accuracy, 3),
            "accuracy_vs_ground_truth": round(vs_truth.accuracy, 3),
        }
    )
    print("\n[Baseline] Gao-2001 on IPv6 paths:")
    print(f"  agreement with Communities inference: {vs_reference.accuracy:.0%} "
          f"({vs_reference.agreements}/{vs_reference.common_links})")
    print(f"  agreement with ground truth:          {vs_truth.accuracy:.0%}")
    print(f"  misinferred links (vs Communities):   {vs_reference.disagreement_count}")
    # The paper's premise: the heuristic misinfers a non-trivial share.
    assert vs_reference.disagreement_count > 0
    assert vs_reference.accuracy < 1.0


def test_degree_baseline_agreement(benchmark, snapshot, artifacts):
    """Degree-ratio heuristic on the IPv6 paths."""
    observations = snapshot.observations_for(AFI.IPV6)
    reference = artifacts.inference.annotation(AFI.IPV6)

    annotation = benchmark(lambda: DegreeBasedInference().infer(observations, AFI.IPV6))

    report = compare_annotations(annotation, reference)
    benchmark.extra_info.update({"accuracy_vs_communities": round(report.accuracy, 3)})
    print("\n[Baseline] degree-ratio heuristic on IPv6 paths:")
    print(f"  agreement with Communities inference: {report.accuracy:.0%} "
          f"({report.agreements}/{report.common_links})")
    assert report.common_links > 0


def test_snapshot_build(benchmark):
    """Substrate cost: build a small end-to-end snapshot once (1 round)."""
    from repro.datasets import build_snapshot, small_config

    snapshot = benchmark.pedantic(
        lambda: build_snapshot(small_config(seed=99)), rounds=1, iterations=1
    )
    print(f"\n[Substrate] small snapshot: {len(snapshot.graph)} ASes, "
          f"{len(snapshot.observations)} observations, "
          f"{snapshot.propagation[AFI.IPV6].events} IPv6 propagation events")
    assert len(snapshot.observations) > 0
