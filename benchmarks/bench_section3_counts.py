"""Benchmark S3.1-S3.4: path/link visibility counts and inference coverage.

Regenerates the first block of Section-3 statistics (IPv6 paths, IPv6
links, dual-stack links, relationship coverage from Communities+LocPrf)
and times the two pipeline stages that produce them: observation/link
extraction and the combined relationship inference.
"""

from __future__ import annotations

from repro.analysis.links import build_link_inventory
from repro.analysis.paths import extract_from_archive
from repro.core.combined_inference import CombinedInference
from repro.core.observations import unique_paths
from repro.core.relationships import AFI


def test_extraction_and_link_counts(benchmark, snapshot):
    """S3.1-S3.3: extract observations and count paths/links per plane."""

    def run():
        extraction = extract_from_archive(snapshot.archive)
        inventory = build_link_inventory(extraction.observations)
        ipv6_paths = unique_paths(
            o for o in extraction.observations if o.afi is AFI.IPV6
        )
        return {
            "ipv6_paths": len(ipv6_paths),
            "ipv6_links": len(inventory.ipv6_links),
            "ipv4_links": len(inventory.ipv4_links),
            "dual_stack_links": len(inventory.dual_stack_links),
        }

    counts = benchmark(run)
    benchmark.extra_info.update(counts)
    print("\n[S3.1-S3.3] visibility counts (paper: 346,649 paths / 10,535 / 7,618):")
    for key, value in counts.items():
        print(f"  {key:>18}: {value}")
    assert counts["ipv6_paths"] > 0
    assert 0 < counts["dual_stack_links"] <= counts["ipv6_links"]


def test_combined_inference_coverage(benchmark, snapshot):
    """S3.4: relationship coverage of the Communities + LocPrf inference."""
    observations = snapshot.observations
    inventory = build_link_inventory(observations)

    def run():
        return CombinedInference(snapshot.registry).infer(observations)

    result = benchmark(run)
    ipv6_coverage = result.coverage[AFI.IPV6].fraction
    dual = result.dual_stack_coverage(inventory.dual_stack_links)
    benchmark.extra_info.update(
        {
            "ipv6_coverage": round(ipv6_coverage, 3),
            "dual_stack_coverage": round(dual.fraction, 3),
        }
    )
    print("\n[S3.4] relationship coverage (paper: 72% of IPv6 links, 81% dual-stack):")
    print(f"  IPv6 links:       {result.coverage[AFI.IPV6].annotated_links}"
          f"/{result.coverage[AFI.IPV6].total_links} ({ipv6_coverage:.0%})")
    print(f"  dual-stack links: {dual.annotated_links}/{dual.total_links} ({dual.fraction:.0%})")
    # Shape check: well above half, and dual-stack coverage at least as good.
    assert ipv6_coverage >= 0.5
    assert dual.fraction >= ipv6_coverage - 0.05
