"""Benchmark Figure 2: the gradual-correction experiment.

Regenerates the two Figure-2 series — average shortest valley-free path
length and diameter of the union of the IPv6 customer trees as the most
visible hybrid relationships are corrected one by one — starting from
the plane-agnostic (misinferred) annotation, and times one full sweep.
A random-order control quantifies how much the visibility ranking
matters (DESIGN.md ablation 3).
"""

from __future__ import annotations

from repro.core.correction import CorrectionExperiment, plane_agnostic_annotation
from repro.core.relationships import AFI

TOP_LINKS = 20
#: Valley-free BFS sources sampled per step; keeps one sweep fast enough
#: to benchmark while preserving the series' shape.
MAX_SOURCES = 60


def test_figure2_correction_sweep(benchmark, snapshot, artifacts):
    """Figure 2: correct the top-20 most visible hybrid links step by step."""
    reference = artifacts.inference.annotation(AFI.IPV6)
    misinferred = plane_agnostic_annotation(
        reference, artifacts.inference.annotation(AFI.IPV4)
    )
    experiment = CorrectionExperiment(misinferred, reference, max_sources=MAX_SOURCES)
    hybrid_links = artifacts.hybrid.hybrid_link_set()

    series = benchmark(
        lambda: experiment.run_with_visibility(
            hybrid_links, artifacts.visibility, top=TOP_LINKS
        )
    )
    improvement = series.improvement()
    benchmark.extra_info.update(
        {
            "corrected_links": len(series.steps) - 1,
            "average_start": round(improvement["average_start"], 3),
            "average_end": round(improvement["average_end"], 3),
            "diameter_start": improvement["diameter_start"],
            "diameter_end": improvement["diameter_end"],
        }
    )
    print("\n[Figure 2] customer-tree metrics while correcting hybrid links"
          " (paper: average 3.8 -> 2.23, diameter 11 -> 7):")
    print("  corrected | avg path length | diameter")
    for step in series.steps:
        print(f"  {step.corrected_links:>9} | {step.average_path_length:>15.3f} "
              f"| {step.diameter:>8}")
    assert len(series.steps) >= 2
    assert all(value > 0 for value in series.averages)


def test_figure2_random_order_control(benchmark, snapshot, artifacts):
    """Ablation: random correction order instead of the visibility ranking."""
    reference = artifacts.inference.annotation(AFI.IPV6)
    misinferred = plane_agnostic_annotation(
        reference, artifacts.inference.annotation(AFI.IPV4)
    )
    experiment = CorrectionExperiment(misinferred, reference, max_sources=MAX_SOURCES)
    hybrid_links = artifacts.hybrid.hybrid_link_set()

    series = benchmark(
        lambda: experiment.run_random_order(hybrid_links, count=TOP_LINKS, seed=7)
    )
    improvement = series.improvement()
    print("\n[Figure 2 control] random correction order: "
          f"average {improvement['average_start']:.3f} -> {improvement['average_end']:.3f}, "
          f"diameter {improvement['diameter_start']:.0f} -> {improvement['diameter_end']:.0f}")
    assert len(series.steps) >= 1
