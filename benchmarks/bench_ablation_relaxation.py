"""Benchmark ablation A2: IPv6 reachability with and without valley-free relaxation.

The paper argues that the IPv6 topology is partitioned under strict
valley-free routing and that some valley paths exist purely to preserve
reachability.  This ablation measures:

* the valley-free reachability of the IPv6 plane under strict export
  rules (the annotation alone), and
* the reachability actually achieved by the propagation, which includes
  the relaxed (leaking) adjacencies,

and reports the pairs gained by the relaxation.  It also re-runs the
propagation with all relaxations disabled to show the reachability gap
directly at the routing layer.
"""

from __future__ import annotations

from repro.analysis.partition import analyze_reachability
from repro.bgp.policy import RoutingPolicy
from repro.bgp.propagation import PropagationSimulator
from repro.core.relationships import AFI


def test_strict_valley_free_reachability(benchmark, snapshot):
    """A2 (annotation level): how partitioned is the strict IPv6 plane?"""
    annotation = snapshot.ground_truth_annotation(AFI.IPV6)
    ases = [
        asn
        for asn in snapshot.graph.ases_in(AFI.IPV6)
        if annotation.neighbors(asn)
    ][:120]

    report = benchmark(lambda: analyze_reachability(annotation, ases=ases))
    benchmark.extra_info.update(
        {
            "reachable_fraction": round(report.reachable_fraction, 3),
            "islands": report.island_count,
        }
    )
    print("\n[Ablation A2] strict valley-free reachability of the IPv6 plane:")
    print(f"  ASes analysed:       {report.ases}")
    print(f"  reachable pairs:     {report.reachable_pairs}/{report.ordered_pairs} "
          f"({report.reachable_fraction:.0%})")
    print(f"  reachability islands: {report.island_count} "
          f"(largest {report.island_sizes[0] if report.island_sizes else 0})")
    assert report.ases == len(ases)


def test_propagation_with_and_without_relaxation(benchmark, snapshot):
    """A2 (routing level): prefixes reachable with and without the leaks."""
    graph = snapshot.graph
    ipv6_ases = graph.ases_in(AFI.IPV6)
    # A handful of origins is enough to expose the reachability gap.
    sample_origins = {
        prefix: origin
        for prefix, origin in list(snapshot.propagation[AFI.IPV6].origins.items())[:40]
    }
    vantages = [
        vantage.asn
        for collector in snapshot.collectors
        for vantage in collector.vantage_points
    ]

    def run():
        relaxed = PropagationSimulator(
            graph, snapshot.policies, keep_ribs_for=vantages
        ).run(sample_origins)
        strict_policies = {
            asn: RoutingPolicy(
                asn=asn,
                local_pref=policy.local_pref,
                tagger=policy.tagger,
                te_overrides=policy.te_overrides,
                strip_communities_on_export=policy.strip_communities_on_export,
            )
            for asn, policy in snapshot.policies.items()
        }
        strict = PropagationSimulator(
            graph, strict_policies, keep_ribs_for=vantages
        ).run(sample_origins)
        return relaxed, strict

    relaxed, strict = benchmark(run)
    relaxed_pairs = sum(relaxed.reachable_counts.values())
    strict_pairs = sum(strict.reachable_counts.values())
    benchmark.extra_info.update(
        {"relaxed_pairs": relaxed_pairs, "strict_pairs": strict_pairs}
    )
    print("\n[Ablation A2] (origin, AS) pairs with a route, over "
          f"{len(sample_origins)} sampled IPv6 prefixes:")
    print(f"  with IPv6 relaxations:    {relaxed_pairs}")
    print(f"  strict valley-free only:  {strict_pairs}")
    print(f"  pairs gained by relaxing: {relaxed_pairs - strict_pairs}")
    assert relaxed_pairs >= strict_pairs
