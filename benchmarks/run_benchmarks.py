#!/usr/bin/env python
"""Performance driver: writes ``BENCH_propagation.json``,
``BENCH_extraction.json``, ``BENCH_pipeline.json``, ``BENCH_sweep.json``,
``BENCH_cluster.json`` and ``BENCH_compression.json``.

Runs the end-to-end benchmarks outside pytest and records
machine-readable results (wall time, events/sec, peak RSS, speedup vs
the frozen seed implementation) so the performance trajectory of the
repository can be tracked PR over PR::

    PYTHONPATH=src python benchmarks/run_benchmarks.py

Scenarios:

* ``bench_snapshot`` — the 232-AS session bench topology, one prefix
  per AS, both address families, optimized vs reference (speedup).
* ``scale_1000``   — a 1060-AS topology, IPv4 plane, optimized only;
  the seed implementation is too slow to run here routinely, which is
  the point of the scenario.
* ``engine_comparison`` — the pluggable propagation backends
  (:mod:`repro.bgp.backends`: event vs array vs equilibrium) head to
  head on the 1060-AS topology in the measurement configuration
  (``keep_ribs_for`` a vantage sample); parity of reachable counts and
  kept RIBs is asserted before any speedup is recorded.
* ``scale_10k`` — the equilibrium solver on a 10,012-AS topology (an
  order of magnitude past ``scale_1000``) against a committed
  10-second wall-clock budget; runs even under ``--smoke`` (with a
  smaller origin sample) so CI keeps the scenario alive.
* ``extraction_inference`` (``BENCH_extraction.json``) — the
  collector→extraction→inference pipeline on ``paper_scale_config``:
  the indexed :class:`~repro.core.store.ObservationStore` path versus
  the frozen seed pipeline (:mod:`repro.analysis.reference`), with the
  Section-3 reports asserted identical before the speedup is recorded.
* ``pipeline_cache`` (``BENCH_pipeline.json``) — the staged artifact
  pipeline (:mod:`repro.pipeline`) on ``paper_scale_config``: a cold
  ``section3`` + ``figure2`` run against an empty cache versus the same
  pair warm, with the warm run asserted to recompute nothing and to
  produce identical reports before the speedup is recorded.
* ``sweep_grid`` (``BENCH_sweep.json``) — the sweep subsystem
  (:mod:`repro.sweep`) on a 2 seeds x 2 correction-depths grid over
  ``paper_scale_config``: one serial run per cell without any cache
  (the standalone baseline), the same grid cold over one shared
  artifact cache (shared upstream stages computed exactly once), and a
  warm rerun of that grid (fully cached).  Every cell is asserted
  bit-identical across all three modes before the speedups are
  recorded.
* ``compression_scaling`` (``BENCH_compression.json``) — quotient-graph
  control-plane compression (:mod:`repro.topology.compress`) on the
  equilibrium engine at three scales: the 1060-AS and 10k-AS
  hierarchical topologies and a 100,016-AS *scale-free* topology
  (preferential attachment concentrates stubs, which is what the
  compression collapses).  Each scenario measures the uncompressed run
  against compress→propagate→inflate over the same 128-origin sample,
  asserts parity (reachable counts + kept RIBs, route for route)
  before recording, and reports the compression ratio and the
  separately-timed plan cost (cached per dataset in real use).  The
  100k scenario enforces a committed 30-second budget on the
  compressed propagate+inflate wall time.
* ``cluster_scaling`` (``BENCH_cluster.json``) — the distributed
  executor (:mod:`repro.cluster`) on a 4 seeds x 2 correction-depths
  paper-scale grid (wave widths 1/4/3, so up to 4 workers can be
  busy): the serial in-process sweep versus coordinator+queue runs
  with 1, 2 and 4 spawned local workers, each over a fresh shared
  cache.  Every distributed run is asserted bit-identical to the
  serial cells with exactly-once compute before the scaling numbers
  are recorded.  ``host_cpus`` is part of the report: on a single-core
  host the multi-worker rows measure coordination overhead, not
  parallel speedup.

``--smoke`` runs every scenario at a tiny scale with one repeat and
writes the reports under ``benchmarks/smoke/`` — a CI guard that the
harness itself keeps working, not a performance measurement.

Measurements take the best of ``--repeats`` runs with the cyclic GC
paused during the timed section (allocation-heavy baselines otherwise
dominate the variance).  Peak RSS is the process high-water mark from
``resource.getrusage`` — a per-process maximum, reported once per
scenario in the order they ran.
"""

from __future__ import annotations

import argparse
import datetime
import gc
import json
import os
import platform
import resource
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Optional

from repro.core.relationships import AFI
from repro.bgp.policy import default_policies
from repro.bgp.propagation import PropagationSimulator, originate_one_prefix_per_as
from repro.bgp.reference import ReferencePropagationSimulator
from repro.topology.generator import TopologyConfig, generate_topology

SCHEMA_VERSION = 2

BENCH_TOPOLOGY = TopologyConfig(seed=2010, tier1_count=7, tier2_count=45, tier3_count=180)
SCALE_TOPOLOGY = TopologyConfig(seed=2026, tier1_count=10, tier2_count=150, tier3_count=900)
SMOKE_TOPOLOGY = TopologyConfig(seed=2010, tier1_count=4, tier2_count=12, tier3_count=40)


def _peak_rss_kb() -> int:
    """Process peak RSS in kB (Linux ru_maxrss unit)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _time_once(factory: Callable[[], object], origins) -> tuple:
    """One GC-quiesced wall-time sample of ``factory().run(origins)``."""
    simulator = factory()
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        result = simulator.run(origins)
        elapsed = time.perf_counter() - started
    finally:
        gc.enable()
    return elapsed, result


def _measure(factory: Callable[[], object], origins, repeats: int) -> Dict:
    """Best-of-N wall time for ``factory().run(origins)``."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        elapsed, result = _time_once(factory, origins)
        best = min(best, elapsed)
    return _stats(best, result, origins)


def _stats(best: float, result, origins) -> Dict:
    return {
        "wall_seconds": round(best, 4),
        "events": result.events,
        "events_per_second": round(result.events / best) if best else None,
        "prefixes": len(origins),
        "reachable_total": sum(result.reachable_counts.values()),
    }


def bench_snapshot(
    repeats: int, with_reference: bool, topology: TopologyConfig = BENCH_TOPOLOGY
) -> Dict:
    topology = generate_topology(topology)
    graph = topology.graph
    policies = default_policies(graph.ases)
    scenario: Dict = {"ases": len(graph), "planes": {}}
    for afi in (AFI.IPV4, AFI.IPV6):
        origins = originate_one_prefix_per_as(graph, afi)
        if not with_reference:
            plane: Dict = {
                "optimized": _measure(
                    lambda: PropagationSimulator(graph, policies), origins, repeats
                )
            }
        else:
            # Interleave the two implementations so load drift on the
            # host (the dominant noise source on shared runners) hits
            # both samples instead of biasing the ratio.
            best_opt = best_ref = float("inf")
            opt_result = ref_result = None
            for _ in range(repeats):
                elapsed, opt_result = _time_once(
                    lambda: PropagationSimulator(graph, policies), origins
                )
                best_opt = min(best_opt, elapsed)
                elapsed, ref_result = _time_once(
                    lambda: ReferencePropagationSimulator(graph, policies), origins
                )
                best_ref = min(best_ref, elapsed)
            plane = {
                "optimized": _stats(best_opt, opt_result, origins),
                "reference": _stats(best_ref, ref_result, origins),
                "speedup": round(best_ref / best_opt, 2),
            }
        scenario["planes"][str(afi)] = plane
    scenario["peak_rss_kb"] = _peak_rss_kb()
    return scenario


def bench_extraction(repeats: int, small: bool = False) -> Dict:
    """Extraction + inference: indexed store vs frozen seed pipeline."""
    from repro.analysis.paths import store_from_records
    from repro.analysis.reference import reference_pipeline
    from repro.analysis.stats import compute_section3
    from repro.datasets import build_snapshot, paper_scale_config, small_config

    snapshot = build_snapshot(small_config() if small else paper_scale_config())
    archive, registry = snapshot.archive, snapshot.registry

    def optimized():
        extraction = store_from_records(archive.records(), deduplicate=True)
        return compute_section3(extraction.store, registry)

    def reference():
        return reference_pipeline(archive, registry)

    optimized_report = optimized().report.as_dict()
    reference_report = reference().as_dict()
    if optimized_report != reference_report:
        raise AssertionError(
            "store pipeline and reference pipeline disagree; refusing to "
            "record a speedup over non-identical results"
        )

    best_opt = best_ref = float("inf")
    for _ in range(repeats):
        # Interleaved and GC-quiesced, like bench_snapshot: host load
        # drift hits both samples and the allocation-heavy reference
        # otherwise pays variable collector time.
        gc.collect()
        gc.disable()
        try:
            started = time.perf_counter()
            optimized()
            best_opt = min(best_opt, time.perf_counter() - started)
            started = time.perf_counter()
            reference()
            best_ref = min(best_ref, time.perf_counter() - started)
        finally:
            gc.enable()

    return {
        "ases": snapshot.config.topology.total_ases,
        "records": len(snapshot.archive),
        "observations": len(snapshot.observations),
        "optimized_wall_seconds": round(best_opt, 4),
        "reference_wall_seconds": round(best_ref, 4),
        "speedup": round(best_ref / best_opt, 2),
        "bit_identical": True,
        "section3": optimized_report,
        "peak_rss_kb": _peak_rss_kb(),
    }


def bench_pipeline(repeats: int, small: bool = False) -> Dict:
    """Staged pipeline: cold vs warm ``section3`` + ``figure2``.

    Cold: an empty artifact cache, so every stage computes (the cold
    ``figure2`` already reuses the stages its ``section3`` just cached —
    that reuse is part of what the scenario demonstrates and is recorded
    in ``cold_figure2_reused_stages``).  Warm: the same two commands
    against the populated cache — the run must recompute *nothing* and
    produce identical outputs, which is asserted before the speedup is
    recorded.
    """
    import shutil
    import tempfile

    from repro.datasets import paper_scale_config, small_config
    from repro.pipeline import PipelineConfig, run_pipeline

    dataset = small_config() if small else paper_scale_config()
    config = PipelineConfig(dataset=dataset)

    best_cold = best_warm = float("inf")
    section3_report: Dict = {}
    warm_cached: list = []
    cold_figure2_reused: list = []
    for _ in range(repeats):
        cache_root = tempfile.mkdtemp(prefix="bench_pipeline_")
        try:
            gc.collect()
            gc.disable()
            try:
                started = time.perf_counter()
                cold_s3 = run_pipeline(config, cache_dir=cache_root, targets=("section3",))
                cold_report = cold_s3.value("section3").as_dict()
                cold_f2 = run_pipeline(
                    config, cache_dir=cache_root, targets=("correction",)
                )
                cold_series = cold_f2.value("correction")
                cold_elapsed = time.perf_counter() - started

                started = time.perf_counter()
                warm_s3 = run_pipeline(config, cache_dir=cache_root, targets=("section3",))
                warm_report = warm_s3.value("section3").as_dict()
                warm_f2 = run_pipeline(
                    config, cache_dir=cache_root, targets=("correction",)
                )
                warm_series = warm_f2.value("correction")
                warm_elapsed = time.perf_counter() - started
            finally:
                gc.enable()
            recomputed = warm_s3.computed_stages() + warm_f2.computed_stages()
            if recomputed:
                raise AssertionError(
                    f"warm pipeline run recomputed stages {recomputed}; refusing "
                    "to record a cache speedup over a partially cold run"
                )
            def _series_key(series):
                return [
                    (step.corrected_links, step.link, step.average_path_length,
                     step.diameter)
                    for step in series.steps
                ]

            if warm_report != cold_report or _series_key(warm_series) != _series_key(
                cold_series
            ):
                raise AssertionError(
                    "warm pipeline outputs differ from cold; refusing to record "
                    "a speedup over non-identical results"
                )
            best_cold = min(best_cold, cold_elapsed)
            best_warm = min(best_warm, warm_elapsed)
            section3_report = cold_report
            warm_cached = warm_f2.cached_stages()
            cold_figure2_reused = cold_f2.cached_stages()
        finally:
            shutil.rmtree(cache_root, ignore_errors=True)

    return {
        "ases": dataset.topology.total_ases,
        "cold_wall_seconds": round(best_cold, 4),
        "warm_wall_seconds": round(best_warm, 4),
        "speedup": round(best_cold / best_warm, 2),
        "cold_figure2_reused_stages": cold_figure2_reused,
        "warm_cached_stages": warm_cached,
        "warm_recomputed_stages": [],
        "bit_identical": True,
        "section3": section3_report,
        "peak_rss_kb": _peak_rss_kb(),
    }


def bench_sweep(repeats: int, small: bool = False) -> Dict:
    """Sweep grid: no-cache serial vs cold shared-cache vs warm rerun.

    The scenario quantifies what the fingerprint-deduplicated sweep
    buys: the no-cache serial mode is exactly four standalone
    ``section3`` + ``figure2`` runs (the pre-sweep workflow and the
    independent baseline the cells are compared against), the cold grid
    computes each shared upstream slice once, and the warm grid reruns
    the same grid against the populated cache.  All three modes must
    produce bit-identical cells and the warm run must recompute nothing
    — asserted before any speedup is recorded.
    """
    import shutil
    import tempfile

    from repro.datasets import DatasetConfig, paper_scale_config
    from repro.pipeline import PipelineConfig
    from repro.sweep import GridAxis, SweepGrid, run_sweep

    if small:
        dataset = DatasetConfig(
            topology=SMOKE_TOPOLOGY,
            seed=2010,
            vantage_points=6,
        )
    else:
        dataset = paper_scale_config()
    base = PipelineConfig(dataset=dataset)
    grid = SweepGrid(
        base,
        [
            GridAxis("dataset.seed", (dataset.seed, dataset.seed + 1)),
            GridAxis("top", (10, 20)),
        ],
    )

    def _cells(result):
        return {
            r.scenario_id: (r.section3, r.correction) for r in result.results
        }

    best_nocache = best_cold = best_warm = float("inf")
    plan_counts: Dict = {}
    for _ in range(repeats):
        cache_root = tempfile.mkdtemp(prefix="bench_sweep_")
        try:
            gc.collect()
            gc.disable()
            try:
                started = time.perf_counter()
                nocache = run_sweep(grid, cache_dir=None, executor="serial")
                nocache_elapsed = time.perf_counter() - started

                started = time.perf_counter()
                cold = run_sweep(grid, cache_dir=cache_root, executor="serial")
                cold_elapsed = time.perf_counter() - started

                started = time.perf_counter()
                warm = run_sweep(grid, cache_dir=cache_root, executor="serial")
                warm_elapsed = time.perf_counter() - started
            finally:
                gc.enable()
            for result, mode in ((nocache, "no-cache"), (cold, "cold"), (warm, "warm")):
                if result.failed():
                    raise AssertionError(f"{mode} sweep had failing scenarios")
            if cold.duplicate_computes():
                raise AssertionError(
                    "cold sweep computed a shared fingerprint twice; refusing "
                    "to record a dedup speedup"
                )
            expected = cold.plan.distinct_stage_invocations()
            computed = cold.cache_counters()["computed"]
            if computed != expected:
                raise AssertionError(
                    f"cold sweep computed {computed} stage invocations, "
                    f"planner expected {expected}"
                )
            if not warm.fully_cached():
                raise AssertionError(
                    "warm sweep recomputed stages; refusing to record a "
                    "cache speedup over a partially cold run"
                )
            if not (_cells(nocache) == _cells(cold) == _cells(warm)):
                raise AssertionError(
                    "sweep cells differ between no-cache/cold/warm modes; "
                    "refusing to record speedups over non-identical results"
                )
            best_nocache = min(best_nocache, nocache_elapsed)
            best_cold = min(best_cold, cold_elapsed)
            best_warm = min(best_warm, warm_elapsed)
            plan_counts = {
                "total_stage_invocations": cold.plan.total_stage_invocations(),
                "distinct_stage_invocations": expected,
            }
        finally:
            shutil.rmtree(cache_root, ignore_errors=True)

    return {
        "ases": dataset.topology.total_ases,
        "cells": len(grid),
        "axes": grid.spec_dict()["axes"],
        "no_cache_serial_wall_seconds": round(best_nocache, 4),
        "cold_grid_wall_seconds": round(best_cold, 4),
        "warm_grid_wall_seconds": round(best_warm, 4),
        "speedup_cold_vs_no_cache": round(best_nocache / best_cold, 2),
        "speedup_warm_vs_cold": round(best_cold / best_warm, 2),
        **plan_counts,
        "warm_fully_cached": True,
        "bit_identical": True,
        "peak_rss_kb": _peak_rss_kb(),
    }


def bench_cluster(repeats: int, small: bool = False) -> Dict:
    """Distributed executor: serial baseline vs 1/2/4 local workers.

    The grid deliberately uses four seeds so the wave schedule is
    1 / 4 / 3 scenarios wide — wave two genuinely offers four-way
    parallelism.  Each worker count runs against a fresh queue and a
    fresh shared cache; parity with the serial cells and exactly-once
    compute are asserted before any wall-clock number is recorded.
    """
    import shutil
    import tempfile

    from repro.cluster.coordinator import run_distributed_sweep
    from repro.datasets import DatasetConfig, paper_scale_config
    from repro.pipeline import PipelineConfig
    from repro.sweep import GridAxis, SweepGrid, run_sweep

    if small:
        dataset = DatasetConfig(
            topology=SMOKE_TOPOLOGY,
            seed=2010,
            vantage_points=6,
        )
    else:
        dataset = paper_scale_config()
    base = PipelineConfig(dataset=dataset)
    seeds = tuple(dataset.seed + offset for offset in range(4))
    grid = SweepGrid(
        base,
        [GridAxis("dataset.seed", seeds), GridAxis("top", (10, 20))],
    )

    def _cells(result):
        return {r.scenario_id: (r.section3, r.correction) for r in result.results}

    worker_counts = (1, 2, 4)
    best_serial = float("inf")
    best_by_workers: Dict[int, float] = {n: float("inf") for n in worker_counts}
    wave_widths: list = []
    for _ in range(repeats):
        work_root = tempfile.mkdtemp(prefix="bench_cluster_")
        try:
            gc.collect()
            started = time.perf_counter()
            serial = run_sweep(
                grid, cache_dir=os.path.join(work_root, "serial-cache"),
                executor="serial",
            )
            best_serial = min(best_serial, time.perf_counter() - started)
            if serial.failed():
                raise AssertionError("serial baseline sweep had failures")
            serial_cells = _cells(serial)
            wave_widths = [len(wave) for wave in serial.plan.waves]

            for workers in worker_counts:
                started = time.perf_counter()
                distributed = run_distributed_sweep(
                    grid,
                    queue_dir=os.path.join(work_root, f"queue-{workers}"),
                    cache_dir=os.path.join(work_root, f"cache-{workers}"),
                    local_workers=workers,
                    lease_seconds=60.0,
                    poll_interval=0.05,
                )
                elapsed = time.perf_counter() - started
                if distributed.failed():
                    raise AssertionError(
                        f"{workers}-worker distributed sweep had failures"
                    )
                if distributed.duplicate_computes():
                    raise AssertionError(
                        f"{workers}-worker run computed a fingerprint twice; "
                        "refusing to record scaling over a broken schedule"
                    )
                if _cells(distributed) != serial_cells:
                    raise AssertionError(
                        f"{workers}-worker cells differ from serial; refusing "
                        "to record scaling over non-identical results"
                    )
                best_by_workers[workers] = min(best_by_workers[workers], elapsed)
        finally:
            shutil.rmtree(work_root, ignore_errors=True)

    one_worker = best_by_workers[1]
    return {
        "ases": dataset.topology.total_ases,
        "cells": len(grid),
        "axes": grid.spec_dict()["axes"],
        "wave_widths": wave_widths,
        "host_cpus": os.cpu_count(),
        "serial_wall_seconds": round(best_serial, 4),
        "workers": {
            str(n): {
                "wall_seconds": round(best_by_workers[n], 4),
                "speedup_vs_1_worker": round(one_worker / best_by_workers[n], 2),
                "speedup_vs_serial": round(best_serial / best_by_workers[n], 2),
            }
            for n in worker_counts
        },
        "queue_overhead_seconds_1_worker": round(one_worker - best_serial, 4),
        "bit_identical": True,
        "exactly_once": True,
        "peak_rss_kb": _peak_rss_kb(),
    }


def bench_scale(repeats: int) -> Dict:
    topology = generate_topology(SCALE_TOPOLOGY)
    graph = topology.graph
    policies = default_policies(graph.ases)
    origins = originate_one_prefix_per_as(graph, AFI.IPV4)
    optimized = _measure(
        lambda: PropagationSimulator(graph, policies), origins, repeats
    )
    return {
        "ases": len(graph),
        "planes": {str(AFI.IPV4): {"optimized": optimized}},
        "peak_rss_kb": _peak_rss_kb(),
    }


def _vantage_sample(graph, count: int = 24):
    """A deterministic spread of ~``count`` vantage-style ASes."""
    return graph.ases[:: max(1, len(graph.ases) // count)][:count]


def bench_engines(repeats: int, small: bool = False) -> Dict:
    """Propagation backends head to head on one scale topology.

    Event vs array vs equilibrium over the same origin set, in the
    measurement configuration (``keep_ribs_for`` a vantage sample, like
    the pipeline's propagation stage).  Parity — reachable counts and
    the kept RIBs, route for route — is asserted before any speedup is
    recorded; the event engine additionally cross-checks the array
    event count.
    """
    from repro.bgp.engine import PropagationEngine

    topology = generate_topology(SMOKE_TOPOLOGY if small else SCALE_TOPOLOGY)
    graph = topology.graph
    policies = default_policies(graph.ases)
    origins = originate_one_prefix_per_as(graph, AFI.IPV4)
    keep = _vantage_sample(graph)

    engines = ("event", "array", "equilibrium")
    best: Dict[str, float] = {}
    results: Dict[str, object] = {}
    for name in engines:
        best[name] = float("inf")
        for _ in range(repeats):
            elapsed, result = _time_once(
                lambda: PropagationEngine(
                    graph, policies, keep_ribs_for=keep, engine=name
                ),
                origins,
            )
            best[name] = min(best[name], elapsed)
            results[name] = result

    event = results["event"]
    if results["array"].events != event.events:
        raise AssertionError("array backend diverged from the event count")
    for name in ("array", "equilibrium"):
        candidate = results[name]
        if candidate.reachable_counts != event.reachable_counts:
            raise AssertionError(f"{name} reachable counts diverged from event")
        for asn in keep:
            if candidate.snapshot(asn).best_routes != event.snapshot(asn).best_routes:
                raise AssertionError(
                    f"{name} routes at AS{asn} diverged from event; refusing "
                    "to record a speedup over non-identical results"
                )

    return {
        "ases": len(graph),
        "prefixes": len(origins),
        "keep_ribs_for": len(keep),
        "engines": {
            name: {
                "wall_seconds": round(best[name], 4),
                "events": results[name].events,
                "speedup_vs_event": round(best["event"] / best[name], 2),
            }
            for name in engines
        },
        "bit_identical": True,
        "peak_rss_kb": _peak_rss_kb(),
    }


#: The 10k-AS scenario: an order of magnitude past ``SCALE_TOPOLOGY``,
#: feasible routinely only because the equilibrium solver skips events.
SCALE_10K_TOPOLOGY = TopologyConfig(
    seed=2026,
    tier1_count=12,
    tier2_count=1200,
    tier3_count=8800,
    tier2_peering_probability=0.015,
)

#: The committed budget for the 10k-AS solve (ISSUE 7 acceptance).
SCALE_10K_BUDGET_SECONDS = 10.0


def bench_scale_10k(repeats: int, small: bool = False) -> Dict:
    """Equilibrium solver on the 10k-AS topology, against a wall-clock
    budget.

    Topology generation is excluded from the timed section (it is a
    one-off per dataset and dominated by the generator, not the
    solver).  Smoke mode keeps the full 10k-AS graph but samples fewer
    origins so CI exercises the real scenario shape in seconds.
    """
    from repro.bgp.engine import PropagationEngine

    topology = generate_topology(SCALE_10K_TOPOLOGY)
    graph = topology.graph
    policies = default_policies(graph.ases)
    full = originate_one_prefix_per_as(graph, AFI.IPV4)
    prefixes = list(full)
    sample = 16 if small else 128
    step = max(1, len(prefixes) // sample)
    origins = {prefix: full[prefix] for prefix in prefixes[::step][:sample]}
    keep = _vantage_sample(graph)

    measured = _measure(
        lambda: PropagationEngine(
            graph, policies, keep_ribs_for=keep, engine="equilibrium"
        ),
        origins,
        repeats,
    )
    within_budget = measured["wall_seconds"] <= SCALE_10K_BUDGET_SECONDS
    if not small and not within_budget:
        raise AssertionError(
            f"10k-AS equilibrium solve took {measured['wall_seconds']}s, "
            f"budget is {SCALE_10K_BUDGET_SECONDS}s"
        )
    return {
        "ases": len(graph),
        "engine": "equilibrium",
        "budget_seconds": SCALE_10K_BUDGET_SECONDS,
        "within_budget": within_budget,
        "planes": {str(AFI.IPV4): {"optimized": measured}},
        "peak_rss_kb": _peak_rss_kb(),
    }


#: The 100k-AS scale-free scenario: preferential attachment concentrates
#: stubs under few providers, which is exactly what the quotient-graph
#: compression collapses (ratio ~1.6x at this shape).
COMPRESSION_100K_TOPOLOGY = TopologyConfig(
    seed=2026,
    mode="scale_free",
    tier1_count=16,
    tier2_count=2400,
    tier3_count=97600,
    tier2_peering_probability=0.004,
)

#: The committed budget for the 100k-AS compressed propagate+inflate
#: (ISSUE 8 acceptance).  Plan construction is excluded: it is built
#: once per (topology, policies, origins) and cached by the engine and
#: the pipeline's ``compress`` stage.
COMPRESSION_100K_BUDGET_SECONDS = 30.0


def bench_compression(repeats: int, small: bool = False) -> Dict:
    """Quotient-graph compression across scales, parity-gated.

    Each scenario runs the equilibrium engine uncompressed and
    compressed over the same 128-origin sample in the measurement
    configuration (``keep_ribs_for`` a vantage sample).  Parity —
    reachable counts and the kept RIBs, route for route — is asserted
    before any ratio or speedup is recorded.  Topology generation and
    plan construction are excluded from the timed propagate+inflate
    section; the plan cost is reported separately (it is cached by the
    engine and the pipeline's ``compress`` stage, so real sweeps pay it
    once per dataset, not once per run).

    The 100k-AS scale-free scenario enforces
    ``COMPRESSION_100K_BUDGET_SECONDS`` on the compressed
    propagate+inflate wall time.
    """
    from repro.bgp.engine import PropagationEngine
    from repro.topology.compress import compress_topology

    if small:
        scenarios = (
            ("hier_small", SMOKE_TOPOLOGY, ("stubs", "full"), None),
            (
                "scale_free_small",
                TopologyConfig(
                    seed=2026, mode="scale_free", tier1_count=4,
                    tier2_count=40, tier3_count=400,
                ),
                ("stubs",),
                None,
            ),
        )
        sample = 16
    else:
        scenarios = (
            ("hier_1060", SCALE_TOPOLOGY, ("stubs", "full"), None),
            ("hier_10k", SCALE_10K_TOPOLOGY, ("stubs", "full"), None),
            (
                "scale_free_100k",
                COMPRESSION_100K_TOPOLOGY,
                ("stubs",),
                COMPRESSION_100K_BUDGET_SECONDS,
            ),
        )
        sample = 128

    report: Dict[str, Dict] = {}
    for name, topo_config, modes, budget in scenarios:
        graph = generate_topology(topo_config).graph
        policies = default_policies(graph.ases)
        full = originate_one_prefix_per_as(graph, AFI.IPV4)
        prefixes = list(full)
        step = max(1, len(prefixes) // sample)
        origins = {prefix: full[prefix] for prefix in prefixes[::step][:sample]}
        keep = _vantage_sample(graph)

        off = _measure(
            lambda: PropagationEngine(
                graph, policies, keep_ribs_for=keep, engine="equilibrium"
            ),
            origins,
            repeats,
        )
        baseline = PropagationEngine(
            graph, policies, keep_ribs_for=keep, engine="equilibrium"
        ).run(origins)

        scenario: Dict[str, object] = {
            "ases": len(graph),
            "mode": topo_config.mode,
            "prefixes": len(origins),
            "keep_ribs_for": len(keep),
            "engine": "equilibrium",
            "off_wall_seconds": off["wall_seconds"],
            "modes": {},
        }
        for mode in modes:
            plan_started = time.perf_counter()
            plan = compress_topology(
                graph,
                policies,
                mode=mode,
                pinned=keep,
                origin_asns=set(origins.values()),
            )
            plan_seconds = time.perf_counter() - plan_started
            if not plan.applied:
                raise AssertionError(
                    f"{name}/{mode}: compression did not apply ({plan.reason})"
                )
            compressed = _measure(
                lambda: PropagationEngine(
                    graph,
                    policies,
                    keep_ribs_for=keep,
                    engine="equilibrium",
                    compression=mode,
                    compression_plan=plan,
                ),
                origins,
                repeats,
            )
            # Parity gate: never record a ratio over non-identical results.
            check = PropagationEngine(
                graph,
                policies,
                keep_ribs_for=keep,
                engine="equilibrium",
                compression=mode,
                compression_plan=plan,
            ).run(origins)
            if check.reachable_counts != baseline.reachable_counts:
                raise AssertionError(
                    f"{name}/{mode}: reachable counts diverged under compression"
                )
            for asn in keep:
                if (
                    check.snapshot(asn).best_routes
                    != baseline.snapshot(asn).best_routes
                ):
                    raise AssertionError(
                        f"{name}/{mode}: routes at AS{asn} diverged under "
                        "compression; refusing to record a speedup"
                    )
            run_seconds = compressed["wall_seconds"]
            scenario["modes"][mode] = {
                "plan_wall_seconds": round(plan_seconds, 4),
                "run_wall_seconds": run_seconds,
                "speedup_vs_off": round(off["wall_seconds"] / run_seconds, 2),
                "ratio": round(plan.stats.ratio, 4),
                "collapsed": plan.stats.collapsed,
                "nodes_after": plan.stats.nodes_after,
                "classes": plan.stats.classes,
            }
            if budget is not None:
                within = run_seconds <= budget
                scenario["modes"][mode]["within_budget"] = within
                scenario["budget_seconds"] = budget
                if not within:
                    raise AssertionError(
                        f"{name}/{mode}: compressed propagate+inflate took "
                        f"{run_seconds}s, budget is {budget}s"
                    )
        scenario["bit_identical"] = True
        report[name] = scenario
    return {"scenarios": report, "peak_rss_kb": _peak_rss_kb()}


def _host_block() -> Dict:
    """The machine *and code* the numbers came from — identical shape in
    every ``BENCH_*.json`` so cross-run comparisons can check they are
    comparing like with like, and so history-ledger entries
    (``benchmarks/history/``, see ``repro bench``) are attributable to
    a commit.  ``git_commit``/``git_dirty`` are ``None`` outside a git
    checkout."""
    from repro.telemetry.history import git_info

    provenance = git_info(cwd=Path(__file__).resolve().parent)
    return {
        "cpus": os.cpu_count(),
        "machine": platform.machine(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "git_commit": provenance["commit"],
        "git_dirty": provenance["dirty"],
    }


def _report_envelope(results: Dict, schema_version: int = 1) -> Dict:
    return {
        "schema_version": schema_version,
        "generated_at": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "host": _host_block(),
        "results": results,
    }


def _run_isolated(args, only_flag: str, output_flag: str, output: Path) -> Dict:
    """Run one scenario in a fresh subprocess and read its report back.

    Launched *before* the propagation scenarios inflate this process:
    ru_maxrss is a process-level high-water mark that a forked child
    inherits through the copy-on-write window, so spawning from a
    1.7 GB parent would tag the scenario with the propagation footprint.
    """
    command = [
        sys.executable,
        str(Path(__file__).resolve()),
        only_flag,
        "--repeats",
        str(args.repeats),
        output_flag,
        str(output),
    ]
    if args.smoke:
        command.append("--smoke")
    subprocess.run(command, check=True, env=os.environ.copy())
    print(f"[bench] wrote {output}")
    return json.loads(output.read_text())


def main(argv: Optional[list] = None) -> int:
    repo_root = Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the JSON report (default: repo root)",
    )
    parser.add_argument("--repeats", type=int, default=5, help="best-of-N timing")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny-scale, one-repeat run of every scenario writing under "
        "benchmarks/smoke/ — a CI guard, not a measurement",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="do not append this run to the benchmarks/history/ ledger "
        "(full runs record automatically; see 'repro bench compare')",
    )
    parser.add_argument(
        "--skip-reference",
        action="store_true",
        help="skip the slow seed-implementation baseline (no speedup field)",
    )
    parser.add_argument(
        "--skip-scale",
        action="store_true",
        help="skip the 1000-AS scale scenario",
    )
    parser.add_argument(
        "--skip-engines",
        action="store_true",
        help="skip the propagation-backend comparison scenario",
    )
    parser.add_argument(
        "--skip-10k",
        action="store_true",
        help="skip the 10k-AS equilibrium scenario (runs even in --smoke, "
        "with a smaller origin sample)",
    )
    parser.add_argument(
        "--skip-extraction",
        action="store_true",
        help="skip the extraction+inference scenario (BENCH_extraction.json)",
    )
    parser.add_argument(
        "--extraction-output",
        type=Path,
        default=None,
        help="where to write the extraction report (default: repo root)",
    )
    parser.add_argument(
        "--extraction-only",
        action="store_true",
        help="run only the extraction scenario, in this process (used "
        "internally: the main driver runs it in a subprocess so its "
        "peak-RSS figure is not polluted by the propagation scenarios)",
    )
    parser.add_argument(
        "--skip-pipeline",
        action="store_true",
        help="skip the staged-pipeline cache scenario (BENCH_pipeline.json)",
    )
    parser.add_argument(
        "--pipeline-output",
        type=Path,
        default=None,
        help="where to write the pipeline report (default: repo root)",
    )
    parser.add_argument(
        "--pipeline-only",
        action="store_true",
        help="run only the pipeline-cache scenario, in this process "
        "(used internally, like --extraction-only)",
    )
    parser.add_argument(
        "--skip-sweep",
        action="store_true",
        help="skip the sweep-grid scenario (BENCH_sweep.json)",
    )
    parser.add_argument(
        "--sweep-output",
        type=Path,
        default=None,
        help="where to write the sweep report (default: repo root)",
    )
    parser.add_argument(
        "--sweep-only",
        action="store_true",
        help="run only the sweep-grid scenario, in this process "
        "(used internally, like --extraction-only)",
    )
    parser.add_argument(
        "--skip-compression",
        action="store_true",
        help="skip the quotient-graph compression scenario "
        "(BENCH_compression.json)",
    )
    parser.add_argument(
        "--compression-output",
        type=Path,
        default=None,
        help="where to write the compression report (default: repo root)",
    )
    parser.add_argument(
        "--compression-only",
        action="store_true",
        help="run only the compression-scaling scenario, in this process "
        "(used internally, like --extraction-only)",
    )
    parser.add_argument(
        "--skip-cluster",
        action="store_true",
        help="skip the distributed-executor scenario (BENCH_cluster.json)",
    )
    parser.add_argument(
        "--cluster-output",
        type=Path,
        default=None,
        help="where to write the cluster report (default: repo root)",
    )
    parser.add_argument(
        "--cluster-only",
        action="store_true",
        help="run only the cluster-scaling scenario, in this process "
        "(used internally, like --extraction-only)",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    if args.smoke:
        args.repeats = 1
        args.skip_scale = True
        output_root = repo_root / "benchmarks" / "smoke"
        output_root.mkdir(parents=True, exist_ok=True)
    else:
        output_root = repo_root
    if args.output is None:
        args.output = output_root / "BENCH_propagation.json"
    if args.extraction_output is None:
        args.extraction_output = output_root / "BENCH_extraction.json"
    if args.pipeline_output is None:
        args.pipeline_output = output_root / "BENCH_pipeline.json"
    if args.sweep_output is None:
        args.sweep_output = output_root / "BENCH_sweep.json"
    if args.cluster_output is None:
        args.cluster_output = output_root / "BENCH_cluster.json"
    if args.compression_output is None:
        args.compression_output = output_root / "BENCH_compression.json"

    if args.extraction_only:
        args.extraction_output.write_text(
            json.dumps(
                _report_envelope(
                    {"extraction_inference": bench_extraction(args.repeats, args.smoke)}
                ),
                indent=2,
            )
            + "\n"
        )
        return 0

    if args.pipeline_only:
        args.pipeline_output.write_text(
            json.dumps(
                _report_envelope(
                    {"pipeline_cache": bench_pipeline(args.repeats, args.smoke)}
                ),
                indent=2,
            )
            + "\n"
        )
        return 0

    if args.sweep_only:
        args.sweep_output.write_text(
            json.dumps(
                _report_envelope(
                    {"sweep_grid": bench_sweep(args.repeats, args.smoke)}
                ),
                indent=2,
            )
            + "\n"
        )
        return 0

    if args.compression_only:
        args.compression_output.write_text(
            json.dumps(
                _report_envelope(
                    {
                        "compression_scaling": bench_compression(
                            max(1, args.repeats - 3), args.smoke
                        )
                    }
                ),
                indent=2,
            )
            + "\n"
        )
        return 0

    if args.cluster_only:
        args.cluster_output.write_text(
            json.dumps(
                _report_envelope(
                    {"cluster_scaling": bench_cluster(args.repeats, args.smoke)}
                ),
                indent=2,
            )
            + "\n"
        )
        return 0

    scale_name = "small_config" if args.smoke else "paper_scale_config"
    if not args.skip_extraction:
        print(f"[bench] extraction+inference on {scale_name} ...")
        extraction_report = _run_isolated(
            args, "--extraction-only", "--extraction-output", args.extraction_output
        )
        scenario = extraction_report["results"]["extraction_inference"]
        print(
            f"  extraction_inference: {scenario['optimized_wall_seconds']}s vs "
            f"{scenario['reference_wall_seconds']}s reference, "
            f"speedup {scenario['speedup']}x (bit-identical)"
        )

    if not args.skip_pipeline:
        print(f"[bench] staged-pipeline cache on {scale_name} ...")
        pipeline_report = _run_isolated(
            args, "--pipeline-only", "--pipeline-output", args.pipeline_output
        )
        scenario = pipeline_report["results"]["pipeline_cache"]
        print(
            f"  pipeline_cache: cold {scenario['cold_wall_seconds']}s vs warm "
            f"{scenario['warm_wall_seconds']}s, speedup {scenario['speedup']}x "
            f"({len(scenario['warm_cached_stages'])} stages cached)"
        )

    if not args.skip_sweep:
        print(f"[bench] sweep grid (2 seeds x 2 tops) on {scale_name} ...")
        sweep_report = _run_isolated(
            args, "--sweep-only", "--sweep-output", args.sweep_output
        )
        scenario = sweep_report["results"]["sweep_grid"]
        print(
            f"  sweep_grid: no-cache {scenario['no_cache_serial_wall_seconds']}s "
            f"vs cold {scenario['cold_grid_wall_seconds']}s "
            f"({scenario['speedup_cold_vs_no_cache']}x) vs warm "
            f"{scenario['warm_grid_wall_seconds']}s "
            f"({scenario['speedup_warm_vs_cold']}x over cold; "
            f"{scenario['distinct_stage_invocations']} distinct of "
            f"{scenario['total_stage_invocations']} stage invocations)"
        )

    if not args.skip_compression:
        print(f"[bench] compression scaling on {scale_name} ...")
        compression_report = _run_isolated(
            args,
            "--compression-only",
            "--compression-output",
            args.compression_output,
        )
        scaling = compression_report["results"]["compression_scaling"]
        for name, scenario in scaling["scenarios"].items():
            for mode, data in scenario["modes"].items():
                print(
                    f"  {name}/{mode}: {scenario['ases']} ASes, "
                    f"off {scenario['off_wall_seconds']}s vs "
                    f"{data['run_wall_seconds']}s "
                    f"({data['speedup_vs_off']}x, ratio {data['ratio']}x, "
                    f"plan {data['plan_wall_seconds']}s, bit-identical)"
                )

    if not args.skip_cluster:
        print(f"[bench] cluster scaling (4 seeds x 2 tops) on {scale_name} ...")
        cluster_report = _run_isolated(
            args, "--cluster-only", "--cluster-output", args.cluster_output
        )
        scenario = cluster_report["results"]["cluster_scaling"]
        workers = scenario["workers"]
        print(
            f"  cluster_scaling: serial {scenario['serial_wall_seconds']}s vs "
            + " vs ".join(
                f"{n}w {workers[n]['wall_seconds']}s "
                f"({workers[n]['speedup_vs_1_worker']}x vs 1w)"
                for n in ("1", "2", "4")
            )
            + f" on {scenario['host_cpus']} cpus (bit-identical, exactly-once)"
        )

    report = _report_envelope({}, schema_version=SCHEMA_VERSION)
    topology = SMOKE_TOPOLOGY if args.smoke else BENCH_TOPOLOGY
    print(f"[bench] snapshot topology {topology.total_ases} ASes ...")
    report["results"]["bench_snapshot"] = bench_snapshot(
        args.repeats, with_reference=not args.skip_reference, topology=topology
    )
    if not args.skip_scale:
        print(f"[bench] scale topology {SCALE_TOPOLOGY.total_ases} ASes ...")
        report["results"]["scale_1000"] = bench_scale(max(1, args.repeats - 1))

    if not args.skip_engines:
        scale = SMOKE_TOPOLOGY if args.smoke else SCALE_TOPOLOGY
        print(f"[bench] engine comparison on {scale.total_ases} ASes ...")
        comparison = bench_engines(max(1, args.repeats - 1), args.smoke)
        report["results"]["engine_comparison"] = comparison
        print(
            "  engine_comparison: "
            + ", ".join(
                f"{name} {data['wall_seconds']}s ({data['speedup_vs_event']}x)"
                for name, data in comparison["engines"].items()
            )
            + " (bit-identical)"
        )

    if not args.skip_10k:
        print(
            f"[bench] 10k-AS equilibrium scenario "
            f"({SCALE_10K_TOPOLOGY.total_ases} ASes) ..."
        )
        ten_k = bench_scale_10k(max(1, args.repeats - 1), args.smoke)
        report["results"]["scale_10k"] = ten_k
        solved = ten_k["planes"][str(AFI.IPV4)]["optimized"]
        print(
            f"  scale_10k: {solved['prefixes']} prefixes in "
            f"{solved['wall_seconds']}s "
            f"(budget {ten_k['budget_seconds']}s, "
            f"within_budget={ten_k['within_budget']})"
        )

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench] wrote {args.output}")
    for name, scenario in report["results"].items():
        for plane, data in scenario.get("planes", {}).items():
            optimized = data["optimized"]
            line = (
                f"  {name}/{plane}: {optimized['wall_seconds']}s, "
                f"{optimized['events_per_second']} events/s"
            )
            if "speedup" in data:
                line += f", speedup {data['speedup']}x vs reference"
            print(line)

    if not args.no_history and not args.smoke:
        # Full runs append to the ledger so 'repro bench compare' can
        # gate future runs; smoke runs are CI guards, recorded by the
        # CI job itself when it wants a baseline.
        from repro.telemetry.history import load_reports, record

        reports = load_reports(output_root)
        if reports:
            entry = record(
                repo_root / "benchmarks" / "history", reports, smoke=False
            )
            print(f"[bench] history entry {entry}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
