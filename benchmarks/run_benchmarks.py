#!/usr/bin/env python
"""Propagation performance driver: writes ``BENCH_propagation.json``.

Runs the end-to-end propagation benchmarks outside pytest and records
machine-readable results (wall time, events/sec, peak RSS, speedup vs
the frozen seed implementation) so the performance trajectory of the
repository can be tracked PR over PR::

    PYTHONPATH=src python benchmarks/run_benchmarks.py

Scenarios:

* ``bench_snapshot`` — the 232-AS session bench topology, one prefix
  per AS, both address families, optimized vs reference (speedup).
* ``scale_1000``   — a 1060-AS topology, IPv4 plane, optimized only;
  the seed implementation is too slow to run here routinely, which is
  the point of the scenario.

Measurements take the best of ``--repeats`` runs with the cyclic GC
paused during the timed section (allocation-heavy baselines otherwise
dominate the variance).  Peak RSS is the process high-water mark from
``resource.getrusage`` — a per-process maximum, reported once per
scenario in the order they ran.
"""

from __future__ import annotations

import argparse
import datetime
import gc
import json
import platform
import resource
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Optional

from repro.core.relationships import AFI
from repro.bgp.policy import default_policies
from repro.bgp.propagation import PropagationSimulator, originate_one_prefix_per_as
from repro.bgp.reference import ReferencePropagationSimulator
from repro.topology.generator import TopologyConfig, generate_topology

SCHEMA_VERSION = 2

BENCH_TOPOLOGY = TopologyConfig(seed=2010, tier1_count=7, tier2_count=45, tier3_count=180)
SCALE_TOPOLOGY = TopologyConfig(seed=2026, tier1_count=10, tier2_count=150, tier3_count=900)


def _peak_rss_kb() -> int:
    """Process peak RSS in kB (Linux ru_maxrss unit)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _time_once(factory: Callable[[], object], origins) -> tuple:
    """One GC-quiesced wall-time sample of ``factory().run(origins)``."""
    simulator = factory()
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        result = simulator.run(origins)
        elapsed = time.perf_counter() - started
    finally:
        gc.enable()
    return elapsed, result


def _measure(factory: Callable[[], object], origins, repeats: int) -> Dict:
    """Best-of-N wall time for ``factory().run(origins)``."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        elapsed, result = _time_once(factory, origins)
        best = min(best, elapsed)
    return _stats(best, result, origins)


def _stats(best: float, result, origins) -> Dict:
    return {
        "wall_seconds": round(best, 4),
        "events": result.events,
        "events_per_second": round(result.events / best) if best else None,
        "prefixes": len(origins),
        "reachable_total": sum(result.reachable_counts.values()),
    }


def bench_snapshot(repeats: int, with_reference: bool) -> Dict:
    topology = generate_topology(BENCH_TOPOLOGY)
    graph = topology.graph
    policies = default_policies(graph.ases)
    scenario: Dict = {"ases": len(graph), "planes": {}}
    for afi in (AFI.IPV4, AFI.IPV6):
        origins = originate_one_prefix_per_as(graph, afi)
        if not with_reference:
            plane: Dict = {
                "optimized": _measure(
                    lambda: PropagationSimulator(graph, policies), origins, repeats
                )
            }
        else:
            # Interleave the two implementations so load drift on the
            # host (the dominant noise source on shared runners) hits
            # both samples instead of biasing the ratio.
            best_opt = best_ref = float("inf")
            opt_result = ref_result = None
            for _ in range(repeats):
                elapsed, opt_result = _time_once(
                    lambda: PropagationSimulator(graph, policies), origins
                )
                best_opt = min(best_opt, elapsed)
                elapsed, ref_result = _time_once(
                    lambda: ReferencePropagationSimulator(graph, policies), origins
                )
                best_ref = min(best_ref, elapsed)
            plane = {
                "optimized": _stats(best_opt, opt_result, origins),
                "reference": _stats(best_ref, ref_result, origins),
                "speedup": round(best_ref / best_opt, 2),
            }
        scenario["planes"][str(afi)] = plane
    scenario["peak_rss_kb"] = _peak_rss_kb()
    return scenario


def bench_scale(repeats: int) -> Dict:
    topology = generate_topology(SCALE_TOPOLOGY)
    graph = topology.graph
    policies = default_policies(graph.ases)
    origins = originate_one_prefix_per_as(graph, AFI.IPV4)
    optimized = _measure(
        lambda: PropagationSimulator(graph, policies), origins, repeats
    )
    return {
        "ases": len(graph),
        "planes": {str(AFI.IPV4): {"optimized": optimized}},
        "peak_rss_kb": _peak_rss_kb(),
    }


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_propagation.json",
        help="where to write the JSON report (default: repo root)",
    )
    parser.add_argument("--repeats", type=int, default=5, help="best-of-N timing")
    parser.add_argument(
        "--skip-reference",
        action="store_true",
        help="skip the slow seed-implementation baseline (no speedup field)",
    )
    parser.add_argument(
        "--skip-scale",
        action="store_true",
        help="skip the 1000-AS scale scenario",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    report = {
        "schema_version": SCHEMA_VERSION,
        "generated_at": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "results": {},
    }
    print(f"[bench] snapshot topology {BENCH_TOPOLOGY.total_ases} ASes ...")
    report["results"]["bench_snapshot"] = bench_snapshot(
        args.repeats, with_reference=not args.skip_reference
    )
    if not args.skip_scale:
        print(f"[bench] scale topology {SCALE_TOPOLOGY.total_ases} ASes ...")
        report["results"]["scale_1000"] = bench_scale(max(1, args.repeats - 1))

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench] wrote {args.output}")
    for name, scenario in report["results"].items():
        for plane, data in scenario["planes"].items():
            optimized = data["optimized"]
            line = (
                f"  {name}/{plane}: {optimized['wall_seconds']}s, "
                f"{optimized['events_per_second']} events/s"
            )
            if "speedup" in data:
                line += f", speedup {data['speedup']}x vs reference"
            print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main())
