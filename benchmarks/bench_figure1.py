"""Benchmark Figure 1: customer-tree computation and the p2c/p2p flip.

Times customer-tree construction on the benchmark snapshot and
regenerates the Figure-1 effect (the tree of an AS shrinks when one of
its links is re-labelled from p2c to p2p).
"""

from __future__ import annotations

from repro.core.customer_tree import customer_tree, union_of_customer_trees
from repro.core.relationships import AFI, Relationship
from repro.datasets.scenarios import figure1_scenario


def test_figure1_toy_example(benchmark):
    """The exact five-AS example of Figure 1."""
    scenario = figure1_scenario()

    def run():
        tree_a = customer_tree(scenario.annotation_p2c, scenario.ROOT)
        tree_b = customer_tree(scenario.annotation_p2p, scenario.ROOT)
        return tree_a, tree_b

    tree_a, tree_b = benchmark(run)
    print("\n[Figure 1] customer tree of AS1:")
    print(f"  (a) AS1-AS2 p2c: {sorted(tree_a.members)}")
    print(f"  (b) AS1-AS2 p2p: {sorted(tree_b.members)}")
    assert tree_a.members == scenario.expected_tree_p2c
    assert tree_b.members == scenario.expected_tree_p2p


def test_customer_tree_union_on_snapshot(benchmark, snapshot, artifacts):
    """Customer-tree union over the measured IPv6 plane (Figure 2's substrate)."""
    annotation = artifacts.inference.annotation(AFI.IPV6)

    union = benchmark(lambda: union_of_customer_trees(annotation))
    benchmark.extra_info.update({"union_members": union.size, "union_edges": len(union.edges)})
    print(f"\n[Figure 1 -> 2] union of IPv6 customer trees: {union.size} ASes, "
          f"{len(union.edges)} p2c edges")
    assert union.size > 0
    # Every union edge must be a p2c edge of the annotation.
    for link in list(union.edges)[:50]:
        assert annotation.get_canonical(link) in (Relationship.P2C, Relationship.C2P)


def test_single_link_flip_changes_tree(benchmark, snapshot, artifacts):
    """Figure-1 effect on the measured topology: flip the most visible
    hybrid transit link to p2p and measure the provider's tree shrink."""
    annotation = artifacts.inference.annotation(AFI.IPV6)
    hybrid_links = [
        link
        for link in artifacts.visibility.top_links(20, links=artifacts.hybrid.hybrid_link_set())
        if annotation.get_canonical(link).is_transit
    ]
    if not hybrid_links:
        return
    link = hybrid_links[0]
    provider = link.a if annotation.get(link.a, link.b) is Relationship.P2C else link.b

    def run():
        with_transit = customer_tree(annotation, provider)
        flipped = annotation.copy()
        flipped.set_canonical(link, Relationship.P2P)
        without_transit = customer_tree(flipped, provider)
        return with_transit, without_transit

    with_transit, without_transit = benchmark(run)
    print(f"\n[Figure 1 on snapshot] AS{provider} tree with {link} as transit: "
          f"{with_transit.size} ASes; as p2p: {without_transit.size} ASes")
    assert without_transit.size <= with_transit.size
