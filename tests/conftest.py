"""Shared fixtures for the test suite.

The expensive fixture — a small but complete synthetic snapshot — is
session-scoped so the integration tests across modules reuse one build.
"""

from __future__ import annotations

import pytest

from repro.datasets import build_snapshot, small_config
from repro.datasets.scenarios import (
    figure1_scenario,
    hybrid_scenario,
    rosetta_scenario,
    valley_scenario,
)


@pytest.fixture(scope="session")
def snapshot():
    """A small end-to-end synthetic snapshot (built once per session)."""
    return build_snapshot(small_config())


@pytest.fixture()
def figure1():
    """The Figure-1 customer-tree scenario."""
    return figure1_scenario()


@pytest.fixture()
def hybrid_topology():
    """The seven-AS topology with one hybrid link."""
    return hybrid_scenario()


@pytest.fixture()
def rosetta():
    """The hand-built Rosetta-Stone calibration scenario."""
    return rosetta_scenario()


@pytest.fixture()
def valley():
    """The peering-dispute valley scenario."""
    return valley_scenario()
