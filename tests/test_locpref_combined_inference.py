"""Unit tests for the LocPrf (Rosetta Stone) and combined inference."""

import pytest

from repro.bgp.attributes import Community
from repro.bgp.prefixes import Prefix
from repro.core.combined_inference import CombinedInference
from repro.core.locpref_inference import LocPrefInference
from repro.core.observations import ObservedRoute
from repro.core.relationships import AFI, Link, Relationship
from repro.irr.dictionary import CommunityDictionary
from repro.irr.registry import IRRRegistry


def observe(path, communities=(), local_pref=None, prefix="3fff:9::/32"):
    return ObservedRoute(
        path=tuple(path),
        prefix=Prefix(prefix),
        vantage=path[0],
        communities=tuple(communities),
        local_pref=local_pref,
    )


class TestCalibration:
    def test_rosetta_mapping_built_from_communities(self, rosetta):
        inference = LocPrefInference(rosetta.registry)
        mappings = inference.calibrate(rosetta.observations)
        mapping = mappings[rosetta.vantage]
        assert mapping.mapping[rosetta.CUSTOMER_PREF] is Relationship.P2C
        assert mapping.mapping[rosetta.PEER_PREF] is Relationship.P2P
        assert mapping.mapping[rosetta.PROVIDER_PREF] is Relationship.C2P
        assert rosetta.TE_PREF not in mapping.mapping

    def test_ambiguous_values_discarded(self, rosetta):
        registry = rosetta.registry
        conflicting = rosetta.observations + [
            observe(
                [100, 500],
                communities=[Community(100, 20)],  # peer tag...
                local_pref=900,                     # ...but the "customer" value
            )
        ]
        inference = LocPrefInference(registry)
        mapping = inference.calibrate(conflicting)[100]
        assert 900 in mapping.ambiguous_values
        assert 900 not in mapping.mapping

    def test_traffic_engineering_routes_excluded_from_calibration(self, rosetta):
        registry = rosetta.registry
        observations = [
            observe(
                [100, 270],
                communities=[Community(100, 10), Community(100, 666)],
                local_pref=50,
            )
        ] + rosetta.observations
        inference = LocPrefInference(registry)
        mapping = inference.calibrate(observations)[100]
        assert 50 not in mapping.mapping

    def test_rank_calibration_when_validation_disabled(self, rosetta):
        inference = LocPrefInference(rosetta.registry, validate_with_communities=False)
        mapping = inference.calibrate(rosetta.observations)[100]
        # Highest value observed becomes customer, lowest provider.
        assert mapping.mapping[900] is Relationship.P2C
        assert mapping.mapping[50] is Relationship.C2P


class TestLocPrefInference:
    def test_first_hop_link_inferred_from_calibrated_value(self, rosetta):
        inference = LocPrefInference(rosetta.registry)
        result = inference.infer(rosetta.observations)
        annotation = result.annotation(AFI.IPV6)
        # The (100, 250) link had no relationship community but LOCAL_PREF
        # 800 which calibrates to peer.
        assert annotation.get(100, 250) is Relationship.P2P

    def test_te_routes_filtered_and_counted(self, rosetta):
        inference = LocPrefInference(rosetta.registry)
        result = inference.infer(rosetta.observations)
        assert result.filtered_traffic_engineering == 1
        assert result.annotation(AFI.IPV6).get(100, 260) is Relationship.UNKNOWN

    def test_te_filter_can_be_disabled(self, rosetta):
        inference = LocPrefInference(rosetta.registry, filter_traffic_engineering=False)
        result = inference.infer(rosetta.observations)
        assert result.filtered_traffic_engineering == 0

    def test_unmapped_values_counted(self, rosetta):
        extra = rosetta.observations + [observe([100, 280, 281], local_pref=555)]
        inference = LocPrefInference(rosetta.registry)
        result = inference.infer(extra)
        assert result.unmapped_observations >= 1
        assert result.annotation(AFI.IPV6).get(100, 280) is Relationship.UNKNOWN

    def test_routes_without_local_pref_ignored(self, rosetta):
        extra = rosetta.observations + [observe([100, 290, 291], local_pref=None)]
        inference = LocPrefInference(rosetta.registry)
        result = inference.infer(extra)
        assert result.annotation(AFI.IPV6).get(100, 290) is Relationship.UNKNOWN


class TestCombinedInference:
    def test_communities_take_precedence_and_locpref_fills_gaps(self, rosetta):
        engine = CombinedInference(rosetta.registry)
        result = engine.infer(rosetta.observations)
        annotation = result.annotation(AFI.IPV6)
        # From communities: vantage-customer link.
        assert annotation.get(100, 400) is Relationship.P2C
        # From LocPrf only: the (100, 250) link.
        assert annotation.get(100, 250) is Relationship.P2P

    def test_coverage_reports(self, rosetta):
        engine = CombinedInference(rosetta.registry)
        result = engine.infer(rosetta.observations)
        coverage = result.coverage[AFI.IPV6]
        assert coverage.total_links >= 5
        assert 0.0 < coverage.fraction <= 1.0
        assert coverage.annotated_links <= coverage.total_links

    def test_dual_stack_coverage_requires_both_planes(self, rosetta):
        engine = CombinedInference(rosetta.registry)
        result = engine.infer(rosetta.observations)
        # No IPv4 observations at all: dual-stack coverage of any link is 0.
        report = result.dual_stack_coverage([Link(100, 400)])
        assert report.annotated_links == 0
        assert report.fraction == 0.0

    def test_relationship_shortcut(self, rosetta):
        engine = CombinedInference(rosetta.registry)
        result = engine.infer(rosetta.observations)
        assert result.relationship(400, 100, AFI.IPV6) is Relationship.C2P

    def test_locpref_never_overrides_communities(self):
        """A link whose communities say peer keeps that label even when a
        (mis-calibrated) LocPrf value suggests otherwise."""
        registry = IRRRegistry()
        dictionary = CommunityDictionary(100)
        dictionary.add_relationship(10, Relationship.P2C)
        dictionary.add_relationship(20, Relationship.P2P)
        dictionary.add_relationship(30, Relationship.C2P)
        registry.register(dictionary)
        observations = [
            # Calibration: 300 = customer.
            observe([100, 7], communities=[Community(100, 10)], local_pref=300),
            # The link 100-8 carries a peer tag but the customer LOCAL_PREF.
            observe([100, 8, 9], communities=[Community(100, 20)], local_pref=300),
        ]
        engine = CombinedInference(registry)
        result = engine.infer(observations)
        assert result.relationship(100, 8, AFI.IPV6) is Relationship.P2P
