"""Engine parity as a sweep axis: every backend, bit-identical reports.

``propagation.engine`` is an ordinary dotted-path grid axis, so a sweep
can fan the same scenario out across all propagation backends.  This
suite pins the two contracts that make that useful:

* **parity** — every engine produces byte-identical Section-3 and
  Figure-2 report payloads for the same dataset cell (the engine trades
  build time, never results), and
* **cache honesty** — the engine participates in the propagation stage
  fingerprint, so two cells differing only in the engine share every
  upstream artifact but *recompute* propagation instead of aliasing to
  one cached result (which would make the parity assertion vacuous).

The grid zeroes the traffic-engineering / leak / dispute knobs of the
synthetic dataset so the equilibrium solver genuinely applies — a
sanity check asserts applicability rather than trusting the silent
``auto`` fallback to hide a regression.
"""

from __future__ import annotations

import pytest

from repro.bgp.backends import EquilibriumBackend
from repro.core.relationships import AFI
from repro.datasets import DatasetConfig
from repro.pipeline import PipelineConfig, PropagationConfig, run_pipeline
from repro.sweep import GridAxis, SweepGrid, run_sweep
from repro.topology.generator import TopologyConfig

ENGINES = ("event", "equilibrium", "array", "auto")


def _solver_friendly_dataset(seed: int) -> DatasetConfig:
    """A tiny dataset cell with the non-Gao-Rexford knobs switched off."""
    return DatasetConfig(
        topology=TopologyConfig(
            seed=seed, tier1_count=3, tier2_count=8, tier3_count=20
        ),
        seed=seed,
        vantage_points=4,
        te_override_fraction=0.0,
        gratuitous_leak_fraction=0.0,
        ipv6_peering_disputes=0,
    )


def _engine_grid() -> SweepGrid:
    base = PipelineConfig(dataset=_solver_friendly_dataset(1), top=3, max_sources=10)
    return SweepGrid(
        base,
        [
            GridAxis("propagation.engine", ENGINES),
            GridAxis("dataset.seed", (1, 2)),
        ],
    )


@pytest.fixture(scope="module")
def engine_sweep(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("engine-sweep-cache")
    result = run_sweep(_engine_grid(), cache_dir=cache_dir, executor="serial")
    return result


class TestEngineParitySweep:
    def test_all_cells_ok(self, engine_sweep):
        assert [r.status for r in engine_sweep.results] == ["ok"] * (
            len(ENGINES) * 2
        )

    @pytest.mark.parametrize("seed", (1, 2))
    def test_reports_bit_identical_across_engines(self, engine_sweep, seed):
        by_id = engine_sweep.by_id()
        cells = [
            by_id[f"propagation.engine={engine},dataset.seed={seed}"]
            for engine in ENGINES
        ]
        reference = cells[0]
        assert reference.section3 is not None
        assert reference.correction is not None
        for cell in cells[1:]:
            assert cell.section3 == reference.section3, cell.scenario_id
            assert cell.correction == reference.correction, cell.scenario_id

    def test_engine_is_part_of_the_propagation_fingerprint(self, engine_sweep):
        """Same dataset cell, different engine: shared upstream stages,
        distinct propagation fingerprints (a real recompute, not one
        cached artifact wearing four engine labels)."""
        by_id = engine_sweep.by_id()
        cells = [
            by_id[f"propagation.engine={engine},dataset.seed=1"]
            for engine in ENGINES
        ]
        for stage in ("topology", "scenario"):
            fingerprints = {cell.fingerprints[stage] for cell in cells}
            assert len(fingerprints) == 1, f"{stage} should be shared"
        for stage in ("propagation_v4", "propagation_v6"):
            fingerprints = {cell.fingerprints[stage] for cell in cells}
            assert len(fingerprints) == len(ENGINES), (
                f"{stage} fingerprint must discriminate the engine"
            )

    def test_solver_actually_applies_to_the_grid(self):
        """Guard against the parity test silently degrading into
        event-vs-event: the zeroed dataset really is solver-eligible."""
        config = PipelineConfig(
            dataset=_solver_friendly_dataset(1),
            propagation=PropagationConfig(engine="equilibrium"),
        )
        run = run_pipeline(config, targets=("scenario",))
        scenario = run.value("scenario")
        graph = scenario.topology.graph
        for afi in (AFI.IPV4, AFI.IPV6):
            reason = EquilibriumBackend.inapplicable_reason(
                graph, scenario.policies, afi
            )
            assert reason is None, reason

    def test_default_dataset_falls_back(self):
        """The stock small dataset has TE overrides and IPv6 disputes —
        ``auto`` on it must take the event path, with a reason."""
        from repro.bgp.engine import PropagationEngine
        from repro.bgp.propagation import originate_one_prefix_per_as
        from repro.datasets import small_config

        config = PipelineConfig(dataset=small_config(seed=7))
        run = run_pipeline(config, targets=("scenario",))
        scenario = run.value("scenario")
        graph = scenario.topology.graph
        engine = PropagationEngine(graph, scenario.policies, engine="auto")
        origins = originate_one_prefix_per_as(graph, AFI.IPV4)
        name, reason = engine.select_backend(origins)
        assert name == "event"
        assert reason
