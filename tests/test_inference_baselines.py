"""Unit tests for the baseline ToR inference algorithms and their comparison."""

import pytest

from repro.bgp.prefixes import Prefix
from repro.core.annotation import ToRAnnotation
from repro.core.observations import ObservedRoute
from repro.core.relationships import AFI, Link, Relationship
from repro.inference.comparison import compare_annotations, misinference_rate
from repro.inference.degree_based import DegreeBasedInference, DegreeParameters
from repro.inference.gao import GaoInference, GaoParameters


#: A small hierarchy: 1 is the high-degree core; 2 and 3 are mid;
#: 4, 5, 6, 7 are stubs.  Observer-first paths as a collector would see.
PATHS = [
    (4, 2, 1),
    (5, 2, 1),
    (4, 2, 1, 3, 6),
    (5, 2, 1, 3, 7),
    (6, 3, 1),
    (7, 3, 1),
    (6, 3, 1, 2, 4),
    (7, 3, 1, 2, 5),
]


class TestGaoInference:
    def test_parameters_validation(self):
        with pytest.raises(ValueError):
            GaoParameters(transit_ratio=0.4)
        with pytest.raises(ValueError):
            GaoParameters(peering_degree_ratio=0.5)

    def test_degree_computation(self):
        degrees = GaoInference.degrees_from_paths(PATHS)
        assert degrees[1] == 2
        assert degrees[2] == 3
        assert degrees[4] == 1

    def test_top_provider_index(self):
        degrees = GaoInference.degrees_from_paths(PATHS)
        # AS2 and AS3 have the highest degree (3); ties pick the first.
        assert GaoInference.top_provider_index((4, 2, 1), degrees) == 1
        assert GaoInference.top_provider_index((4, 2, 1, 3, 6), degrees) == 1
        assert GaoInference.top_provider_index((6, 3, 1), degrees) == 1

    def test_transit_links_inferred(self):
        annotation = GaoInference().infer_paths(PATHS, AFI.IPV6)
        assert annotation.get(2, 4) is Relationship.P2C
        assert annotation.get(3, 6) is Relationship.P2C
        assert annotation.get(4, 2) is Relationship.C2P

    def test_core_links_point_to_top(self):
        annotation = GaoInference().infer_paths(PATHS, AFI.IPV6)
        # 1 has the highest degree...? Both 2 and 3 have degree 3 vs 1's 2;
        # whichever wins, the annotation must label the 1-2 and 1-3 links.
        assert annotation.get(1, 2).is_known
        assert annotation.get(1, 3).is_known

    def test_infer_from_observations_filters_afi(self):
        observations = [
            ObservedRoute(path=p, prefix=Prefix("3fff:1::/32"), vantage=p[0])
            for p in PATHS
        ] + [
            ObservedRoute(path=(9, 8), prefix=Prefix("10.0.0.0/20"), vantage=9)
        ]
        annotation = GaoInference().infer(observations, AFI.IPV6)
        assert annotation.get(8, 9) is Relationship.UNKNOWN
        assert annotation.get(2, 4).is_known

    def test_valley_free_assumption_misinfers_ipv6_peering(self):
        """The motivating artifact: a peering link crossed 'sideways' in
        many paths gets labelled as transit by the degree heuristics."""
        paths = [
            (10, 2, 3, 11),
            (10, 2, 3, 12),
            (13, 2, 3, 11),
        ]
        annotation = GaoInference().infer_paths(paths, AFI.IPV6)
        # Whatever the exact label, the heuristic cannot know 2-3 is p2p
        # without communities; it assigns a transit direction.
        assert annotation.get(2, 3).is_transit


class TestDegreeBasedInference:
    def test_parameters_validation(self):
        with pytest.raises(ValueError):
            DegreeParameters(peering_ratio=0.9)

    def test_peering_between_similar_degrees(self):
        paths = [(1, 2), (2, 1), (1, 3), (2, 4)]
        annotation = DegreeBasedInference().infer_paths(paths, AFI.IPV6)
        assert annotation.get(1, 2) is Relationship.P2P

    def test_transit_between_asymmetric_degrees(self):
        annotation = DegreeBasedInference(
            DegreeParameters(peering_ratio=1.5)
        ).infer_paths(PATHS, AFI.IPV6)
        assert annotation.get(2, 4) is Relationship.P2C
        assert annotation.get(4, 2) is Relationship.C2P

    def test_transit_degree_variant(self):
        annotation = DegreeBasedInference(
            DegreeParameters(use_transit_degree=True, peering_ratio=1.2)
        ).infer_paths(PATHS, AFI.IPV6)
        assert annotation.get(2, 4).is_known

    def test_every_observed_link_gets_a_label(self):
        annotation = DegreeBasedInference().infer_paths(PATHS, AFI.IPV6)
        observed_links = {
            Link(p[i], p[i + 1]) for p in PATHS for i in range(len(p) - 1)
        }
        assert set(annotation.links()) == observed_links


class TestComparison:
    def build(self):
        reference = ToRAnnotation(AFI.IPV6)
        reference.set(1, 2, Relationship.P2C)
        reference.set(2, 3, Relationship.P2P)
        reference.set(3, 4, Relationship.P2C)
        candidate = reference.copy()
        candidate.set(2, 3, Relationship.P2C)      # misinference
        candidate.set(5, 6, Relationship.P2P)      # extra link
        candidate.remove(3, 4)                     # missing link
        return candidate, reference

    def test_compare_annotations(self):
        candidate, reference = self.build()
        report = compare_annotations(candidate, reference)
        assert report.common_links == 2
        assert report.agreements == 1
        assert report.disagreement_count == 1
        assert report.only_candidate == 1
        assert report.only_reference == 1
        assert report.accuracy == pytest.approx(0.5)
        assert report.misinferred_links == [Link(2, 3)]
        assert report.confusion()[(Relationship.P2C, Relationship.P2P)] == 1

    def test_compare_with_link_restriction(self):
        candidate, reference = self.build()
        report = compare_annotations(candidate, reference, links=[Link(1, 2)])
        assert report.common_links == 1
        assert report.disagreement_count == 0

    def test_afi_mismatch_rejected(self):
        candidate, _ = self.build()
        with pytest.raises(ValueError):
            compare_annotations(candidate, ToRAnnotation(AFI.IPV4))

    def test_misinference_rate(self):
        candidate, reference = self.build()
        assert misinference_rate(candidate, reference) == pytest.approx(0.5)
        assert misinference_rate(ToRAnnotation(AFI.IPV6), reference) == 0.0

    def test_summary(self):
        candidate, reference = self.build()
        summary = compare_annotations(candidate, reference).summary()
        assert summary["accuracy"] == pytest.approx(0.5)
        assert summary["common_links"] == 2.0
