"""Unit tests for the synthetic topology generator."""

import pytest

from repro.core.relationships import AFI, HybridType, Relationship
from repro.topology.generator import TopologyConfig, generate_topology
from repro.topology.tiers import classify_tiers


@pytest.fixture(scope="module")
def generated():
    """A mid-sized generated topology shared by the tests in this module."""
    config = TopologyConfig(seed=11, tier1_count=6, tier2_count=30, tier3_count=120)
    return generate_topology(config)


class TestConfigValidation:
    def test_requires_two_tier1(self):
        with pytest.raises(ValueError):
            TopologyConfig(tier1_count=1)

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            TopologyConfig(hybrid_fraction=1.5)
        with pytest.raises(ValueError):
            TopologyConfig(tier2_ipv6_fraction=-0.1)

    def test_total_ases(self):
        config = TopologyConfig(tier1_count=3, tier2_count=4, tier3_count=5)
        assert config.total_ases == 12


class TestHierarchy:
    def test_as_counts_match_config(self, generated):
        config = generated.config
        assert len(generated.tier1) == config.tier1_count
        assert len(generated.tier2) == config.tier2_count
        assert len(generated.tier3) == config.tier3_count
        assert len(generated.graph) == config.total_ases

    def test_tier1_is_a_clique_of_peers(self, generated):
        graph = generated.graph
        for i, a in enumerate(generated.tier1):
            for b in generated.tier1[i + 1 :]:
                assert graph.relationship(a, b, AFI.IPV4) is Relationship.P2P

    def test_tier1_ases_are_transit_free(self, generated):
        graph = generated.graph
        for asn in generated.tier1:
            assert graph.transit_free(asn, AFI.IPV4)

    def test_every_tier2_has_a_tier1_provider(self, generated):
        graph = generated.graph
        tier1 = set(generated.tier1)
        for asn in generated.tier2:
            assert set(graph.providers_of(asn, AFI.IPV4)) & tier1

    def test_every_stub_has_a_provider(self, generated):
        graph = generated.graph
        for asn in generated.tier3:
            assert graph.providers_of(asn, AFI.IPV4)

    def test_tier_classification_agrees_with_generator(self, generated):
        tiers = classify_tiers(generated.graph, AFI.IPV4)
        for asn in generated.tier1:
            assert tiers[asn] == 1

    def test_tier_of_lookup(self, generated):
        assert generated.tier_of(generated.tier1[0]) == 1
        assert generated.tier_of(generated.tier3[0]) == 3
        with pytest.raises(KeyError):
            generated.tier_of(10**9)


class TestIPv6Plane:
    def test_all_tier1_are_ipv6(self, generated):
        graph = generated.graph
        for asn in generated.tier1:
            assert graph.node(asn).ipv6

    def test_ipv6_links_only_between_ipv6_ases(self, generated):
        graph = generated.graph
        for link in graph.links(AFI.IPV6):
            assert graph.node(link.a).ipv6
            assert graph.node(link.b).ipv6

    def test_ipv6_only_links_exist(self, generated):
        graph = generated.graph
        ipv6_only = set(graph.links(AFI.IPV6)) - set(graph.links(AFI.IPV4))
        assert ipv6_only, "generator should add IPv6-only peering links"
        for link in ipv6_only:
            assert graph.relationship(link.a, link.b, AFI.IPV6) is Relationship.P2P


class TestHybridLinks:
    def test_hybrid_fraction_close_to_target(self, generated):
        dual_stack = generated.graph.dual_stack_links()
        fraction = len(generated.hybrid_links) / len(dual_stack)
        assert 0.08 <= fraction <= 0.18

    def test_hybrid_links_really_differ(self, generated):
        graph = generated.graph
        for link in generated.hybrid_links:
            record = graph.dual_stack_relationship(link.a, link.b)
            assert record.is_hybrid

    def test_single_reversed_transit_case(self, generated):
        reversed_links = [
            link
            for link, hybrid_type in generated.hybrid_links.items()
            if hybrid_type is HybridType.TRANSIT_REVERSED
        ]
        assert len(reversed_links) == 1

    def test_dominant_type_is_peer4_transit6(self, generated):
        counts = {}
        for hybrid_type in generated.hybrid_links.values():
            counts[hybrid_type] = counts.get(hybrid_type, 0) + 1
        assert counts[HybridType.PEER4_TRANSIT6] >= counts.get(HybridType.PEER6_TRANSIT4, 0)

    def test_non_hybrid_dual_stack_links_agree(self, generated):
        graph = generated.graph
        hybrid = set(generated.hybrid_links)
        for link in graph.dual_stack_links():
            if link in hybrid:
                continue
            record = graph.dual_stack_relationship(link.a, link.b)
            assert record.ipv4 is record.ipv6


class TestDeterminism:
    def test_same_seed_same_topology(self):
        config = TopologyConfig(seed=99, tier1_count=4, tier2_count=10, tier3_count=30)
        first = generate_topology(config)
        second = generate_topology(config)
        assert first.graph.stats() == second.graph.stats()
        assert first.hybrid_links == second.hybrid_links

    def test_different_seed_different_topology(self):
        base = TopologyConfig(seed=1, tier1_count=4, tier2_count=10, tier3_count=30)
        other = TopologyConfig(seed=2, tier1_count=4, tier2_count=10, tier3_count=30)
        assert (
            generate_topology(base).graph.stats() != generate_topology(other).graph.stats()
        )
