"""Chaos suite: scripted fault storms against the distributed sweep.

The acceptance criterion of the hardening work: the golden 2x2
distributed sweep — under a seeded transient/corruption storm, one
worker crash and one stuck-but-heartbeating task — completes
**bit-identical to serial**, with the recoveries (retries, lease
reclaims, watchdog aborts) visible in the queue's post-mortem records.
Alongside it, the targeted unhappy paths: poison-task quarantine,
heartbeat-failure stand-down, and graceful SIGTERM drain.
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.cluster.coordinator import queue_path, run_distributed_sweep
from repro.cluster.queue import TaskQueue, TaskSpec
from repro.cluster.worker import Worker
from repro.datasets import DatasetConfig
from repro.faults import (
    FaultInjectingQueue,
    FaultPlan,
    FaultSpec,
    intercept_stage,
)
from repro.pipeline import PipelineConfig
from repro.sweep import GridAxis, SweepGrid, run_sweep
from repro.topology.generator import TopologyConfig


def tiny_base(seed: int = 5) -> PipelineConfig:
    return PipelineConfig(
        dataset=DatasetConfig(
            topology=TopologyConfig(
                seed=seed, tier1_count=3, tier2_count=8, tier3_count=20
            ),
            seed=seed,
            vantage_points=4,
        ),
        top=3,
        max_sources=10,
    )


def two_by_two() -> SweepGrid:
    return SweepGrid(
        tiny_base(),
        [GridAxis("dataset.seed", (1, 2)), GridAxis("top", (2, 3))],
    )


def cells(result):
    return {r.scenario_id: (r.section3, r.correction) for r in result.results}


def task_spec(
    task_id: str,
    cache_dir,
    max_attempts: int = 3,
    timeout_seconds=None,
    targets=("section3",),
) -> TaskSpec:
    return TaskSpec(
        task_id=task_id,
        sweep_id="chaos",
        wave=0,
        scenario_id=f"scenario-{task_id}",
        config=pickle.dumps(tiny_base(), protocol=pickle.HIGHEST_PROTOCOL),
        targets=json.dumps(list(targets)),
        cache_spec=str(cache_dir),
        max_attempts=max_attempts,
        timeout_seconds=timeout_seconds,
    )


class TestGolden2x2UnderStorm:
    def test_fault_storm_crash_and_stall_still_bit_identical(self, tmp_path):
        """The tentpole acceptance test.  Storm ingredients:

        * a seeded transient/corrupt/delay storm over every backend
          operation of every worker (absorbed by retry + hash verify),
        * worker ``local-0`` crashes (``os._exit``) on its first
          payload publish — lease expiry hands its task to the survivor,
        * worker ``local-1`` stalls 30s inside a backend read while its
          heartbeat keeps the lease alive — only the watchdog can abort
          it (the stuck-but-heartbeating scenario).

        The sweep must still converge to the serial run's bytes, with
        no dead letters and the recoveries on the queue record.
        """
        grid = two_by_two()
        serial = run_sweep(
            grid, cache_dir=tmp_path / "serial-cache", executor="serial"
        )

        storm = FaultPlan.seeded(
            seed=11,
            calls=150,
            transient_rate=0.06,
            corrupt_rate=0.02,
            delay_rate=0.02,
            delay_seconds=0.002,
        )
        scripted = (
            # Deterministic crash: only worker local-0, first publish.
            FaultSpec("put_if_absent", 1, "crash", worker_pattern="local-0-"),
            # Deterministic stall, far longer than the watchdog budget:
            # only worker local-1, mid-run.
            FaultSpec(
                "get", 25, "delay", delay_seconds=30.0, worker_pattern="local-1-"
            ),
        )
        # Keep the scripted entries authoritative at their call slots:
        # a storm fault firing first would consume the slot (a raise
        # advances the counter past the crash/stall).
        entries = tuple(
            spec
            for spec in storm.entries
            if not (spec.operation == "put_if_absent" and spec.call <= 2)
            and not (spec.operation == "get" and spec.call == 25)
        ) + scripted
        plan_path = tmp_path / "storm.json"
        FaultPlan(entries).to_json_file(plan_path)

        cache_dir = tmp_path / "cluster-cache"
        distributed = run_distributed_sweep(
            grid,
            queue_dir=tmp_path / "queue",
            cache_dir=f"fault://{plan_path}!{cache_dir}",
            local_workers=2,
            lease_seconds=5.0,
            poll_interval=0.05,
            max_attempts=4,
            task_timeout_seconds=8.0,
        )

        # Bit-identical to serial, every scenario ok, nothing quarantined.
        assert [r.status for r in distributed.results] == ["ok"] * 4
        assert cells(distributed) == cells(serial)
        assert distributed.dead_letters == []

        # The recoveries really happened and are on the record.
        tasks = TaskQueue(queue_path(tmp_path / "queue")).tasks()
        assert [t.status for t in tasks] == ["done"] * 4
        assert any(t.attempts > 1 for t in tasks)
        log_errors = [
            entry.get("error", "")
            for task in tasks
            for entry in task.attempts_log
        ]
        assert any("lease expired" in error for error in log_errors), log_errors
        assert any("watchdog" in error for error in log_errors), log_errors


class TestPoisonTaskQuarantine:
    def test_reliably_stuck_task_becomes_a_dead_letter(self, tmp_path):
        """A task that hangs on *every* attempt burns its attempts via
        watchdog aborts and ends up quarantined with a per-attempt
        post-mortem — instead of blocking the sweep forever."""
        queue = TaskQueue(tmp_path / "queue.sqlite")
        queue.enqueue(
            [
                task_spec(
                    "t-stuck",
                    tmp_path / "cache",
                    max_attempts=2,
                    timeout_seconds=0.4,
                )
            ]
        )
        stall = threading.Event()  # never set: every attempt hangs;
        # the abandoned daemon threads die with the interpreter.
        stages = intercept_stage("topology", lambda: stall.wait(600))
        worker = Worker(
            queue,
            worker_id="w-stuck",
            lease_seconds=5.0,
            poll_interval=0.02,
            stages=stages,
        )
        processed = worker.run(max_tasks=2, exit_when_closed=False)

        assert processed == 2
        assert worker.watchdog_trips == 2
        task = queue.get("t-stuck")
        assert task.status == "dead"
        assert "watchdog" in task.error
        assert "still heartbeating" in task.error
        assert [entry["attempt"] for entry in task.attempts_log] == [1, 2]
        assert all("watchdog" in entry["error"] for entry in task.attempts_log)
        assert all(entry["owner"] == "w-stuck" for entry in task.attempts_log)

        letters = queue.dead_letters()
        assert [letter["task_id"] for letter in letters] == ["t-stuck"]
        assert letters[0]["attempts"] == 2
        assert len(letters[0]["attempts_log"]) == 2

    def test_task_timeout_beats_worker_default(self, tmp_path):
        """A task's own ``timeout_seconds`` overrides the worker-level
        default — and a worker default alone is enough to trip."""
        queue = TaskQueue(tmp_path / "queue.sqlite")
        queue.enqueue(
            [task_spec("t-default", tmp_path / "cache", max_attempts=1)]
        )
        stall = threading.Event()
        stages = intercept_stage("topology", lambda: stall.wait(600))
        worker = Worker(
            queue,
            worker_id="w-default",
            lease_seconds=5.0,
            poll_interval=0.02,
            stages=stages,
            task_timeout=0.3,  # no per-task timeout: this one applies
        )
        worker.run(max_tasks=1, exit_when_closed=False)
        assert worker.watchdog_trips == 1
        assert queue.get("t-default").status == "dead"


class TestHeartbeatFailureLimit:
    def test_persistent_heartbeat_failures_stand_the_worker_down(self, tmp_path):
        """A worker whose heartbeats keep *raising* must stop working
        after a full lease of silence — its lease has lapsed and the
        queue would reject the result anyway."""
        real = TaskQueue(tmp_path / "queue.sqlite")
        real.enqueue([task_spec("t-hb", tmp_path / "cache")])
        plan = FaultPlan(
            tuple(FaultSpec("heartbeat", call, "transient") for call in range(1, 20))
        )
        flaky = FaultInjectingQueue(real, plan)
        gate = threading.Event()  # never set: the attempt outlives the lease
        stages = intercept_stage("topology", lambda: gate.wait(600))
        worker = Worker(
            flaky,
            worker_id="w-hb",
            lease_seconds=0.45,
            poll_interval=0.02,
            stages=stages,
        )
        task = flaky.claim("w-hb", 0.45)
        assert task is not None

        started = time.monotonic()
        accepted = worker.process(task)
        elapsed = time.monotonic() - started

        assert accepted is False
        # Stood down after ~one lease of failed heartbeats — it did not
        # wait out the (much longer) stage stall.
        assert elapsed < 5.0
        assert flaky.injections()["transient"] >= 3
        row = real.get("t-hb")
        assert row.status == "running"  # abandoned; reclaimable on expiry
        assert row.result is None

    def test_single_heartbeat_hiccup_is_tolerated(self, tmp_path):
        """One failed heartbeat must not stand the worker down: the
        failure counter resets on the next success."""
        real = TaskQueue(tmp_path / "queue.sqlite")
        real.enqueue([task_spec("t-hic", tmp_path / "cache")])
        plan = FaultPlan((FaultSpec("heartbeat", 1, "transient"),))
        flaky = FaultInjectingQueue(real, plan)
        gate = threading.Event()
        stages = intercept_stage("topology", lambda: gate.wait(1.2) and None)
        worker = Worker(
            flaky,
            worker_id="w-hic",
            lease_seconds=0.9,
            poll_interval=0.02,
            stages=stages,
        )
        task = flaky.claim("w-hic", 0.9)
        assert worker.process(task)  # completed despite the hiccup
        assert real.get("t-hic").status == "done"


class TestGracefulDrain:
    def test_drain_finishes_current_task_and_claims_no_more(self, tmp_path):
        queue = TaskQueue(tmp_path / "queue.sqlite")
        queue.enqueue(
            [task_spec("t1", tmp_path / "cache"), task_spec("t2", tmp_path / "cache")]
        )
        started = threading.Event()
        gate = threading.Event()

        def before() -> None:
            started.set()
            gate.wait(30)

        worker = Worker(
            queue,
            worker_id="w-drain",
            lease_seconds=10.0,
            poll_interval=0.02,
            stages=intercept_stage("topology", before),
        )
        outcome = {}
        thread = threading.Thread(
            target=lambda: outcome.setdefault(
                "processed", worker.run(exit_when_closed=False)
            )
        )
        thread.start()
        assert started.wait(10.0)
        worker.request_drain()  # first request: finish, then stop
        gate.set()
        thread.join(timeout=30.0)
        assert not thread.is_alive()

        assert outcome["processed"] == 1
        assert queue.get("t1").status == "done"  # finished, not dropped
        assert queue.get("t2").status == "pending"  # never claimed

    def test_release_current_hands_the_task_back_with_attempt_refund(self, tmp_path):
        queue = TaskQueue(tmp_path / "queue.sqlite")
        queue.enqueue([task_spec("t1", tmp_path / "cache")])
        started = threading.Event()
        gate = threading.Event()  # never set: only release can end this

        def before() -> None:
            started.set()
            gate.wait(600)

        worker = Worker(
            queue,
            worker_id="w-release",
            lease_seconds=10.0,
            poll_interval=0.02,
            stages=intercept_stage("topology", before),
        )
        outcome = {}
        thread = threading.Thread(
            target=lambda: outcome.setdefault(
                "processed", worker.run(exit_when_closed=False)
            )
        )
        thread.start()
        assert started.wait(10.0)
        worker.request_drain(release_current=True)
        thread.join(timeout=30.0)
        assert not thread.is_alive()

        task = queue.get("t1")
        assert task.status == "pending"  # immediately reclaimable
        assert task.attempts == 0  # the attempt was refunded
        assert any(
            "released: graceful drain" in entry["error"]
            for entry in task.attempts_log
        )

    def test_cli_worker_sigterm_exits_zero(self, tmp_path):
        """``repro worker`` + SIGTERM: an idle worker drains and exits
        0; a worker with a task in flight finishes it first."""
        queue_dir = tmp_path / "queue"
        queue_dir.mkdir()
        queue = TaskQueue(queue_path(queue_dir))
        queue.enqueue([task_spec("t1", tmp_path / "cache")])

        source_root = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(source_root)
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker",
                "--queue-dir", str(queue_dir),
                "--worker-id", "sigterm-worker",
                "--lease-seconds", "30",
                "--poll-interval", "0.05",
                "--keep-alive",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                task = queue.get("t1")
                if task.status != "pending":
                    break
                time.sleep(0.05)
            assert queue.get("t1").status == "running"
            process.send_signal(signal.SIGTERM)
            stdout, _ = process.communicate(timeout=120.0)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()

        assert process.returncode == 0
        assert "SIGTERM: draining" in stdout
        assert "drained: 1 tasks processed" in stdout
        assert queue.get("t1").status == "done"  # finished, not abandoned
