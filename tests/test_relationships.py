"""Unit tests for the fundamental relationship types."""

import pytest

from repro.core.relationships import (
    AFI,
    DualStackRelationship,
    HybridType,
    Link,
    Relationship,
    RelationshipRecord,
    RelationshipSource,
    classify_hybrid,
    majority_relationship,
    orient_relationship,
)


class TestAFI:
    def test_other_flips(self):
        assert AFI.IPV4.other is AFI.IPV6
        assert AFI.IPV6.other is AFI.IPV4

    def test_str(self):
        assert str(AFI.IPV4) == "IPv4"
        assert str(AFI.IPV6) == "IPv6"


class TestRelationship:
    def test_inverse_of_transit(self):
        assert Relationship.P2C.inverse is Relationship.C2P
        assert Relationship.C2P.inverse is Relationship.P2C

    def test_inverse_of_symmetric(self):
        assert Relationship.P2P.inverse is Relationship.P2P
        assert Relationship.SIBLING.inverse is Relationship.SIBLING
        assert Relationship.UNKNOWN.inverse is Relationship.UNKNOWN

    def test_is_transit(self):
        assert Relationship.P2C.is_transit
        assert Relationship.C2P.is_transit
        assert not Relationship.P2P.is_transit
        assert not Relationship.UNKNOWN.is_transit

    def test_is_peering(self):
        assert Relationship.P2P.is_peering
        assert not Relationship.P2C.is_peering

    def test_is_known(self):
        assert Relationship.P2C.is_known
        assert not Relationship.UNKNOWN.is_known


class TestLink:
    def test_canonical_ordering(self):
        assert Link(5, 3) == Link(3, 5)
        assert Link(5, 3).a == 3
        assert Link(5, 3).b == 5

    def test_hashable_and_equal(self):
        assert hash(Link(1, 2)) == hash(Link(2, 1))
        assert len({Link(1, 2), Link(2, 1)}) == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Link(7, 7)

    def test_negative_asn_rejected(self):
        with pytest.raises(ValueError):
            Link(-1, 2)

    def test_other_endpoint(self):
        link = Link(10, 20)
        assert link.other(10) == 20
        assert link.other(20) == 10
        with pytest.raises(ValueError):
            link.other(30)

    def test_contains(self):
        assert Link(1, 2).contains(1)
        assert not Link(1, 2).contains(3)

    def test_oriented(self):
        assert Link(1, 2).oriented(2) == (2, 1)
        with pytest.raises(ValueError):
            Link(1, 2).oriented(3)

    def test_relationship_from_either_side(self):
        link = Link(1, 2)
        assert link.relationship_from(1, Relationship.P2C) is Relationship.P2C
        assert link.relationship_from(2, Relationship.P2C) is Relationship.C2P

    def test_ordering_is_total(self):
        assert sorted([Link(3, 4), Link(1, 9), Link(1, 2)]) == [
            Link(1, 2),
            Link(1, 9),
            Link(3, 4),
        ]


class TestOrientRelationship:
    def test_already_canonical(self):
        assert orient_relationship(1, 2, Relationship.P2C) is Relationship.P2C

    def test_reversed_pair_inverts(self):
        assert orient_relationship(3, 1, Relationship.P2C) is Relationship.C2P

    def test_symmetric_unchanged(self):
        assert orient_relationship(3, 1, Relationship.P2P) is Relationship.P2P

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            orient_relationship(1, 1, Relationship.P2P)


class TestHybridClassification:
    def test_not_hybrid_when_equal(self):
        assert classify_hybrid(Relationship.P2P, Relationship.P2P) is HybridType.NOT_HYBRID
        assert classify_hybrid(Relationship.P2C, Relationship.P2C) is HybridType.NOT_HYBRID

    def test_peer4_transit6(self):
        assert classify_hybrid(Relationship.P2P, Relationship.P2C) is HybridType.PEER4_TRANSIT6
        assert classify_hybrid(Relationship.P2P, Relationship.C2P) is HybridType.PEER4_TRANSIT6

    def test_peer6_transit4(self):
        assert classify_hybrid(Relationship.P2C, Relationship.P2P) is HybridType.PEER6_TRANSIT4
        assert classify_hybrid(Relationship.C2P, Relationship.P2P) is HybridType.PEER6_TRANSIT4

    def test_transit_reversed(self):
        assert (
            classify_hybrid(Relationship.P2C, Relationship.C2P)
            is HybridType.TRANSIT_REVERSED
        )

    def test_sibling_mismatch_is_other(self):
        assert classify_hybrid(Relationship.SIBLING, Relationship.P2P) is HybridType.OTHER

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            classify_hybrid(Relationship.UNKNOWN, Relationship.P2P)

    def test_is_hybrid_flag(self):
        assert HybridType.PEER4_TRANSIT6.is_hybrid
        assert not HybridType.NOT_HYBRID.is_hybrid


class TestRelationshipRecord:
    def test_confidence_bounds(self):
        with pytest.raises(ValueError):
            RelationshipRecord(
                link=Link(1, 2),
                afi=AFI.IPV6,
                relationship=Relationship.P2P,
                source=RelationshipSource.COMMUNITIES,
                confidence=1.5,
            )

    def test_as_seen_from(self):
        record = RelationshipRecord(
            link=Link(1, 2),
            afi=AFI.IPV6,
            relationship=Relationship.P2C,
            source=RelationshipSource.GROUND_TRUTH,
        )
        assert record.as_seen_from(1) is Relationship.P2C
        assert record.as_seen_from(2) is Relationship.C2P


class TestDualStackRelationship:
    def test_defaults_unknown(self):
        record = DualStackRelationship(link=Link(1, 2))
        assert not record.both_known
        assert not record.is_hybrid

    def test_set_and_get_per_afi(self):
        record = DualStackRelationship(link=Link(1, 2))
        record.set_relationship(AFI.IPV4, Relationship.P2P)
        record.set_relationship(AFI.IPV6, Relationship.P2C)
        assert record.relationship(AFI.IPV4) is Relationship.P2P
        assert record.relationship(AFI.IPV6) is Relationship.P2C
        assert record.is_hybrid
        assert record.hybrid_type is HybridType.PEER4_TRANSIT6


class TestMajorityRelationship:
    def test_simple_majority(self):
        votes = [Relationship.P2C, Relationship.P2C, Relationship.P2P]
        assert majority_relationship(votes, min_agreement=0.6) is Relationship.P2C

    def test_tie_returns_none(self):
        votes = [Relationship.P2C, Relationship.P2P]
        assert majority_relationship(votes) is None

    def test_unknown_votes_ignored(self):
        votes = [Relationship.UNKNOWN, Relationship.P2P]
        assert majority_relationship(votes) is Relationship.P2P

    def test_min_votes_enforced(self):
        assert majority_relationship([Relationship.P2P], min_votes=2) is None

    def test_below_agreement_threshold_returns_none(self):
        votes = [Relationship.P2C] * 3 + [Relationship.P2P] * 2
        assert majority_relationship(votes, min_agreement=0.9) is None

    def test_empty_returns_none(self):
        assert majority_relationship([]) is None
