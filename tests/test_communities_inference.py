"""Unit tests for the communities-based relationship inference."""

import pytest

from repro.bgp.attributes import Community
from repro.bgp.prefixes import Prefix
from repro.core.communities_inference import CommunitiesInference
from repro.core.observations import ObservedRoute
from repro.core.relationships import AFI, Link, Relationship
from repro.irr.dictionary import CommunityDictionary
from repro.irr.registry import IRRRegistry

V6 = Prefix("3fff:1::/32")
V4 = Prefix("10.1.0.0/20")


@pytest.fixture()
def registry():
    """AS 100 and AS 200 document their communities; AS 300 does not."""
    registry = IRRRegistry()
    for asn in (100, 200):
        dictionary = CommunityDictionary(asn)
        dictionary.add_relationship(10, Relationship.P2C, "routes learned from customers")
        dictionary.add_relationship(20, Relationship.P2P, "routes learned from peers")
        dictionary.add_relationship(30, Relationship.C2P, "routes from upstream providers")
        dictionary.add_traffic_engineering(666, "lower-pref")
        registry.register(dictionary)
    return registry


def observe(path, communities, prefix=V6, local_pref=None):
    return ObservedRoute(
        path=tuple(path),
        prefix=prefix,
        vantage=path[0],
        communities=tuple(communities),
        local_pref=local_pref,
    )


class TestVoteExtraction:
    def test_vote_links_tagger_to_next_hop(self, registry):
        inference = CommunitiesInference(registry)
        route = observe([100, 200, 300], [Community(100, 30)])
        votes = inference.votes_for_route(route)
        assert len(votes) == 1
        vote = votes[0]
        assert vote.link == Link(100, 200)
        # AS100 learned from AS200 over a c2p (provider) relationship;
        # canonical orientation (100 < 200) keeps it as C2P.
        assert vote.relationship is Relationship.C2P
        assert vote.tagger == 100

    def test_vote_orientation_flips_for_larger_tagger(self, registry):
        inference = CommunitiesInference(registry)
        route = observe([200, 100, 50], [Community(200, 10)])
        votes = inference.votes_for_route(route)
        assert votes[0].link == Link(100, 200)
        # AS200 says "learned from customer AS100": from 200's view P2C,
        # canonically (from AS100) C2P.
        assert votes[0].relationship is Relationship.C2P

    def test_mid_path_tagger_produces_vote(self, registry):
        inference = CommunitiesInference(registry)
        route = observe([300, 200, 150], [Community(200, 20)])
        votes = inference.votes_for_route(route)
        assert votes[0].link == Link(200, 150)
        assert votes[0].relationship is Relationship.P2P

    def test_origin_tagger_ignored(self, registry):
        inference = CommunitiesInference(registry)
        route = observe([300, 200], [Community(200, 10)])
        # AS200 is the origin: there is no "next hop towards the origin".
        assert inference.votes_for_route(route) == []

    def test_off_path_and_undocumented_communities_ignored(self, registry):
        inference = CommunitiesInference(registry)
        route = observe(
            [100, 200, 300],
            [Community(999, 10), Community(300, 10), Community(100, 666)],
        )
        # 999 is not on the path, 300 is undocumented, 666 is TE.
        assert inference.votes_for_route(route) == []


class TestAggregation:
    def test_majority_aggregation(self, registry):
        inference = CommunitiesInference(registry, min_agreement=0.6)
        observations = [
            observe([100, 200, 300], [Community(100, 30)]),
            observe([100, 200, 301], [Community(100, 30)]),
            observe([100, 200, 302], [Community(100, 20)]),  # minority vote
        ]
        result = inference.infer(observations)
        assert result.annotation(AFI.IPV6).get(100, 200) is Relationship.C2P

    def test_conflicting_votes_left_unannotated(self, registry):
        inference = CommunitiesInference(registry, min_agreement=0.75)
        observations = [
            observe([100, 200, 300], [Community(100, 30)]),
            observe([100, 200, 301], [Community(100, 20)]),
        ]
        result = inference.infer(observations)
        assert result.annotation(AFI.IPV6).get(100, 200) is Relationship.UNKNOWN
        assert Link(100, 200) in result.conflicting_links[AFI.IPV6]

    def test_per_afi_separation(self, registry):
        """The same link may be p2p in IPv4 and transit in IPv6 — the
        inference must keep the planes separate (this is what makes hybrid
        detection possible at all)."""
        inference = CommunitiesInference(registry)
        observations = [
            observe([100, 200, 300], [Community(100, 20)], prefix=V4),
            observe([100, 200, 300], [Community(100, 30)], prefix=V6),
        ]
        result = inference.infer(observations)
        assert result.annotation(AFI.IPV4).get(100, 200) is Relationship.P2P
        assert result.annotation(AFI.IPV6).get(100, 200) is Relationship.C2P

    def test_both_endpoints_tagging_agree(self, registry):
        inference = CommunitiesInference(registry)
        observations = [
            # Seen from AS100's side: learned from provider AS200.
            observe([100, 200, 300], [Community(100, 30)]),
            # Seen from AS200's side: learned from customer AS100.
            observe([200, 100, 50], [Community(200, 10)]),
        ]
        result = inference.infer(observations)
        assert result.annotation(AFI.IPV6).get(100, 200) is Relationship.C2P
        assert len(result.votes[(Link(100, 200), AFI.IPV6)]) == 2

    def test_coverage_computation(self, registry):
        inference = CommunitiesInference(registry)
        observations = [observe([100, 200, 300], [Community(100, 30)])]
        result = inference.infer(observations)
        links = [Link(100, 200), Link(200, 300)]
        assert result.coverage(AFI.IPV6, links) == pytest.approx(0.5)
        assert result.coverage(AFI.IPV6, []) == 0.0

    def test_parameter_validation(self, registry):
        with pytest.raises(ValueError):
            CommunitiesInference(registry, min_votes=0)
        with pytest.raises(ValueError):
            CommunitiesInference(registry, min_agreement=0.0)

    def test_records_export(self, registry):
        inference = CommunitiesInference(registry)
        result = inference.infer([observe([100, 200, 300], [Community(100, 30)])])
        records = result.records()
        assert len(records) == 1
        assert records[0].afi is AFI.IPV6
