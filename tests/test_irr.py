"""Unit tests for the IRR substrate: dictionaries, parser, registry."""

import pytest

from repro.bgp.attributes import Community
from repro.core.relationships import Relationship
from repro.irr.dictionary import (
    CommunityDictionary,
    CommunityMeaning,
    MeaningKind,
    build_standard_dictionary,
)
from repro.irr.parser import (
    DocumentationParseError,
    classify_description,
    dictionary_from_documentation,
    parse_documentation,
    parse_documentation_line,
    render_documentation,
)
from repro.irr.registry import IRRRegistry, build_registry


class TestCommunityMeaning:
    def test_relationship_meaning_requires_relationship(self):
        with pytest.raises(ValueError):
            CommunityMeaning(community=Community(1, 2), kind=MeaningKind.RELATIONSHIP)

    def test_te_meaning_requires_action(self):
        with pytest.raises(ValueError):
            CommunityMeaning(
                community=Community(1, 2), kind=MeaningKind.TRAFFIC_ENGINEERING
            )


class TestCommunityDictionary:
    def test_add_rejects_foreign_community(self):
        dictionary = CommunityDictionary(100)
        with pytest.raises(ValueError):
            dictionary.add(
                CommunityMeaning(
                    community=Community(200, 1),
                    kind=MeaningKind.INFORMATIONAL,
                    description="not mine",
                )
            )

    def test_relationship_lookup(self):
        dictionary = CommunityDictionary(100)
        dictionary.add_relationship(10, Relationship.P2C)
        dictionary.add_traffic_engineering(666, "blackhole")
        assert dictionary.relationship_for(Community(100, 10)) is Relationship.P2C
        assert dictionary.relationship_for(Community(100, 666)) is None
        assert dictionary.relationship_for(Community(100, 999)) is None

    def test_traffic_engineering_lookup(self):
        dictionary = CommunityDictionary(100)
        dictionary.add_traffic_engineering(666, "lower-pref")
        assert dictionary.is_traffic_engineering(Community(100, 666))
        assert not dictionary.is_traffic_engineering(Community(100, 1))

    def test_tagger_protocol(self):
        dictionary = CommunityDictionary(100)
        dictionary.add_relationship(10, Relationship.P2C)
        dictionary.add_relationship(20, Relationship.P2P)
        dictionary.add_traffic_engineering(901, "prepend-1")
        assert dictionary.relationship_communities(Relationship.P2P) == [Community(100, 20)]
        assert dictionary.relationship_communities(Relationship.C2P) == []
        assert dictionary.traffic_engineering_communities("prepend-1") == [Community(100, 901)]

    def test_membership_and_len(self):
        dictionary = CommunityDictionary(100)
        dictionary.add_informational(500, "PoP Amsterdam")
        assert Community(100, 500) in dictionary
        assert len(dictionary) == 1

    def test_build_standard_dictionary_styles(self):
        d0 = build_standard_dictionary(64500, style=0)
        d1 = build_standard_dictionary(64500, style=1)
        assert d0.relationship_communities(Relationship.P2C) != d1.relationship_communities(
            Relationship.P2C
        )
        with pytest.raises(ValueError):
            build_standard_dictionary(64500, style=99)

    def test_build_standard_dictionary_deterministic_without_style(self):
        assert (
            build_standard_dictionary(64501).meanings()
            == build_standard_dictionary(64501).meanings()
        )


class TestParser:
    def test_parse_relationship_lines(self):
        cases = {
            "65010:100  Routes learned from customers": Relationship.P2C,
            "65010:200  routes received via peering partners": Relationship.P2P,
            "65010:300  Routes from upstream providers": Relationship.C2P,
            "remarks: 65010:400 routes of sibling ASes": Relationship.SIBLING,
        }
        for line, expected in cases.items():
            meaning = parse_documentation_line(line)
            assert meaning.kind is MeaningKind.RELATIONSHIP, line
            assert meaning.relationship is expected, line

    def test_parse_traffic_engineering_lines(self):
        cases = {
            "65010:901 Prepend 65010 once towards the tagged peer": "prepend-1",
            "65010:902 prepend twice": "prepend-2",
            "65010:903 prepending 3 times": "prepend-3",
            "65010:666 Blackhole traffic for this prefix": "blackhole",
            "65010:70  set local-preference to 70 (backup)": "lower-pref",
            "65010:80  Do not announce to peers": "no-export-peers",
        }
        for line, action in cases.items():
            meaning = parse_documentation_line(line)
            assert meaning.kind is MeaningKind.TRAFFIC_ENGINEERING, line
            assert meaning.action == action, line

    def test_te_takes_precedence_over_relationship_vocabulary(self):
        meaning = parse_documentation_line("65010:80 do not export to upstream providers")
        assert meaning.kind is MeaningKind.TRAFFIC_ENGINEERING
        assert meaning.action == "no-export-upstreams"

    def test_informational_fallback(self):
        meaning = parse_documentation_line("65010:5000 Announced at AMS-IX")
        assert meaning.kind is MeaningKind.INFORMATIONAL

    def test_empty_and_comment_lines(self):
        assert parse_documentation_line("") is None
        assert parse_documentation_line("# communities of AS65010") is None

    def test_missing_community_raises(self):
        with pytest.raises(DocumentationParseError):
            parse_documentation_line("routes learned from customers")

    def test_parse_documentation_filters_foreign_asn(self):
        lines = [
            "65010:100 routes learned from customers",
            "65999:100 routes learned from customers",
        ]
        meanings = parse_documentation(lines, expected_asn=65010)
        assert len(meanings) == 1
        assert meanings[0].community.asn == 65010

    def test_classify_description_directly(self):
        kind, relationship, action = classify_description("routes learned from a customer")
        assert kind is MeaningKind.RELATIONSHIP
        assert relationship is Relationship.P2C
        assert action is None

    def test_render_round_trip(self):
        dictionary = build_standard_dictionary(65020, style=2)
        lines = render_documentation(dictionary)
        rebuilt = dictionary_from_documentation(65020, lines)
        for meaning in dictionary.meanings():
            restored = rebuilt.meaning_of(meaning.community)
            assert restored is not None
            assert restored.kind is meaning.kind
            assert restored.relationship is meaning.relationship


class TestRegistry:
    def test_lookup_and_membership(self):
        registry = IRRRegistry()
        dictionary = CommunityDictionary(100)
        dictionary.add_relationship(10, Relationship.P2P)
        dictionary.add_traffic_engineering(666, "lower-pref")
        registry.register(dictionary)
        assert 100 in registry
        assert len(registry) == 1
        assert registry.relationship_for(Community(100, 10)) is Relationship.P2P
        assert registry.relationship_for(Community(100, 666)) is None
        assert registry.relationship_for(Community(999, 10)) is None
        assert registry.is_traffic_engineering(Community(100, 666))
        assert not registry.is_traffic_engineering(Community(999, 666))

    def test_register_documentation(self):
        registry = IRRRegistry()
        registry.register_documentation(
            65010, ["65010:100 routes learned from customers"]
        )
        assert registry.relationship_for(Community(65010, 100)) is Relationship.P2C

    def test_documentation_corpus_round_trip(self):
        registry = build_registry(range(1, 20), documented_fraction=1.0, seed=3)
        corpus = registry.documentation_corpus()
        assert set(corpus) == set(registry.documented_ases)
        rebuilt = IRRRegistry()
        for asn, lines in corpus.items():
            rebuilt.register_documentation(asn, lines)
        for dictionary in registry:
            for meaning in dictionary.meanings():
                if meaning.kind is MeaningKind.RELATIONSHIP:
                    assert (
                        rebuilt.relationship_for(meaning.community)
                        is meaning.relationship
                    )

    def test_build_registry_fraction(self):
        full = build_registry(range(100), documented_fraction=1.0, seed=1)
        none = build_registry(range(100), documented_fraction=0.0, seed=1)
        half = build_registry(range(100), documented_fraction=0.5, seed=1)
        assert len(full) == 100
        assert len(none) == 0
        assert 25 <= len(half) <= 75

    def test_build_registry_validation(self):
        with pytest.raises(ValueError):
            build_registry([1, 2], documented_fraction=1.2)

    def test_stats(self):
        registry = build_registry(range(10), documented_fraction=1.0, seed=0)
        stats = registry.stats()
        assert stats["documented_ases"] == 10
        assert stats["relationship_communities"] == 30
        assert stats["traffic_engineering_communities"] == 20
