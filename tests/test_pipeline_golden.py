"""Golden-equivalence suite for the staged pipeline.

The staged pipeline (:mod:`repro.pipeline`) must be indistinguishable
from the frozen monolithic builder
(:func:`repro.datasets.reference.reference_build_snapshot`) — same
observations, same archive bytes, same ground truth, same Section-3
report — on two seeds, cold *and* through a warm artifact cache.
"""

from __future__ import annotations

import pytest

from repro.analysis.stats import compute_section3
from repro.collectors.mrt import write_table_dump
from repro.core.relationships import AFI
from repro.datasets import DatasetConfig, build_snapshot
from repro.datasets.reference import reference_build_snapshot
from repro.pipeline import PipelineConfig, run_pipeline, section3_artifacts
from repro.topology.generator import TopologyConfig

GOLDEN_SEEDS = (3, 11)


def golden_config(seed: int) -> DatasetConfig:
    return DatasetConfig(
        topology=TopologyConfig(
            seed=seed,
            tier1_count=4,
            tier2_count=14,
            tier3_count=45,
        ),
        seed=seed,
        vantage_points=8,
    )


def _assert_snapshots_identical(staged, monolith):
    assert staged.observations == monolith.observations
    assert staged.archive.snapshots() == monolith.archive.snapshots()
    for key in staged.archive.snapshots():
        assert write_table_dump(staged.archive._snapshots[key]) == write_table_dump(
            monolith.archive._snapshots[key]
        ), key
    for collector in staged.archive.collectors:
        assert staged.archive.project_of(collector) == monolith.archive.project_of(
            collector
        )
    assert staged.relaxed_adjacencies == monolith.relaxed_adjacencies
    assert staged.dispute_links == monolith.dispute_links
    assert staged.true_hybrid_links == monolith.true_hybrid_links
    assert staged.extraction.stats == monolith.extraction.stats
    for afi in (AFI.IPV4, AFI.IPV6):
        assert (
            staged.ground_truth[afi].records() == monolith.ground_truth[afi].records()
        )
        assert (
            staged.propagation[afi].reachable_counts
            == monolith.propagation[afi].reachable_counts
        )
    assert sorted(staged.registry.documented_ases) == sorted(
        monolith.registry.documented_ases
    )
    assert staged.registry.documentation_corpus() == monolith.registry.documentation_corpus()


class TestStagedEqualsMonolith:
    @pytest.mark.parametrize("seed", GOLDEN_SEEDS)
    def test_snapshot_bit_identical(self, seed):
        staged = build_snapshot(golden_config(seed))
        monolith = reference_build_snapshot(golden_config(seed))
        _assert_snapshots_identical(staged, monolith)

    @pytest.mark.parametrize("seed", GOLDEN_SEEDS)
    def test_section3_report_identical(self, seed):
        staged = build_snapshot(golden_config(seed))
        monolith = reference_build_snapshot(golden_config(seed))
        staged_report = compute_section3(staged.store, staged.registry).report
        monolith_report = compute_section3(monolith.store, monolith.registry).report
        assert staged_report.as_dict() == monolith_report.as_dict()

    @pytest.mark.parametrize("seed", GOLDEN_SEEDS)
    def test_legacy_list_path_identical_to_store_path(self, seed):
        snapshot = build_snapshot(golden_config(seed))
        from_store = compute_section3(snapshot.store, snapshot.registry)
        from_list = compute_section3(list(snapshot.observations), snapshot.registry)
        assert from_store.report.as_dict() == from_list.report.as_dict()


class TestCachedEqualsCold:
    @pytest.mark.parametrize("seed", GOLDEN_SEEDS)
    def test_warm_cache_results_identical(self, seed, tmp_path):
        config = PipelineConfig(dataset=golden_config(seed), top=5, max_sources=20)
        targets = ("snapshot", "section3", "correction")
        cold = run_pipeline(config, cache_dir=tmp_path, targets=targets)
        warm = run_pipeline(config, cache_dir=tmp_path, targets=targets)
        assert warm.computed_stages() == ["snapshot"]  # assembly is never cached
        monolith = reference_build_snapshot(golden_config(seed))
        _assert_snapshots_identical(warm.value("snapshot"), monolith)
        assert (
            warm.value("section3").as_dict()
            == compute_section3(monolith.store, monolith.registry).report.as_dict()
        )
        assert warm.value("correction").averages == cold.value("correction").averages
        assert warm.value("correction").diameters == cold.value("correction").diameters

    def test_section3_artifacts_facade_matches_compute_section3(self, tmp_path):
        config = PipelineConfig(dataset=golden_config(3))
        run = run_pipeline(config, cache_dir=tmp_path, targets=("section3",))
        facade = section3_artifacts(run)
        snapshot = build_snapshot(golden_config(3))
        direct = compute_section3(snapshot.store, snapshot.registry)
        assert facade.report.as_dict() == direct.report.as_dict()
        assert facade.hybrid.hybrid_link_set() == direct.hybrid.hybrid_link_set()
        assert facade.inventory.summary() == direct.inventory.summary()
