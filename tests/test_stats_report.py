"""Unit tests for the Section-3 report object and its rendering."""

import pytest

from repro.analysis.report import format_table, to_json
from repro.analysis.stats import Section3Report, compute_section3
from repro.core.relationships import AFI


class TestSection3Report:
    def test_rows_cover_every_paper_statistic(self):
        report = Section3Report(
            ipv6_paths=100,
            ipv6_links=50,
            dual_stack_links=40,
            ipv6_links_with_relationship=36,
            ipv6_coverage=0.72,
            dual_stack_links_with_relationship=32,
            dual_stack_coverage=0.81,
            hybrid_links=5,
            hybrid_fraction=0.13,
            hybrid_share_peer4_transit6=0.67,
            valley_paths=13,
            valley_fraction=0.13,
            reachability_valley_paths=2,
            reachability_valley_fraction=0.16,
        )
        rows = dict(report.rows())
        assert rows["IPv6 AS paths"] == "100"
        assert "72%" in rows["IPv6 links with relationship"]
        assert "81%" in rows["dual-stack links with relationship"]
        assert "13%" in rows["hybrid links"]
        assert "67%" in rows["hybrid: p2p IPv4 / transit IPv6"]
        assert "16%" in rows["valley paths needed for reachability"]
        # The rows render into a table without error.
        assert "IPv6 AS paths" in format_table(report.rows())

    def test_as_dict_is_json_serializable(self):
        report = Section3Report(ipv6_paths=10, hybrid_fraction=0.5)
        text = to_json(report.as_dict())
        assert '"ipv6_paths": 10' in text

    def test_empty_report_defaults(self):
        report = Section3Report()
        assert report.ipv6_coverage == 0.0
        assert report.hybrid_fraction == 0.0
        assert len(report.rows()) == 12


class TestComputeSection3Artifacts:
    def test_artifacts_are_consistent(self, snapshot):
        artifacts = compute_section3(snapshot.observations, snapshot.registry)
        report = artifacts.report
        # The report's counts agree with the underlying artifacts.
        assert report.ipv6_links == len(artifacts.inventory.ipv6_links)
        assert report.dual_stack_links == len(artifacts.inventory.dual_stack_links)
        assert report.hybrid_links == len(artifacts.hybrid.hybrid_links)
        assert report.valley_paths == artifacts.valley.valley_count
        assert report.ipv6_paths == artifacts.visibility.path_count
        # Coverage counts never exceed the denominators.
        assert report.ipv6_links_with_relationship <= report.ipv6_links
        assert report.dual_stack_links_with_relationship <= report.dual_stack_links
        # Fractions are consistent with the counts.
        if report.ipv6_links:
            assert report.ipv6_coverage == pytest.approx(
                report.ipv6_links_with_relationship / report.ipv6_links
            )
        if report.valley_paths:
            assert report.reachability_valley_fraction == pytest.approx(
                report.reachability_valley_paths / report.valley_paths
            )

    def test_ipv6_only_observations(self, snapshot):
        """The pipeline degrades gracefully when only IPv6 data is supplied."""
        artifacts = compute_section3(
            snapshot.observations_for(AFI.IPV6), snapshot.registry
        )
        assert artifacts.report.ipv4_links == 0
        assert artifacts.report.dual_stack_links == 0
        assert artifacts.report.hybrid_links == 0
        assert artifacts.report.ipv6_paths > 0
