"""Unit tests for prefixes and BGP path attributes."""

import pytest

from repro.bgp.attributes import ASPath, Community, Origin, PathAttributes
from repro.bgp.prefixes import Prefix, PrefixAllocator, group_by_afi
from repro.core.relationships import AFI


class TestPrefix:
    def test_afi_detection(self):
        assert Prefix("10.0.0.0/24").afi is AFI.IPV4
        assert Prefix("2001:db8::/32").afi is AFI.IPV6

    def test_normalisation_and_equality(self):
        assert Prefix("10.0.0.0/24") == Prefix("10.0.0.0/24")
        assert Prefix("2001:db8:0::/32") == Prefix("2001:db8::/32")

    def test_invalid_prefix_rejected(self):
        with pytest.raises(ValueError):
            Prefix("10.0.0.1/24")  # host bits set
        with pytest.raises(ValueError):
            Prefix("not-a-prefix")

    def test_length(self):
        assert Prefix("10.0.0.0/20").length == 20

    def test_contains(self):
        parent = Prefix("10.0.0.0/16")
        child = Prefix("10.0.4.0/24")
        assert parent.contains(child)
        assert not child.contains(parent)
        assert not parent.contains(Prefix("2001:db8::/32"))

    def test_ordering_is_stable(self):
        prefixes = [Prefix("10.0.1.0/24"), Prefix("10.0.0.0/24")]
        assert sorted(prefixes)[0] == Prefix("10.0.0.0/24")


class TestPrefixAllocator:
    def test_deterministic(self):
        assert PrefixAllocator().ipv4_prefix(42) == PrefixAllocator().ipv4_prefix(42)
        assert PrefixAllocator().ipv6_prefix(42) == PrefixAllocator().ipv6_prefix(42)

    def test_distinct_per_asn(self):
        allocator = PrefixAllocator()
        prefixes = {allocator.ipv4_prefix(asn) for asn in range(1, 200)}
        assert len(prefixes) == 199
        prefixes6 = {allocator.ipv6_prefix(asn) for asn in range(1, 200)}
        assert len(prefixes6) == 199

    def test_afi_dispatch(self):
        allocator = PrefixAllocator()
        assert allocator.prefix(7, AFI.IPV4).afi is AFI.IPV4
        assert allocator.prefix(7, AFI.IPV6).afi is AFI.IPV6

    def test_prefixes_for_many(self):
        allocator = PrefixAllocator()
        mapping = allocator.prefixes_for([1, 2, 3], AFI.IPV6)
        assert set(mapping) == {1, 2, 3}
        assert all(p.afi is AFI.IPV6 for p in mapping.values())

    def test_group_by_afi(self):
        allocator = PrefixAllocator()
        groups = group_by_afi([allocator.ipv4_prefix(1), allocator.ipv6_prefix(1)])
        assert len(groups[AFI.IPV4]) == 1
        assert len(groups[AFI.IPV6]) == 1


class TestCommunity:
    def test_parse_and_str_round_trip(self):
        community = Community.parse("64500:120")
        assert community == Community(64500, 120)
        assert str(community) == "64500:120"

    def test_parse_invalid(self):
        with pytest.raises(ValueError):
            Community.parse("64500")
        with pytest.raises(ValueError):
            Community.parse("a:b")

    def test_value_bounds(self):
        with pytest.raises(ValueError):
            Community(64500, 70000)
        with pytest.raises(ValueError):
            Community(-1, 1)


class TestASPath:
    def test_basic_properties(self):
        path = ASPath([10, 20, 30])
        assert path.first_as == 10
        assert path.origin_as == 30
        assert len(path) == 3
        assert list(path) == [10, 20, 30]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ASPath([])

    def test_collapse_prepending(self):
        path = ASPath([10, 20, 20, 20, 30])
        assert path.has_prepending
        assert path.collapsed() == (10, 20, 30)
        assert not path.has_loop

    def test_loop_detection(self):
        assert ASPath([10, 20, 10]).has_loop
        assert not ASPath([10, 20, 30]).has_loop

    def test_links(self):
        assert ASPath([10, 20, 20, 30]).links() == [(10, 20), (20, 30)]

    def test_prepend(self):
        path = ASPath([20, 30]).prepend(10, times=2)
        assert path.hops == (10, 10, 20, 30)
        with pytest.raises(ValueError):
            ASPath([1]).prepend(2, times=0)

    def test_parse_plain(self):
        assert ASPath.parse("10 20 30").hops == (10, 20, 30)

    def test_parse_drops_as_set(self):
        assert ASPath.parse("10 20 {30,40}").hops == (10, 20)

    def test_parse_empty_raises(self):
        with pytest.raises(ValueError):
            ASPath.parse("   ")
        with pytest.raises(ValueError):
            ASPath.parse("{1,2}")

    def test_equality_and_hash(self):
        assert ASPath([1, 2]) == ASPath([1, 2])
        assert hash(ASPath([1, 2])) == hash(ASPath([1, 2]))
        assert ASPath([1, 2]) != ASPath([2, 1])


class TestPathAttributes:
    def test_add_communities_deduplicates(self):
        attributes = PathAttributes(as_path=ASPath([1]), communities=(Community(1, 2),))
        updated = attributes.add_communities([Community(1, 2), Community(3, 4)])
        assert updated.communities == (Community(1, 2), Community(3, 4))
        # Original is unchanged (immutability by convention).
        assert attributes.communities == (Community(1, 2),)

    def test_with_communities_replaces(self):
        attributes = PathAttributes(as_path=ASPath([1]), communities=(Community(1, 2),))
        updated = attributes.with_communities([Community(9, 9)])
        assert updated.communities == (Community(9, 9),)

    def test_communities_of(self):
        attributes = PathAttributes(
            as_path=ASPath([1]),
            communities=(Community(1, 2), Community(3, 4), Community(1, 5)),
        )
        assert attributes.communities_of(1) == [Community(1, 2), Community(1, 5)]
        assert attributes.communities_of(7) == []

    def test_origin_enum(self):
        assert Origin("IGP") is Origin.IGP
        assert str(Origin.INCOMPLETE) == "INCOMPLETE"
