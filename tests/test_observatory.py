"""The performance observatory: profiling hooks, live monitor, bench gate.

Acceptance criteria under test:

* profiling is off by default and provably free — a run with profiling
  available-but-off is byte-identical and fingerprint-identical to an
  untraced one; with it on, every propagation stage span gets at least
  one named hot function attributed,
* profile records land in ``profile*.jsonl`` beside the trace, never
  inside it, so trace readers and the CI trace smoke are unaffected,
* the monitor snapshot embeds ``TaskQueue.status_report`` verbatim
  (``repro top`` can never disagree with ``repro queue status``), and
  the verdict machine covers empty/active/drained/stalled/degraded,
* ``/metrics`` is valid Prometheus text exposition and ``/health``
  speaks 200/503,
* the history ledger records commit+host-keyed entries and
  ``repro bench compare`` fails on an injected ≥20% slowdown, skips
  cross-host comparisons, and passes a clean self-comparison,
* ``analyze`` survives adversarial traces: deep nesting, error spans,
  a torn final line from a concurrent writer,
* worker log lines carry the greppable ``run/worker/task`` prefix.
"""

from __future__ import annotations

import json
import pickle
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.cli import main
from repro.cluster.queue import TaskQueue, TaskSpec
from repro.cluster.worker import Worker
from repro.pipeline import PipelineConfig, run_pipeline
from repro.telemetry import (
    PROFILED_SPANS,
    ProfilingConfig,
    TelemetryConfig,
    Tracer,
    parse_jsonl,
    profile_rollup,
    read_profiles,
    read_trace,
    render_tree,
    summarize,
)
from repro.telemetry.history import (
    baseline,
    compare,
    extract_metrics,
    git_info,
    host_key,
    load_entries,
    record,
)
from repro.telemetry.monitor import (
    MonitorServer,
    prometheus_metrics,
    render_snapshot,
    snapshot,
    verdict,
)
from tests.test_telemetry import tiny_base


# ----------------------------------------------------------------------
# profiling hooks
# ----------------------------------------------------------------------
class TestProfilingHooks:
    def _profiled_run(self, tmp_path: Path, seed: int = 5):
        trace_dir = tmp_path / "trace"
        import dataclasses

        config = dataclasses.replace(
            tiny_base(seed),
            telemetry=TelemetryConfig(
                trace_dir=str(trace_dir), profiling=ProfilingConfig()
            ),
        )
        run = run_pipeline(config, targets=("section3",))
        return trace_dir, run

    def test_profiled_run_emits_profile_records_beside_trace(self, tmp_path):
        trace_dir, _ = self._profiled_run(tmp_path)
        assert (trace_dir / "profile.jsonl").exists()
        records = read_profiles(trace_dir)
        assert records and all(r["kind"] == "profile" for r in records)
        assert all(r["schema_version"] == 1 for r in records)
        # Profile records never leak into the trace files.
        assert all(r.get("kind") != "profile" for r in read_trace(trace_dir))
        # The trace itself is still a coherent tree.
        assert summarize(read_trace(trace_dir))["spans"]["orphans"] == 0

    def test_each_propagation_stage_gets_named_hot_function(self, tmp_path):
        trace_dir, _ = self._profiled_run(tmp_path)
        rollup = profile_rollup(read_profiles(trace_dir))
        for stage in ("stage:propagation_v4", "stage:propagation_v6"):
            assert stage in rollup
            top = rollup[stage]["top_functions"]
            assert top and top[0]["function"]
            assert any(r["cumtime"] >= 0 for r in top)

    def test_profiled_and_plain_runs_fingerprint_identical(self, tmp_path):
        import dataclasses

        plain = tiny_base(7)
        profiled = dataclasses.replace(
            plain,
            telemetry=TelemetryConfig(
                trace_dir=str(tmp_path / "t"), profiling=ProfilingConfig()
            ),
        )
        from repro.pipeline.runner import PipelineRunner
        from repro.pipeline.stages import full_stages

        runner = PipelineRunner(full_stages())
        assert runner.fingerprints(plain) == runner.fingerprints(profiled)
        report_a = run_pipeline(plain, targets=("section3",)).value("section3")
        report_b = run_pipeline(profiled, targets=("section3",)).value("section3")
        assert report_a.as_dict() == report_b.as_dict()

    def test_tracer_without_profiling_writes_no_profile_file(self, tmp_path):
        import dataclasses

        config = dataclasses.replace(
            tiny_base(5),
            telemetry=TelemetryConfig(trace_dir=str(tmp_path / "t")),
        )
        run_pipeline(config, targets=("section3",))
        assert not (tmp_path / "t" / "profile.jsonl").exists()
        with pytest.raises(FileNotFoundError):
            read_profiles(tmp_path / "t")

    def test_profiling_config_rides_context_through_pickle(self, tmp_path):
        tracer = Tracer(tmp_path / "t", profiling=ProfilingConfig(top_n=7))
        context = pickle.loads(pickle.dumps(tracer.context()))
        assert context.profiling == ProfilingConfig(top_n=7)
        joined = Tracer.from_config(context)
        assert joined.profiling == ProfilingConfig(top_n=7)

    def test_only_outermost_profiled_span_captures_per_thread(self, tmp_path):
        tracer = Tracer(tmp_path / "t", profiling=ProfilingConfig(memory=False))
        with tracer.span("stage", stage="outer"):
            with tracer.span("propagation", backend="event"):
                pass
        tracer.flush()
        records = read_profiles(tmp_path / "t")
        # cProfile cannot nest on one thread: exactly the outer span
        # captured; the inner one passed through silently.
        assert [r["name"] for r in records] == ["stage"]

    def test_profile_record_has_memory_block_when_enabled(self, tmp_path):
        tracer = Tracer(tmp_path / "t", profiling=ProfilingConfig(memory=True))
        with tracer.span("stage", stage="x"):
            _ = [0] * 50_000
        tracer.flush()
        (rec,) = read_profiles(tmp_path / "t")
        assert rec["memory"]["peak_kb"] > 0

    def test_profiled_spans_is_the_hot_set(self):
        assert PROFILED_SPANS == {"stage", "propagation", "propagation.batch"}

    def test_profile_cli_renders_and_exits_one_when_missing(self, tmp_path, capsys):
        trace_dir, _ = self._profiled_run(tmp_path)
        assert main(["trace", "profile", "--trace-dir", str(trace_dir)]) == 0
        out = capsys.readouterr().out
        assert "stage:propagation_v4" in out
        assert main(["trace", "profile", "--trace-dir", str(tmp_path / "no")]) == 1
        assert "no profile*.jsonl" in capsys.readouterr().err


# ----------------------------------------------------------------------
# analyze hardening (satellite: adversarial traces)
# ----------------------------------------------------------------------
def _span(span_id, parent, name="s", start=0.0, status="ok"):
    return {
        "kind": "span",
        "span_id": span_id,
        "parent_id": parent,
        "name": name,
        "start_time": start,
        "seconds": 0.01,
        "status": status,
        "attrs": {},
    }


class TestAnalyzeAdversarial:
    def test_render_tree_survives_deep_nesting(self):
        depth = 5000  # far past the default recursion limit
        records = [_span("n0", None)]
        records += [_span(f"n{i}", f"n{i - 1}", start=float(i)) for i in range(1, depth)]
        lines = render_tree(records)
        assert len(lines) == depth
        assert lines[-1].startswith("  " * (depth - 1))

    def test_error_spans_render_marker_and_count(self):
        records = [
            _span("a", None),
            _span("b", "a", name="stage", status="error"),
        ]
        lines = render_tree(records)
        assert any("[error]" in line for line in lines)
        assert summarize(records)["spans"]["errors"] == 1

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        good = json.dumps(_span("a", None))
        path.write_text(good + "\n" + '{"kind": "span", "half')  # no newline
        assert parse_jsonl(path) == [json.loads(good)]
        assert len(read_trace(tmp_path)) == 1

    def test_interior_malformed_line_still_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"broken\n' + json.dumps(_span("a", None)) + "\n")
        with pytest.raises(ValueError, match="unparsable trace line"):
            parse_jsonl(path)

    def test_complete_malformed_final_line_still_raises(self, tmp_path):
        # A malformed line WITH its newline was fully written — that is
        # corruption, not a torn concurrent append.
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps(_span("a", None)) + "\n" + '{"broken\n')
        with pytest.raises(ValueError, match="unparsable trace line"):
            parse_jsonl(path)

    def test_counters_only_trace_summarizes_empty_but_valid(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        counter = {"kind": "counter", "name": "cache.hit", "value": 3, "run_id": "r"}
        path.write_text(json.dumps(counter) + "\n")
        summary = summarize(read_trace(tmp_path), trace_dir=tmp_path)
        assert summary["spans"] == {"total": 0, "roots": 0, "orphans": 0, "errors": 0}
        assert summary["stages"] == {} and summary["engines"] == {}
        assert summary["counters"] == {"cache.hit": 3}

    def test_trace_cli_exits_one_on_missing_dir(self, tmp_path, capsys):
        missing = str(tmp_path / "nope")
        assert main(["trace", "show", "--trace-dir", missing]) == 1
        assert main(["trace", "summary", "--trace-dir", missing]) == 1
        err = capsys.readouterr().err
        assert "no trace*.jsonl" in err and "Traceback" not in err

    def test_trace_summary_of_counters_only_trace_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps({"kind": "counter", "name": "x", "value": 1}) + "\n")
        assert main(["trace", "summary", "--trace-dir", str(tmp_path)]) == 0
        assert "0 spans" in capsys.readouterr().out


# ----------------------------------------------------------------------
# live monitor
# ----------------------------------------------------------------------
def _spec(task_id, wave=0):
    return TaskSpec(
        task_id=task_id,
        sweep_id="s",
        wave=wave,
        scenario_id=f"scn-{task_id}",
        config=b"cfg",
        targets="[]",
        cache_spec=None,
    )


class TestMonitor:
    def test_snapshot_embeds_status_report_verbatim(self, tmp_path):
        queue = TaskQueue(tmp_path / "queue.sqlite")
        queue.enqueue([_spec("t1"), _spec("t2", wave=1)])
        queue.claim("w1", 30.0)
        snap = snapshot(queue_dir=tmp_path)
        report = TaskQueue(tmp_path / "queue.sqlite").status_report()
        # Timing fields drift between the two calls; the structural
        # fields must be byte-equal (repro top == repro queue status).
        for key in ("state", "total_tasks", "counts", "dead_letters"):
            assert snap["queue"][key] == report[key]
        assert snap["waves"] == {"0": {"total": 1, "running": 1},
                                 "1": {"total": 1, "pending": 1}}
        (worker,) = snap["workers"]
        assert worker["worker_id"] == "w1" and worker["alive"]
        assert snap["health"]["verdict"] == "active"

    def test_verdict_empty_drained_degraded_stalled(self, tmp_path):
        queue = TaskQueue(tmp_path / "queue.sqlite")
        assert verdict(queue.status_report())["verdict"] == "empty"

        queue.enqueue([_spec("t1")])
        task = queue.claim("w1", 30.0)
        queue.complete(task.task_id, "w1", {"ok": True})
        assert verdict(queue.status_report())["verdict"] == "drained"

        queue2 = TaskQueue(tmp_path / "q2.sqlite")
        queue2.enqueue([_spec("t1")])
        for _ in range(3):  # exhaust max_attempts -> dead letter
            task = queue2.claim("w1", 30.0)
            queue2.fail(task.task_id, "w1", "boom")
        assert verdict(queue2.status_report())["verdict"] == "degraded"

        queue3 = TaskQueue(tmp_path / "q3.sqlite")
        queue3.enqueue([_spec("t1")])
        queue3.claim("w1", 30.0, now=time.time() - 100.0)  # lease long expired
        health = verdict(queue3.status_report())
        assert health["verdict"] == "stalled"
        assert "expired" in health["reasons"][0]

    def test_snapshot_requires_a_source_and_missing_queue_raises(self, tmp_path):
        with pytest.raises(ValueError):
            snapshot()
        with pytest.raises(FileNotFoundError):
            snapshot(queue_dir=tmp_path / "nope")
        # A read-only monitor must not create the queue file as a side
        # effect of looking for it.
        assert not (tmp_path / "nope").exists()

    def test_eta_from_completion_rate(self):
        from repro.telemetry.monitor import _progress_and_eta

        now = 1000.0
        report = {
            "total_tasks": 4,
            "counts": {"done": 3, "pending": 1},
            "tasks": [
                {"status": "done", "seconds_in_state": 20.0},
                {"status": "done", "seconds_in_state": 10.0},
                {"status": "done", "seconds_in_state": 0.0},
                {"status": "pending", "seconds_in_state": 0.0},
            ],
        }
        progress, eta = _progress_and_eta(report, now)
        assert progress == {"total": 4, "terminal": 3, "fraction": 0.75}
        # 2 intervals over 20s -> 0.1 tasks/s -> 1 remaining -> 10s.
        assert eta == 10.0

    def test_trace_block_cache_hit_rate(self, tmp_path):
        trace_dir = tmp_path / "trace"
        tracer = Tracer(trace_dir)
        with tracer.span("stage", stage="x"):
            tracer.counter("cache.hit", 3)
            tracer.counter("cache.miss", 1)
        tracer.flush()
        snap = snapshot(trace_dir=trace_dir)
        assert snap["trace"]["cache"] == {"hits": 3, "misses": 1, "hit_rate": 0.75}
        assert snap["health"]["verdict"] == "idle"
        assert any("cache" in line for line in render_snapshot(snap))

    def test_prometheus_exposition(self, tmp_path):
        queue = TaskQueue(tmp_path / "queue.sqlite")
        queue.enqueue([_spec("t1"), _spec("t2", wave=1)])
        task = queue.claim("w1", 30.0)
        queue.complete(task.task_id, "w1", {"ok": True})
        text = prometheus_metrics(snapshot(queue_dir=tmp_path))
        assert text.endswith("\n")
        assert "# TYPE repro_queue_tasks gauge" in text
        assert 'repro_queue_tasks{status="done"} 1' in text
        assert 'repro_wave_tasks{wave="0",status="done"} 1' in text
        assert 'repro_health{verdict="active"} 1' in text
        # HELP/TYPE emitted once per metric family, not per sample.
        assert text.count("# TYPE repro_wave_tasks gauge") == 1

    def test_monitor_server_routes(self, tmp_path):
        queue = TaskQueue(tmp_path / "queue.sqlite")
        queue.enqueue([_spec("t1")])
        task = queue.claim("w1", 30.0)
        queue.complete(task.task_id, "w1", {"ok": True})
        server = MonitorServer(queue_dir=tmp_path).start()
        try:
            metrics = urllib.request.urlopen(f"{server.url}/metrics")
            assert metrics.status == 200
            assert "text/plain" in metrics.headers["Content-Type"]
            assert 'repro_health{verdict="drained"} 1' in metrics.read().decode()

            health = urllib.request.urlopen(f"{server.url}/health")
            payload = json.loads(health.read().decode())
            assert (health.status, payload["verdict"]) == (200, "drained")

            snap = json.loads(
                urllib.request.urlopen(f"{server.url}/snapshot").read().decode()
            )
            assert snap["queue"]["counts"] == {"done": 1}

            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(f"{server.url}/other")
            assert exc.value.code == 404
        finally:
            server.shutdown()

    def test_health_returns_503_when_degraded(self, tmp_path):
        queue = TaskQueue(tmp_path / "queue.sqlite")
        queue.enqueue([_spec("t1")])
        for _ in range(3):
            task = queue.claim("w1", 30.0)
            queue.fail(task.task_id, "w1", "boom")
        server = MonitorServer(queue_dir=tmp_path).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(f"{server.url}/health")
            assert exc.value.code == 503
            assert json.loads(exc.value.read().decode())["verdict"] == "degraded"
        finally:
            server.shutdown()

    def test_top_cli_once_json_and_exit_codes(self, tmp_path, capsys):
        queue_dir = tmp_path
        queue = TaskQueue(queue_dir / "queue.sqlite")
        queue.enqueue([_spec("t1")])
        task = queue.claim("w1", 30.0)
        queue.complete(task.task_id, "w1", {"ok": True})
        assert main(["top", "--once", "--json", "--queue-dir", str(queue_dir)]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["health"]["verdict"] == "drained"
        assert snap["queue"]["counts"] == {"done": 1}
        # No source at all is a usage error; a missing queue is exit 1.
        assert main(["top", "--once"]) == 2
        capsys.readouterr()
        assert main(["top", "--once", "--queue-dir", str(tmp_path / "no")]) == 1

    def test_top_cli_exits_one_when_stalled(self, tmp_path, capsys):
        queue = TaskQueue(tmp_path / "queue.sqlite")
        queue.enqueue([_spec("t1")])
        queue.claim("w1", 30.0, now=time.time() - 100.0)
        assert main(["top", "--once", "--queue-dir", str(tmp_path)]) == 1
        assert "stalled" in capsys.readouterr().out


# ----------------------------------------------------------------------
# history ledger + regression gate
# ----------------------------------------------------------------------
def _report(metrics, host=None):
    host = host or {
        "cpus": 4,
        "machine": "x86_64",
        "python": "3.11.7",
        "python_implementation": "CPython",
    }
    return {"schema_version": 1, "host": host, "results": metrics}


class TestHistoryLedger:
    def test_extract_metrics_takes_only_wall_second_leaves(self):
        report = _report(
            {
                "scenario": {
                    "cold_wall_seconds": 1.5,
                    "run_wall_seconds": 0.5,
                    "speedup": 3.0,
                    "budget_seconds": 60.0,
                    "within_budget": True,
                    "nested": {"wall_seconds": 0.25},
                }
            }
        )
        assert extract_metrics(report) == {
            "scenario.cold_wall_seconds": 1.5,
            "scenario.run_wall_seconds": 0.5,
            "scenario.nested.wall_seconds": 0.25,
        }

    def test_record_and_load_round_trip(self, tmp_path):
        path = record(
            tmp_path / "history",
            {"BENCH_x": _report({"s": {"wall_seconds": 1.0}})},
            smoke=True,
            commit="abc123",
            dirty=False,
            recorded_at="2026-08-07T00:00:00+00:00",
        )
        assert path.exists()
        (entry,) = load_entries(tmp_path / "history")
        assert entry["commit"] == "abc123" and entry["smoke"] is True
        assert entry["metrics"] == {"BENCH_x.s.wall_seconds": 1.0}
        assert entry["host_key"] == host_key(_report({})["host"])
        # Append-only: same stamp+commit gets a disambiguated name.
        second = record(
            tmp_path / "history",
            {"BENCH_x": _report({"s": {"wall_seconds": 2.0}})},
            smoke=True,
            commit="abc123",
            dirty=False,
            recorded_at="2026-08-07T00:00:00+00:00",
        )
        assert second != path and len(load_entries(tmp_path / "history")) == 2

    def test_baseline_is_per_metric_minimum_same_host_same_kind(self):
        host = _report({})["host"]
        entries = [
            {"smoke": False, "host_key": host_key(host),
             "metrics": {"m": 2.0, "n": 1.0}, "recorded_at": "a"},
            {"smoke": False, "host_key": host_key(host),
             "metrics": {"m": 1.0, "n": 3.0}, "recorded_at": "b"},
            {"smoke": True, "host_key": host_key(host),
             "metrics": {"m": 0.1}, "recorded_at": "c"},  # smoke: excluded
            {"smoke": False, "host_key": "other/8cpu/CPython-3.12",
             "metrics": {"m": 0.2}, "recorded_at": "d"},  # other host
        ]
        best, used = baseline(entries, host, smoke=False)
        assert best == {"m": 1.0, "n": 1.0} and len(used) == 2
        best_any, used_any = baseline(entries, host, smoke=False, any_host=True)
        assert best_any["m"] == 0.2 and len(used_any) == 3

    def test_compare_flags_regressions_not_new_metrics(self):
        result = compare(
            {"slow": 2.0, "same": 1.0, "fast": 0.5, "new": 9.9},
            {"slow": 1.0, "same": 1.0, "fast": 1.0, "gone": 1.0},
            threshold=0.30,
        )
        assert [r["metric"] for r in result["regressions"]] == ["slow"]
        assert [r["metric"] for r in result["improvements"]] == ["fast"]
        assert result["only_current"] == ["new"]
        assert result["only_baseline"] == ["gone"]
        assert result["ok"] is False
        assert compare({"m": 1.2}, {"m": 1.0}, threshold=0.30)["ok"] is True

    def test_host_key_collapses_patch_version(self):
        key = host_key({"machine": "arm64", "cpus": 8,
                        "python_implementation": "CPython", "python": "3.12.4"})
        assert key == "arm64/8cpu/CPython-3.12"

    def test_git_info_in_this_checkout(self):
        info = git_info(cwd=Path(__file__).resolve().parent)
        assert info["commit"] is None or len(info["commit"]) == 40

    def _write_bench(self, bench_dir, seconds):
        bench_dir.mkdir(parents=True, exist_ok=True)
        (bench_dir / "BENCH_x.json").write_text(
            json.dumps(_report({"s": {"wall_seconds": seconds}}))
        )

    def test_bench_cli_gate(self, tmp_path, capsys):
        bench_dir = tmp_path / "bench"
        history_dir = tmp_path / "history"
        self._write_bench(bench_dir, 1.0)
        base = ["--bench-dir", str(bench_dir), "--history-dir", str(history_dir)]

        # Empty ledger: compare skips with exit 0.
        assert main(["bench", "compare", *base]) == 0
        assert "no history entries" in capsys.readouterr().out
        # Record, then a self-comparison passes.
        assert main(["bench", "record", *base]) == 0
        assert main(["bench", "compare", *base]) == 0
        assert "no regressions" in capsys.readouterr().out
        # Injected >=20% slowdown fails the gate at a 0.2 threshold.
        self._write_bench(bench_dir, 1.3)
        assert main(["bench", "compare", *base, "--threshold", "0.2"]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        # ... and machine-readably.
        assert main(["bench", "compare", *base, "--threshold", "0.2", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False and payload["regressions"]

    def test_bench_compare_skips_cross_host(self, tmp_path, capsys):
        bench_dir = tmp_path / "bench"
        history_dir = tmp_path / "history"
        self._write_bench(bench_dir, 5.0)
        record(
            history_dir,
            {"BENCH_x": _report({"s": {"wall_seconds": 1.0}},
                                host={"machine": "other", "cpus": 1,
                                      "python": "3.8.0",
                                      "python_implementation": "PyPy"})},
            commit="abc",
        )
        base = ["--bench-dir", str(bench_dir), "--history-dir", str(history_dir)]
        assert main(["bench", "compare", *base]) == 0
        assert "no comparable history entries" in capsys.readouterr().out
        # --any-host forces the comparison and catches the slowdown.
        assert main(["bench", "compare", *base, "--any-host"]) == 1

    def test_bench_record_errors_without_reports(self, tmp_path, capsys):
        code = main(
            ["bench", "record", "--bench-dir", str(tmp_path),
             "--history-dir", str(tmp_path / "h")]
        )
        assert code == 2
        assert "no BENCH_*.json" in capsys.readouterr().err


# ----------------------------------------------------------------------
# worker log prefix (satellite)
# ----------------------------------------------------------------------
class TestWorkerLogPrefix:
    def test_task_lines_carry_run_worker_task_prefix(self, tmp_path):
        queue = TaskQueue(tmp_path / "queue.sqlite")
        queue.enqueue([_spec("t1")])
        lines = []
        worker = Worker(queue, worker_id="w-1", log=lines.append)
        task = queue.claim("w-1", 30.0)
        # config=b"cfg" does not unpickle -> the attempt fails fast, and
        # both the claim and the failure line carry the prefix.
        assert worker.process(task) is False
        assert [line.split("]")[0] for line in lines] == ["[s/w-1/t1", "[s/w-1/t1"]
        assert "claimed scn-t1 (wave 0, attempt 1/3)" in lines[0]
        assert "failed: UnpicklingError" in lines[1]

    def test_prefix_prefers_trace_run_id(self, tmp_path):
        import dataclasses

        config = dataclasses.replace(
            tiny_base(),
            telemetry=TelemetryConfig(trace_dir=str(tmp_path), run_id="run-42"),
        )
        queue = TaskQueue(tmp_path / "queue.sqlite")
        spec = _spec("t1")
        spec = dataclasses.replace(spec, config=pickle.dumps(config))
        queue.enqueue([spec])
        lines = []
        worker = Worker(queue, worker_id="w-1", log=lines.append)
        worker._task_log(queue.claim("w-1", 30.0), "hello")
        assert lines == ["[run-42/w-1/t1] hello"]
