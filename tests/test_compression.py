"""Control-plane compression: equivalence, soundness and wiring.

The contract under test (see :mod:`repro.topology.compress`): for any
topology, any policies and any compression mode, the compress →
propagate → inflate path produces a result **bit-identical** to an
uncompressed run — Loc-RIB contents attribute for attribute, reachable
counts, pruned-mode kept state — on every backend.  Compression may
only change *work* (events, wall time), never results.

Structure:

* golden equivalence — the golden seeds × all three engines × both
  modes, full and pruned;
* adversarial singletons — origins, vantages and TE-override stubs must
  never be collapsed, and plans built without them must refuse runs
  that need them;
* the explicit-fallback contract — when nothing collapses the plan says
  why, and the engine runs uncompressed;
* a hypothesis harness over random topologies × random origin subsets;
* the resolution forest (column-form best-sender snapshots) against the
  event oracle;
* pipeline wiring — the ``compress`` stage, fingerprint invalidation
  and report byte-identity across modes;
* the ``scale_free`` generator mode (determinism, heavy tail, and that
  it actually compresses).
"""

from __future__ import annotations

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.relationships import AFI, Relationship
from repro.bgp.backends import ArrayBackend, EquilibriumBackend, EventBackend
from repro.bgp.engine import PropagationEngine
from repro.bgp.policy import TrafficEngineeringOverride
from repro.bgp.propagation import originate_one_prefix_per_as
from repro.topology.compress import (
    COMPRESSION_CHOICES,
    CompressionPlan,
    compress_topology,
    inflate_result,
)
from repro.topology.generator import TopologyConfig, generate_topology

from test_backends import _vanilla_policies
from test_propagation_golden import GOLDEN_SEEDS, _golden_topology, _rich_policies

MODES = ("stubs", "full")
ENGINES = ("event", "array", "equilibrium")


def _subset_origins(graph, afi, count=12):
    """A deterministic origin subset that leaves stubs to collapse.

    Originating from *every* AS pins every AS, which makes compression
    a guaranteed no-op; the golden equivalence runs originate from a
    spread-out subset instead, like the measurement pipeline does at
    ``origin_fraction < 1``.
    """
    full = originate_one_prefix_per_as(graph, afi)
    prefixes = sorted(full, key=str)
    step = max(1, len(prefixes) // count)
    return {prefix: full[prefix] for prefix in prefixes[::step][:count]}


def _assert_identical(graph, oracle, candidate, origins):
    """Bit-level equality of converged state, Loc-RIB attribute included."""
    assert candidate.reachable_counts == oracle.reachable_counts
    for asn in graph.ases:
        for prefix in origins:
            assert candidate.best_route(asn, prefix) == oracle.best_route(
                asn, prefix
            ), f"AS{asn} towards {prefix}"


class TestGoldenEquivalence:
    """Compressed+inflated == uncompressed, across engines and modes."""

    @pytest.mark.parametrize("seed", GOLDEN_SEEDS)
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("mode", MODES)
    def test_full_rib_equivalence(self, seed, engine, mode):
        graph = _golden_topology(seed).graph
        policies = _vanilla_policies(graph, seed)
        origins = _subset_origins(graph, AFI.IPV4)
        oracle = PropagationEngine(graph, policies, engine=engine).run(origins)
        compressed = PropagationEngine(
            graph, policies, engine=engine, compression=mode
        ).run(origins)
        plan = compress_topology(
            graph, policies, mode=mode, origin_asns=set(origins.values())
        )
        assert plan.applied, "golden scenario must actually compress"
        _assert_identical(graph, oracle, compressed, origins)

    @pytest.mark.parametrize("mode", MODES)
    def test_rich_policies_through_event_fallback(self, mode):
        """TE overrides / relaxations: auto falls back to the event
        backend, and compression must still be exact (the affected ASes
        are simply not collapse-eligible)."""
        graph = _golden_topology(2010).graph
        policies = _rich_policies(graph, 2010)
        origins = _subset_origins(graph, AFI.IPV4)
        oracle = PropagationEngine(graph, policies, engine="event").run(origins)
        engine = PropagationEngine(
            graph, policies, engine="auto", compression=mode
        )
        name, reason = engine.select_backend(origins)
        assert name == "event"
        assert "compression" in reason
        _assert_identical(graph, oracle, engine.run(origins), origins)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_pruned_mode_keeps_exactly_the_vantages(self, engine):
        graph = _golden_topology(2011).graph
        policies = _vanilla_policies(graph, 2011)
        origins = _subset_origins(graph, AFI.IPV4)
        keep = graph.ases[:3] + graph.ases[-3:]
        oracle = PropagationEngine(
            graph, policies, engine=engine, keep_ribs_for=keep
        ).run(origins)
        compressed = PropagationEngine(
            graph, policies, engine=engine, keep_ribs_for=keep, compression="stubs"
        ).run(origins)
        assert compressed.reachable_counts == oracle.reachable_counts
        for asn in keep:
            assert (
                compressed.snapshot(asn).best_routes
                == oracle.snapshot(asn).best_routes
            )
        dropped = next(asn for asn in graph.ases if asn not in keep)
        assert not compressed.speakers[dropped].loc_rib.routes()

    def test_ipv6_plane_equivalence(self):
        graph = _golden_topology(2012).graph
        policies = _vanilla_policies(graph, 2012)
        origins = _subset_origins(graph, AFI.IPV6)
        oracle = PropagationEngine(graph, policies, engine="event").run(origins)
        compressed = PropagationEngine(
            graph, policies, engine="auto", compression="full"
        ).run(origins)
        _assert_identical(graph, oracle, compressed, origins)

    def test_run_many_parallel_batches_match_serial(self):
        """Batched compressed runs pin one plan for every batch; a batch
        must never collapse another batch's origin."""
        graph = _golden_topology(2010).graph
        policies = _vanilla_policies(graph, 2010)
        origins = _subset_origins(graph, AFI.IPV4, count=10)
        engine = PropagationEngine(
            graph, policies, engine="auto", compression="stubs"
        )
        serial = engine.run(origins)
        parallel = engine.run_many(origins, workers=4)
        assert parallel.reachable_counts == serial.reachable_counts
        for asn in graph.ases:
            for prefix in origins:
                assert parallel.best_route(asn, prefix) == serial.best_route(
                    asn, prefix
                )


class TestAdversarialSingletons:
    """ASes whose identity matters must survive as singletons."""

    def _stub_class(self, graph, policies):
        """Some collapsed (stub) AS from an applied plan."""
        plan = compress_topology(graph, policies, mode="stubs")
        assert plan.applied
        representative, members = next(iter(plan.map.members_of.items()))
        return plan, representative, members

    def test_origin_stub_is_pinned(self):
        graph = _golden_topology(2010).graph
        policies = _vanilla_policies(graph, 2010)
        _, representative, members = self._stub_class(graph, policies)
        origin = members[0]
        full = originate_one_prefix_per_as(graph, AFI.IPV4)
        origins = {
            prefix: asn for prefix, asn in full.items() if asn == origin
        }
        plan = compress_topology(
            graph, policies, mode="stubs", origin_asns={origin}
        )
        assert origin not in plan.map.canonical
        oracle = PropagationEngine(graph, policies).run(origins)
        compressed = PropagationEngine(
            graph, policies, compression="stubs"
        ).run(origins)
        _assert_identical(graph, oracle, compressed, origins)

    def test_vantage_stub_is_pinned(self):
        """A kept (vantage) AS inside an equivalence class must keep its
        own addressable Loc-RIB — pinned, while its twins still collapse."""
        graph = _golden_topology(2011).graph
        policies = _vanilla_policies(graph, 2011)
        _, representative, members = self._stub_class(graph, policies)
        vantage = members[-1]
        origins = _subset_origins(graph, AFI.IPV4)
        plan = compress_topology(
            graph,
            policies,
            mode="stubs",
            pinned={vantage},
            origin_asns=set(origins.values()),
        )
        assert vantage not in plan.map.canonical
        oracle = PropagationEngine(
            graph, policies, keep_ribs_for=[vantage]
        ).run(origins)
        compressed = PropagationEngine(
            graph, policies, keep_ribs_for=[vantage], compression="stubs"
        ).run(origins)
        assert (
            compressed.snapshot(vantage).best_routes
            == oracle.snapshot(vantage).best_routes
        )

    def test_te_override_stub_is_never_collapsed(self):
        """A stub with a TE override ranks candidates differently from
        its topological twins: it must stay a singleton (and the run
        must still be exact — through the event backend)."""
        graph = _golden_topology(2012).graph
        policies = _vanilla_policies(graph, 2012)
        baseline = compress_topology(graph, policies, mode="stubs")
        assert baseline.applied
        representative, members = next(iter(baseline.map.members_of.items()))
        special = members[0]
        prefix = next(iter(_subset_origins(graph, AFI.IPV4)))
        policies[special].te_overrides.append(
            TrafficEngineeringOverride(
                neighbor=graph.neighbors(special)[0],
                local_pref=999,
                prefixes=(prefix,),
            )
        )
        plan = compress_topology(graph, policies, mode="stubs")
        assert special not in plan.map.canonical
        origins = _subset_origins(graph, AFI.IPV4)
        oracle = PropagationEngine(graph, policies, engine="event").run(origins)
        compressed = PropagationEngine(
            graph, policies, engine="auto", compression="stubs"
        ).run(origins)
        _assert_identical(graph, oracle, compressed, origins)

    def test_incoming_relaxation_splits_a_class(self):
        """Two stubs differing only in whether a shared neighbor relaxes
        exports *towards them* see different candidate routes — they
        must land in different classes."""
        graph = _golden_topology(2010).graph
        policies = _vanilla_policies(graph, 2010)
        baseline = compress_topology(graph, policies, mode="stubs")
        assert baseline.applied
        representative, members = next(iter(baseline.map.members_of.items()))
        lucky = members[0]
        neighbor = graph.neighbors(lucky)[0]
        policies[neighbor].add_relaxation(lucky, AFI.IPV4)
        plan = compress_topology(graph, policies, mode="stubs")
        assert plan.map.representative(lucky) == lucky, (
            "a stub receiving a gratuitous leak is not equivalent to its twins"
        )
        origins = _subset_origins(graph, AFI.IPV4)
        oracle = PropagationEngine(graph, policies, engine="event").run(origins)
        compressed = PropagationEngine(
            graph, policies, engine="auto", compression="stubs"
        ).run(origins)
        _assert_identical(graph, oracle, compressed, origins)

    def test_plan_missing_an_origin_is_refused(self):
        graph = _golden_topology(2011).graph
        policies = _vanilla_policies(graph, 2011)
        plan, representative, members = self._stub_class(graph, policies)
        collapsed_origin = members[0]
        with pytest.raises(ValueError, match="pinned"):
            plan.validate_for({collapsed_origin}, None)
        with pytest.raises(ValueError, match="pinned"):
            plan.validate_for(set(), [collapsed_origin])
        # The engine applies the same validation to injected plans.
        full = originate_one_prefix_per_as(graph, AFI.IPV4)
        origins = {
            prefix: asn for prefix, asn in full.items() if asn == collapsed_origin
        }
        engine = PropagationEngine(
            graph, policies, compression="stubs", compression_plan=plan
        )
        with pytest.raises(ValueError, match="pinned"):
            engine.run(origins)


class TestExplicitFallback:
    """When nothing can collapse, the plan says so and runs stay exact."""

    def test_all_origins_pinned_means_no_compression(self):
        graph = _golden_topology(2010).graph
        policies = _vanilla_policies(graph, 2010)
        origins = originate_one_prefix_per_as(graph, AFI.IPV4)
        plan = compress_topology(
            graph, policies, mode="stubs", origin_asns=set(origins.values())
        )
        assert not plan.applied
        assert "no equivalence class" in plan.reason
        assert plan.graph is graph
        engine = PropagationEngine(graph, policies, compression="stubs")
        name, reason = engine.select_backend(origins)
        assert "not applied" in reason
        oracle = PropagationEngine(graph, policies).run(origins)
        _assert_identical(graph, oracle, engine.run(origins), origins)

    def test_mode_off_is_an_unapplied_plan(self):
        graph = _golden_topology(2010).graph
        plan = compress_topology(graph, None, mode="off")
        assert not plan.applied and plan.reason == "compression disabled"

    def test_invalid_mode_rejected_everywhere(self):
        graph = _golden_topology(2010).graph
        with pytest.raises(ValueError):
            compress_topology(graph, None, mode="zip")
        with pytest.raises(ValueError):
            PropagationEngine(graph, compression="zip")
        from repro.pipeline import PropagationConfig

        with pytest.raises(ValueError):
            PropagationConfig(compression="zip")

    def test_selection_report_shapes(self):
        graph = _golden_topology(2011).graph
        policies = _vanilla_policies(graph, 2011)
        origins = _subset_origins(graph, AFI.IPV4)
        off = PropagationEngine(graph, policies, engine="auto").selection_report(
            origins
        )
        assert off["compression"] == {"mode": "off", "applied": False}
        on = PropagationEngine(
            graph, policies, engine="auto", compression="stubs"
        ).selection_report(origins)
        assert on["backend"] == "equilibrium"
        assert on["compression"]["applied"] is True
        stats = on["compression"]["stats"]
        assert stats["nodes_before"] - stats["collapsed"] == stats["nodes_after"]
        assert stats["ratio"] >= 1.0
        # JSON-serializable end to end (it lands in section3 provenance).
        json.dumps(on)


class TestResolutionForest:
    """Column-form forest snapshots against the event oracle."""

    @pytest.mark.parametrize("backend_cls", (EquilibriumBackend, ArrayBackend))
    def test_forest_matches_event_routes(self, backend_cls):
        graph = _golden_topology(2010).graph
        policies = _vanilla_policies(graph, 2010)
        origins = _subset_origins(graph, AFI.IPV4, count=6)
        oracle = EventBackend(graph, policies).run(origins)
        solved = backend_cls(
            graph, policies, keep_ribs_for=(), record_resolution=True
        ).run(origins)
        forest = solved.resolution
        assert forest is not None
        for prefix, origin_asn in origins.items():
            reached = sorted(forest.reached(prefix))
            assert len(reached) == forest.reached_count(prefix)
            assert forest.reached_count(prefix) == oracle.reachable_counts[prefix]
            assert forest.resolve(prefix, origin_asn) == (origin_asn, None)
            for asn in reached:
                route = oracle.best_route(asn, prefix)
                assert route is not None
                if asn != origin_asn:
                    assert forest.resolve(prefix, asn) == (
                        route.learned_from,
                        route.learned_relationship,
                    )
            unreached = next(
                (asn for asn in graph.ases if asn not in set(reached)), None
            )
            if unreached is not None:
                assert not forest.is_reached(prefix, unreached)

    def test_zero_keep_materializes_nothing(self):
        graph = _golden_topology(2011).graph
        policies = _vanilla_policies(graph, 2011)
        origins = _subset_origins(graph, AFI.IPV4, count=4)
        solved = EquilibriumBackend(
            graph, policies, keep_ribs_for=(), record_resolution=True
        ).run(origins)
        assert not solved.speakers  # no speakers, no routes — forest only
        assert solved.resolution is not None

    def test_event_backend_does_not_record(self):
        graph = _golden_topology(2011).graph
        origins = _subset_origins(graph, AFI.IPV4, count=2)
        result = EventBackend(graph, None, record_resolution=True).run(origins)
        assert result.resolution is None
        assert not EventBackend.supports_resolution


# ----------------------------------------------------------------------
# hypothesis: random topologies x random origin subsets x modes
# ----------------------------------------------------------------------
@st.composite
def compression_scenario(draw):
    topo_seed = draw(st.integers(min_value=1, max_value=10_000))
    policy_seed = draw(st.integers(min_value=0, max_value=999))
    mode = draw(st.sampled_from(MODES))
    generator_mode = draw(st.sampled_from(("hierarchical", "scale_free")))
    afi = draw(st.sampled_from((AFI.IPV4, AFI.IPV6)))
    topology = generate_topology(
        TopologyConfig(
            seed=topo_seed,
            mode=generator_mode,
            tier1_count=draw(st.integers(min_value=3, max_value=5)),
            tier2_count=draw(st.integers(min_value=4, max_value=10)),
            tier3_count=draw(st.integers(min_value=10, max_value=30)),
            tier2_providers=(1, 2),
        )
    )
    graph = topology.graph
    policies = _vanilla_policies(graph, policy_seed)
    full = originate_one_prefix_per_as(graph, afi)
    prefixes = sorted(full, key=str)
    chosen = draw(
        st.lists(
            st.sampled_from(prefixes),
            min_size=1,
            max_size=min(len(prefixes), 6),
            unique=True,
        )
    )
    origins = {prefix: full[prefix] for prefix in chosen}
    return graph, policies, origins, mode


class TestPropertyBasedEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(scenario=compression_scenario())
    def test_compressed_inflated_matches_uncompressed(self, scenario):
        graph, policies, origins, mode = scenario
        oracle = PropagationEngine(graph, policies, engine="event").run(origins)
        engine = PropagationEngine(
            graph, policies, engine="auto", compression=mode
        )
        plan = compress_topology(
            graph, policies, mode=mode, origin_asns=set(origins.values())
        )
        if not plan.applied:
            # The explicit-fallback contract: a reason, and a run that
            # is simply the uncompressed one.
            assert plan.reason
        _assert_identical(graph, oracle, engine.run(origins), origins)

    @settings(max_examples=10, deadline=None)
    @given(scenario=compression_scenario())
    def test_direct_inflate_roundtrip(self, scenario):
        """compress_topology + solver on the quotient + inflate_result,
        without the engine in between."""
        graph, policies, origins, mode = scenario
        plan = compress_topology(
            graph, policies, mode=mode, origin_asns=set(origins.values())
        )
        if not plan.applied:
            return
        compressed = EquilibriumBackend(
            plan.graph, policies, keep_ribs_for=(), record_resolution=True
        ).run(origins)
        inflated = inflate_result(graph, policies, plan, compressed)
        oracle = EventBackend(graph, policies).run(origins)
        _assert_identical(graph, oracle, inflated, origins)


class TestPipelineWiring:
    """The compress stage, fingerprints and report byte-identity."""

    def _config(self, compression, origin_fraction=0.3, seed=5):
        from repro.datasets import DatasetConfig
        from repro.pipeline import PipelineConfig, PropagationConfig

        dataset = DatasetConfig(
            topology=TopologyConfig(
                seed=seed, tier1_count=3, tier2_count=8, tier3_count=80
            ),
            seed=seed,
            vantage_points=4,
            origin_fraction=origin_fraction,
        )
        return PipelineConfig(
            dataset=dataset,
            top=3,
            max_sources=10,
            propagation=PropagationConfig(engine="auto", compression=compression),
        )

    @pytest.mark.parametrize("mode", MODES)
    def test_section3_and_correction_identical_across_modes(self, mode):
        from repro.pipeline import run_pipeline

        baseline = run_pipeline(
            self._config("off"), targets=("section3", "correction")
        )
        candidate = run_pipeline(
            self._config(mode), targets=("section3", "correction")
        )
        # The compress stage must have actually applied at this origin
        # fraction — otherwise this test degenerates to off-vs-off.
        assert candidate.value("compress").applied
        assert candidate.value("section3").rows() == baseline.value(
            "section3"
        ).rows()
        base_series = baseline.value("correction")
        cand_series = candidate.value("correction")
        assert cand_series.averages == base_series.averages
        assert cand_series.diameters == base_series.diameters

    def test_compression_mode_invalidates_only_compress_and_downstream(
        self, tmp_path
    ):
        from repro.pipeline import run_pipeline

        run_pipeline(
            self._config("off"),
            cache_dir=tmp_path,
            targets=("section3",),
        )
        second = run_pipeline(
            self._config("stubs"),
            cache_dir=tmp_path,
            targets=("section3",),
        )
        statuses = {o.stage: o.status for o in second.outcomes}
        for stage in ("topology", "irr", "scenario"):
            assert statuses[stage] == "cached", stage
        for stage in ("compress", "propagation_v4", "propagation_v6"):
            assert statuses[stage] == "computed", stage

    def test_same_mode_warm_run_fully_cached(self, tmp_path):
        from repro.pipeline import run_pipeline

        run_pipeline(
            self._config("stubs"), cache_dir=tmp_path, targets=("section3",)
        )
        warm = run_pipeline(
            self._config("stubs"), cache_dir=tmp_path, targets=("section3",)
        )
        assert warm.computed_stages() == []

    def test_compress_stage_pins_vantages(self):
        from repro.pipeline import run_pipeline

        run = run_pipeline(self._config("stubs"), targets=("compress",))
        plan = run.value("compress")
        scenario = run.value("scenario")
        assert plan.applied
        for vantage in scenario.vantage_asns:
            assert vantage not in plan.map.canonical


class TestScaleFreeMode:
    """The preferential-attachment generator mode (sweepable axis)."""

    def _config(self, **overrides):
        base = dict(
            seed=77, mode="scale_free", tier1_count=4, tier2_count=30,
            tier3_count=300,
        )
        base.update(overrides)
        return TopologyConfig(**base)

    def test_deterministic(self):
        first = generate_topology(self._config())
        second = generate_topology(self._config())
        assert first.graph.ases == second.graph.ases
        assert list(first.graph.links()) == list(second.graph.links())

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            TopologyConfig(mode="small_world")

    def test_heavy_tail(self):
        """Preferential attachment concentrates stubs: the busiest
        provider must dwarf the median one."""
        topo = generate_topology(self._config())
        counts = sorted(
            len(topo.graph.customers_of(asn, AFI.IPV4))
            for asn in topo.tier1 + topo.tier2
        )
        assert counts[-1] >= 5 * max(1, counts[len(counts) // 2])

    def test_hierarchical_default_unchanged(self):
        """mode='scale_free' must not perturb the default stream: the
        hierarchical graph for a seed is what it always was (the golden
        suites pin this globally; this is the targeted check)."""
        default = generate_topology(TopologyConfig(seed=77))
        explicit = generate_topology(TopologyConfig(seed=77, mode="hierarchical"))
        assert list(default.graph.links()) == list(explicit.graph.links())

    def test_scale_free_compresses_better_than_hierarchical(self):
        scale_free = generate_topology(self._config())
        hierarchical = generate_topology(
            TopologyConfig(seed=77, tier1_count=4, tier2_count=30, tier3_count=300)
        )
        ratios = {}
        for name, topo in (("sf", scale_free), ("hier", hierarchical)):
            origins = _subset_origins(topo.graph, AFI.IPV4, count=8)
            plan = compress_topology(
                topo.graph, None, mode="stubs", origin_asns=set(origins.values())
            )
            ratios[name] = plan.stats.ratio if plan.applied else 1.0
        assert ratios["sf"] > ratios["hier"]

    def test_propagation_equivalence_on_scale_free(self):
        topo = generate_topology(self._config(tier3_count=120))
        policies = _vanilla_policies(topo.graph, 3)
        origins = _subset_origins(topo.graph, AFI.IPV4, count=10)
        oracle = PropagationEngine(topo.graph, policies, engine="event").run(
            origins
        )
        for mode in MODES:
            compressed = PropagationEngine(
                topo.graph, policies, engine="auto", compression=mode
            ).run(origins)
            _assert_identical(topo.graph, oracle, compressed, origins)
