"""The fault-injection layer and the retry policy it exercises.

Unit-level coverage: deterministic plan construction and serialization,
the backend injector's call accounting and fault kinds, the retry
policy's transient/persistent classification and jittered backoff, the
queue injector, and the stage-intercept hook.  End-to-end chaos runs
(storms over a distributed sweep) live in ``test_chaos.py``.
"""

from __future__ import annotations

import json
import pickle
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cluster.backends import (
    BackendError,
    LocalDirectoryBackend,
    MemoryBackend,
    PersistentBackendError,
    TransientBackendError,
    open_backend,
    spec_path,
)
from repro.cluster.queue import TaskQueue, TaskSpec
from repro.cluster.retry import (
    DEFAULT_RETRY_POLICY,
    RetryExhausted,
    RetryingBackend,
    RetryPolicy,
    with_retries,
)
from repro.faults import (
    FAULT_PLAN_SCHEMA_VERSION,
    FaultInjectingBackend,
    FaultInjectingQueue,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    InjectedQueueFault,
    intercept_stage,
)
from repro.pipeline.artifacts import ArtifactCache


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultSpec("get", 1, "gremlins")

    def test_call_counts_are_one_based(self):
        with pytest.raises(FaultPlanError, match="1-based"):
            FaultSpec("get", 0, "transient")

    def test_negative_delay_rejected(self):
        with pytest.raises(FaultPlanError, match="non-negative"):
            FaultSpec("get", 1, "delay", delay_seconds=-1.0)

    def test_matching_respects_key_prefix_and_worker_pattern(self):
        spec = FaultSpec(
            "get", 3, "transient", key_prefix="views/", worker_pattern="local-1-"
        )
        assert spec.matches("get", 3, "views/abc.pkl", "local-1-deadbeef")
        assert not spec.matches("get", 2, "views/abc.pkl", "local-1-deadbeef")
        assert not spec.matches("put", 3, "views/abc.pkl", "local-1-deadbeef")
        assert not spec.matches("get", 3, "topology/abc.pkl", "local-1-deadbeef")
        assert not spec.matches("get", 3, "views/abc.pkl", "local-0-deadbeef")
        # Keyless operations only match an empty prefix.
        assert not spec.matches("get", 3, None, "local-1-deadbeef")

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(FaultPlanError, match="unknown FaultSpec fields"):
            FaultSpec.from_dict({"operation": "get", "call": 1, "kind": "transient",
                                 "blast_radius": 9000})


class TestFaultPlan:
    def test_seeded_is_deterministic(self):
        assert FaultPlan.seeded(7) == FaultPlan.seeded(7)
        assert FaultPlan.seeded(7) != FaultPlan.seeded(8)
        assert FaultPlan.seeded(7).entries  # a 5% storm over 600 calls fires

    def test_seeded_caps_consecutive_raising_faults(self):
        plan = FaultPlan.seeded(3, calls=500, transient_rate=0.5, max_consecutive=2)
        for operation in ("get", "put", "put_if_absent"):
            calls = sorted(
                spec.call
                for spec in plan.entries
                if spec.operation == operation
                and spec.kind in ("transient", "persistent")
            )
            run = 1
            for previous, current in zip(calls, calls[1:]):
                run = run + 1 if current == previous + 1 else 1
                assert run <= 2, f"3+ consecutive {operation} faults at call {current}"

    def test_json_roundtrip(self, tmp_path):
        plan = FaultPlan.seeded(11, corrupt_rate=0.02, delay_rate=0.02)
        path = tmp_path / "plan.json"
        plan.to_json_file(path)
        loaded = FaultPlan.from_json_file(path)
        assert loaded.entries == plan.entries
        assert loaded.state_key == str(path.resolve())
        raw = json.loads(path.read_text())
        assert raw["schema_version"] == FAULT_PLAN_SCHEMA_VERSION

    def test_wrong_schema_version_rejected(self):
        with pytest.raises(FaultPlanError, match="schema_version"):
            FaultPlan.from_dict({"schema_version": 99, "entries": []})

    def test_entries_must_be_a_list(self):
        with pytest.raises(FaultPlanError, match="entries"):
            FaultPlan.from_dict(
                {"schema_version": FAULT_PLAN_SCHEMA_VERSION, "entries": "nope"}
            )

    def test_missing_plan_file_rejected(self, tmp_path):
        with pytest.raises(FaultPlanError, match="cannot read"):
            FaultPlan.from_json_file(tmp_path / "absent.json")


def injecting(entries) -> FaultInjectingBackend:
    inner = MemoryBackend()
    inner.put("k", b"payload")
    return FaultInjectingBackend(inner, FaultPlan(tuple(entries)))


class TestFaultInjectingBackend:
    def test_transient_fires_at_exactly_the_scripted_call(self):
        backend = injecting([FaultSpec("get", 3, "transient")])
        assert backend.get("k") == b"payload"  # call 1
        assert backend.get("k") == b"payload"  # call 2
        with pytest.raises(TransientBackendError, match="call #3"):
            backend.get("k")
        assert backend.get("k") == b"payload"  # call 4: the storm has passed
        assert backend.state.injections() == {"transient": 1}

    def test_persistent_fault(self):
        backend = injecting([FaultSpec("put", 1, "persistent")])
        with pytest.raises(PersistentBackendError):
            backend.put("k2", b"x")
        assert backend.inner.get("k2") is None  # the write never happened

    def test_corrupt_flips_get_result(self):
        backend = injecting([FaultSpec("get", 1, "corrupt")])
        corrupted = backend.get("k")
        assert corrupted != b"payload"
        assert corrupted[1:] == b"payload"[1:]  # first byte flipped only
        assert backend.get("k") == b"payload"
        assert backend.state.injections() == {"corrupt": 1}

    def test_corrupt_miss_stays_a_miss(self):
        backend = injecting([FaultSpec("get", 1, "corrupt")])
        assert backend.get("absent") is None
        assert backend.state.injections() == {}  # nothing to corrupt

    def test_delay_stalls_then_proceeds(self):
        backend = injecting([FaultSpec("get", 1, "delay", delay_seconds=0.05)])
        start = time.monotonic()
        assert backend.get("k") == b"payload"
        assert time.monotonic() - start >= 0.04

    def test_key_prefix_targets_one_namespace(self):
        backend = injecting(
            [FaultSpec("get", n, "transient", key_prefix="views/") for n in (1, 2, 3)]
        )
        backend.inner.put("views/a", b"v")
        assert backend.get("k") == b"payload"  # call 1: prefix miss
        with pytest.raises(TransientBackendError):
            backend.get("views/a")  # call 2: prefix hit

    def test_worker_pattern_targets_one_process(self, monkeypatch):
        backend = injecting(
            [FaultSpec("get", n, "transient", worker_pattern="local-0-")
             for n in (1, 2)]
        )
        monkeypatch.setenv("REPRO_WORKER_ID", "local-1-cafe")
        assert backend.get("k") == b"payload"  # wrong worker: no fault
        monkeypatch.setenv("REPRO_WORKER_ID", "local-0-cafe")
        with pytest.raises(TransientBackendError):
            backend.get("k")

    def test_shared_state_spans_instances(self, tmp_path):
        """Two injectors opened from the same plan file advance one
        call counter — how per-task cache rebuilds in a worker see a
        single process-wide sequence."""
        path = tmp_path / "plan.json"
        FaultPlan((FaultSpec("get", 2, "transient"),)).to_json_file(path)
        inner = MemoryBackend()
        inner.put("k", b"payload")
        first = FaultInjectingBackend(inner, FaultPlan.from_json_file(path))
        second = FaultInjectingBackend(inner, FaultPlan.from_json_file(path))
        assert first.get("k") == b"payload"  # call 1 (shared)
        with pytest.raises(TransientBackendError):
            second.get("k")  # call 2, counted across instances

    def test_crash_kills_the_process(self, tmp_path):
        """``crash`` must be un-catchable (an OOM twin), so it runs in a
        scratch subprocess and is judged by the exit code."""
        script = (
            "from repro.cluster.backends import MemoryBackend\n"
            "from repro.faults import FaultInjectingBackend, FaultPlan, FaultSpec\n"
            "backend = FaultInjectingBackend(\n"
            "    MemoryBackend(), FaultPlan((FaultSpec('get', 1, 'crash'),)))\n"
            "try:\n"
            "    backend.get('k')\n"
            "finally:\n"
            "    print('cleanup ran')\n"
        )
        source_root = Path(__file__).resolve().parent.parent / "src"
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, timeout=60,
            env={"PYTHONPATH": str(source_root), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 3
        assert "cleanup ran" not in result.stdout  # no finally, like SIGKILL


class TestFaultSpecGrammar:
    def test_open_backend_builds_the_injector_stack(self, tmp_path):
        plan_path = tmp_path / "plan.json"
        FaultPlan.seeded(5).to_json_file(plan_path)
        cache_dir = tmp_path / "cache"
        backend = open_backend(f"fault://{plan_path}!{cache_dir}")
        assert isinstance(backend, FaultInjectingBackend)
        assert isinstance(backend.inner, LocalDirectoryBackend)
        assert Path(backend.location) == cache_dir
        assert spec_path(f"fault://{plan_path}!{cache_dir}") == cache_dir

    def test_artifact_cache_from_fault_spec_retries_transparently(self, tmp_path):
        plan_path = tmp_path / "plan.json"
        FaultPlan((FaultSpec("put_if_absent", 1, "transient"),)).to_json_file(plan_path)
        cache = ArtifactCache.from_spec(f"fault://{plan_path}!{tmp_path / 'cache'}")
        assert isinstance(cache.backend, RetryingBackend)
        assert isinstance(cache.backend.inner, FaultInjectingBackend)
        record = cache.store("alpha", "f" * 12, {"value": 41}, "1")
        assert cache.load("alpha", "f" * 12)[0] == {"value": 41}
        assert record.payload_sha256
        assert cache.backend.retries >= 1  # the injected fault was absorbed


class TestCorruptionSelfHeals:
    def test_corrupt_payload_reads_as_miss_and_store_overwrites(self, tmp_path):
        """A corrupted payload must never be *served*: hash verification
        turns it into a miss, and the recompute's store replaces it."""
        inner = MemoryBackend()
        storm = FaultPlan(
            tuple(
                FaultSpec("get", call, "corrupt", key_prefix="alpha/")
                for call in range(1, 40)
            )
        )
        cache = ArtifactCache(
            backend=FaultInjectingBackend(inner, storm), retry=False
        )
        cache.store("alpha", "f" * 12, {"value": 41}, "1")
        # Every read of the alpha payload is corrupted: verified miss.
        assert cache.load("alpha", "f" * 12) is None
        assert not cache.contains("alpha", "f" * 12)
        # The store itself was clean — an uninjected cache still verifies.
        clean = ArtifactCache(backend=inner, retry=False)
        assert clean.load("alpha", "f" * 12)[0] == {"value": 41}
        # The recompute path: store() over the "corrupt" entry succeeds.
        record = cache.store("alpha", "f" * 12, {"value": 41}, "1")
        assert record.stage == "alpha"


class TestRetryPolicy:
    def test_classification(self):
        policy = RetryPolicy()
        assert policy.is_retryable(TransientBackendError("flaky"))
        assert policy.is_retryable(BackendError("unknown storage fault"))
        assert not policy.is_retryable(PersistentBackendError("disk full"))
        assert not policy.is_retryable(ValueError("a bug"))
        assert not policy.is_retryable(KeyboardInterrupt())

    def test_backoff_ceiling_grows_exponentially_and_caps(self):
        policy = RetryPolicy(base_delay=0.02, multiplier=4.0, max_delay=1.0)
        assert [policy.backoff_ceiling(i) for i in range(4)] == [
            0.02, pytest.approx(0.08), pytest.approx(0.32), 1.0  # 1.28 capped
        ]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)


def flaky_backend(entries, policy, sleeps=None):
    """A retrying stack over a scripted flaky store, with sleeps captured."""
    inner = MemoryBackend()
    inner.put("k", b"payload")
    injector = FaultInjectingBackend(inner, FaultPlan(tuple(entries)))
    recorded = sleeps if sleeps is not None else []
    return RetryingBackend(injector, policy, sleep=recorded.append), recorded


class TestRetryingBackend:
    def test_transient_faults_absorbed_with_bounded_backoff(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.02, multiplier=4.0)
        backend, sleeps = flaky_backend(
            [FaultSpec("get", 1, "transient"), FaultSpec("get", 2, "transient")],
            policy,
        )
        assert backend.get("k") == b"payload"
        assert backend.retries == 2
        assert len(sleeps) == 2
        for index, slept in enumerate(sleeps):
            assert 0.0 <= slept <= policy.backoff_ceiling(index)

    def test_exhaustion_raises_with_full_history(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        backend, _ = flaky_backend(
            [FaultSpec("get", call, "transient") for call in (1, 2, 3)], policy
        )
        with pytest.raises(RetryExhausted) as excinfo:
            backend.get("k")
        assert excinfo.value.operation == "get"
        assert len(excinfo.value.attempts) == 3
        assert "attempt 1" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, TransientBackendError)

    def test_persistent_fault_fails_fast(self):
        backend, sleeps = flaky_backend(
            [FaultSpec("get", 1, "persistent")], RetryPolicy()
        )
        with pytest.raises(PersistentBackendError):
            backend.get("k")
        assert backend.retries == 0
        assert sleeps == []

    def test_non_backend_errors_propagate_untouched(self):
        backend = RetryingBackend(MemoryBackend(), RetryPolicy())
        with pytest.raises(ValueError):  # invalid key, a caller bug
            backend.put("../escape", b"x")
        assert backend.retries == 0

    def test_jitter_is_deterministic_per_seed(self):
        entries = [FaultSpec("get", call, "transient") for call in (1, 2, 3)]
        policy = RetryPolicy(max_attempts=4, seed=42)
        first, first_sleeps = flaky_backend(entries, policy)
        second, second_sleeps = flaky_backend(entries, policy)
        assert first.get("k") == b"payload"
        assert second.get("k") == b"payload"
        assert first_sleeps == second_sleeps
        assert len(first_sleeps) == 3

    def test_with_retries_is_idempotent(self):
        inner = MemoryBackend()
        wrapped = with_retries(inner)
        assert isinstance(wrapped, RetryingBackend)
        assert wrapped.policy is DEFAULT_RETRY_POLICY
        assert with_retries(wrapped) is wrapped  # no nested retry loops


class TestFaultInjectingQueue:
    def queue(self, tmp_path) -> TaskQueue:
        queue = TaskQueue(tmp_path / "queue.sqlite")
        queue.enqueue([
            TaskSpec(task_id="t1", sweep_id="s", wave=0, scenario_id="sc",
                     config=b"c", targets=json.dumps(["section3"]))
        ])
        return queue

    def test_corrupt_on_queue_operations_rejected(self, tmp_path):
        plan = FaultPlan((FaultSpec("heartbeat", 1, "corrupt"),))
        with pytest.raises(ValueError, match="cannot be corrupted"):
            FaultInjectingQueue(self.queue(tmp_path), plan)

    def test_scripted_claim_fault_then_passthrough(self, tmp_path):
        plan = FaultPlan((FaultSpec("claim", 1, "transient"),))
        flaky = FaultInjectingQueue(self.queue(tmp_path), plan)
        with pytest.raises(InjectedQueueFault, match="claim call #1"):
            flaky.claim("w1", 30)
        task = flaky.claim("w1", 30)  # call 2: clean
        assert task.task_id == "t1"
        assert flaky.injections() == {"transient": 1}
        # Uninjected operations delegate straight through.
        assert flaky.counts() == {"running": 1}
        assert flaky.state() == "open"


class TestInterceptStage:
    def test_unknown_stage_rejected(self):
        with pytest.raises(KeyError, match="no stage named"):
            intercept_stage("not-a-stage", lambda: None)

    def test_only_the_named_stage_is_rewritten(self):
        from repro.pipeline import full_stages

        original = full_stages()
        calls = []
        rewritten = intercept_stage("views", calls.append)
        assert [s.name for s in rewritten] == [s.name for s in original]
        by_name = {s.name: s for s in rewritten}
        original_by_name = {s.name: s for s in original}
        for name, spec in by_name.items():
            if name == "views":
                assert spec.compute is not original_by_name[name].compute
                # Fingerprint inputs are untouched: same cache identity.
                assert spec.version == original_by_name[name].version
                assert spec.dependencies == original_by_name[name].dependencies
            else:
                assert spec.compute is original_by_name[name].compute
