"""Unit tests for valley-path analysis and customer-tree metrics."""

import pytest

from repro.bgp.prefixes import Prefix
from repro.core.annotation import ToRAnnotation
from repro.core.customer_tree import (
    customer_tree,
    customer_tree_union_metrics,
    union_of_customer_trees,
    valley_free_path_metrics,
)
from repro.core.observations import ObservedRoute
from repro.core.relationships import AFI, Link, Relationship
from repro.core.valley import (
    PathValidity,
    ValleyAnalyzer,
    ValleyReason,
    validate_path,
)


@pytest.fixture()
def hierarchy():
    """1 on top of 2 and 3 (peers); 2 on top of 4; 3 on top of 5."""
    annotation = ToRAnnotation(AFI.IPV6)
    annotation.set(1, 2, Relationship.P2C)
    annotation.set(1, 3, Relationship.P2C)
    annotation.set(2, 3, Relationship.P2P)
    annotation.set(2, 4, Relationship.P2C)
    annotation.set(3, 5, Relationship.P2C)
    return annotation


class TestValidatePath:
    def test_pure_uphill_path_is_valid(self, hierarchy):
        assert validate_path((4, 2, 1), hierarchy).validity is PathValidity.VALLEY_FREE

    def test_up_peer_down_is_valid(self, hierarchy):
        assert validate_path((4, 2, 3, 5), hierarchy).validity is PathValidity.VALLEY_FREE

    def test_up_down_is_valid(self, hierarchy):
        assert validate_path((4, 2, 1, 3, 5), hierarchy).validity is PathValidity.VALLEY_FREE

    def test_down_then_up_is_a_valley(self, hierarchy):
        validation = validate_path((1, 2, 3), hierarchy)
        # 1->2 is p2c (descending), 2->3 is p2p afterwards: violation.
        assert validation.validity is PathValidity.VALLEY
        assert validation.violating_hop == 1

    def test_peer_then_peer_is_a_valley(self, hierarchy):
        hierarchy.set(3, 6, Relationship.P2P)
        validation = validate_path((2, 3, 6), hierarchy)
        assert validation.validity is PathValidity.VALLEY

    def test_peer_then_up_is_a_valley(self, hierarchy):
        validation = validate_path((2, 3, 1), hierarchy)
        assert validation.validity is PathValidity.VALLEY

    def test_unknown_hop_makes_path_unknown(self, hierarchy):
        validation = validate_path((4, 2, 99), hierarchy)
        assert validation.validity is PathValidity.UNKNOWN
        assert validation.unknown_hops == (1,)

    def test_single_as_path_is_valid(self, hierarchy):
        assert validate_path((4,), hierarchy).validity is PathValidity.VALLEY_FREE

    def test_sibling_hops_are_transparent(self, hierarchy):
        hierarchy.set(4, 40, Relationship.SIBLING)
        assert (
            validate_path((40, 4, 2, 1), hierarchy).validity is PathValidity.VALLEY_FREE
        )


class TestValleyAnalyzer:
    def test_reachability_motivated_classification(self, valley):
        analyzer = ValleyAnalyzer(valley.annotation)
        report = analyzer.analyze_paths([valley.valley_path, valley.valley_free_path])
        assert report.total_paths == 2
        assert report.valley_free_paths == 1
        assert report.valley_count == 1
        classified = report.valley_paths[0]
        assert classified.reason is ValleyReason.REACHABILITY

    def test_policy_violation_classification(self, hierarchy):
        # 4 -> 2 -> 3 -> 5 exists valley-free, so the observed valley
        # 4 2 1 ... wait: craft a valley between nodes that *can* reach
        # each other valley-free: (5, 3, 2, 4) is p2p after descending?
        # 5->3 c2p (up), 3->2 p2p (turn), 2->4 p2c (down) is valley-free;
        # instead use (1, 2, 3, 5): down then peer then down — a valley —
        # while 1 can reach 5 valley-free directly via 3.
        analyzer = ValleyAnalyzer(hierarchy)
        report = analyzer.analyze_paths([(1, 2, 3, 5)])
        assert report.valley_count == 1
        assert report.valley_paths[0].reason is ValleyReason.POLICY_VIOLATION

    def test_analyze_observations_dedup_and_afi_filter(self, hierarchy):
        def observe(path, prefix):
            return ObservedRoute(path=path, prefix=Prefix(prefix), vantage=path[0])

        observations = [
            observe((4, 2, 1), "3fff:1::/32"),
            observe((4, 2, 1), "3fff:2::/32"),   # duplicate path
            observe((1, 2, 3), "3fff:3::/32"),   # valley
            observe((4, 2, 1), "10.0.0.0/20"),   # IPv4: excluded
        ]
        analyzer = ValleyAnalyzer(hierarchy)
        report = analyzer.analyze(observations, afi=AFI.IPV6)
        assert report.total_paths == 2
        assert report.valley_count == 1
        summary = report.summary()
        assert summary["valley_fraction"] == pytest.approx(0.5)

    def test_unknown_paths_counted(self, hierarchy):
        analyzer = ValleyAnalyzer(hierarchy)
        report = analyzer.analyze_paths([(4, 2, 99)])
        assert report.unknown_paths == 1
        assert report.valley_fraction == 0.0

    def test_classify_requires_valley(self, hierarchy):
        analyzer = ValleyAnalyzer(hierarchy)
        validation = validate_path((4, 2, 1), hierarchy)
        with pytest.raises(ValueError):
            analyzer.classify_valley(validation)

    def test_reachability_fraction_empty(self, hierarchy):
        analyzer = ValleyAnalyzer(hierarchy)
        report = analyzer.analyze_paths([(4, 2, 1)])
        assert report.reachability_fraction == 0.0


class TestCustomerTree:
    def test_tree_members_and_edges(self, hierarchy):
        tree = customer_tree(hierarchy, 1)
        assert tree.members == frozenset({1, 2, 3, 4, 5})
        assert Link(1, 2) in tree.edges
        assert tree.depth == 2
        assert tree.size == 5
        assert tree.contains(4)

    def test_leaf_tree_is_trivial(self, hierarchy):
        tree = customer_tree(hierarchy, 4)
        assert tree.members == frozenset({4})
        assert tree.depth == 0
        assert not tree.edges

    def test_figure1_tree_change(self, figure1):
        """Figure 1: flipping AS1-AS2 from p2c to p2p shrinks AS1's tree."""
        tree_p2c = customer_tree(figure1.annotation_p2c, figure1.ROOT)
        tree_p2p = customer_tree(figure1.annotation_p2p, figure1.ROOT)
        assert tree_p2c.members == figure1.expected_tree_p2c
        assert tree_p2p.members == figure1.expected_tree_p2p

    def test_union_of_trees(self, hierarchy):
        union = union_of_customer_trees(hierarchy, roots=[2, 3])
        assert union.members == frozenset({2, 3, 4, 5})
        assert Link(2, 4) in union.edges
        assert Link(1, 2) not in union.edges
        default_union = union_of_customer_trees(hierarchy)
        assert default_union.members == frozenset({1, 2, 3, 4, 5})

    def test_valley_free_path_metrics(self, hierarchy):
        metrics = valley_free_path_metrics(hierarchy, {1, 2, 3, 4, 5})
        assert metrics.diameter >= 2
        assert metrics.average > 0
        assert metrics.reachable_pairs > 0
        assert metrics.measured_sources == 5

    def test_metrics_with_sampling(self, hierarchy):
        metrics = valley_free_path_metrics(hierarchy, {1, 2, 3, 4, 5}, max_sources=2)
        assert metrics.measured_sources == 2

    def test_metrics_empty_set(self, hierarchy):
        metrics = valley_free_path_metrics(hierarchy, set())
        assert metrics.average == 0.0
        assert metrics.diameter == 0

    def test_union_metrics_shrink_when_correcting_misinference(self, figure1):
        """The Figure-2 mechanism in miniature: labelling AS1-AS2 as p2c
        (misinference) inflates the union customer-tree metric compared
        with the correct p2p label."""
        _, mis_metrics = customer_tree_union_metrics(figure1.annotation_p2c)
        _, correct_metrics = customer_tree_union_metrics(figure1.annotation_p2p)
        assert mis_metrics.average >= correct_metrics.average
        assert mis_metrics.diameter >= correct_metrics.diameter
