"""Sweep grid semantics: expansion, stable ids, override validation."""

from __future__ import annotations

import datetime
import json

import pytest

from repro.pipeline import PipelineConfig
from repro.sweep import GridAxis, GridError, SweepGrid, apply_overrides


def base_config() -> PipelineConfig:
    return PipelineConfig()


class TestApplyOverrides:
    def test_top_level_field(self):
        config = apply_overrides(base_config(), {"top": 5})
        assert config.top == 5

    def test_nested_fields(self):
        config = apply_overrides(
            base_config(),
            {"dataset.seed": 11, "dataset.topology.tier2_count": 7},
        )
        assert config.dataset.seed == 11
        assert config.dataset.topology.tier2_count == 7

    def test_original_config_is_untouched(self):
        original = base_config()
        apply_overrides(original, {"dataset.seed": 99})
        assert original.dataset.seed != 99

    def test_unknown_field_names_the_valid_ones(self):
        with pytest.raises(GridError, match="valid:.*top"):
            apply_overrides(base_config(), {"nonsense": 1})

    def test_unknown_nested_field(self):
        with pytest.raises(GridError, match="DatasetConfig has no field"):
            apply_overrides(base_config(), {"dataset.nonsense": 1})

    def test_path_through_non_dataclass(self):
        with pytest.raises(GridError):
            apply_overrides(base_config(), {"top.deeper": 1})

    def test_out_of_range_value_is_loud(self):
        """DatasetConfig.__post_init__ validates fractions; the grid
        surfaces that as a GridError naming the override."""
        with pytest.raises(GridError, match="documented_fraction"):
            apply_overrides(base_config(), {"dataset.documented_fraction": 1.5})

    def test_iso_date_strings_coerce_to_dates(self):
        config = apply_overrides(base_config(), {"dataset.snapshot_date": "2010-09-01"})
        assert config.dataset.snapshot_date == datetime.date(2010, 9, 1)

    def test_bad_date_string_is_loud(self):
        with pytest.raises(GridError, match="ISO date"):
            apply_overrides(base_config(), {"dataset.snapshot_date": "yesterday"})

    def test_int_coerces_to_float_field(self):
        config = apply_overrides(base_config(), {"dataset.documented_fraction": 1})
        assert config.dataset.documented_fraction == 1.0

    def test_malformed_path(self):
        with pytest.raises(GridError, match="malformed"):
            apply_overrides(base_config(), {"dataset..seed": 1})

    def test_non_string_path_is_a_grid_error(self):
        with pytest.raises(GridError, match="malformed"):
            apply_overrides(base_config(), {3: 1})

    def test_string_for_int_field_is_rejected(self):
        """A quoted number ("7" for seed) would silently seed
        random.Random("7") and break bit-identity with the standalone
        run the scenario id names — it must fail eagerly."""
        with pytest.raises(GridError, match="expected an integer"):
            apply_overrides(base_config(), {"dataset.seed": "7"})

    def test_string_for_float_field_is_rejected(self):
        with pytest.raises(GridError, match="expected a number"):
            apply_overrides(base_config(), {"dataset.documented_fraction": "0.5"})

    def test_bool_for_int_field_is_rejected(self):
        with pytest.raises(GridError, match="expected an integer"):
            apply_overrides(base_config(), {"top": True})

    def test_none_passes_through_for_optional_fields(self):
        config = apply_overrides(base_config(), {"max_sources": None})
        assert config.max_sources is None

    def test_whole_section_replacement_is_rejected(self):
        with pytest.raises(GridError, match="dotted paths"):
            apply_overrides(base_config(), {"dataset": {"seed": 1}})


class TestExpansion:
    def grid(self) -> SweepGrid:
        return SweepGrid(
            base_config(),
            [GridAxis("dataset.seed", (1, 2)), GridAxis("top", (3, 5))],
        )

    def test_cartesian_product(self):
        scenarios = self.grid().expand()
        assert len(scenarios) == 4
        assert len(self.grid()) == 4
        configs = {(s.config.dataset.seed, s.config.top) for s in scenarios}
        assert configs == {(1, 3), (1, 5), (2, 3), (2, 5)}

    def test_ids_are_stable_and_readable(self):
        ids = [s.scenario_id for s in self.grid().expand()]
        assert ids == [
            "dataset.seed=1,top=3",
            "dataset.seed=1,top=5",
            "dataset.seed=2,top=3",
            "dataset.seed=2,top=5",
        ]
        # A second expansion of an equal grid yields the same ids.
        assert [s.scenario_id for s in self.grid().expand()] == ids

    def test_overrides_recorded_per_scenario(self):
        first = self.grid().expand()[0]
        assert first.overrides_dict() == {"dataset.seed": 1, "top": 3}

    def test_duplicate_axis_rejected(self):
        with pytest.raises(GridError, match="declared twice"):
            SweepGrid(base_config(), [GridAxis("top", (1,)), GridAxis("top", (2,))])

    def test_empty_axis_rejected(self):
        with pytest.raises(GridError, match="no values"):
            GridAxis("top", ())

    def test_non_string_axis_field_rejected(self):
        with pytest.raises(GridError, match="non-empty string"):
            GridAxis(3, (1, 2))

    def test_bad_axis_value_fails_at_construction(self):
        with pytest.raises(GridError):
            SweepGrid(base_config(), [GridAxis("dataset.origin_fraction", (0.5, 2.0))])


class TestJsonLoading:
    def write(self, tmp_path, payload):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        return path

    def test_round_trip(self, tmp_path):
        path = self.write(
            tmp_path,
            {
                "schema_version": 1,
                "base": {"scale": "small", "overrides": {"max_sources": 10}},
                "axes": [
                    {"field": "dataset.seed", "values": [1, 2]},
                    {"field": "top", "values": [3]},
                ],
            },
        )
        grid = SweepGrid.from_json_file(path)
        assert len(grid) == 2
        assert grid.base.max_sources == 10
        assert [axis.field for axis in grid.axes] == ["dataset.seed", "top"]

    def test_axes_as_mapping(self, tmp_path):
        path = self.write(tmp_path, {"axes": {"top": [1, 2]}})
        grid = SweepGrid.from_json_file(path)
        assert [axis.field for axis in grid.axes] == ["top"]

    def test_missing_file(self, tmp_path):
        with pytest.raises(GridError, match="does not exist"):
            SweepGrid.from_json_file(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text("{oops", encoding="utf-8")
        with pytest.raises(GridError, match="not valid JSON"):
            SweepGrid.from_json_file(path)

    def test_unsupported_schema_version(self, tmp_path):
        path = self.write(tmp_path, {"schema_version": 99, "axes": {"top": [1]}})
        with pytest.raises(GridError, match="schema_version"):
            SweepGrid.from_json_file(path)

    def test_missing_axes(self, tmp_path):
        path = self.write(tmp_path, {"base": {}})
        with pytest.raises(GridError, match="axes"):
            SweepGrid.from_json_file(path)

    def test_unknown_scale(self, tmp_path):
        path = self.write(tmp_path, {"base": {"scale": "huge"}, "axes": {"top": [1]}})
        with pytest.raises(GridError, match="scale"):
            SweepGrid.from_json_file(path)

    def test_malformed_axis_entry(self, tmp_path):
        path = self.write(tmp_path, {"axes": [{"field": "top"}]})
        with pytest.raises(GridError, match="field.*values"):
            SweepGrid.from_json_file(path)

    def test_typod_top_level_key_rejected(self, tmp_path):
        """A typo must not silently sweep the wrong configuration."""
        path = self.write(tmp_path, {"axis": [{"field": "top", "values": [1]}]})
        with pytest.raises(GridError, match="'axis'"):
            SweepGrid.from_json_file(path)

    def test_typod_base_key_rejected(self, tmp_path):
        path = self.write(
            tmp_path,
            {"base": {"scael": "paper"}, "axes": {"top": [1]}},
        )
        with pytest.raises(GridError, match="'scael'"):
            SweepGrid.from_json_file(path)

    def test_typod_axis_key_rejected(self, tmp_path):
        path = self.write(
            tmp_path,
            {"axes": [{"field": "top", "values": [1], "vales": [2]}]},
        )
        with pytest.raises(GridError, match="'vales'"):
            SweepGrid.from_json_file(path)

    def test_non_string_axis_field_in_json(self, tmp_path):
        path = self.write(tmp_path, {"axes": [{"field": 3, "values": [1, 2]}]})
        with pytest.raises(GridError, match="non-empty string"):
            SweepGrid.from_json_file(path)

    def test_spec_dict_reports_shape(self):
        grid = SweepGrid(base_config(), [GridAxis("top", (1, 2, 3))])
        spec = grid.spec_dict()
        assert spec["cells"] == 3
        assert spec["axes"] == [{"field": "top", "values": [1, 2, 3]}]
