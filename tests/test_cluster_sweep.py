"""Distributed sweeps: golden parity, exactly-once, crash recovery.

The acceptance criteria of the cluster subsystem:

* a multi-worker distributed run of the golden 2x2 grid is
  **bit-identical** to the serial sweep, with **exactly-once** stage
  computation asserted via the cache counters,
* a worker killed mid-task loses its lease, the task is re-claimed and
  resumed from the dead worker's cached stages, and the final result is
  still bit-identical,
* the wave barrier + durable queue compose with external workers
  (processes the coordinator did not spawn), and
* ``cache_budget_bytes`` prunes the shared cache after each wave.
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cluster.coordinator import queue_path, run_distributed_sweep
from repro.cluster.queue import TaskQueue, TaskSpec
from repro.cluster.worker import Worker
from repro.datasets import DatasetConfig
from repro.pipeline import ArtifactCache, PipelineConfig, run_pipeline
from repro.sweep import GridAxis, SweepGrid, run_sweep
from repro.topology.generator import TopologyConfig


def tiny_base(seed: int = 5) -> PipelineConfig:
    return PipelineConfig(
        dataset=DatasetConfig(
            topology=TopologyConfig(
                seed=seed, tier1_count=3, tier2_count=8, tier3_count=20
            ),
            seed=seed,
            vantage_points=4,
        ),
        top=3,
        max_sources=10,
    )


def two_by_two() -> SweepGrid:
    """2 seeds x 2 correction depths — the acceptance-criteria grid."""
    return SweepGrid(
        tiny_base(),
        [GridAxis("dataset.seed", (1, 2)), GridAxis("top", (2, 3))],
    )


def cells(result):
    return {r.scenario_id: (r.section3, r.correction) for r in result.results}


class TestDistributedGolden2x2:
    def test_two_worker_run_matches_serial_with_exactly_once(self, tmp_path):
        """The acceptance criterion: 2 spawned worker processes, golden
        2x2 grid, bit-identical cells, exactly-once via counters."""
        grid = two_by_two()
        serial = run_sweep(grid, cache_dir=tmp_path / "serial-cache", executor="serial")
        distributed = run_distributed_sweep(
            grid,
            queue_dir=tmp_path / "queue",
            cache_dir=tmp_path / "cluster-cache",
            local_workers=2,
            lease_seconds=30.0,
            poll_interval=0.05,
        )
        assert [r.status for r in distributed.results] == ["ok"] * 4
        assert distributed.executor == "cluster"
        assert cells(distributed) == cells(serial)
        # Exactly-once: no fingerprint computed twice, and the computed
        # count equals the planner's distinct count.
        assert distributed.duplicate_computes() == {}
        counters = distributed.cache_counters()
        assert counters["computed"] == distributed.plan.distinct_stage_invocations()
        assert (
            counters["computed"] + counters["cached"]
            == distributed.plan.total_stage_invocations()
        )
        # Every task was processed on the first attempt (no lease churn)
        # and every wave respected the barrier ordering.
        tasks = TaskQueue(queue_path(tmp_path / "queue")).tasks()
        assert [t.status for t in tasks] == ["done"] * 4
        assert all(t.attempts == 1 for t in tasks)
        assert distributed.waves == [[p.scenario_id for p in w] for w in distributed.plan.waves]

    def test_run_sweep_cluster_executor_round_trip(self, tmp_path):
        """The run_sweep(executor='cluster') wiring: same grid, one
        spawned worker, warm rerun over the **same queue directory**
        (the resume workflow — the first run closed the queue, the
        second must reopen it) and the same cache is fully cached."""
        grid = SweepGrid(tiny_base(), [GridAxis("top", (2, 3))])
        cold = run_sweep(
            grid,
            cache_dir=tmp_path / "cache",
            executor="cluster",
            queue_dir=tmp_path / "queue",
            workers=1,
        )
        assert not cold.failed()
        warm = run_sweep(
            grid,
            cache_dir=tmp_path / "cache",
            executor="cluster",
            queue_dir=tmp_path / "queue",
            workers=1,
        )
        assert warm.fully_cached()
        assert cells(warm) == cells(cold)

    def test_orphaned_tasks_of_dead_coordinator_are_purged(self, tmp_path):
        """A coordinator that died without cleanup leaves non-terminal
        tasks behind; the next coordinator must purge them instead of
        letting workers burn scenario runtimes on results nobody will
        collect — while keeping terminal rows as post-mortems."""
        queue_dir = tmp_path / "queue"
        queue_dir.mkdir()
        queue = TaskQueue(queue_path(queue_dir))
        queue.enqueue(
            [
                TaskSpec(
                    task_id="dead-sweep/0/ghost",
                    sweep_id="dead-sweep",
                    wave=0,
                    scenario_id="ghost",
                    config=pickle.dumps(tiny_base()),
                    targets=json.dumps(["section3"]),
                    cache_spec=str(tmp_path / "cache"),
                )
            ]
        )
        grid = SweepGrid(tiny_base(), [GridAxis("top", (2,))])
        result = run_distributed_sweep(
            grid,
            queue_dir=queue_dir,
            cache_dir=tmp_path / "cache",
            local_workers=1,
            poll_interval=0.05,
        )
        assert not result.failed()
        # The orphan is gone (never executed), the live sweep's row is
        # kept as a terminal post-mortem record.
        remaining = queue.tasks()
        assert [t.status for t in remaining] == ["done"]
        assert remaining[0].sweep_id != "dead-sweep"


class TestSpawnedWorkerIdentity:
    def test_worker_ids_unique_across_coordinator_generations(
        self, tmp_path, monkeypatch
    ):
        """An orphan of a SIGKILLed coordinator must never share a
        worker id with a successor's worker — the queue's owner guards
        fence zombies by id."""
        import repro.cluster.coordinator as coordinator_module

        captured = []

        class FakeProcess:
            def poll(self):
                return 0

            def wait(self, timeout=None):
                return 0

        def fake_popen(cmd, **kwargs):
            captured.append(cmd[cmd.index("--worker-id") + 1])
            return FakeProcess()

        monkeypatch.setattr(coordinator_module.subprocess, "Popen", fake_popen)
        queue_dir = tmp_path / "queue"
        queue_dir.mkdir()
        for _ in range(2):  # two coordinator generations
            coordinator_module.spawn_local_worker(queue_dir, 0, 30.0)
        assert len(captured) == 2
        assert captured[0] != captured[1]
        assert all(worker_id.startswith("local-0-") for worker_id in captured)


class TestExternalWorkers:
    def test_coordinator_with_in_process_workers(self, tmp_path):
        """local_workers=0: the coordinator only enqueues and waits;
        externally started workers (two in-process threads here, the
        'other machines' shape) drain the queue."""
        import threading

        grid = SweepGrid(tiny_base(), [GridAxis("dataset.seed", (1, 2))])
        queue_dir = tmp_path / "queue"
        queue_dir.mkdir()
        queue = TaskQueue(queue_path(queue_dir))
        workers = [
            Worker(queue, worker_id=f"external-{i}", lease_seconds=30.0,
                   poll_interval=0.02)
            for i in range(2)
        ]
        threads = [
            threading.Thread(target=worker.run, kwargs={"exit_when_closed": True})
            for worker in workers
        ]
        for thread in threads:
            thread.start()
        result = run_distributed_sweep(
            grid,
            queue_dir=queue_dir,
            cache_dir=tmp_path / "cache",
            local_workers=0,
            poll_interval=0.02,
        )
        for thread in threads:
            thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in threads)
        assert [r.status for r in result.results] == ["ok", "ok"]
        assert result.duplicate_computes() == {}


_CRASHY_WORKER_SCRIPT = """
import dataclasses
import sys
import time
from pathlib import Path

sys.path.insert(0, {source_root!r})

from repro.cluster.worker import Worker
from repro.pipeline import full_stages

flag = Path({flag!r})
marker = Path({marker!r})


def slow_stages():
    stages = []
    for spec in full_stages():
        if spec.name == "views":
            original = spec.compute

            def compute(run, _original=original):
                if flag.exists():
                    marker.touch()   # tell the test we are mid-task
                    time.sleep(300)  # ... and hang until SIGKILLed
                return _original(run)

            spec = dataclasses.replace(spec, compute=compute)
        stages.append(spec)
    return stages


Worker(
    {queue!r},
    worker_id="crashy",
    lease_seconds=2.0,
    poll_interval=0.05,
    stages=slow_stages(),
).run(max_tasks=1, exit_when_closed=False, max_idle_seconds=60.0)
"""


class TestWorkerCrashRecovery:
    def test_killed_worker_lease_expires_and_task_is_resumed(self, tmp_path):
        """Kill a worker mid-task (SIGKILL, no cleanup): the lease must
        expire, the task must be re-claimed with attempts=2, the heir
        must resume from the dead worker's cached stages, and the final
        report must be bit-identical to a standalone run — with no
        duplicate computes in the heir's accounting."""
        import repro

        source_root = str(Path(repro.__file__).resolve().parent.parent)
        queue_dir = tmp_path / "queue"
        queue_dir.mkdir()
        queue_file = queue_path(queue_dir)
        cache_dir = tmp_path / "cache"
        flag = tmp_path / "hang.flag"
        marker = tmp_path / "mid-task.marker"
        flag.touch()

        config = tiny_base()
        queue = TaskQueue(queue_file)
        queue.enqueue(
            [
                TaskSpec(
                    task_id="sweep/0/cell",
                    sweep_id="sweep",
                    wave=0,
                    scenario_id="cell",
                    config=pickle.dumps(config),
                    targets=json.dumps(["section3"]),
                    cache_spec=str(cache_dir),
                    max_attempts=3,
                )
            ]
        )

        script = _CRASHY_WORKER_SCRIPT.format(
            source_root=source_root,
            flag=str(flag),
            marker=str(marker),
            queue=str(queue_file),
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = source_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [sys.executable, "-c", script], env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 120
            while not marker.exists():
                assert time.monotonic() < deadline, "worker never reached the stage"
                assert process.poll() is None, "crashy worker exited prematurely"
                time.sleep(0.05)
            # Mid-task by construction: claimed, upstream stages cached,
            # the views stage hanging.  Kill without any cleanup.
            running = queue.get("sweep/0/cell")
            assert running.status == "running"
            assert running.owner == "crashy"
            assert running.attempts == 1
            process.send_signal(signal.SIGKILL)
            process.wait()
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
        flag.unlink()  # the heir must not hang

        # The dead worker published its completed prefix to the cache.
        cached_before_recovery = ArtifactCache(cache_dir).entries()
        assert "store" in cached_before_recovery
        assert "views" not in cached_before_recovery  # died inside views

        # A healthy worker re-claims after lease expiry and finishes.
        heir = Worker(queue, worker_id="heir", lease_seconds=30.0, poll_interval=0.05)
        processed = heir.run(max_tasks=1, exit_when_closed=False, max_idle_seconds=30.0)
        assert processed == 1

        task = queue.get("sweep/0/cell")
        assert task.status == "done"
        assert task.attempts == 2  # the retry, not a silent first run
        payload = task.result
        assert payload["status"] == "ok"
        # Resume, not recompute: everything the dead worker cached was
        # reused; only the in-flight suffix was computed — exactly once.
        assert payload["stage_statuses"]["topology"] == "cached"
        assert payload["stage_statuses"]["store"] == "cached"
        assert payload["stage_statuses"]["views"] == "computed"
        assert payload["stage_statuses"]["section3"] == "computed"

        # And the final grid is bit-identical to a standalone run.
        reference = run_pipeline(config, targets=("section3",))
        assert payload["section3"] == reference.value("section3").as_dict()


class TestCacheBudget:
    def test_budget_prunes_after_each_wave(self, tmp_path):
        """--cache-budget-bytes automation: after the sweep the cache
        fits the budget; scenarios still all succeed (evictions are
        misses, never errors)."""
        grid = SweepGrid(tiny_base(), [GridAxis("top", (2, 3))])
        cache_dir = tmp_path / "cache"
        result = run_sweep(
            grid, cache_dir=cache_dir, executor="serial", cache_budget_bytes=1
        )
        assert [r.status for r in result.results] == ["ok", "ok"]
        assert ArtifactCache(cache_dir).stats().total_bytes <= 1

    def test_generous_budget_preserves_exactly_once(self, tmp_path):
        grid = SweepGrid(tiny_base(), [GridAxis("top", (2, 3))])
        result = run_sweep(
            grid,
            cache_dir=tmp_path / "cache",
            executor="serial",
            cache_budget_bytes=10 ** 9,
        )
        assert result.duplicate_computes() == {}
        stats = ArtifactCache(tmp_path / "cache").stats()
        assert 0 < stats.total_bytes <= 10 ** 9

    def test_budget_works_distributed(self, tmp_path):
        grid = SweepGrid(tiny_base(), [GridAxis("top", (2,))])
        result = run_sweep(
            grid,
            cache_dir=tmp_path / "cache",
            executor="cluster",
            queue_dir=tmp_path / "queue",
            workers=1,
            cache_budget_bytes=1,
        )
        assert not result.failed()
        assert ArtifactCache(tmp_path / "cache").stats().total_bytes <= 1


class TestValidation:
    def test_cluster_requires_queue_dir(self, tmp_path):
        grid = SweepGrid(tiny_base(), [GridAxis("top", (2,))])
        with pytest.raises(ValueError, match="queue_dir"):
            run_sweep(grid, cache_dir=tmp_path, executor="cluster")

    def test_cluster_requires_cache_dir(self, tmp_path):
        grid = SweepGrid(tiny_base(), [GridAxis("top", (2,))])
        with pytest.raises(ValueError, match="cache_dir"):
            run_sweep(grid, executor="cluster", queue_dir=tmp_path)

    def test_cluster_rejects_custom_stages(self, tmp_path):
        from repro.pipeline import full_stages

        grid = SweepGrid(tiny_base(), [GridAxis("top", (2,))])
        with pytest.raises(ValueError, match="default stage DAG"):
            run_sweep(
                grid,
                cache_dir=tmp_path / "cache",
                executor="cluster",
                queue_dir=tmp_path / "queue",
                stages=full_stages(),
            )

    def test_queue_dir_rejected_for_local_executors(self, tmp_path):
        grid = SweepGrid(tiny_base(), [GridAxis("top", (2,))])
        with pytest.raises(ValueError, match="queue_dir"):
            run_sweep(grid, executor="serial", queue_dir=tmp_path)

    def test_budget_requires_cache(self):
        grid = SweepGrid(tiny_base(), [GridAxis("top", (2,))])
        with pytest.raises(ValueError, match="cache_budget_bytes"):
            run_sweep(grid, executor="serial", cache_budget_bytes=100)
