"""Unit tests for the analysis pipeline: extraction, links, reports, partition."""

import pytest

from repro.analysis.links import (
    build_link_inventory,
    endpoint_ases,
    links_between,
    links_of,
)
from repro.analysis.partition import analyze_reachability, compare_relaxation
from repro.analysis.paths import (
    extract_observations,
    observation_from_record,
    distinct_paths,
    paths_by_origin,
)
from repro.analysis.report import format_series, format_summary, format_table, to_json
from repro.bgp.attributes import ASPath, Community
from repro.bgp.prefixes import Prefix
from repro.collectors.mrt import TableDumpRecord
from repro.core.annotation import ToRAnnotation
from repro.core.observations import ObservedRoute
from repro.core.relationships import AFI, Link, Relationship


def record(path, prefix="3fff:77::/32", peer_as=None, local_pref=200):
    peer_as = peer_as if peer_as is not None else path[0]
    return TableDumpRecord(
        timestamp=1282262400,
        peer_ip="2001:db8::1",
        peer_as=peer_as,
        prefix=Prefix(prefix),
        as_path=ASPath(path),
        local_pref=local_pref,
        communities=(Community(path[0], 100),),
        collector="route-views6",
    )


class TestPathExtraction:
    def test_observation_from_record_basic(self):
        observation = observation_from_record(record([10, 20, 30]))
        assert observation.path == (10, 20, 30)
        assert observation.vantage == 10
        assert observation.local_pref == 200
        assert observation.communities == (Community(10, 100),)

    def test_prepending_collapsed(self):
        observation = observation_from_record(record([10, 20, 20, 30]))
        assert observation.path == (10, 20, 30)

    def test_looped_path_dropped(self):
        assert observation_from_record(record([10, 20, 10, 30])) is None

    def test_local_pref_values_survive_extraction(self):
        # A genuinely exported LOCAL_PREF 0 is kept distinct from a feed
        # that does not export the attribute at all.
        observation = observation_from_record(record([10, 20], local_pref=0))
        assert observation.local_pref == 0
        observation = observation_from_record(record([10, 20], local_pref=None))
        assert observation.local_pref is None

    def test_missing_vantage_hop_reanchored(self):
        observation = observation_from_record(record([20, 30], peer_as=10))
        assert observation.path == (10, 20, 30)
        assert observation.vantage == 10

    def test_extract_observations_counters_and_dedup(self):
        records = [
            record([10, 20, 30]),
            record([10, 20, 30]),              # duplicate
            record([10, 20, 10, 30]),          # loop
            record([11, 20, 30], prefix="10.3.0.0/20"),
        ]
        result = extract_observations(records, deduplicate=True)
        assert result.stats.records == 4
        assert result.stats.looped_paths == 1
        assert result.stats.observations == 2
        assert result.stats.distinct_paths == 2
        assert len(result) == 2

    def test_dedup_merges_duplicate_attributes(self):
        """A stripped copy must not shadow one carrying LOCAL_PREF/communities."""
        base = dict(
            timestamp=1282262400,
            peer_ip="2001:db8::1",
            peer_as=10,
            prefix=Prefix("3fff:77::/32"),
            as_path=ASPath([10, 20]),
        )
        poor = TableDumpRecord(**base, local_pref=None, communities=())
        rich = TableDumpRecord(
            **base, local_pref=200, communities=(Community(10, 100),)
        )
        for ordering in ([poor, rich], [rich, poor]):
            result = extract_observations(ordering, deduplicate=True)
            assert result.stats.observations == 1
            assert result.observations[0].local_pref == 200
            assert result.observations[0].communities == (Community(10, 100),)
        # Complementary duplicates: each copy carries an attribute the
        # other lacks; the merge must preserve both.
        lp_only = TableDumpRecord(**base, local_pref=120, communities=())
        comm_only = TableDumpRecord(
            **base, local_pref=None, communities=(Community(20, 300),)
        )
        result = extract_observations([lp_only, comm_only], deduplicate=True)
        assert result.stats.observations == 1
        assert result.observations[0].local_pref == 120
        assert result.observations[0].communities == (Community(20, 300),)

    def test_extract_with_afi_filter(self):
        records = [record([10, 20, 30]), record([11, 20], prefix="10.3.0.0/20")]
        result = extract_observations(records, afi=AFI.IPV6)
        assert all(obs.afi is AFI.IPV6 for obs in result)

    def test_distinct_paths_and_by_origin(self):
        observations = [
            ObservedRoute(path=(1, 2, 3), prefix=Prefix("3fff:1::/32"), vantage=1),
            ObservedRoute(path=(1, 2, 3), prefix=Prefix("3fff:2::/32"), vantage=1),
            ObservedRoute(path=(4, 2, 3), prefix=Prefix("3fff:1::/32"), vantage=4),
        ]
        assert distinct_paths(observations) == [(1, 2, 3), (4, 2, 3)]
        assert paths_by_origin(observations) == {3: [(1, 2, 3), (4, 2, 3)]}


class TestLinkInventory:
    def make_observations(self):
        return [
            ObservedRoute(path=(1, 2, 3), prefix=Prefix("3fff:1::/32"), vantage=1),
            ObservedRoute(path=(1, 2, 4), prefix=Prefix("10.1.0.0/20"), vantage=1),
            ObservedRoute(path=(5, 2), prefix=Prefix("10.2.0.0/20"), vantage=5),
        ]

    def test_inventory_sets(self):
        inventory = build_link_inventory(self.make_observations())
        assert inventory.ipv6_links == {Link(1, 2), Link(2, 3)}
        assert inventory.ipv4_links == {Link(1, 2), Link(2, 4), Link(2, 5)}
        assert inventory.dual_stack_links == {Link(1, 2)}
        assert inventory.ipv6_only_links == {Link(2, 3)}
        assert inventory.summary()["dual_stack_links"] == 1

    def test_links_of_and_helpers(self):
        observations = self.make_observations()
        assert links_of(observations, AFI.IPV6) == {Link(1, 2), Link(2, 3)}
        assert endpoint_ases([Link(1, 2), Link(2, 3)]) == {1, 2, 3}
        assert links_between([Link(1, 2), Link(2, 3)], [1, 2]) == {Link(1, 2)}


class TestReachabilityPartition:
    def connected_annotation(self):
        annotation = ToRAnnotation(AFI.IPV6)
        annotation.set(1, 2, Relationship.P2C)
        annotation.set(1, 3, Relationship.P2C)
        return annotation

    def partitioned_annotation(self):
        annotation = ToRAnnotation(AFI.IPV6)
        annotation.set(1, 2, Relationship.P2C)   # island {1, 2}
        annotation.set(3, 4, Relationship.P2C)   # island {3, 4}
        return annotation

    def test_fully_connected(self):
        report = analyze_reachability(self.connected_annotation())
        assert report.reachable_fraction == 1.0
        assert not report.is_partitioned
        assert report.island_count == 1
        assert report.fully_reachable_ases == 3

    def test_partitioned(self):
        report = analyze_reachability(self.partitioned_annotation())
        assert report.is_partitioned
        assert report.island_count == 2
        assert report.island_sizes == [2, 2]
        assert report.reachable_fraction == pytest.approx(4 / 12)
        assert report.unreachable_examples

    def test_single_as(self):
        annotation = ToRAnnotation(AFI.IPV6)
        report = analyze_reachability(annotation, ases=[42])
        assert report.ordered_pairs == 0
        assert report.reachable_fraction == 0.0

    def test_two_peer_hops_partition(self):
        annotation = ToRAnnotation(AFI.IPV6)
        annotation.set(1, 2, Relationship.P2P)
        annotation.set(2, 3, Relationship.P2P)
        report = analyze_reachability(annotation)
        assert report.is_partitioned  # 1 cannot reach 3 valley-free

    def test_compare_relaxation(self):
        report = compare_relaxation(self.partitioned_annotation(), 12)
        assert report["pairs_gained_by_relaxation"] == pytest.approx(8.0)
        assert report["strict_fraction"] == pytest.approx(4 / 12)

    def test_summary(self):
        summary = analyze_reachability(self.partitioned_annotation()).summary()
        assert summary["island_count"] == 2.0
        assert summary["largest_island"] == 2.0


class TestReportFormatting:
    def test_format_table(self):
        text = format_table([("paths", "100"), ("links", "20")], title="Totals")
        assert "Totals" in text
        assert "paths" in text and "100" in text
        assert text.count("\n") >= 4

    def test_format_summary_percentages(self):
        text = format_summary({"valley_fraction": 0.131, "links": 20})
        assert "13.1%" in text
        assert "20" in text

    def test_format_series(self):
        text = format_series(
            "corrected", {"average": [3.8, 2.2], "diameter": [11, 7]}, title="Figure 2"
        )
        assert "Figure 2" in text
        assert "3.800" in text
        assert "7" in text

    def test_format_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("x", {"a": [1], "b": [1, 2]})

    def test_to_json_handles_enums_and_sets(self):
        text = to_json({"relationship": Relationship.P2C, "links": {Link(1, 2)}})
        assert "p2c" in text
        assert "AS1-AS2" in text
