"""Task-queue semantics: claims, leases, heartbeats, retries, drain.

The queue's contract (see :mod:`repro.cluster.queue`): exactly one
worker holds a task at a time, a dead worker's lease lapses and the
task is re-claimed with ``attempts`` incremented, attempts are capped
(``dead``), and every owner-guarded transition rejects a zombie whose
lease moved on without it.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.cluster.queue import QueueError, TaskQueue, TaskSpec


def spec(task_id: str, wave: int = 0, max_attempts: int = 3) -> TaskSpec:
    return TaskSpec(
        task_id=task_id,
        sweep_id="sweep",
        wave=wave,
        scenario_id=f"scenario-{task_id}",
        config=b"pickled-config",
        targets=json.dumps(["section3"]),
        cache_spec="/tmp/cache",
        max_attempts=max_attempts,
    )


@pytest.fixture()
def queue(tmp_path):
    return TaskQueue(tmp_path / "queue.sqlite")


class TestLifecycle:
    def test_claim_complete_roundtrip(self, queue):
        queue.enqueue([spec("t1")])
        task = queue.claim("w1", lease_seconds=30)
        assert task.task_id == "t1"
        assert task.status == "running"
        assert task.owner == "w1"
        assert task.attempts == 1
        assert task.targets_tuple() == ("section3",)
        assert queue.claim("w2", lease_seconds=30) is None  # exclusive
        assert queue.complete("t1", "w1", {"status": "ok"})
        done = queue.get("t1")
        assert done.status == "done"
        assert done.terminal
        assert done.result == {"status": "ok"}

    def test_claim_order_is_wave_then_fifo(self, queue):
        queue.enqueue([spec("b", wave=1), spec("a", wave=0), spec("c", wave=0)])
        claimed = [queue.claim(f"w{i}", 30).task_id for i in range(3)]
        assert claimed == ["a", "c", "b"]

    def test_duplicate_enqueue_rejected(self, queue):
        queue.enqueue([spec("t1")])
        with pytest.raises(QueueError, match="already enqueued"):
            queue.enqueue([spec("t1")])

    def test_counts_and_tasks_filters(self, queue):
        queue.enqueue([spec("t1", wave=0), spec("t2", wave=1)])
        queue.claim("w1", 30)
        assert queue.counts() == {"pending": 1, "running": 1}
        assert queue.counts(wave=1) == {"pending": 1}
        assert [t.task_id for t in queue.tasks(sweep_id="sweep", wave=0)] == ["t1"]
        assert queue.tasks(sweep_id="other") == []


class TestLeases:
    def test_expired_lease_is_reclaimed_with_attempt_bump(self, queue):
        queue.enqueue([spec("t1")])
        first = queue.claim("w1", lease_seconds=30, now=1000.0)
        assert first.attempts == 1
        # Within the lease nothing is claimable ...
        assert queue.claim("w2", lease_seconds=30, now=1010.0) is None
        # ... after expiry the next claim gets the task back.
        second = queue.claim("w2", lease_seconds=30, now=1031.0)
        assert second.task_id == "t1"
        assert second.owner == "w2"
        assert second.attempts == 2

    def test_heartbeat_extends_the_lease(self, queue):
        queue.enqueue([spec("t1")])
        queue.claim("w1", lease_seconds=5, now=1000.0)
        assert queue.heartbeat("t1", "w1", lease_seconds=1000)
        # Far past the original lease, still not claimable.
        assert queue.claim("w2", lease_seconds=5, now=1500.0) is None

    def test_zombie_cannot_complete_heartbeat_or_fail(self, queue):
        """A worker that lost its lease must be rejected everywhere."""
        queue.enqueue([spec("t1")])
        queue.claim("w1", lease_seconds=30, now=1000.0)
        reclaimed = queue.claim("w2", lease_seconds=30, now=2000.0)
        assert reclaimed.owner == "w2"
        assert not queue.heartbeat("t1", "w1", 30)
        assert not queue.complete("t1", "w1", {"status": "ok"})
        assert queue.fail("t1", "w1", "boom") == "lost"
        # The heir is unaffected.
        assert queue.complete("t1", "w2", {"status": "ok"})

    def test_attempts_exhaustion_marks_dead(self, queue):
        queue.enqueue([spec("t1", max_attempts=2)])
        queue.claim("w1", lease_seconds=10, now=1000.0)
        queue.claim("w2", lease_seconds=10, now=2000.0)  # attempt 2
        # Second lease expires too: attempts are exhausted -> dead.
        assert queue.claim("w3", lease_seconds=10, now=3000.0) is None
        task = queue.get("t1")
        assert task.status == "dead"
        assert task.terminal
        assert "lease expired" in task.error

    def test_fail_retries_until_attempts_exhausted(self, queue):
        queue.enqueue([spec("t1", max_attempts=2)])
        queue.claim("w1", 30)
        assert queue.fail("t1", "w1", "transient") == "pending"
        queue.claim("w1", 30)
        assert queue.fail("t1", "w1", "transient again") == "dead"
        assert queue.get("t1").status == "dead"


class TestControl:
    def test_open_close_reopen(self, queue):
        assert queue.state() == "open"
        queue.close()
        assert queue.state() == "closed"
        queue.reopen()
        assert queue.state() == "open"

    def test_purge_abandoned_keeps_own_rows_and_foreign_dead_only(self, queue):
        queue.enqueue([spec("mine"), spec("orphan-pending")])
        # A foreign sweep's rows: done, pending->running, pending, dead.
        for task_id in ("done-t", "pend-t", "run-t", "dead-t"):
            queue.enqueue(
                [TaskSpec(task_id=task_id, sweep_id="old", wave=0,
                          scenario_id=task_id, config=b"c",
                          targets=json.dumps(["section3"]), max_attempts=1)]
            )
        # drive the rows into a status mix (claims go wave/rowid order)
        assert queue.claim("w", 30).task_id == "mine"
        assert queue.claim("w", 30).task_id == "orphan-pending"
        assert queue.claim("w", 30).task_id == "done-t"
        queue.complete("done-t", "w", {"status": "ok"})
        assert queue.claim("w2", 30).task_id == "pend-t"  # now running
        assert queue.claim("w3", 30).task_id == "run-t"
        assert queue.fail("run-t", "w3", "boom") == "dead"  # max_attempts=1
        assert queue.claim("w4", 30).task_id == "dead-t"
        assert queue.fail("dead-t", "w4", "boom") == "dead"
        queue.fail("mine", "w", "release")  # back to pending (attempts<max)
        queue.fail("orphan-pending", "w", "release")
        # purge as the "sweep" coordinator: its own rows survive;
        # the foreign sweep keeps only its dead rows (post-mortems) —
        # done-t (collected long ago), pend-t (running by a worker of
        # the dead sweep) and nothing else remain to starve the barrier.
        removed = queue.purge_abandoned("sweep")
        assert removed == 2  # done-t + pend-t
        statuses = {t.task_id: t.status for t in queue.tasks()}
        assert statuses == {
            "mine": "pending", "orphan-pending": "pending",
            "run-t": "dead", "dead-t": "dead",
        }

    def test_closed_queue_still_drains(self, queue):
        """Close is a drain signal, not an abort: enqueued work still
        gets claimed and completed."""
        queue.enqueue([spec("t1")])
        queue.close()
        task = queue.claim("w1", 30)
        assert task is not None
        assert queue.complete("t1", "w1", {"status": "ok"})


class TestWorkerIdleSemantics:
    def test_running_tasks_block_idle_exit(self, queue, tmp_path):
        """A sweep in progress (a sibling holding a running task) must
        not count as idle — long waves cannot shed their worker pool —
        while an empty queue trips the idle bound promptly."""
        import threading
        import time as _time

        from repro.cluster.worker import Worker

        queue.enqueue([spec("t1")])
        assert queue.claim("sibling", lease_seconds=300).task_id == "t1"
        worker = Worker(queue, worker_id="idler", poll_interval=0.02)
        done = threading.Event()

        def run() -> None:
            worker.run(exit_when_closed=False, max_idle_seconds=0.2)
            done.set()

        thread = threading.Thread(target=run)
        thread.start()
        # Well past the idle bound: the sibling's running task keeps
        # the idler alive.
        assert not done.wait(1.0)
        queue.complete("t1", "sibling", {"status": "ok"})
        # With no live work left the idle bound fires.
        assert done.wait(10.0)
        thread.join()


class TestConcurrency:
    def test_parallel_claims_hand_out_distinct_tasks(self, queue):
        queue.enqueue([spec(f"t{i}") for i in range(8)])
        claimed = []
        claimed_lock = threading.Lock()

        def worker(owner: str) -> None:
            while True:
                task = queue.claim(owner, 30)
                if task is None:
                    return
                with claimed_lock:
                    claimed.append(task.task_id)

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(claimed) == [f"t{i}" for i in range(8)]
        assert len(set(claimed)) == 8  # nothing claimed twice
