"""Task-queue semantics: claims, leases, heartbeats, retries, drain.

The queue's contract (see :mod:`repro.cluster.queue`): exactly one
worker holds a task at a time, a dead worker's lease lapses and the
task is re-claimed with ``attempts`` incremented, attempts are capped
(``dead``), and every owner-guarded transition rejects a zombie whose
lease moved on without it.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.cluster.queue import (
    QUEUE_SCHEMA_VERSION,
    QueueError,
    TaskQueue,
    TaskSpec,
)


def spec(task_id: str, wave: int = 0, max_attempts: int = 3) -> TaskSpec:
    return TaskSpec(
        task_id=task_id,
        sweep_id="sweep",
        wave=wave,
        scenario_id=f"scenario-{task_id}",
        config=b"pickled-config",
        targets=json.dumps(["section3"]),
        cache_spec="/tmp/cache",
        max_attempts=max_attempts,
    )


@pytest.fixture()
def queue(tmp_path):
    return TaskQueue(tmp_path / "queue.sqlite")


class TestLifecycle:
    def test_claim_complete_roundtrip(self, queue):
        queue.enqueue([spec("t1")])
        task = queue.claim("w1", lease_seconds=30)
        assert task.task_id == "t1"
        assert task.status == "running"
        assert task.owner == "w1"
        assert task.attempts == 1
        assert task.targets_tuple() == ("section3",)
        assert queue.claim("w2", lease_seconds=30) is None  # exclusive
        assert queue.complete("t1", "w1", {"status": "ok"})
        done = queue.get("t1")
        assert done.status == "done"
        assert done.terminal
        assert done.result == {"status": "ok"}

    def test_claim_order_is_wave_then_fifo(self, queue):
        queue.enqueue([spec("b", wave=1), spec("a", wave=0), spec("c", wave=0)])
        claimed = [queue.claim(f"w{i}", 30).task_id for i in range(3)]
        assert claimed == ["a", "c", "b"]

    def test_duplicate_enqueue_rejected(self, queue):
        queue.enqueue([spec("t1")])
        with pytest.raises(QueueError, match="already enqueued"):
            queue.enqueue([spec("t1")])

    def test_counts_and_tasks_filters(self, queue):
        queue.enqueue([spec("t1", wave=0), spec("t2", wave=1)])
        queue.claim("w1", 30)
        assert queue.counts() == {"pending": 1, "running": 1}
        assert queue.counts(wave=1) == {"pending": 1}
        assert [t.task_id for t in queue.tasks(sweep_id="sweep", wave=0)] == ["t1"]
        assert queue.tasks(sweep_id="other") == []


class TestLeases:
    def test_expired_lease_is_reclaimed_with_attempt_bump(self, queue):
        queue.enqueue([spec("t1")])
        first = queue.claim("w1", lease_seconds=30, now=1000.0)
        assert first.attempts == 1
        # Within the lease nothing is claimable ...
        assert queue.claim("w2", lease_seconds=30, now=1010.0) is None
        # ... after expiry the next claim gets the task back.
        second = queue.claim("w2", lease_seconds=30, now=1031.0)
        assert second.task_id == "t1"
        assert second.owner == "w2"
        assert second.attempts == 2

    def test_heartbeat_extends_the_lease(self, queue):
        queue.enqueue([spec("t1")])
        queue.claim("w1", lease_seconds=5, now=1000.0)
        assert queue.heartbeat("t1", "w1", lease_seconds=1000)
        # Far past the original lease, still not claimable.
        assert queue.claim("w2", lease_seconds=5, now=1500.0) is None

    def test_zombie_cannot_complete_heartbeat_or_fail(self, queue):
        """A worker that lost its lease must be rejected everywhere."""
        queue.enqueue([spec("t1")])
        queue.claim("w1", lease_seconds=30, now=1000.0)
        reclaimed = queue.claim("w2", lease_seconds=30, now=2000.0)
        assert reclaimed.owner == "w2"
        assert not queue.heartbeat("t1", "w1", 30)
        assert not queue.complete("t1", "w1", {"status": "ok"})
        assert queue.fail("t1", "w1", "boom") == "lost"
        # The heir is unaffected.
        assert queue.complete("t1", "w2", {"status": "ok"})

    def test_attempts_exhaustion_marks_dead(self, queue):
        queue.enqueue([spec("t1", max_attempts=2)])
        queue.claim("w1", lease_seconds=10, now=1000.0)
        queue.claim("w2", lease_seconds=10, now=2000.0)  # attempt 2
        # Second lease expires too: attempts are exhausted -> dead.
        assert queue.claim("w3", lease_seconds=10, now=3000.0) is None
        task = queue.get("t1")
        assert task.status == "dead"
        assert task.terminal
        assert "lease expired" in task.error

    def test_fail_retries_until_attempts_exhausted(self, queue):
        queue.enqueue([spec("t1", max_attempts=2)])
        queue.claim("w1", 30)
        assert queue.fail("t1", "w1", "transient") == "pending"
        queue.claim("w1", 30)
        assert queue.fail("t1", "w1", "transient again") == "dead"
        assert queue.get("t1").status == "dead"


class TestControl:
    def test_open_close_reopen(self, queue):
        assert queue.state() == "open"
        queue.close()
        assert queue.state() == "closed"
        queue.reopen()
        assert queue.state() == "open"

    def test_purge_abandoned_keeps_own_rows_and_foreign_dead_only(self, queue):
        queue.enqueue([spec("mine"), spec("orphan-pending")])
        # A foreign sweep's rows: done, pending->running, pending, dead.
        for task_id in ("done-t", "pend-t", "run-t", "dead-t"):
            queue.enqueue(
                [TaskSpec(task_id=task_id, sweep_id="old", wave=0,
                          scenario_id=task_id, config=b"c",
                          targets=json.dumps(["section3"]), max_attempts=1)]
            )
        # drive the rows into a status mix (claims go wave/rowid order)
        assert queue.claim("w", 30).task_id == "mine"
        assert queue.claim("w", 30).task_id == "orphan-pending"
        assert queue.claim("w", 30).task_id == "done-t"
        queue.complete("done-t", "w", {"status": "ok"})
        assert queue.claim("w2", 30).task_id == "pend-t"  # now running
        assert queue.claim("w3", 30).task_id == "run-t"
        assert queue.fail("run-t", "w3", "boom") == "dead"  # max_attempts=1
        assert queue.claim("w4", 30).task_id == "dead-t"
        assert queue.fail("dead-t", "w4", "boom") == "dead"
        queue.fail("mine", "w", "release")  # back to pending (attempts<max)
        queue.fail("orphan-pending", "w", "release")
        # purge as the "sweep" coordinator: its own rows survive;
        # the foreign sweep keeps only its dead rows (post-mortems) —
        # done-t (collected long ago), pend-t (running by a worker of
        # the dead sweep) and nothing else remain to starve the barrier.
        removed = queue.purge_abandoned("sweep")
        assert removed == 2  # done-t + pend-t
        statuses = {t.task_id: t.status for t in queue.tasks()}
        assert statuses == {
            "mine": "pending", "orphan-pending": "pending",
            "run-t": "dead", "dead-t": "dead",
        }

    def test_closed_queue_still_drains(self, queue):
        """Close is a drain signal, not an abort: enqueued work still
        gets claimed and completed."""
        queue.enqueue([spec("t1")])
        queue.close()
        task = queue.claim("w1", 30)
        assert task is not None
        assert queue.complete("t1", "w1", {"status": "ok"})


class TestWorkerIdleSemantics:
    def test_running_tasks_block_idle_exit(self, queue, tmp_path):
        """A sweep in progress (a sibling holding a running task) must
        not count as idle — long waves cannot shed their worker pool —
        while an empty queue trips the idle bound promptly."""
        import threading
        import time as _time

        from repro.cluster.worker import Worker

        queue.enqueue([spec("t1")])
        assert queue.claim("sibling", lease_seconds=300).task_id == "t1"
        worker = Worker(queue, worker_id="idler", poll_interval=0.02)
        done = threading.Event()

        def run() -> None:
            worker.run(exit_when_closed=False, max_idle_seconds=0.2)
            done.set()

        thread = threading.Thread(target=run)
        thread.start()
        # Well past the idle bound: the sibling's running task keeps
        # the idler alive.
        assert not done.wait(1.0)
        queue.complete("t1", "sibling", {"status": "ok"})
        # With no live work left the idle bound fires.
        assert done.wait(10.0)
        thread.join()


class TestConcurrency:
    def test_parallel_claims_hand_out_distinct_tasks(self, queue):
        queue.enqueue([spec(f"t{i}") for i in range(8)])
        claimed = []
        claimed_lock = threading.Lock()

        def worker(owner: str) -> None:
            while True:
                task = queue.claim(owner, 30)
                if task is None:
                    return
                with claimed_lock:
                    claimed.append(task.task_id)

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(claimed) == [f"t{i}" for i in range(8)]
        assert len(set(claimed)) == 8  # nothing claimed twice


class TestRelease:
    """The graceful-drain transition: hand the task back, refund the
    attempt, leave a diagnostic trace."""

    def test_release_returns_task_with_attempt_refund(self, queue):
        queue.enqueue([spec("t1")])
        task = queue.claim("w1", 30)
        assert task.attempts == 1
        assert queue.release("t1", "w1", "graceful drain")
        released = queue.get("t1")
        assert released.status == "pending"
        assert released.attempts == 0  # refunded: draining is not a failure
        assert released.owner is None
        assert [entry["error"] for entry in released.attempts_log] == [
            "released: graceful drain"
        ]
        # Immediately reclaimable, and the attempt count restarts at 1.
        assert queue.claim("w2", 30).attempts == 1

    def test_release_is_owner_guarded(self, queue):
        queue.enqueue([spec("t1")])
        queue.claim("w1", 30)
        assert not queue.release("t1", "not-the-owner")
        assert queue.get("t1").status == "running"
        # A zombie whose lease moved on cannot release the heir's claim.
        queue.release("t1", "w1")
        queue.claim("w2", 30)
        assert not queue.release("t1", "w1")

    def test_repeated_releases_never_go_negative(self, queue):
        queue.enqueue([spec("t1")])
        for _ in range(3):
            queue.claim("w1", 30)
            assert queue.release("t1", "w1")
        task = queue.get("t1")
        assert task.attempts == 0
        assert len(task.attempts_log) == 3


class TestAttemptsLog:
    def test_fail_appends_attempt_record(self, queue):
        queue.enqueue([spec("t1")])
        queue.claim("w1", 30)
        queue.fail("t1", "w1", "stage exploded")
        (entry,) = queue.get("t1").attempts_log
        assert entry["attempt"] == 1
        assert entry["owner"] == "w1"
        assert entry["error"] == "stage exploded"
        assert entry["at"] > 0

    def test_lease_expiry_appends_attempt_record(self, queue):
        queue.enqueue([spec("t1")])
        queue.claim("w1", lease_seconds=10, now=1000.0)
        queue.claim("w2", lease_seconds=10, now=2000.0)  # sweeps the expiry
        log = queue.get("t1").attempts_log
        assert [entry["owner"] for entry in log] == ["w1"]
        assert "lease expired" in log[0]["error"]

    def test_history_accumulates_across_attempts(self, queue):
        queue.enqueue([spec("t1", max_attempts=3)])
        queue.claim("w1", 30)
        queue.fail("t1", "w1", "first")
        queue.claim("w2", lease_seconds=10, now=5000.0)
        queue.claim("w3", lease_seconds=10, now=6000.0)  # w2's lease expires
        queue.fail("t1", "w3", "third")
        task = queue.get("t1")
        assert task.status == "dead"
        assert [entry["attempt"] for entry in task.attempts_log] == [1, 2, 3]
        assert [entry["owner"] for entry in task.attempts_log] == ["w1", "w2", "w3"]


class TestDeadLetters:
    def test_dead_letter_carries_the_post_mortem(self, queue):
        queue.enqueue([spec("t1", max_attempts=2), spec("t2")])
        queue.claim("w1", 30)
        queue.fail("t1", "w1", "boom 1")
        queue.claim("w1", 30)
        queue.fail("t1", "w1", "boom 2")
        (letter,) = queue.dead_letters()
        assert letter["task_id"] == "t1"
        assert letter["scenario_id"] == "scenario-t1"
        assert letter["attempts"] == 2
        assert letter["max_attempts"] == 2
        assert letter["error"] == "boom 2"
        assert [e["error"] for e in letter["attempts_log"]] == ["boom 1", "boom 2"]
        assert letter["quarantined_at"] >= letter["enqueued_at"]

    def test_sweep_filter(self, queue):
        queue.enqueue([spec("t1", max_attempts=1)])
        queue.claim("w1", 30)
        queue.fail("t1", "w1", "boom")
        assert queue.dead_letters(sweep_id="sweep")
        assert queue.dead_letters(sweep_id="other-sweep") == []


class TestStatusReport:
    def test_report_shape_and_lease_math(self, queue):
        queue.enqueue([spec("t1"), spec("t2"), spec("dead-t", max_attempts=1)])
        queue.claim("w1", lease_seconds=30, now=1000.0)
        queue.claim("w2", lease_seconds=30, now=1000.0)
        queue.fail("t2", "w2", "boom")  # back to pending
        queue.claim("w2", lease_seconds=30, now=1002.0)
        assert queue.claim("w3", lease_seconds=30, now=1002.0).task_id == "dead-t"
        queue.fail("dead-t", "w3", "poison")
        report = queue.status_report(now=1010.0)
        assert report["state"] == "open"
        assert report["total_tasks"] == 3
        assert report["counts"] == {"running": 2, "dead": 1}
        running = {row["task_id"]: row for row in report["running"]}
        assert set(running) == {"t1", "t2"}
        assert running["t1"]["owner"] == "w1"
        assert running["t1"]["seconds_since_update"] == pytest.approx(10.0)
        assert running["t1"]["lease_seconds_remaining"] == pytest.approx(20.0)
        assert running["t2"]["attempts"] == 2
        assert [letter["task_id"] for letter in report["dead_letters"]] == ["dead-t"]
        roster = {row["task_id"]: row for row in report["tasks"]}
        assert roster["t2"]["attempts"] == 2  # retries visible from outside
        assert roster["dead-t"]["status"] == "dead"


class TestTimeoutColumn:
    def test_timeout_seconds_round_trips(self, queue):
        queue.enqueue([spec("plain"), TaskSpec(
            task_id="budgeted", sweep_id="sweep", wave=0,
            scenario_id="scenario-budgeted", config=b"c",
            targets=json.dumps(["section3"]), timeout_seconds=12.5,
        )])
        assert queue.get("plain").timeout_seconds is None
        assert queue.get("budgeted").timeout_seconds == 12.5
        claimed = {queue.claim(f"w{i}", 30).task_id: t for i, t in enumerate("ab")}
        assert queue.get("budgeted").timeout_seconds == 12.5  # survives claim


class TestSchemaMigration:
    V1_SCHEMA = """
    CREATE TABLE tasks (
        task_id      TEXT PRIMARY KEY,
        sweep_id     TEXT NOT NULL,
        wave         INTEGER NOT NULL,
        scenario_id  TEXT NOT NULL,
        config       BLOB NOT NULL,
        targets      TEXT NOT NULL,
        cache_spec   TEXT,
        status       TEXT NOT NULL DEFAULT 'pending',
        attempts     INTEGER NOT NULL DEFAULT 0,
        max_attempts INTEGER NOT NULL DEFAULT 3,
        owner        TEXT,
        lease_expires REAL,
        result       TEXT,
        error        TEXT,
        enqueued_at  REAL NOT NULL,
        updated_at   REAL NOT NULL
    );
    CREATE INDEX idx_tasks_claim ON tasks (status, wave);
    CREATE TABLE control (key TEXT PRIMARY KEY, value TEXT NOT NULL);
    INSERT INTO control VALUES ('state', 'open'), ('schema_version', '1');
    """

    def test_v1_file_is_migrated_in_place(self, tmp_path):
        import sqlite3

        path = tmp_path / "queue.sqlite"
        conn = sqlite3.connect(str(path))
        conn.executescript(self.V1_SCHEMA)
        conn.execute(
            "INSERT INTO tasks (task_id, sweep_id, wave, scenario_id, config, "
            "targets, enqueued_at, updated_at) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            ("old-task", "old-sweep", 0, "old-scenario", b"cfg",
             json.dumps(["section3"]), 1000.0, 1000.0),
        )
        conn.commit()
        conn.close()

        queue = TaskQueue(path)  # opening migrates
        with sqlite3.connect(str(path)) as conn:
            columns = {row[1] for row in conn.execute("PRAGMA table_info(tasks)")}
            version = conn.execute(
                "SELECT value FROM control WHERE key = 'schema_version'"
            ).fetchone()[0]
        assert {"timeout_seconds", "attempts_log", "claimed_at"} <= columns
        assert version == str(QUEUE_SCHEMA_VERSION)
        # The v1 row reads back with the new fields defaulted ...
        old = queue.get("old-task")
        assert old.timeout_seconds is None
        assert old.attempts_log == []
        assert old.claimed_at is None
        # ... and participates in the full current lifecycle.
        task = queue.claim("w1", 30)
        assert task.task_id == "old-task"
        assert task.claimed_at is not None
        assert queue.fail("old-task", "w1", "first failure") == "pending"
        assert queue.get("old-task").attempts_log[0]["error"] == "first failure"

    def test_fresh_queue_records_current_schema_version(self, tmp_path):
        import sqlite3

        path = tmp_path / "queue.sqlite"
        TaskQueue(path)
        with sqlite3.connect(str(path)) as conn:
            version = conn.execute(
                "SELECT value FROM control WHERE key = 'schema_version'"
            ).fetchone()[0]
        assert version == str(QUEUE_SCHEMA_VERSION)
