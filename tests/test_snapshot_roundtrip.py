"""Snapshot-directory round trip: save to disk, load, same report.

Closes the loop the CLI opens with ``repro snapshot``: a directory of
RIB dumps + ground truth + IRR corpus must reconstruct into an archive
and registry that produce a Section-3 report identical to the in-memory
snapshot that wrote the directory.
"""

from __future__ import annotations

import pytest

from repro.analysis.paths import extract_from_archive
from repro.analysis.stats import compute_section3
from repro.core.relationships import AFI
from repro.datasets import load_snapshot, save_snapshot
from repro.datasets.snapshot_io import GROUND_TRUTH_FILENAME, MANIFEST_FILENAME


@pytest.fixture(scope="module")
def saved(tmp_path_factory, snapshot):
    directory = tmp_path_factory.mktemp("snapshot-dir")
    summary = save_snapshot(snapshot, directory)
    return directory, summary


class TestSave:
    def test_writes_expected_tree(self, saved):
        directory, summary = saved
        assert (directory / "rib-dumps" / "projects.json").exists()
        assert (directory / GROUND_TRUTH_FILENAME).exists()
        assert list((directory / "irr").glob("AS*.txt"))
        assert (directory / MANIFEST_FILENAME).exists()
        assert summary["manifest"]["records"] > 0


class TestRoundTrip:
    def test_archive_round_trips_record_for_record(self, saved, snapshot):
        directory, _ = saved
        loaded = load_snapshot(directory)
        assert loaded.archive.snapshots() == snapshot.archive.snapshots()
        assert len(loaded.archive) == len(snapshot.archive)
        for collector in snapshot.archive.collectors:
            assert loaded.archive.project_of(collector) == snapshot.archive.project_of(
                collector
            )

    def test_registry_round_trips(self, saved, snapshot):
        directory, _ = saved
        loaded = load_snapshot(directory)
        assert loaded.registry.documented_ases == snapshot.registry.documented_ases
        assert (
            loaded.registry.documentation_corpus()
            == snapshot.registry.documentation_corpus()
        )

    def test_ground_truth_round_trips(self, saved, snapshot):
        directory, _ = saved
        loaded = load_snapshot(directory)
        for afi in (AFI.IPV4, AFI.IPV6):
            assert (
                loaded.ground_truth_annotation(afi).records()
                == snapshot.ground_truth_annotation(afi).records()
            )

    def test_section3_report_identical_from_disk(self, saved, snapshot):
        """The acceptance criterion: a loaded snapshot yields the same
        Section-3 report as the in-memory snapshot that wrote it."""
        directory, _ = saved
        loaded = load_snapshot(directory)
        extraction = extract_from_archive(loaded.archive)
        from_disk = compute_section3(extraction.store, loaded.registry)
        in_memory = compute_section3(snapshot.store, snapshot.registry)
        assert from_disk.report.as_dict() == in_memory.report.as_dict()


class TestLoaderErrors:
    def test_missing_rib_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_snapshot(tmp_path)

    def test_empty_rib_dir_raises(self, tmp_path):
        (tmp_path / "rib-dumps").mkdir()
        with pytest.raises(ValueError):
            load_snapshot(tmp_path)

    def test_ground_truth_optional(self, saved, tmp_path):
        directory, _ = saved
        import shutil

        partial = tmp_path / "partial"
        shutil.copytree(directory, partial)
        (partial / GROUND_TRUTH_FILENAME).unlink()
        loaded = load_snapshot(partial)
        assert loaded.ground_truth_graph is None
        with pytest.raises(ValueError):
            loaded.ground_truth_annotation(AFI.IPV6)

    def test_missing_manifest_raises(self, saved, tmp_path):
        """Snapshot directories are versioned artifacts now: loading one
        without its manifest must fail loudly, not limp along
        (tests/test_snapshot_io_failures.py covers the other defects)."""
        directory, _ = saved
        import shutil

        from repro.datasets import SnapshotFormatError

        partial = tmp_path / "no-manifest"
        shutil.copytree(directory, partial)
        (partial / MANIFEST_FILENAME).unlink()
        with pytest.raises(SnapshotFormatError, match="manifest"):
            load_snapshot(partial)
