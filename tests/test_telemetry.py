"""Telemetry: span/counter correctness, zero overhead off, provenance.

The acceptance criteria of the observability work:

* the disabled path is provably cheap (no-op tracer, no allocation on
  the hot path, benchmark-guarded) and **fingerprint-neutral** —
  tracing a run never changes a stage fingerprint or an output byte,
* a traced pipeline run yields one coherent span tree with per-stage
  cache status, and cache hit/miss counters that match the run,
* a trace context propagates across ``run_many(executor="process")``
  on both the fork and the spawn pool paths, and across a 2-worker
  distributed sweep — every process's spans join one tree under one
  run id with no orphans,
* ``summarize`` reproduces the sweep's per-stage compute counts
  exactly, and a chaos run's retries and injected faults appear as
  counters,
* ``repro queue status`` reports lease age and time-in-state per task.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
import time
from pathlib import Path

import pytest

from repro.bgp.engine import PropagationEngine
from repro.bgp.propagation import originate_one_prefix_per_as
from repro.bgp.policy import default_policies
from repro.cluster.queue import TaskQueue, TaskSpec
from repro.core.relationships import AFI
from repro.datasets import DatasetConfig
from repro.pipeline import PipelineConfig, run_pipeline
from repro.pipeline.runner import PipelineRunner
from repro.pipeline.stages import full_stages
from repro.sweep import GridAxis, SweepGrid, run_sweep
from repro.telemetry import (
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    TelemetryConfig,
    Tracer,
    activated,
    build_tree,
    get_tracer,
    read_trace,
    render_tree,
    summarize,
)
from repro.topology.generator import TopologyConfig, generate_topology


def tiny_base(seed: int = 5) -> PipelineConfig:
    return PipelineConfig(
        dataset=DatasetConfig(
            topology=TopologyConfig(
                seed=seed, tier1_count=3, tier2_count=8, tier3_count=20
            ),
            seed=seed,
            vantage_points=4,
        ),
        top=3,
        max_sources=10,
    )


def spans_named(records, name):
    return [r for r in records if r.get("kind") == "span" and r.get("name") == name]


def counters_named(records, name):
    return [r for r in records if r.get("kind") == "counter" and r.get("name") == name]


# ----------------------------------------------------------------------
# tracer unit behaviour
# ----------------------------------------------------------------------
class TestTracerBasics:
    def test_nesting_follows_thread_stack(self, tmp_path):
        tracer = Tracer(tmp_path)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_span_id() == inner.span_id
            with tracer.span("sibling") as sibling:
                pass
        records = {r["name"]: r for r in tracer.records()}
        assert records["outer"]["parent_id"] is None
        assert records["inner"]["parent_id"] == outer.span_id
        assert records["sibling"]["parent_id"] == outer.span_id
        assert sibling.span_id != inner.span_id

    def test_exception_marks_span_error_and_rethrows(self, tmp_path):
        tracer = Tracer(tmp_path)
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (record,) = tracer.records()
        assert record["status"] == "error"
        assert "RuntimeError" in record["attrs"]["error"]

    def test_counters_attach_to_current_span(self, tmp_path):
        tracer = Tracer(tmp_path)
        with tracer.span("work") as span:
            tracer.counter("widgets", 3, kind="round")
            tracer.gauge("queue_depth", 7.5)
        counters = [r for r in tracer.records() if r["kind"] != "span"]
        assert {r["name"] for r in counters} == {"widgets", "queue_depth"}
        assert all(r["span_id"] == span.span_id for r in counters)

    def test_flush_writes_sorted_key_jsonl_and_appends(self, tmp_path):
        tracer = Tracer(tmp_path, run_id="r1")
        with tracer.span("a"):
            pass
        path = tracer.flush()
        with tracer.span("b"):
            tracer.counter("c")
        assert tracer.flush() == path
        lines = Path(path).read_text().splitlines()
        assert len(lines) == 3
        for line in lines:
            record = json.loads(line)
            assert record["schema_version"] == TRACE_SCHEMA_VERSION
            assert record["run_id"] == "r1"
            assert list(record) == sorted(record)
            assert "_started" not in record
        # Nothing buffered twice: a second flush with no records is a no-op.
        assert tracer.flush() is None

    def test_context_round_trips_through_pickle(self, tmp_path):
        tracer = Tracer(tmp_path, run_id="rx")
        with tracer.span("parent") as span:
            context = tracer.context()
        assert context.parent_span_id == span.span_id
        clone = pickle.loads(pickle.dumps(context))
        child = Tracer.from_config(clone)
        assert child.run_id == "rx"
        assert child.parent_span_id == span.span_id

    def test_activation_stack(self, tmp_path):
        assert get_tracer() is NULL_TRACER
        tracer = Tracer(tmp_path)
        with activated(tracer):
            assert get_tracer() is tracer
            inner = Tracer(tmp_path)
            with activated(inner):
                assert get_tracer() is inner
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER
        # None and the null tracer are accepted and change nothing.
        with activated(None), activated(NULL_TRACER):
            assert get_tracer() is NULL_TRACER


class TestDisabledPathIsFree:
    def test_null_tracer_allocates_nothing(self):
        tracer = get_tracer()
        assert tracer is NULL_TRACER
        assert not tracer
        span = tracer.span("anything", key="value")
        assert span is tracer.span("other")  # shared singleton handle
        with span:
            span.annotate(more="attrs")
        assert tracer.context() is None
        assert tracer.flush() is None

    def test_disabled_span_overhead_is_bounded(self):
        """Benchmark guard: 100k disabled spans must stay far under any
        measurable budget (generous bound — CI machines are noisy)."""
        tracer = get_tracer()
        started = time.perf_counter()
        for _ in range(100_000):
            with tracer.span("hot", stage="x"):
                pass
        elapsed = time.perf_counter() - started
        assert elapsed < 1.0, f"100k no-op spans took {elapsed:.3f}s"


# ----------------------------------------------------------------------
# fingerprint neutrality + pipeline instrumentation
# ----------------------------------------------------------------------
class TestFingerprintNeutrality:
    def test_telemetry_config_changes_no_fingerprint(self):
        runner = PipelineRunner(full_stages())
        plain = tiny_base()
        traced = dataclasses.replace(
            plain, telemetry=TelemetryConfig(trace_dir="/tmp/nowhere")
        )
        assert runner.fingerprints(plain) == runner.fingerprints(traced)

    def test_traced_run_output_identical_to_untraced(self, tmp_path):
        plain = run_pipeline(
            tiny_base(), cache_dir=tmp_path / "c1", targets=("section3",)
        )
        traced_config = dataclasses.replace(
            tiny_base(), telemetry=TelemetryConfig(trace_dir=str(tmp_path / "trace"))
        )
        traced = run_pipeline(
            traced_config, cache_dir=tmp_path / "c2", targets=("section3",)
        )
        assert traced.fingerprints == plain.fingerprints
        assert traced.value("section3").as_dict() == plain.value("section3").as_dict()
        # ... and the trace really was written.
        assert read_trace(tmp_path / "trace")


class TestPipelineTrace:
    def test_cold_then_warm_run_spans_and_counters(self, tmp_path):
        trace_dir = tmp_path / "trace"
        config = dataclasses.replace(
            tiny_base(), telemetry=TelemetryConfig(trace_dir=str(trace_dir))
        )
        run_pipeline(config, cache_dir=tmp_path / "cache", targets=("section3",))
        cold = read_trace(trace_dir)
        cold_stages = spans_named(cold, "stage")
        statuses = {s["attrs"]["stage"]: s["attrs"]["status"] for s in cold_stages}
        assert statuses and set(statuses.values()) == {"computed"}
        assert all("fingerprint" in s["attrs"] for s in cold_stages)
        assert not counters_named(cold, "cache.hit")
        misses = counters_named(cold, "cache.miss")
        assert len(misses) == len(cold_stages)
        assert counters_named(cold, "cache.put")
        # Computed cacheable stages record their stored artifact size.
        assert all(
            s["attrs"].get("artifact_bytes", 0) > 0 for s in cold_stages
        )

        run_pipeline(config, cache_dir=tmp_path / "cache", targets=("section3",))
        warm = read_trace(trace_dir)[len(cold):]
        warm_stages = spans_named(warm, "stage")
        assert {s["attrs"]["status"] for s in warm_stages} == {"cached"}
        assert all("verify_seconds" in s["attrs"] for s in warm_stages)
        assert len(counters_named(warm, "cache.hit")) == len(warm_stages)
        assert not counters_named(warm, "cache.miss")

        roots, orphans = build_tree(read_trace(trace_dir))
        assert orphans == []
        assert [r["name"] for r in roots] == ["pipeline", "pipeline"]
        # Both runs share nothing: two distinct run ids, two trees.
        assert len({r["run_id"] for r in roots}) == 2
        assert render_tree(read_trace(trace_dir))  # renders without error


# ----------------------------------------------------------------------
# run_many trace propagation: fork AND spawn pool paths
# ----------------------------------------------------------------------
class TestRunManyTracePropagation:
    @pytest.fixture(scope="class")
    def engine_setup(self):
        topology = generate_topology(
            TopologyConfig(seed=3, tier1_count=3, tier2_count=8, tier3_count=20)
        )
        graph = topology.graph
        policies = default_policies(graph.ases)
        origins = originate_one_prefix_per_as(graph, AFI.IPV4)
        return graph, policies, origins

    def _traced_run_many(self, tmp_path, engine_setup):
        graph, policies, origins = engine_setup
        engine = PropagationEngine(graph, policies)
        serial = engine.run(origins)
        tracer = Tracer(tmp_path / "trace")
        with activated(tracer):
            parallel = engine.run_many(origins, workers=2, executor="process")
        tracer.flush()
        assert parallel.reachable_counts == serial.reachable_counts
        records = read_trace(tmp_path / "trace")
        (run_many,) = spans_named(records, "propagation.run_many")
        batches = spans_named(records, "propagation.batch")
        assert len(batches) == 2
        assert {b["run_id"] for b in batches} == {tracer.run_id}
        assert {b["parent_id"] for b in batches} == {run_many["span_id"]}
        # Batches really ran in pool workers, not inline.
        assert all(b["pid"] != os.getpid() for b in batches)
        _, orphans = build_tree(records)
        assert orphans == []

    def test_fork_pool_spans_join_callers_tree(self, tmp_path, engine_setup):
        self._traced_run_many(tmp_path, engine_setup)

    def test_spawn_pool_spans_join_callers_tree(
        self, tmp_path, engine_setup, monkeypatch
    ):
        from repro.bgp import engine as engine_module

        monkeypatch.setattr(engine_module, "_start_method", lambda: "spawn")
        self._traced_run_many(tmp_path, engine_setup)


# ----------------------------------------------------------------------
# sweeps: process pools and the 2-worker distributed cluster
# ----------------------------------------------------------------------
class TestSweepTrace:
    def test_process_executor_scenarios_join_one_tree(self, tmp_path):
        grid = SweepGrid(tiny_base(), [GridAxis("dataset.seed", (1, 2))])
        result = run_sweep(
            grid,
            cache_dir=tmp_path / "cache",
            executor="process",
            workers=2,
            targets=("section3",),
            trace_dir=str(tmp_path / "trace"),
        )
        assert not result.failed()
        records = read_trace(tmp_path / "trace")
        (sweep_span,) = spans_named(records, "sweep")
        run_id = sweep_span["run_id"]
        pipelines = spans_named(records, "pipeline")
        assert len(pipelines) == 2
        assert {p["run_id"] for p in pipelines} == {run_id}
        waves = {w["span_id"] for w in spans_named(records, "wave")}
        assert all(p["parent_id"] in waves for p in pipelines)
        roots, orphans = build_tree(records)
        assert orphans == []
        assert [r["name"] for r in roots] == ["sweep"]

    def test_two_worker_distributed_sweep_merges_into_one_tree(self, tmp_path):
        grid = SweepGrid(
            tiny_base(), [GridAxis("dataset.seed", (1, 2)), GridAxis("top", (2, 3))]
        )
        trace_dir = tmp_path / "trace"
        result = run_sweep(
            grid,
            cache_dir=str(tmp_path / "cache"),
            executor="cluster",
            queue_dir=str(tmp_path / "queue"),
            workers=2,
            trace_dir=str(trace_dir),
        )
        assert not result.failed()
        records = read_trace(trace_dir)
        (sweep_span,) = spans_named(records, "sweep")
        run_id = sweep_span["run_id"]
        sweep_records = [r for r in records if r.get("run_id") == run_id]

        # The coordinator's waves and every worker's task/pipeline spans
        # share the sweep's run id and assemble into one rooted tree.
        tasks = spans_named(sweep_records, "task")
        assert len(tasks) == 4
        assert len({t["pid"] for t in tasks} | {sweep_span["pid"]}) >= 2
        wave_ids = {w["span_id"] for w in spans_named(sweep_records, "wave")}
        assert all(t["parent_id"] in wave_ids for t in tasks)
        task_ids = {t["span_id"] for t in tasks}
        pipelines = spans_named(sweep_records, "pipeline")
        assert len(pipelines) == 4
        assert all(p["parent_id"] in task_ids for p in pipelines)
        roots, orphans = build_tree(sweep_records)
        assert orphans == []
        assert [r["name"] for r in roots] == ["sweep"]

        # The summary reproduces the sweep's per-stage compute counts
        # exactly (cacheable stages — the ones the counters track).
        summary = summarize(records, trace_dir=trace_dir)
        expected = {}
        for scenario in result.results:
            for stage, status in scenario.stage_statuses.items():
                if status == "computed":
                    expected[stage] = expected.get(stage, 0) + 1
        traced = {
            name: entry["computed"]
            for name, entry in summary["stages"].items()
            if entry["computed"]
        }
        assert traced == expected
        assert summary["spans"]["orphans"] == 0
        assert summary["counters"]["queue.task_completed"] == 4
        assert summary["dead_letters"] == 0

    def test_chaos_sweep_trace_shows_retries_and_faults(self, tmp_path):
        """A fault storm under tracing: injected faults and backend
        retries surface as counters in the merged trace."""
        from repro.faults import FaultPlan

        grid = SweepGrid(tiny_base(), [GridAxis("top", (2, 3))])
        plan = FaultPlan.seeded(seed=11, calls=80, transient_rate=0.08)
        plan_path = tmp_path / "storm.json"
        plan.to_json_file(plan_path)
        trace_dir = tmp_path / "trace"
        result = run_sweep(
            grid,
            cache_dir=f"fault://{plan_path}!{tmp_path / 'cache'}",
            executor="cluster",
            queue_dir=str(tmp_path / "queue"),
            workers=2,
            trace_dir=str(trace_dir),
        )
        assert not result.failed()
        summary = summarize(read_trace(trace_dir), trace_dir=trace_dir)
        assert summary["counters"].get("fault.injected", 0) > 0
        assert summary["retries"] > 0
        assert summary["counters"]["backend.retry"] == summary["retries"]


# ----------------------------------------------------------------------
# queue lease ages (satellite: queue status time-in-state)
# ----------------------------------------------------------------------
class TestQueueLeaseAges:
    def _spec(self, task_id: str) -> TaskSpec:
        return TaskSpec(
            task_id=task_id,
            sweep_id="s",
            wave=0,
            scenario_id=f"scn-{task_id}",
            config=b"cfg",
            targets="[]",
            cache_spec=None,
        )

    def test_status_report_lease_age_and_time_in_state(self, tmp_path):
        queue = TaskQueue(tmp_path / "queue.sqlite")
        queue.enqueue([self._spec("t1"), self._spec("t2")])
        claimed = queue.claim("w1", lease_seconds=30.0, now=1000.0)
        assert claimed.task_id == "t1"
        assert claimed.claimed_at == 1000.0

        report = queue.status_report(now=1002.5)
        (running,) = report["running"]
        assert running["lease_age_seconds"] == 2.5
        by_id = {row["task_id"]: row for row in report["tasks"]}
        assert by_id["t1"]["seconds_in_state"] == 2.5
        # Pending tasks report time-in-state too (enqueue used wall time,
        # so only the field's presence is asserted against synthetic now).
        assert "seconds_in_state" in by_id["t2"]

        # Heartbeats bump updated_at but must NOT reset the lease age.
        assert queue.heartbeat("t1", "w1", lease_seconds=30.0)
        report = queue.status_report(now=1004.0)
        (running,) = report["running"]
        assert running["lease_age_seconds"] == 4.0
        assert "seconds_since_update" in running

    def test_lease_age_clears_on_every_exit_path(self, tmp_path):
        queue = TaskQueue(tmp_path / "queue.sqlite")
        queue.enqueue([self._spec(f"t{i}") for i in range(3)])
        done = queue.claim("w1", 30.0, now=10.0)
        queue.complete(done.task_id, "w1", {"ok": True})
        failed = queue.claim("w1", 30.0, now=11.0)
        queue.fail(failed.task_id, "w1", "boom")
        released = queue.claim("w1", 30.0, now=12.0)
        queue.release(released.task_id, "w1")
        assert all(task.claimed_at is None for task in queue.tasks())

    def test_queue_counters_emitted_under_active_tracer(self, tmp_path):
        tracer = Tracer(tmp_path / "trace")
        queue = TaskQueue(tmp_path / "queue.sqlite")
        queue.enqueue([self._spec("t1")])
        with activated(tracer):
            task = queue.claim("w1", lease_seconds=0.1, now=100.0)
            # Lease expires; next claim sweeps it and re-claims.
            again = queue.claim("w2", lease_seconds=30.0, now=200.0)
            queue.complete(again.task_id, "w2", {"ok": True})
        names = [r["name"] for r in tracer.records()]
        assert task is not None
        assert names.count("queue.task_claimed") == 2
        assert "queue.lease_expired" in names
        assert "queue.task_completed" in names
