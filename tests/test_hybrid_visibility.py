"""Unit tests for hybrid-link detection and path-visibility indexing."""

import pytest

from repro.bgp.prefixes import Prefix
from repro.core.annotation import ToRAnnotation
from repro.core.hybrid import HybridDetector, detect_hybrid_links
from repro.core.observations import ObservedRoute
from repro.core.relationships import AFI, HybridType, Link, Relationship
from repro.core.visibility import build_visibility_index


def annotation_pair():
    """IPv4/IPv6 annotations over four links, one of which is hybrid."""
    ipv4 = ToRAnnotation(AFI.IPV4)
    ipv6 = ToRAnnotation(AFI.IPV6)
    # Same in both planes.
    ipv4.set(1, 2, Relationship.P2C)
    ipv6.set(1, 2, Relationship.P2C)
    # Hybrid: peer in IPv4, transit in IPv6.
    ipv4.set(2, 3, Relationship.P2P)
    ipv6.set(2, 3, Relationship.P2C)
    # IPv4-only and IPv6-only links.
    ipv4.set(3, 4, Relationship.P2C)
    ipv6.set(4, 5, Relationship.P2P)
    return ipv4, ipv6


class TestHybridDetector:
    def test_dual_stack_links(self):
        ipv4, ipv6 = annotation_pair()
        detector = HybridDetector(ipv4, ipv6)
        assert detector.dual_stack_links() == [Link(1, 2), Link(2, 3)]

    def test_classification(self):
        ipv4, ipv6 = annotation_pair()
        detector = HybridDetector(ipv4, ipv6)
        entry = detector.classify(Link(2, 3))
        assert entry.is_hybrid
        assert entry.hybrid_type is HybridType.PEER4_TRANSIT6
        assert detector.classify(Link(1, 2)).hybrid_type is HybridType.NOT_HYBRID
        assert detector.classify(Link(3, 4)) is None  # unknown in IPv6

    def test_detect_report(self):
        ipv4, ipv6 = annotation_pair()
        report = detect_hybrid_links(ipv4, ipv6)
        assert len(report.assessed_links) == 2
        assert len(report.hybrid_links) == 1
        assert report.hybrid_fraction == pytest.approx(0.5)
        assert report.type_share(HybridType.PEER4_TRANSIT6) == pytest.approx(1.0)
        assert report.hybrid_link_set() == {Link(2, 3)}
        summary = report.summary()
        assert summary["hybrid_links"] == 1.0

    def test_detect_with_link_restriction(self):
        ipv4, ipv6 = annotation_pair()
        report = HybridDetector(ipv4, ipv6).detect(links=[Link(1, 2)])
        assert len(report.assessed_links) == 1
        assert report.hybrid_fraction == 0.0

    def test_empty_report_fractions(self):
        ipv4, ipv6 = annotation_pair()
        report = HybridDetector(ipv4, ipv6).detect(links=[])
        assert report.hybrid_fraction == 0.0
        assert report.type_share(HybridType.PEER4_TRANSIT6) == 0.0

    def test_afi_order_enforced(self):
        ipv4, ipv6 = annotation_pair()
        with pytest.raises(ValueError):
            HybridDetector(ipv6, ipv4)

    def test_validation_scores(self):
        ipv4, ipv6 = annotation_pair()
        detector = HybridDetector(ipv4, ipv6)
        report = detector.detect()
        perfect = detector.validate(report, true_hybrid_links=[Link(2, 3)])
        assert perfect.precision == 1.0
        assert perfect.recall == 1.0
        assert perfect.f1 == 1.0
        miss = detector.validate(report, true_hybrid_links=[Link(1, 2)])
        assert miss.precision == 0.0
        assert miss.recall == 0.0
        assert miss.f1 == 0.0

    def test_validation_assessable_only(self):
        ipv4, ipv6 = annotation_pair()
        detector = HybridDetector(ipv4, ipv6)
        report = detector.detect()
        # Link (3,4) is hybrid in the ground truth but not assessable:
        # with assessable_only it is excluded from the recall denominator.
        truth = [Link(2, 3), Link(3, 4)]
        scoped = detector.validate(report, truth, assessable_only=True)
        assert scoped.recall == 1.0
        unscoped = detector.validate(report, truth, assessable_only=False)
        assert unscoped.recall == pytest.approx(0.5)

    def test_ground_truth_snapshot_detection(self, hybrid_topology):
        graph = hybrid_topology.graph
        detector = HybridDetector(
            ToRAnnotation.from_graph(graph, AFI.IPV4),
            ToRAnnotation.from_graph(graph, AFI.IPV6),
        )
        report = detector.detect()
        assert report.hybrid_link_set() == {hybrid_topology.hybrid_link}


def observe(path, prefix="3fff:1::/32"):
    return ObservedRoute(path=tuple(path), prefix=Prefix(prefix), vantage=path[0])


class TestVisibilityIndex:
    def make_observations(self):
        return [
            observe([1, 2, 3]),
            observe([1, 2, 4]),
            observe([5, 2, 3]),
            observe([1, 2, 3], prefix="3fff:2::/32"),  # same path, other prefix
            observe([9, 8], prefix="10.0.0.0/20"),      # IPv4, ignored with afi filter
        ]

    def test_distinct_path_counting(self):
        index = build_visibility_index(self.make_observations(), afi=AFI.IPV6)
        assert index.path_count == 3
        assert index.visibility_of(Link(1, 2)) == 2
        assert index.visibility_of(Link(2, 3)) == 2
        assert index.visibility_of(Link(8, 9)) == 0

    def test_counting_every_observation(self):
        index = build_visibility_index(
            self.make_observations(), afi=AFI.IPV6, distinct_paths_only=False
        )
        assert index.path_count == 4
        assert index.visibility_of(Link(2, 3)) == 3

    def test_visibility_fraction(self):
        index = build_visibility_index(self.make_observations(), afi=AFI.IPV6)
        assert index.visibility_fraction(Link(1, 2)) == pytest.approx(2 / 3)

    def test_ranking_and_top_links(self):
        index = build_visibility_index(self.make_observations(), afi=AFI.IPV6)
        ranked = index.rank_links()
        assert ranked[0][1] >= ranked[-1][1]
        top = index.top_links(1, links=[Link(2, 3), Link(2, 4)])
        assert top == [Link(2, 3)]
        with pytest.raises(ValueError):
            index.top_links(-1)

    def test_paths_crossing_any(self):
        index = build_visibility_index(self.make_observations(), afi=AFI.IPV6)
        assert index.paths_crossing_any([Link(2, 3), Link(2, 4)]) == 3
        assert index.fraction_crossing_any([Link(2, 3)]) == pytest.approx(2 / 3)
        assert index.fraction_crossing_any([Link(7, 8)]) == 0.0

    def test_empty_index(self):
        index = build_visibility_index([], afi=AFI.IPV6)
        assert index.path_count == 0
        assert index.visibility_fraction(Link(1, 2)) == 0.0
        assert index.fraction_crossing_any([Link(1, 2)]) == 0.0
