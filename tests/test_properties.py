"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.attributes import ASPath, Community
from repro.core.annotation import ToRAnnotation, valley_free_distances
from repro.core.customer_tree import customer_tree
from repro.core.observations import clean_raw_path
from repro.core.relationships import (
    AFI,
    HybridType,
    Link,
    Relationship,
    classify_hybrid,
    majority_relationship,
    orient_relationship,
)
from repro.core.valley import PathValidity, validate_path
from repro.irr.dictionary import build_standard_dictionary
from repro.irr.parser import dictionary_from_documentation, render_documentation
from repro.irr.registry import IRRRegistry
from repro.topology.serialization import dumps_dual_stack, loads_dual_stack
from repro.topology.graph import ASGraph

asns = st.integers(min_value=1, max_value=65_000)
known_relationships = st.sampled_from(
    [Relationship.P2C, Relationship.C2P, Relationship.P2P, Relationship.SIBLING]
)


@st.composite
def links(draw):
    a = draw(asns)
    b = draw(asns.filter(lambda value: value != a))
    return Link(a, b)


@st.composite
def annotations(draw):
    """A random annotation over a small AS population."""
    population = draw(st.lists(asns, min_size=2, max_size=12, unique=True))
    annotation = ToRAnnotation(AFI.IPV6)
    pairs = [
        (a, b) for i, a in enumerate(population) for b in population[i + 1 :]
    ]
    chosen = draw(
        st.lists(st.sampled_from(pairs), min_size=1, max_size=min(len(pairs), 20))
    )
    for a, b in chosen:
        annotation.set(a, b, draw(known_relationships))
    return annotation


class TestLinkProperties:
    @given(a=asns, b=asns)
    def test_link_is_order_insensitive(self, a, b):
        if a == b:
            return
        assert Link(a, b) == Link(b, a)
        assert hash(Link(a, b)) == hash(Link(b, a))

    @given(link=links(), relationship=known_relationships)
    def test_orientation_round_trip(self, link, relationship):
        """Re-orienting a relationship to the other endpoint and back is identity."""
        canonical = orient_relationship(link.a, link.b, relationship)
        assert link.relationship_from(link.a, canonical) is relationship or (
            link.a != link.a
        )
        seen_from_b = link.relationship_from(link.b, canonical)
        assert seen_from_b.inverse is canonical

    @given(relationship=known_relationships)
    def test_double_inverse_is_identity(self, relationship):
        assert relationship.inverse.inverse is relationship


class TestHybridProperties:
    @given(rel_v4=known_relationships, rel_v6=known_relationships)
    def test_classification_symmetry(self, rel_v4, rel_v6):
        """A link is hybrid in one orientation iff it is in the other."""
        forward = classify_hybrid(rel_v4, rel_v6)
        backward = classify_hybrid(rel_v4.inverse, rel_v6.inverse)
        assert forward.is_hybrid == backward.is_hybrid
        if forward in (HybridType.PEER4_TRANSIT6, HybridType.PEER6_TRANSIT4):
            assert backward is forward

    @given(rel=known_relationships)
    def test_equal_relationships_never_hybrid(self, rel):
        assert classify_hybrid(rel, rel) is HybridType.NOT_HYBRID


class TestMajorityProperties:
    @given(votes=st.lists(known_relationships, max_size=30))
    def test_majority_winner_is_most_common(self, votes):
        winner = majority_relationship(votes, min_votes=1, min_agreement=0.5)
        if winner is None:
            return
        counts = {rel: votes.count(rel) for rel in set(votes)}
        assert counts[winner] == max(counts.values())


class TestPathProperties:
    @given(hops=st.lists(asns, min_size=1, max_size=15))
    def test_clean_raw_path_idempotent_and_loop_free(self, hops):
        cleaned = clean_raw_path(hops)
        if cleaned is None:
            return
        assert clean_raw_path(cleaned) == cleaned
        assert len(set(cleaned)) == len(cleaned)

    @given(hops=st.lists(asns, min_size=1, max_size=15), prepend=asns, times=st.integers(1, 4))
    def test_prepending_never_changes_collapsed_structure(self, hops, prepend, times):
        base = ASPath(hops)
        prepended = base.prepend(prepend, times=times)
        expected = clean_raw_path((prepend,) * times + tuple(hops))
        if expected is not None:
            assert clean_raw_path(prepended.hops) == expected

    @given(asn=asns, value=st.integers(0, 0xFFFF))
    def test_community_parse_round_trip(self, asn, value):
        community = Community(asn, value)
        assert Community.parse(str(community)) == community


class TestValleyProperties:
    @settings(max_examples=50)
    @given(annotation=annotations())
    def test_valley_free_distances_are_metric_like(self, annotation):
        """BFS distances are non-negative, zero only at the source, and
        bounded by the number of ASes."""
        ases = annotation.ases
        source = ases[0]
        distances = valley_free_distances(annotation, source)
        assert distances[source] == 0
        for target, distance in distances.items():
            assert 0 <= distance < len(ases) + 1
            if target != source:
                assert distance >= 1

    @settings(max_examples=50)
    @given(annotation=annotations())
    def test_reachable_targets_have_valid_paths_both_ways(self, annotation):
        """Valley-free reachability is symmetric (the reverse of a
        valley-free path is valley-free)."""
        ases = annotation.ases
        source = ases[0]
        forward = set(valley_free_distances(annotation, source))
        for target in list(forward)[:5]:
            backward = valley_free_distances(annotation, target)
            assert source in backward

    @settings(max_examples=50)
    @given(annotation=annotations())
    def test_customer_tree_paths_are_valley_free(self, annotation):
        """Any root-to-member chain of p2c hops is a valid (valley-free) path."""
        root = annotation.ases[0]
        tree = customer_tree(annotation, root)
        # Walk the tree edges downward: provider -> customer chains.
        for link in list(tree.edges)[:10]:
            provider, customer = (
                (link.a, link.b)
                if annotation.get(link.a, link.b) is Relationship.P2C
                else (link.b, link.a)
            )
            validation = validate_path((provider, customer), annotation)
            assert validation.validity is PathValidity.VALLEY_FREE


class TestSerializationProperties:
    @settings(max_examples=40)
    @given(annotation=annotations())
    def test_dual_stack_round_trip(self, annotation):
        graph = ASGraph()
        for link, relationship in annotation.items():
            graph.add_link(link.a, link.b, rel_v6=relationship)
        loaded = loads_dual_stack(dumps_dual_stack(graph))
        for link, relationship in annotation.items():
            assert loaded.relationship(link.a, link.b, AFI.IPV6) is relationship

    @given(asn=asns, style=st.integers(0, 4))
    def test_documentation_round_trip(self, asn, style):
        """Rendering a dictionary to IRR text and parsing it back preserves
        every relationship and traffic-engineering meaning."""
        dictionary = build_standard_dictionary(asn, style=style)
        rebuilt = dictionary_from_documentation(asn, render_documentation(dictionary))
        registry = IRRRegistry()
        registry.register(rebuilt)
        for meaning in dictionary.meanings():
            restored = rebuilt.meaning_of(meaning.community)
            assert restored is not None
            assert restored.kind is meaning.kind
            assert restored.relationship is meaning.relationship
            assert restored.action == meaning.action
