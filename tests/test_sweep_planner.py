"""Sweep planning: fingerprint sharing and the exactly-once schedule.

The planner's claims are structural, so these tests run no pipeline at
all — they check the fingerprint arithmetic (which stages two grid
cells share) and the wave invariant (no two scenarios of one wave claim
the same not-yet-computed fingerprint).
"""

from __future__ import annotations

from repro.datasets import DatasetConfig
from repro.pipeline import PipelineConfig
from repro.sweep import GridAxis, SweepGrid, plan_sweep
from repro.topology.generator import TopologyConfig


def tiny_base(seed: int = 5) -> PipelineConfig:
    return PipelineConfig(
        dataset=DatasetConfig(
            topology=TopologyConfig(
                seed=seed, tier1_count=3, tier2_count=8, tier3_count=20
            ),
            seed=seed,
            vantage_points=4,
        ),
        top=3,
        max_sources=10,
    )


def seeds_by_tops_plan(targets=("section3", "correction")):
    grid = SweepGrid(
        tiny_base(),
        [GridAxis("dataset.seed", (1, 2)), GridAxis("top", (3, 4))],
    )
    return plan_sweep(grid.expand(), targets=targets)


class TestSharing:
    def test_topology_shared_across_all_cells(self):
        """dataset.seed does not feed the topology stage (the topology
        has its own seed), so all four cells share one topology."""
        plan = seeds_by_tops_plan()
        distinct = plan.distinct_fingerprints()
        assert len(distinct["topology"]) == 1

    def test_upstream_shared_per_seed(self):
        """Everything from irr to section3 depends on the dataset seed
        but not on the correction budget: two distinct slices each."""
        plan = seeds_by_tops_plan()
        distinct = plan.distinct_fingerprints()
        for stage in (
            "irr",
            "scenario",
            "propagation_v4",
            "propagation_v6",
            "archive",
            "store",
            "inference",
            "views",
            "section3",
        ):
            assert len(distinct[stage]) == 2, stage

    def test_correction_distinct_per_cell(self):
        plan = seeds_by_tops_plan()
        assert len(plan.distinct_fingerprints()["correction"]) == 4

    def test_invocation_counts(self):
        plan = seeds_by_tops_plan()
        # 12-stage closure x 4 scenarios vs 1 + 10*2 + 4 distinct.
        assert plan.total_stage_invocations() == 48
        assert plan.distinct_stage_invocations() == 25

    def test_sharing_summary_shape(self):
        summary = seeds_by_tops_plan().sharing_summary()
        assert summary["topology"] == {"scenarios": 4, "distinct": 1}
        assert summary["correction"] == {"scenarios": 4, "distinct": 4}

    def test_identical_configs_share_everything(self):
        base = tiny_base()
        grid = SweepGrid(base, [GridAxis("dataset.seed", (1, 1))])
        # Same config twice (ids differ only by position is impossible:
        # same value -> same id), so expansion must be rejected upstream.
        scenarios = grid.expand()
        assert scenarios[0].scenario_id == scenarios[1].scenario_id
        try:
            plan_sweep(scenarios)
        except ValueError as exc:
            assert "duplicate scenario id" in str(exc)
        else:
            raise AssertionError("duplicate ids must be rejected")


class TestSchedule:
    def test_waves_cover_every_scenario_once(self):
        plan = seeds_by_tops_plan()
        scheduled = [p.scenario_id for wave in plan.waves for p in wave]
        assert sorted(scheduled) == sorted(p.scenario_id for p in plan.plans)

    def test_wave_members_claim_disjoint_new_fingerprints(self):
        plan = seeds_by_tops_plan()
        computed: set = set()
        for wave in plan.waves:
            claimed: set = set()
            for scenario_plan in wave:
                new = set(scenario_plan.fingerprints.values()) - computed
                assert not (new & claimed), (
                    "two scenarios in one wave claim the same fingerprint"
                )
                claimed |= new
            computed |= claimed

    def test_first_wave_is_a_single_pathbreaker(self):
        """All cells share the topology, so the first wave must be one
        scenario that computes it for everyone."""
        plan = seeds_by_tops_plan()
        assert len(plan.waves[0]) == 1

    def test_disjoint_scenarios_run_in_one_wave(self):
        """Cells that share nothing (different topology seeds) are
        scheduled concurrently."""
        grid = SweepGrid(tiny_base(), [GridAxis("dataset.topology.seed", (1, 2, 3))])
        plan = plan_sweep(grid.expand())
        assert len(plan.waves) == 1
        assert len(plan.waves[0]) == 3

    def test_summary_lines_mention_sharing(self):
        text = "\n".join(seeds_by_tops_plan().summary_lines())
        assert "4 scenarios" in text
        assert "topology" in text

    def test_section3_only_target_narrows_the_closure(self):
        plan = seeds_by_tops_plan(targets=("section3",))
        assert "correction" not in plan.distinct_fingerprints()
        # Without the correction stage the two tops collapse entirely.
        assert plan.distinct_stage_invocations() == 1 + 10 * 2


class TestNonCacheableStages:
    """``cacheable=False`` stages (the ``snapshot`` facade) can never be
    served from the cache, so they must not participate in the sharing
    accounting or the wave schedule — otherwise every multi-scenario
    sweep targeting them would report phantom duplicate computes and
    serialize scenarios for nothing."""

    def plan(self):
        grid = SweepGrid(tiny_base(), [GridAxis("dataset.seed", (1, 2))])
        return plan_sweep(grid.expand(), targets=("snapshot",))

    def test_snapshot_stage_is_flagged_noncacheable(self):
        assert "snapshot" in self.plan().noncacheable_stages

    def test_noncacheable_stages_excluded_from_accounting(self):
        plan = self.plan()
        assert "snapshot" not in plan.distinct_fingerprints()
        assert "snapshot" not in plan.sharing_summary()
        # 2 scenarios x (topology..propagation..store chain of 9
        # cacheable stages, topology shared).
        assert plan.total_stage_invocations() == 2 * 9
        assert plan.distinct_stage_invocations() == 1 + 8 * 2

    def test_schedule_claims_only_cacheable_fingerprints(self):
        """Scenarios identical in the snapshot closure (a `top` axis
        does not feed it) share every fingerprint, including the
        non-cacheable snapshot's; the schedule must claim only the
        cacheable ones, so the second scenario simply waits for the
        first wave's cache instead of conflicting forever."""
        grid = SweepGrid(tiny_base(), [GridAxis("top", (2, 3))])
        plan = plan_sweep(grid.expand(), targets=("snapshot",))
        first = plan.waves[0][0]
        assert "snapshot" in first.fingerprints
        claimed = plan.cacheable_fingerprints(first)
        assert first.fingerprints["snapshot"] not in claimed
