"""Unit tests for routing policies (LOCAL_PREF, tagging, export rules)."""

import pytest

from repro.bgp.attributes import Community
from repro.bgp.policy import (
    LocalPrefScheme,
    RoutingPolicy,
    TrafficEngineeringOverride,
    default_policies,
    gao_rexford_export_allowed,
)
from repro.bgp.prefixes import Prefix
from repro.core.relationships import AFI, Relationship
from repro.irr.dictionary import CommunityDictionary


class TestLocalPrefScheme:
    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            LocalPrefScheme(customer=100, peer=200, provider=300)

    def test_for_relationship(self):
        scheme = LocalPrefScheme(customer=300, peer=200, provider=100)
        assert scheme.for_relationship(Relationship.P2C) == 300
        assert scheme.for_relationship(Relationship.P2P) == 200
        assert scheme.for_relationship(Relationship.C2P) == 100
        with pytest.raises(ValueError):
            scheme.for_relationship(Relationship.UNKNOWN)

    def test_reverse_lookup(self):
        scheme = LocalPrefScheme()
        assert scheme.relationship_for(300) is Relationship.P2C
        assert scheme.relationship_for(42) is Relationship.UNKNOWN


class TestGaoRexfordRule:
    def test_local_routes_exported_everywhere(self):
        for export_rel in (Relationship.P2C, Relationship.P2P, Relationship.C2P):
            assert gao_rexford_export_allowed(None, export_rel)

    def test_customer_routes_exported_everywhere(self):
        for export_rel in (Relationship.P2C, Relationship.P2P, Relationship.C2P):
            assert gao_rexford_export_allowed(Relationship.P2C, export_rel)

    def test_peer_routes_only_to_customers(self):
        assert gao_rexford_export_allowed(Relationship.P2P, Relationship.P2C)
        assert not gao_rexford_export_allowed(Relationship.P2P, Relationship.P2P)
        assert not gao_rexford_export_allowed(Relationship.P2P, Relationship.C2P)

    def test_provider_routes_only_to_customers(self):
        assert gao_rexford_export_allowed(Relationship.C2P, Relationship.P2C)
        assert not gao_rexford_export_allowed(Relationship.C2P, Relationship.P2P)
        assert not gao_rexford_export_allowed(Relationship.C2P, Relationship.C2P)


class TestTrafficEngineeringOverride:
    def test_applies_to_matching_neighbor(self):
        override = TrafficEngineeringOverride(neighbor=7, local_pref=50)
        assert override.applies_to(7, Prefix("10.0.0.0/24"))
        assert not override.applies_to(8, Prefix("10.0.0.0/24"))

    def test_prefix_restriction(self):
        target = Prefix("10.1.0.0/16")
        override = TrafficEngineeringOverride(neighbor=7, local_pref=50, prefixes=(target,))
        assert override.applies_to(7, target)
        assert not override.applies_to(7, Prefix("10.2.0.0/16"))


class TestRoutingPolicy:
    def test_local_pref_uses_scheme_by_default(self):
        policy = RoutingPolicy(asn=1)
        value, override = policy.local_pref_for(2, Relationship.P2C, Prefix("10.0.0.0/24"))
        assert value == policy.local_pref.customer
        assert override is None

    def test_local_pref_override_applies(self):
        override = TrafficEngineeringOverride(neighbor=2, local_pref=55, action="lower-pref")
        policy = RoutingPolicy(asn=1, te_overrides=[override])
        value, applied = policy.local_pref_for(2, Relationship.C2P, Prefix("10.0.0.0/24"))
        assert value == 55
        assert applied is override

    def test_import_communities_with_tagger(self):
        dictionary = CommunityDictionary(1)
        dictionary.add_relationship(100, Relationship.P2C)
        dictionary.add_traffic_engineering(666, "lower-pref")
        policy = RoutingPolicy(asn=1, tagger=dictionary)
        plain = policy.import_communities(Relationship.P2C, None)
        assert plain == [Community(1, 100)]
        override = TrafficEngineeringOverride(neighbor=2, local_pref=50, action="lower-pref")
        tagged = policy.import_communities(Relationship.P2C, override)
        assert Community(1, 666) in tagged

    def test_import_communities_without_tagger(self):
        policy = RoutingPolicy(asn=1)
        assert policy.import_communities(Relationship.P2P, None) == []

    def test_relaxation_lifts_export_restriction(self):
        policy = RoutingPolicy(asn=1)
        assert not policy.export_allowed(Relationship.P2P, Relationship.P2P, 9, AFI.IPV6)
        policy.add_relaxation(9, AFI.IPV6)
        assert policy.export_allowed(Relationship.P2P, Relationship.P2P, 9, AFI.IPV6)
        # Relaxation is per address family.
        assert not policy.export_allowed(Relationship.P2P, Relationship.P2P, 9, AFI.IPV4)

    def test_default_policies_builder(self):
        policies = default_policies([1, 2, 3])
        assert set(policies) == {1, 2, 3}
        assert all(policy.asn == asn for asn, policy in policies.items())
