"""Seed-variance confidence intervals in the sweep report.

The seed-variance section used to flag varying metrics with a yes/no;
it now reports t-based mean ± 95% CI across the repeated-seed cells of
each fixed-configuration group, in both the JSON report and the
markdown rendering.
"""

from __future__ import annotations

import math

import pytest

from repro.datasets import DatasetConfig
from repro.pipeline import PipelineConfig
from repro.sweep import (
    SWEEP_REPORT_SCHEMA_VERSION,
    GridAxis,
    SweepGrid,
    build_report,
    confidence_interval,
    render_markdown,
    run_sweep,
    t_critical_95,
)
from repro.topology.generator import TopologyConfig


class TestTTable:
    def test_exact_small_dfs(self):
        assert t_critical_95(1) == pytest.approx(12.706)
        assert t_critical_95(2) == pytest.approx(4.303)
        assert t_critical_95(9) == pytest.approx(2.262)
        assert t_critical_95(30) == pytest.approx(2.042)

    def test_bracketing_rounds_df_down_and_quantile_up(self):
        # Between table rows the largest tabulated df <= request is
        # used: t decreases in df, so the interval is widened, never
        # narrowed (conservative direction).
        assert t_critical_95(35) == pytest.approx(2.042)  # floor df=30
        assert t_critical_95(59) == pytest.approx(2.021)  # floor df=40
        assert t_critical_95(100) == pytest.approx(2.000)  # floor df=60
        assert t_critical_95(10_000) == pytest.approx(1.980)  # table tail
        for df in (31, 45, 80, 500):
            floor = t_critical_95(df)
            assert floor >= 1.980
            # Never narrower than the next tabulated row above.
            assert floor >= t_critical_95(df + 100)

    def test_rejects_zero_df(self):
        with pytest.raises(ValueError):
            t_critical_95(0)


class TestConfidenceInterval:
    def test_known_three_sample_case(self):
        # values 1, 2, 3: mean 2, sample stddev 1, t(df=2) = 4.303.
        interval = confidence_interval([1.0, 2.0, 3.0])
        assert interval["n"] == 3
        assert interval["mean"] == pytest.approx(2.0)
        assert interval["stddev"] == pytest.approx(1.0)
        expected = 4.303 / math.sqrt(3)
        assert interval["ci95_half_width"] == pytest.approx(expected)
        assert interval["ci95_low"] == pytest.approx(2.0 - expected)
        assert interval["ci95_high"] == pytest.approx(2.0 + expected)

    def test_identical_samples_have_zero_width(self):
        interval = confidence_interval([5.0, 5.0, 5.0, 5.0])
        assert interval["stddev"] == 0.0
        assert interval["ci95_half_width"] == 0.0
        assert interval["ci95_low"] == interval["ci95_high"] == 5.0

    def test_single_sample_rejected(self):
        with pytest.raises(ValueError, match="at least 2"):
            confidence_interval([1.0])


def seed_grid(seeds=(1, 2, 3)) -> SweepGrid:
    base = PipelineConfig(
        dataset=DatasetConfig(
            topology=TopologyConfig(
                seed=5, tier1_count=3, tier2_count=8, tier3_count=20
            ),
            seed=5,
            vantage_points=4,
        ),
        top=2,
        max_sources=10,
    )
    return SweepGrid(base, [GridAxis("dataset.seed", tuple(seeds))])


@pytest.fixture(scope="module")
def seed_sweep_report(tmp_path_factory):
    cache = tmp_path_factory.mktemp("ci-cache")
    grid = seed_grid()
    result = run_sweep(grid, cache_dir=cache, executor="serial")
    assert not result.failed()
    return build_report(result, grid)


class TestReportIntegration:
    def test_schema_version_bumped_for_ci_fields(self, seed_sweep_report):
        assert seed_sweep_report["schema_version"] == SWEEP_REPORT_SCHEMA_VERSION
        assert SWEEP_REPORT_SCHEMA_VERSION >= 2

    def test_groups_carry_interval_statistics(self, seed_sweep_report):
        groups = seed_sweep_report["seed_variance"]["groups"]
        assert len(groups) == 1  # one fixed config, three seeds
        group = groups[0]
        assert len(group["scenario_ids"]) == 3
        assert group["metrics"], "per-metric intervals missing"
        for name, interval in group["metrics"].items():
            assert interval["n"] == 3, name
            assert interval["ci95_low"] <= interval["mean"] <= interval["ci95_high"]
            assert interval["ci95_half_width"] >= 0
        # A metric flagged as varying must have a nonzero interval, and
        # its values must straddle nothing outside [low, high] bounds
        # computed from the raw per-scenario deltas.
        for name in group["varying_metrics"]:
            interval = group["metrics"][name]
            assert interval["stddev"] > 0, name
            values = seed_sweep_report["deltas"][name]["values"]
            sample = [values[sid] for sid in group["scenario_ids"] if sid in values]
            assert interval["mean"] == pytest.approx(sum(sample) / len(sample))

    def test_stable_metrics_have_zero_width_intervals(self, seed_sweep_report):
        group = seed_sweep_report["seed_variance"]["groups"][0]
        stable = [
            name for name in group["metrics"] if name not in group["varying_metrics"]
        ]
        assert stable, "expected at least one seed-stable metric"
        for name in stable:
            assert group["metrics"][name]["ci95_half_width"] == 0.0

    def test_markdown_renders_ci_table(self, seed_sweep_report):
        markdown = render_markdown(seed_sweep_report)
        assert "t-based mean ± 95% CI" in markdown
        assert "| metric | n | mean | ± 95% CI | interval |" in markdown
        assert "(3 seeds)" in markdown

    def test_markdown_without_seed_groups_still_renders(self, tmp_path):
        grid = SweepGrid(
            seed_grid().base, [GridAxis("top", (2, 3))]
        )
        result = run_sweep(grid, cache_dir=tmp_path, executor="serial")
        markdown = render_markdown(build_report(result, grid))
        assert "No scenario group differs only in a seed axis" in markdown
