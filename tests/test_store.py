"""Golden equivalence of the indexed ObservationStore vs the legacy
list pipeline, plus the store's index invariants.

The store is a pure accelerator: every consumer that accepts it must
produce *identical* results to the plain-list path.  These tests pin
that equivalence on two differently seeded snapshots, and also pin the
frozen seed pipeline (``repro.analysis.reference``) the benchmark uses
as its speedup denominator.
"""

import pytest

from repro.analysis.paths import (
    distinct_paths,
    extract_observations,
    paths_by_origin,
    store_from_records,
)
from repro.analysis.reference import (
    reference_extract_observations,
    reference_pipeline,
)
from repro.analysis.stats import compute_section3
from repro.bgp.attributes import ASPath, Community
from repro.bgp.prefixes import Prefix
from repro.collectors.mrt import TableDumpRecord
from repro.core.observations import ObservedRoute
from repro.core.relationships import AFI, Link
from repro.core.store import ObservationStore
from repro.core.visibility import build_visibility_index
from repro.datasets import build_snapshot, small_config


@pytest.fixture(scope="module", params=[7, 13], ids=["seed7", "seed13"])
def seeded_snapshot(request):
    """Two differently seeded small snapshots (built once per module)."""
    return build_snapshot(small_config(seed=request.param))


class TestGoldenEquivalence:
    def test_section3_identical_via_store_and_list(self, seeded_snapshot):
        snapshot = seeded_snapshot
        legacy = compute_section3(list(snapshot.observations), snapshot.registry)
        fast = compute_section3(snapshot.store, snapshot.registry)
        assert legacy.report.as_dict() == fast.report.as_dict()
        # Communities evidence: raw votes, conflicts and annotations.
        assert legacy.inference.communities.votes == fast.inference.communities.votes
        assert (
            legacy.inference.communities.conflicting_links
            == fast.inference.communities.conflicting_links
        )
        for afi in (AFI.IPV4, AFI.IPV6):
            assert dict(legacy.inference.annotation(afi).items()) == dict(
                fast.inference.annotation(afi).items()
            )
        # LocPrf evidence: mappings, counters, annotations.
        legacy_locpref, fast_locpref = (
            legacy.inference.locpref,
            fast.inference.locpref,
        )
        assert (
            legacy_locpref.filtered_traffic_engineering
            == fast_locpref.filtered_traffic_engineering
        )
        assert legacy_locpref.unmapped_observations == fast_locpref.unmapped_observations
        assert {
            vantage: (mapping.mapping, mapping.ambiguous_values, mapping.samples)
            for vantage, mapping in legacy_locpref.mappings.items()
        } == {
            vantage: (mapping.mapping, mapping.ambiguous_values, mapping.samples)
            for vantage, mapping in fast_locpref.mappings.items()
        }
        # Valley statistics down to the individual valley paths.
        assert legacy.valley.summary() == fast.valley.summary()
        assert [vp.path for vp in legacy.valley.valley_paths] == [
            vp.path for vp in fast.valley.valley_paths
        ]
        # Visibility tables.
        assert legacy.visibility.path_count == fast.visibility.path_count
        assert legacy.visibility.link_paths == fast.visibility.link_paths

    def test_reference_pipeline_matches_store_pipeline(self, seeded_snapshot):
        snapshot = seeded_snapshot
        reference_report = reference_pipeline(snapshot.archive, snapshot.registry)
        fast = compute_section3(snapshot.store, snapshot.registry)
        assert reference_report.as_dict() == fast.report.as_dict()

    def test_reference_extraction_matches_live(self, seeded_snapshot):
        snapshot = seeded_snapshot
        reference = reference_extract_observations(
            snapshot.archive.records(), deduplicate=True
        )
        live = extract_observations(snapshot.archive.records(), deduplicate=True)
        assert reference.observations == live.observations
        assert reference.stats == live.stats

    def test_wrappers_match_store_queries(self, seeded_snapshot):
        snapshot = seeded_snapshot
        store, observations = snapshot.store, snapshot.observations
        assert distinct_paths(store) == distinct_paths(observations)
        assert distinct_paths(store, AFI.IPV6) == distinct_paths(
            observations, AFI.IPV6
        )
        assert paths_by_origin(store) == paths_by_origin(observations)
        assert paths_by_origin(store, AFI.IPV4) == paths_by_origin(
            observations, AFI.IPV4
        )
        store_index = build_visibility_index(store, afi=AFI.IPV6)
        list_index = build_visibility_index(
            [o for o in observations if o.afi is AFI.IPV6], afi=AFI.IPV6
        )
        assert store_index.path_count == list_index.path_count
        assert store_index.link_paths == list_index.link_paths
        some_links = sorted(list_index.link_paths)[:5]
        assert store_index.paths_crossing_any(
            some_links
        ) == list_index.paths_crossing_any(some_links)


class TestStoreIndexes:
    #: Attributes that are lazily derived (and therefore may differ in
    #: "not yet computed" state between two freshly built stores).
    LAZY_ATTRIBUTES = {
        "_all_links",
        "_dual_stack_links",
        "_visibility",
        "_next_hops",
        "_by_origin",
        "_by_link",
        "_paths_by_origin",
    }

    def test_streaming_store_matches_rebuild(self, seeded_snapshot):
        result = store_from_records(seeded_snapshot.archive.records(), deduplicate=True)
        rebuilt = ObservationStore(result.observations)
        # Compare the FULL eager index state generically, so that an
        # index added to ObservationStore._build but forgotten in the
        # streaming path (repro.analysis.paths._extract) fails here even
        # before any test queries it.
        eager = set(rebuilt.__dict__) - self.LAZY_ATTRIBUTES
        assert set(result.store.__dict__) == set(rebuilt.__dict__)
        for attribute in sorted(eager):
            assert (
                result.store.__dict__[attribute] == rebuilt.__dict__[attribute]
            ), f"streaming and rebuilt stores disagree on {attribute}"
        # Lazily derived tables agree once forced.
        for afi in (None, AFI.IPV4, AFI.IPV6):
            assert result.store.distinct_paths(afi) == rebuilt.distinct_paths(afi)
        assert result.store.dual_stack_links() == rebuilt.dual_stack_links()
        assert result.store.paths_by_origin() == rebuilt.paths_by_origin()

    def make_observations(self):
        return [
            ObservedRoute(
                path=(1, 2, 3),
                prefix=Prefix("3fff:1::/32"),
                vantage=1,
                local_pref=100,
            ),
            ObservedRoute(
                path=(1, 2, 3),
                prefix=Prefix("10.1.0.0/20"),
                vantage=1,
                communities=(Community(1, 100),),
            ),
            ObservedRoute(path=(4, 2, 3), prefix=Prefix("3fff:1::/32"), vantage=4),
            ObservedRoute(path=(1, 5), prefix=Prefix("3fff:2::/32"), vantage=1),
        ]

    def test_basic_indexes(self):
        store = ObservationStore(self.make_observations())
        assert len(store) == 4
        assert [o.vantage for o in store.by_afi[AFI.IPV6]] == [1, 4, 1]
        assert [o.vantage for o in store.by_afi[AFI.IPV4]] == [1]
        assert store.vantages == [1, 4]
        assert len(store.by_vantage[1]) == 3
        assert [o.local_pref for o in store.with_local_pref] == [100]
        assert len(store.with_communities) == 1
        # Distinct paths, first-seen order, per plane and mixed.
        assert store.distinct_paths(AFI.IPV6) == [(1, 2, 3), (4, 2, 3), (1, 5)]
        assert store.distinct_paths(AFI.IPV4) == [(1, 2, 3)]
        assert store.distinct_paths() == [(1, 2, 3), (4, 2, 3), (1, 5)]
        assert store.distinct_path_count(AFI.IPV6) == 3
        # Link tables.
        assert store.links(AFI.IPV4) == {Link(1, 2), Link(2, 3)}
        assert store.links(AFI.IPV6) == {
            Link(1, 2),
            Link(2, 3),
            Link(2, 4),
            Link(1, 5),
        }
        assert store.dual_stack_links() == {Link(1, 2), Link(2, 3)}
        assert store.links() == store.links(AFI.IPV4) | store.links(AFI.IPV6)
        # Per-origin and per-link observation indexes.
        assert sorted(store.by_origin) == [3, 5]
        assert len(store.by_origin[3]) == 3
        assert [o.prefix for o in store.observations_crossing(Link(2, 4))] == [
            Prefix("3fff:1::/32")
        ]
        assert store.observations_crossing(Link(7, 8)) == []
        # Path helpers.
        assert store.path_links((1, 2, 3)) == (Link(1, 2), Link(2, 3))
        assert dict(store.next_hops((1, 2, 3))) == {1: 2, 2: 3}
        assert store.paths_by_origin(AFI.IPV6) == {
            3: [(1, 2, 3), (4, 2, 3)],
            5: [(1, 5)],
        }
        assert store.observations_for(None) is store.observations

    def test_visibility_index_counts_observations_when_asked(self):
        store = ObservationStore(self.make_observations())
        distinct = store.visibility_index(AFI.IPV6)
        assert distinct.path_count == 3
        all_obs = store.visibility_index(AFI.IPV6, distinct_paths_only=False)
        assert all_obs.path_count == 3  # the v6 duplicates share no path
        mixed = store.visibility_index(None, distinct_paths_only=False)
        assert mixed.path_count == 4

    def test_streaming_dedup_replacement_rebuilds_indexes(self):
        base = dict(
            timestamp=0,
            peer_ip="::1",
            peer_as=10,
            prefix=Prefix("3fff:77::/32"),
            as_path=ASPath([10, 20]),
        )
        poor = TableDumpRecord(**base, local_pref=None, communities=())
        rich = TableDumpRecord(
            **base, local_pref=200, communities=(Community(10, 100),)
        )
        result = store_from_records([poor, rich], deduplicate=True)
        assert len(result.observations) == 1
        assert result.observations[0].local_pref == 200
        # The replacement forces a rebuild: every index must reference
        # the surviving (richer) observation.
        assert result.store.with_local_pref == result.observations
        assert result.store.with_communities == result.observations
        assert result.store.by_vantage[10] == result.observations
