"""End-to-end integration tests: the full paper pipeline on a synthetic snapshot.

These tests assert the *shape* of the paper's findings (see DESIGN.md):
coverage, hybrid share and mix, hybrid path visibility, valley fractions
and the Figure-2 trend, computed exactly the way the benchmark harness
computes them.
"""

import pytest

from repro.analysis.partition import analyze_reachability
from repro.analysis.stats import compute_section3
from repro.core.combined_inference import CombinedInference
from repro.core.correction import CorrectionExperiment, plane_agnostic_annotation
from repro.core.hybrid import HybridDetector
from repro.core.relationships import AFI, HybridType
from repro.core.visibility import build_visibility_index
from repro.inference.comparison import compare_annotations
from repro.inference.gao import GaoInference


@pytest.fixture(scope="module")
def section3(snapshot):
    """Section-3 artifacts computed once for this module."""
    return compute_section3(snapshot.observations, snapshot.registry)


class TestSection3Shape:
    def test_path_and_link_counts_positive(self, section3):
        report = section3.report
        assert report.ipv6_paths > 100
        assert report.ipv6_links > 50
        assert 0 < report.dual_stack_links <= report.ipv6_links

    def test_coverage_in_paper_regime(self, section3):
        report = section3.report
        assert 0.5 <= report.ipv6_coverage <= 1.0
        assert 0.5 <= report.dual_stack_coverage <= 1.0
        # Dual-stack (core) links are at least as well covered as the
        # overall IPv6 link population, as in the paper (81% vs 72%).
        assert report.dual_stack_coverage >= report.ipv6_coverage - 0.05

    def test_hybrid_share_in_paper_regime(self, section3):
        report = section3.report
        assert 0.05 <= report.hybrid_fraction <= 0.25
        # The dominant type is peering-for-IPv4 / transit-for-IPv6.
        assert report.hybrid_share_peer4_transit6 >= report.hybrid_share_peer6_transit4

    def test_hybrid_links_highly_visible(self, section3):
        report = section3.report
        # 10-15% of links produce >25% of path crossings (paper: 13% -> 28%).
        assert report.fraction_paths_crossing_hybrid > report.hybrid_fraction

    def test_valley_paths_exist_but_are_minority(self, section3):
        report = section3.report
        assert 0.0 < report.valley_fraction < 0.5
        assert report.reachability_valley_paths <= report.valley_paths

    def test_detected_hybrids_against_ground_truth(self, snapshot, section3):
        detector = HybridDetector(
            section3.inference.annotation(AFI.IPV4),
            section3.inference.annotation(AFI.IPV6),
        )
        validation = detector.validate(
            section3.hybrid, snapshot.true_hybrid_links, assessable_only=True
        )
        assert validation.precision >= 0.9
        assert validation.recall >= 0.9

    def test_inferred_relationships_match_ground_truth(self, snapshot, section3):
        """Communities/LocPrf inference should essentially never contradict
        the ground truth (the paper treats it as actual relationships)."""
        for afi in (AFI.IPV4, AFI.IPV6):
            report = compare_annotations(
                section3.inference.annotation(afi),
                snapshot.ground_truth_annotation(afi),
            )
            assert report.accuracy >= 0.95


class TestValleyAndPartition:
    def test_ipv6_plane_is_partitioned_without_relaxation(self, snapshot):
        annotation = snapshot.ground_truth_annotation(AFI.IPV6)
        ases = [
            asn
            for asn in snapshot.graph.ases_in(AFI.IPV6)
            if annotation.neighbors(asn)
        ][:60]
        report = analyze_reachability(annotation, ases=ases)
        assert report.ases == len(ases)
        # The peering dispute partitions part of the plane.
        if snapshot.dispute_links:
            assert report.reachable_fraction <= 1.0

    def test_valley_paths_traverse_relaxed_adjacencies(self, snapshot, section3):
        relaxed = {frozenset(pair) for pair in snapshot.relaxed_adjacencies}
        traversing = 0
        for valley_path in section3.valley.valley_paths:
            hops = valley_path.path
            pairs = {frozenset((hops[i], hops[i + 1])) for i in range(len(hops) - 1)}
            if pairs & relaxed:
                traversing += 1
        if section3.valley.valley_paths:
            assert traversing / len(section3.valley.valley_paths) >= 0.5


class TestFigure2Trend:
    def test_correcting_most_visible_hybrids_moves_the_metric(self, snapshot, section3):
        """Figure 2 machinery: start from the plane-agnostic (misinferred)
        IPv6 annotation and correct the most visible hybrid links; every
        step is measured, the series covers all corrected links, and the
        customer-tree metric responds to the corrections."""
        reference = section3.inference.annotation(AFI.IPV6)
        misinferred = plane_agnostic_annotation(
            reference, section3.inference.annotation(AFI.IPV4)
        )
        experiment = CorrectionExperiment(misinferred, reference, max_sources=40)
        visibility = section3.visibility
        hybrid_links = section3.hybrid.hybrid_link_set()
        series = experiment.run_with_visibility(hybrid_links, visibility, top=10)
        assert len(series.steps) >= 2
        assert series.steps[0].corrected_links == 0
        assert series.steps[-1].corrected_links == len(series.steps) - 1
        assert all(metric > 0 for metric in series.averages)
        # The corrections are not a no-op: at least one step changes the metric.
        assert any(
            series.averages[i] != series.averages[i - 1]
            or series.diameters[i] != series.diameters[i - 1]
            for i in range(1, len(series.steps))
        )

    def test_visibility_order_moves_metric_more_than_random_order(self, section3):
        """DESIGN.md ablation: correcting the most visible links changes the
        metric at least as much as correcting randomly chosen ones with the
        same budget."""
        reference = section3.inference.annotation(AFI.IPV6)
        misinferred = plane_agnostic_annotation(
            reference, section3.inference.annotation(AFI.IPV4)
        )
        experiment = CorrectionExperiment(misinferred, reference, max_sources=40)
        hybrid_links = section3.hybrid.hybrid_link_set()
        budget = 3
        by_visibility = experiment.run_with_visibility(
            hybrid_links, section3.visibility, top=budget
        )
        random_order = experiment.run_random_order(hybrid_links, count=budget, seed=5)
        delta_visibility = abs(by_visibility.averages[-1] - by_visibility.averages[0])
        delta_random = abs(random_order.averages[-1] - random_order.averages[0])
        assert delta_visibility >= delta_random * 0.5

    def test_misinference_exists_to_correct(self, snapshot, section3):
        baseline = GaoInference().infer(snapshot.observations_for(AFI.IPV6), AFI.IPV6)
        reference = section3.inference.annotation(AFI.IPV6)
        report = compare_annotations(baseline, reference)
        assert report.disagreement_count > 0

    def test_plane_agnostic_annotation_misinfers_exactly_the_hybrids(self, section3):
        reference = section3.inference.annotation(AFI.IPV6)
        misinferred = plane_agnostic_annotation(
            reference, section3.inference.annotation(AFI.IPV4)
        )
        differing = set(reference.differing_links(misinferred))
        assert differing == section3.hybrid.hybrid_link_set() & differing
        assert differing, "the snapshot should contain detectable hybrid links"
