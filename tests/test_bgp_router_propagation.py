"""Unit and integration tests for the BGP speaker and the propagation simulator."""

import pytest

from repro.bgp.attributes import ASPath, Community, PathAttributes
from repro.bgp.messages import Announcement, Route
from repro.bgp.policy import LocalPrefScheme, RoutingPolicy
from repro.bgp.prefixes import Prefix, PrefixAllocator
from repro.bgp.propagation import (
    PropagationSimulator,
    originate_one_prefix_per_as,
)
from repro.bgp.rib import AdjRibIn, LocRib, RibSnapshot
from repro.bgp.router import BGPSpeaker
from repro.core.relationships import AFI, Relationship
from repro.irr.dictionary import CommunityDictionary
from repro.topology.graph import ASGraph

V4 = Prefix("10.1.0.0/20")
V6 = Prefix("3fff:100::/32")


def make_announcement(prefix, sender, receiver, hops, communities=()):
    return Announcement(
        prefix=prefix,
        sender=sender,
        receiver=receiver,
        attributes=PathAttributes(as_path=ASPath(hops), communities=tuple(communities)),
    )


class TestRibs:
    def test_adj_rib_in_update_and_withdraw(self):
        rib = AdjRibIn(neighbor=2)
        route = Route.originate(V4, 2)
        rib.update(route)
        assert rib.route_for(V4) == route
        assert len(rib) == 1
        assert rib.withdraw(V4) == route
        assert rib.withdraw(V4) is None

    def test_loc_rib_install_reports_change(self):
        rib = LocRib()
        route = Route.originate(V4, 1)
        assert rib.install(route)
        assert not rib.install(route)
        assert V4 in rib
        assert rib.prefixes() == [V4]

    def test_loc_rib_afi_filter(self):
        rib = LocRib()
        rib.install(Route.originate(V4, 1))
        rib.install(Route.originate(V6, 1))
        assert len(rib.routes(AFI.IPV4)) == 1
        assert len(rib.routes(AFI.IPV6)) == 1

    def test_snapshot_len(self):
        snapshot = RibSnapshot(asn=1, best_routes={V4: Route.originate(V4, 1)})
        assert len(snapshot) == 1
        assert snapshot.routes(AFI.IPV6) == []


class TestBGPSpeaker:
    def make_speaker(self):
        speaker = BGPSpeaker(100, RoutingPolicy(asn=100, local_pref=LocalPrefScheme()))
        speaker.add_neighbor(1, Relationship.C2P, AFI.IPV4)   # provider
        speaker.add_neighbor(2, Relationship.P2P, AFI.IPV4)   # peer
        speaker.add_neighbor(3, Relationship.P2C, AFI.IPV4)   # customer
        return speaker

    def test_add_neighbor_validation(self):
        speaker = BGPSpeaker(1)
        with pytest.raises(ValueError):
            speaker.add_neighbor(1, Relationship.P2P, AFI.IPV4)
        with pytest.raises(ValueError):
            speaker.add_neighbor(2, Relationship.UNKNOWN, AFI.IPV4)

    def test_receive_assigns_local_pref_by_relationship(self):
        speaker = self.make_speaker()
        speaker.receive(make_announcement(V4, 3, 100, [3, 30]))
        best = speaker.best_route(V4)
        assert best.local_pref == speaker.policy.local_pref.customer
        assert best.learned_from == 3

    def test_customer_route_preferred_over_shorter_provider_route(self):
        speaker = self.make_speaker()
        speaker.receive(make_announcement(V4, 1, 100, [1, 30]))
        speaker.receive(make_announcement(V4, 3, 100, [3, 33, 34, 30]))
        best = speaker.best_route(V4)
        assert best.learned_from == 3, "customer route must win despite longer path"

    def test_shorter_path_wins_within_same_relationship(self):
        speaker = self.make_speaker()
        speaker.add_neighbor(4, Relationship.P2C, AFI.IPV4)
        speaker.receive(make_announcement(V4, 3, 100, [3, 31, 30]))
        speaker.receive(make_announcement(V4, 4, 100, [4, 30]))
        assert speaker.best_route(V4).learned_from == 4

    def test_loop_prevention(self):
        speaker = self.make_speaker()
        changed = speaker.receive(make_announcement(V4, 1, 100, [1, 100, 30]))
        assert not changed
        assert speaker.best_route(V4) is None

    def test_withdraw_falls_back_to_next_best(self):
        speaker = self.make_speaker()
        speaker.receive(make_announcement(V4, 3, 100, [3, 30]))
        speaker.receive(make_announcement(V4, 2, 100, [2, 30]))
        assert speaker.best_route(V4).learned_from == 3
        assert speaker.withdraw(V4, 3)
        assert speaker.best_route(V4).learned_from == 2
        assert speaker.withdraw(V4, 2)
        assert speaker.best_route(V4) is None

    def test_export_applies_valley_free_rule(self):
        speaker = self.make_speaker()
        speaker.receive(make_announcement(V4, 2, 100, [2, 30]))  # learned from peer
        assert speaker.export_to(3, V4) is not None              # to customer: ok
        assert speaker.export_to(1, V4) is None                  # to provider: no

    def test_export_prepends_own_asn_and_strips_local_pref(self):
        speaker = self.make_speaker()
        speaker.receive(make_announcement(V4, 3, 100, [3, 30]))
        announcement = speaker.export_to(1, V4)
        assert announcement.as_path.hops == (100, 3, 30)
        assert announcement.attributes.local_pref is None

    def test_export_never_returns_to_sender(self):
        speaker = self.make_speaker()
        speaker.receive(make_announcement(V4, 3, 100, [3, 30]))
        assert speaker.export_to(3, V4) is None

    def test_origin_export_does_not_duplicate_asn(self):
        speaker = self.make_speaker()
        speaker.originate(V4)
        announcement = speaker.export_to(1, V4)
        assert announcement.as_path.hops == (100,)

    def test_community_tagging_on_import(self):
        dictionary = CommunityDictionary(100)
        dictionary.add_relationship(10, Relationship.P2C)
        speaker = BGPSpeaker(100, RoutingPolicy(asn=100, tagger=dictionary))
        speaker.add_neighbor(3, Relationship.P2C, AFI.IPV4)
        speaker.receive(make_announcement(V4, 3, 100, [3, 30]))
        assert Community(100, 10) in speaker.best_route(V4).communities

    def test_strip_communities_on_export(self):
        policy = RoutingPolicy(asn=100, strip_communities_on_export=True)
        speaker = BGPSpeaker(100, policy)
        speaker.add_neighbor(3, Relationship.P2C, AFI.IPV4)
        speaker.add_neighbor(5, Relationship.P2C, AFI.IPV4)
        speaker.receive(
            make_announcement(V4, 3, 100, [3, 30], communities=[Community(3, 99)])
        )
        exported = speaker.export_to(5, V4)
        assert exported.attributes.communities == ()

    def test_prune_prefix(self):
        speaker = self.make_speaker()
        speaker.receive(make_announcement(V4, 3, 100, [3, 30]))
        speaker.prune_prefix(V4, keep_best=True)
        assert speaker.best_route(V4) is not None
        speaker.prune_prefix(V4, keep_best=False)
        assert speaker.best_route(V4) is None


@pytest.fixture()
def diamond_graph():
    """AS1 (top) provides to AS2 and AS3 (peers); both provide to AS4."""
    graph = ASGraph()
    graph.add_link(1, 2, rel_v4=Relationship.P2C, rel_v6=Relationship.P2C)
    graph.add_link(1, 3, rel_v4=Relationship.P2C, rel_v6=Relationship.P2C)
    graph.add_link(2, 3, rel_v4=Relationship.P2P, rel_v6=Relationship.P2P)
    graph.add_link(2, 4, rel_v4=Relationship.P2C, rel_v6=Relationship.P2C)
    graph.add_link(3, 4, rel_v4=Relationship.P2C, rel_v6=Relationship.P2C)
    for asn in (1, 2, 3, 4):
        graph.node(asn).ipv6 = True
    return graph


class TestPropagation:
    def test_full_reachability_in_diamond(self, diamond_graph):
        simulator = PropagationSimulator(diamond_graph)
        origins = originate_one_prefix_per_as(diamond_graph, AFI.IPV4)
        result = simulator.run(origins)
        for asn in (1, 2, 3, 4):
            assert len(result.reachable_prefixes(asn, AFI.IPV4)) == 4

    def test_paths_are_valley_free_without_relaxation(self, diamond_graph):
        simulator = PropagationSimulator(diamond_graph)
        allocator = PrefixAllocator()
        origins = originate_one_prefix_per_as(diamond_graph, AFI.IPV4, allocator)
        result = simulator.run(origins)
        # AS2's route to AS3's prefix must go through AS2-AS3 peering or
        # via the shared provider AS1, never through customer AS4.
        path = result.best_path(2, allocator.ipv4_prefix(3))
        assert 4 not in path

    def test_customer_route_preferred_network_wide(self, diamond_graph):
        allocator = PrefixAllocator()
        simulator = PropagationSimulator(diamond_graph)
        result = simulator.run({allocator.ipv4_prefix(4): 4})
        # AS1 hears AS4's prefix from its customers AS2/AS3, never directly.
        path = result.best_path(1, allocator.ipv4_prefix(4))
        assert path[0] == 1
        assert path[-1] == 4
        assert len(path) == 3

    def test_relaxation_creates_valley(self, diamond_graph):
        # AS4 leaks routes learned from provider AS2 to provider AS3.
        policies = {asn: RoutingPolicy(asn=asn) for asn in (1, 2, 3, 4)}
        policies[4].add_relaxation(3, AFI.IPV6)
        # Remove the direct links that would otherwise carry the route.
        diamond_graph.remove_link(1, 3)
        diamond_graph.remove_link(2, 3)
        allocator = PrefixAllocator()
        simulator = PropagationSimulator(diamond_graph, policies)
        result = simulator.run({allocator.ipv6_prefix(2): 2})
        path = result.best_path(3, allocator.ipv6_prefix(2))
        assert path == (3, 4, 2), "AS3 should reach AS2 only through the leak at AS4"

    def test_reachable_counts_recorded(self, diamond_graph):
        allocator = PrefixAllocator()
        simulator = PropagationSimulator(diamond_graph)
        prefix = allocator.ipv4_prefix(1)
        result = simulator.run({prefix: 1})
        assert result.reachable_counts[prefix] == 4

    def test_keep_ribs_for_prunes_non_vantage_state(self, diamond_graph):
        allocator = PrefixAllocator()
        simulator = PropagationSimulator(diamond_graph, keep_ribs_for=[4])
        prefix = allocator.ipv4_prefix(1)
        result = simulator.run({prefix: 1})
        assert result.best_route(4, prefix) is not None
        assert result.best_route(2, prefix) is None
        assert result.reachable_counts[prefix] == 4

    def test_unknown_origin_rejected(self, diamond_graph):
        simulator = PropagationSimulator(diamond_graph)
        with pytest.raises(KeyError):
            simulator.run({Prefix("10.0.0.0/20"): 999})

    def test_origin_must_support_afi(self, diamond_graph):
        diamond_graph.add_as(5, ipv4=True, ipv6=False)
        diamond_graph.add_link(2, 5, rel_v4=Relationship.P2C)
        simulator = PropagationSimulator(diamond_graph)
        with pytest.raises(ValueError):
            simulator.run({Prefix("3fff:5::/32"): 5})

    def test_originate_one_prefix_per_as_respects_afi(self, diamond_graph):
        diamond_graph.add_as(5, ipv4=True, ipv6=False)
        diamond_graph.add_link(2, 5, rel_v4=Relationship.P2C)
        origins = originate_one_prefix_per_as(diamond_graph, AFI.IPV6)
        assert 5 not in set(origins.values())
        assert set(origins.values()) == {1, 2, 3, 4}
