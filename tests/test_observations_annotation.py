"""Unit tests for observations and the ToR annotation container."""

import pytest

from repro.bgp.attributes import Community
from repro.bgp.prefixes import Prefix
from repro.core.annotation import ToRAnnotation, valley_free_distances
from repro.core.observations import (
    ObservedRoute,
    clean_raw_path,
    group_by_afi,
    group_by_vantage,
    unique_links,
    unique_paths,
)
from repro.core.relationships import AFI, Link, Relationship, RelationshipSource

V6 = Prefix("3fff:abc::/32")
V4 = Prefix("10.5.0.0/20")


class TestCleanRawPath:
    def test_collapses_prepending(self):
        assert clean_raw_path([1, 2, 2, 2, 3]) == (1, 2, 3)

    def test_rejects_loops(self):
        assert clean_raw_path([1, 2, 3, 1]) is None

    def test_empty_is_none(self):
        assert clean_raw_path([]) is None

    def test_single_hop(self):
        assert clean_raw_path([5, 5, 5]) == (5,)


class TestObservedRoute:
    def make(self, path=(10, 20, 30), prefix=V6, **kwargs):
        defaults = dict(path=tuple(path), prefix=prefix, vantage=path[0])
        defaults.update(kwargs)
        return ObservedRoute(**defaults)

    def test_validation(self):
        with pytest.raises(ValueError):
            ObservedRoute(path=(), prefix=V6, vantage=1)
        with pytest.raises(ValueError):
            ObservedRoute(path=(1, 2), prefix=V6, vantage=2)
        with pytest.raises(ValueError):
            ObservedRoute(path=(1, 2, 1), prefix=V6, vantage=1)

    def test_afi_and_origin(self):
        route = self.make()
        assert route.afi is AFI.IPV6
        assert route.origin_as == 30
        assert route.length == 3
        assert self.make(prefix=V4).afi is AFI.IPV4

    def test_links(self):
        assert self.make().links() == [Link(10, 20), Link(20, 30)]

    def test_next_hop_of(self):
        route = self.make()
        assert route.next_hop_of(10) == 20
        assert route.next_hop_of(20) == 30
        assert route.next_hop_of(30) is None  # origin
        assert route.next_hop_of(99) is None  # not on path

    def test_communities_of(self):
        route = self.make(communities=(Community(10, 1), Community(20, 2)))
        assert route.communities_of(10) == [Community(10, 1)]
        assert route.communities_of(30) == []

    def test_grouping_helpers(self):
        a = self.make()
        b = self.make(path=(10, 40), prefix=V4)
        c = self.make(path=(11, 40))
        assert unique_paths([a, b, c]) == {(10, 20, 30), (10, 40), (11, 40)}
        assert Link(10, 40) in unique_links([a, b, c])
        by_afi = group_by_afi([a, b, c])
        assert len(by_afi[AFI.IPV6]) == 2
        by_vantage = group_by_vantage([a, b, c])
        assert set(by_vantage) == {10, 11}
        assert len(by_vantage[10]) == 2


class TestToRAnnotation:
    def make_annotation(self):
        annotation = ToRAnnotation(AFI.IPV6)
        annotation.set(1, 2, Relationship.P2C)
        annotation.set(3, 2, Relationship.P2C)   # 2 is customer of both 1 and 3
        annotation.set(1, 3, Relationship.P2P)
        annotation.set(2, 4, Relationship.P2C)
        return annotation

    def test_set_and_get_orientation(self):
        annotation = self.make_annotation()
        assert annotation.get(1, 2) is Relationship.P2C
        assert annotation.get(2, 1) is Relationship.C2P
        assert annotation.get(1, 3) is Relationship.P2P
        assert annotation.get(1, 4) is Relationship.UNKNOWN
        assert annotation.get(5, 5) is Relationship.UNKNOWN

    def test_neighbor_queries(self):
        annotation = self.make_annotation()
        assert annotation.customers_of(1) == [2]
        assert annotation.providers_of(2) == [1, 3]
        assert annotation.peers_of(1) == [3]
        assert annotation.neighbors(2) == [1, 3, 4]
        assert annotation.ases == [1, 2, 3, 4]

    def test_remove(self):
        annotation = self.make_annotation()
        annotation.remove(1, 2)
        assert annotation.get(1, 2) is Relationship.UNKNOWN
        assert 2 not in annotation.providers_of(4) or True  # no exception

    def test_update_overwrite_and_fill(self):
        base = self.make_annotation()
        other = ToRAnnotation(AFI.IPV6)
        other.set(1, 2, Relationship.P2P)
        other.set(4, 5, Relationship.P2C)
        filled = base.copy()
        filled.update(other, overwrite=False)
        assert filled.get(1, 2) is Relationship.P2C  # kept
        assert filled.get(4, 5) is Relationship.P2C  # gap filled
        overwritten = base.copy()
        overwritten.update(other, overwrite=True)
        assert overwritten.get(1, 2) is Relationship.P2P

    def test_update_rejects_other_afi(self):
        with pytest.raises(ValueError):
            ToRAnnotation(AFI.IPV4).update(ToRAnnotation(AFI.IPV6))

    def test_copy_independent(self):
        annotation = self.make_annotation()
        clone = annotation.copy()
        clone.set(1, 2, Relationship.P2P)
        assert annotation.get(1, 2) is Relationship.P2C

    def test_agreement_and_differing_links(self):
        first = self.make_annotation()
        second = self.make_annotation()
        second.set(1, 2, Relationship.P2P)
        second.set(7, 8, Relationship.P2C)
        stats = first.agreement_with(second)
        assert stats["common"] == 4
        assert stats["disagree"] == 1
        assert stats["only_other"] == 1
        assert first.differing_links(second) == [Link(1, 2)]

    def test_records_round_trip(self):
        annotation = self.make_annotation()
        records = annotation.records()
        rebuilt = ToRAnnotation.from_records(records, AFI.IPV6)
        assert rebuilt.agreement_with(annotation)["disagree"] == 0
        assert len(rebuilt) == len(annotation)

    def test_from_graph(self, hybrid_topology):
        annotation = ToRAnnotation.from_graph(hybrid_topology.graph, AFI.IPV6)
        assert annotation.source is RelationshipSource.GROUND_TRUTH
        assert annotation.get(10, 20) is Relationship.P2C
        v4 = ToRAnnotation.from_graph(hybrid_topology.graph, AFI.IPV4)
        assert v4.get(10, 20) is Relationship.P2P


class TestValleyFreeDistances:
    def test_distances_on_hierarchy(self):
        annotation = ToRAnnotation(AFI.IPV6)
        annotation.set(1, 2, Relationship.P2C)
        annotation.set(1, 3, Relationship.P2C)
        annotation.set(2, 4, Relationship.P2C)
        annotation.set(3, 5, Relationship.P2C)
        distances = valley_free_distances(annotation, 4)
        # 4 -> 2 (up) -> 1 (up) -> 3 (down) -> 5 (down)
        assert distances[2] == 1
        assert distances[1] == 2
        assert distances[3] == 3
        assert distances[5] == 4
        assert distances[4] == 0

    def test_two_peer_hops_not_allowed(self):
        annotation = ToRAnnotation(AFI.IPV6)
        annotation.set(1, 2, Relationship.P2P)
        annotation.set(2, 3, Relationship.P2P)
        distances = valley_free_distances(annotation, 1)
        assert 2 in distances
        assert 3 not in distances, "a path with two peering hops is not valley-free"

    def test_peer_then_down_allowed(self):
        annotation = ToRAnnotation(AFI.IPV6)
        annotation.set(1, 2, Relationship.P2P)
        annotation.set(2, 3, Relationship.P2C)
        distances = valley_free_distances(annotation, 1)
        assert distances[3] == 2

    def test_down_then_up_not_allowed(self):
        annotation = ToRAnnotation(AFI.IPV6)
        annotation.set(1, 2, Relationship.P2C)   # 1 provider of 2
        annotation.set(3, 2, Relationship.P2C)   # 3 provider of 2
        distances = valley_free_distances(annotation, 1)
        assert 2 in distances
        assert 3 not in distances, "going down to 2 then up to 3 is a valley"

    def test_targets_early_exit(self):
        annotation = ToRAnnotation(AFI.IPV6)
        annotation.set(1, 2, Relationship.P2C)
        annotation.set(2, 3, Relationship.P2C)
        distances = valley_free_distances(annotation, 1, targets={2})
        assert distances[2] == 1
