"""Unit tests for the annotated AS graph."""

import pytest

from repro.core.relationships import AFI, Link, Relationship
from repro.topology.graph import ASGraph


@pytest.fixture()
def simple_graph():
    """A five-AS dual-stack graph with one IPv6-only link.

    AS1 is the provider of AS2 and AS3; AS2 and AS3 peer; AS2 provides to
    AS4; the link AS3-AS5 exists only in the IPv6 plane.
    """
    graph = ASGraph()
    graph.add_link(1, 2, rel_v4=Relationship.P2C, rel_v6=Relationship.P2C)
    graph.add_link(1, 3, rel_v4=Relationship.P2C, rel_v6=Relationship.P2C)
    graph.add_link(2, 3, rel_v4=Relationship.P2P, rel_v6=Relationship.P2P)
    graph.add_link(2, 4, rel_v4=Relationship.P2C)
    graph.add_link(3, 5, rel_v6=Relationship.P2P)
    return graph


class TestConstruction:
    def test_add_as_idempotent_updates(self):
        graph = ASGraph()
        graph.add_as(1, name="first", tier=2)
        graph.add_as(1, ipv6=True)
        node = graph.node(1)
        assert node.name == "first"
        assert node.tier == 2
        assert node.ipv6

    def test_add_link_creates_missing_ases(self, simple_graph):
        assert 4 in simple_graph
        assert len(simple_graph) == 5

    def test_negative_asn_rejected(self):
        with pytest.raises(ValueError):
            ASGraph().add_as(-5)

    def test_set_relationship_requires_existing_link(self):
        graph = ASGraph()
        graph.add_as(1)
        graph.add_as(2)
        with pytest.raises(KeyError):
            graph.set_relationship(1, 2, AFI.IPV4, Relationship.P2P)

    def test_remove_link(self, simple_graph):
        simple_graph.remove_link(2, 3)
        assert not simple_graph.has_link(2, 3)
        with pytest.raises(KeyError):
            simple_graph.remove_link(2, 3)

    def test_add_link_marks_afi_participation(self):
        graph = ASGraph()
        graph.add_link(1, 2, rel_v6=Relationship.P2P)
        assert graph.node(1).ipv6
        assert graph.node(2).ipv6


class TestRelationshipQueries:
    def test_relationship_orientation(self, simple_graph):
        assert simple_graph.relationship(1, 2, AFI.IPV4) is Relationship.P2C
        assert simple_graph.relationship(2, 1, AFI.IPV4) is Relationship.C2P

    def test_relationship_missing_link_unknown(self, simple_graph):
        assert simple_graph.relationship(1, 4, AFI.IPV4) is Relationship.UNKNOWN
        assert simple_graph.relationship(4, 4, AFI.IPV4) is Relationship.UNKNOWN

    def test_relationship_missing_plane_unknown(self, simple_graph):
        assert simple_graph.relationship(2, 4, AFI.IPV6) is Relationship.UNKNOWN
        assert simple_graph.relationship(3, 5, AFI.IPV4) is Relationship.UNKNOWN

    def test_providers_customers_peers(self, simple_graph):
        assert simple_graph.providers_of(2, AFI.IPV4) == [1]
        assert simple_graph.customers_of(1, AFI.IPV4) == [2, 3]
        assert simple_graph.peers_of(2, AFI.IPV4) == [3]
        assert simple_graph.peers_of(3, AFI.IPV6) == [2, 5]

    def test_transit_free(self, simple_graph):
        assert simple_graph.transit_free(1, AFI.IPV4)
        assert not simple_graph.transit_free(2, AFI.IPV4)

    def test_customer_cone(self, simple_graph):
        assert simple_graph.customer_cone(1, AFI.IPV4) == {1, 2, 3, 4}
        assert simple_graph.customer_cone(2, AFI.IPV4) == {2, 4}
        assert simple_graph.customer_cone(4, AFI.IPV4) == {4}

    def test_transit_degree(self, simple_graph):
        assert simple_graph.transit_degree(1, AFI.IPV4) == 2
        assert simple_graph.transit_degree(4, AFI.IPV4) == 0


class TestPlaneViews:
    def test_links_per_afi(self, simple_graph):
        assert len(simple_graph.links(AFI.IPV4)) == 4
        assert len(simple_graph.links(AFI.IPV6)) == 4
        assert len(simple_graph.links()) == 5

    def test_dual_stack_links(self, simple_graph):
        dual = simple_graph.dual_stack_links()
        assert Link(1, 2) in dual
        assert Link(2, 4) not in dual
        assert Link(3, 5) not in dual
        assert len(dual) == 3

    def test_ases_in_plane(self, simple_graph):
        assert simple_graph.ases_in(AFI.IPV4) == [1, 2, 3, 4]
        assert simple_graph.ases_in(AFI.IPV6) == [1, 2, 3, 5]

    def test_neighbors_per_plane(self, simple_graph):
        assert simple_graph.neighbors(3) == [1, 2, 5]
        assert simple_graph.neighbors(3, AFI.IPV4) == [1, 2]
        assert simple_graph.degree(3, AFI.IPV6) == 3

    def test_subgraph_restricts_to_plane(self, simple_graph):
        sub = simple_graph.subgraph(AFI.IPV6)
        assert not sub.has_link(2, 4)
        assert sub.relationship(3, 5, AFI.IPV6) is Relationship.P2P
        assert 4 not in sub

    def test_to_networkx_edge_attributes(self, simple_graph):
        nx_graph = simple_graph.to_networkx(AFI.IPV4)
        assert nx_graph.number_of_edges() == 4
        assert nx_graph.edges[1, 2]["rel_v4"] is Relationship.P2C

    def test_copy_is_independent(self, simple_graph):
        clone = simple_graph.copy()
        clone.set_relationship(2, 3, AFI.IPV4, Relationship.P2C)
        assert simple_graph.relationship(2, 3, AFI.IPV4) is Relationship.P2P
        assert clone.relationship(2, 3, AFI.IPV4) is Relationship.P2C

    def test_stats(self, simple_graph):
        stats = simple_graph.stats()
        assert stats["ases"] == 5
        assert stats["links"] == 5
        assert stats["dual_stack_links"] == 3
