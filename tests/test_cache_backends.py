"""CacheBackend conformance suite + ArtifactCache over every backend.

Every backend must satisfy the same contract
(:mod:`repro.cluster.backends`): atomic ``put``, atomic test-and-set
``put_if_absent`` (the distributed dedupe primitive), truthful ``stat``
sizes, prefix ``list``, advisory ``touch`` and a store-scoped ``lock``.
The suite runs identically against the directory backend, the SQLite
object store and the in-memory reference — a new backend earns its
place by passing it unchanged.

On top of the raw contract, the ArtifactCache must behave identically
over any backend (store/load/verify/stats/prune, warm pipeline runs),
and the hygiene commands must tolerate caches whose advisory index is
stale, missing or written by someone else — sizes always come from
``stat`` of the object itself.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.cluster.backends import (
    LocalDirectoryBackend,
    MemoryBackend,
    SQLiteObjectStoreBackend,
    open_backend,
)
from repro.pipeline import ArtifactCache
from repro.pipeline.artifacts import INDEX_FILENAME

BACKENDS = ("directory", "sqlite", "memory")


def make_backend(kind: str, tmp_path):
    if kind == "directory":
        return LocalDirectoryBackend(tmp_path / "store")
    if kind == "sqlite":
        return SQLiteObjectStoreBackend(tmp_path / "store.sqlite")
    return MemoryBackend()


@pytest.fixture(params=BACKENDS)
def backend(request, tmp_path):
    return make_backend(request.param, tmp_path)


class TestConformance:
    def test_get_missing_is_none(self, backend):
        assert backend.get("alpha/missing.pkl") is None
        assert backend.stat("alpha/missing.pkl") is None
        assert not backend.exists("alpha/missing.pkl")

    def test_put_get_roundtrip(self, backend):
        backend.put("alpha/a.pkl", b"payload")
        assert backend.get("alpha/a.pkl") == b"payload"
        assert backend.exists("alpha/a.pkl")
        assert backend.stat("alpha/a.pkl").size == len(b"payload")

    def test_put_overwrites(self, backend):
        backend.put("alpha/a.pkl", b"one")
        backend.put("alpha/a.pkl", b"two-longer")
        assert backend.get("alpha/a.pkl") == b"two-longer"
        assert backend.stat("alpha/a.pkl").size == len(b"two-longer")

    def test_put_if_absent_first_wins(self, backend):
        assert backend.put_if_absent("alpha/a.pkl", b"winner")
        assert not backend.put_if_absent("alpha/a.pkl", b"loser")
        assert backend.get("alpha/a.pkl") == b"winner"

    def test_put_if_absent_after_delete_stores_again(self, backend):
        backend.put_if_absent("alpha/a.pkl", b"one")
        assert backend.delete("alpha/a.pkl")
        assert backend.put_if_absent("alpha/a.pkl", b"two")
        assert backend.get("alpha/a.pkl") == b"two"

    def test_delete_reports_existence(self, backend):
        backend.put("alpha/a.pkl", b"x")
        assert backend.delete("alpha/a.pkl")
        assert not backend.delete("alpha/a.pkl")
        assert backend.get("alpha/a.pkl") is None

    def test_list_prefix_and_sorting(self, backend):
        backend.put("beta/b.pkl", b"x")
        backend.put("alpha/a.pkl", b"x")
        backend.put("alpha/a.json", b"x")
        backend.put("top-level.json", b"x")
        assert backend.list() == [
            "alpha/a.json", "alpha/a.pkl", "beta/b.pkl", "top-level.json",
        ]
        assert backend.list(prefix="alpha/") == ["alpha/a.json", "alpha/a.pkl"]

    def test_touch_bumps_mtime(self, backend):
        backend.put("alpha/a.pkl", b"x")
        before = backend.stat("alpha/a.pkl").mtime
        # Force a visible clock difference regardless of fs granularity.
        if isinstance(backend, LocalDirectoryBackend):
            import os

            old = before - 3600
            os.utime(backend.root / "alpha" / "a.pkl", (old, old))
            before = backend.stat("alpha/a.pkl").mtime
            backend.touch("alpha/a.pkl")
            assert backend.stat("alpha/a.pkl").mtime > before + 1800
        else:
            backend.touch("alpha/a.pkl")
            assert backend.stat("alpha/a.pkl").mtime >= before

    def test_key_validation(self, backend):
        for bad in ("", "/abs.pkl", "a//b.pkl", "../escape.pkl", "a/../b.pkl",
                    "a\\b.pkl", "./a.pkl", "a/./b.pkl", "."):
            with pytest.raises(ValueError):
                backend.put(bad, b"x")

    def test_scan_matches_list_plus_stat(self, backend):
        backend.put("alpha/a.pkl", b"x" * 10)
        backend.put("alpha/a.json", b"y" * 5)
        backend.put("beta/b.pkl", b"z" * 20)
        scanned = backend.scan()
        assert [key for key, _ in scanned] == backend.list()
        for key, stat in scanned:
            assert stat == backend.stat(key)
        assert [key for key, _ in backend.scan(prefix="alpha/")] == [
            "alpha/a.json", "alpha/a.pkl",
        ]

    def test_list_prefix_is_literal_not_a_pattern(self, backend):
        """SQL-wildcard characters in a prefix must match literally."""
        backend.put("a%b/x.pkl", b"x")
        backend.put("axb/y.pkl", b"y")
        assert backend.list(prefix="a%b/") == ["a%b/x.pkl"]
        assert [key for key, _ in backend.scan(prefix="a%b/")] == ["a%b/x.pkl"]

    def test_concurrent_put_if_absent_single_winner(self, backend):
        """The dedupe primitive: N racing writers, exactly one victory,
        and the stored bytes are the winner's."""
        results = {}
        barrier = threading.Barrier(8)

        def contender(index: int) -> None:
            barrier.wait()
            results[index] = backend.put_if_absent(
                "alpha/contested.pkl", f"writer-{index}".encode()
            )

        threads = [
            threading.Thread(target=contender, args=(index,)) for index in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        winners = [index for index, won in results.items() if won]
        assert len(winners) == 1
        assert backend.get("alpha/contested.pkl") == f"writer-{winners[0]}".encode()

    def test_lock_serializes_read_modify_write(self, backend):
        """Unlocked RMW of one object loses updates; under the backend
        lock every increment must survive."""
        backend.put("counter.json", b"0")

        def bump() -> None:
            for _ in range(25):
                with backend.lock():
                    value = int(backend.get("counter.json"))
                    backend.put("counter.json", str(value + 1).encode())

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert backend.get("counter.json") == b"100"


class TestSqliteTouchDebounce:
    def test_stale_entries_bump_fresh_entries_stay_read_only(self, tmp_path):
        import time

        backend = SQLiteObjectStoreBackend(tmp_path / "store.sqlite")
        backend.put("alpha/x.pkl", b"v")
        fresh = backend.stat("alpha/x.pkl").mtime
        backend.touch("alpha/x.pkl")  # debounced: no write
        assert backend.stat("alpha/x.pkl").mtime == fresh
        old = time.time() - 10 * backend.TOUCH_DEBOUNCE_SECONDS
        with backend._connect() as conn:
            conn.execute("UPDATE objects SET last_used = ?", (old,))
        backend.touch("alpha/x.pkl")  # stale: really bumps
        assert backend.stat("alpha/x.pkl").mtime > old + backend.TOUCH_DEBOUNCE_SECONDS


class TestHardlinkFreeFallback:
    def test_put_if_absent_without_os_link(self, tmp_path, monkeypatch):
        """Filesystems without hardlink support (exFAT, some mounts)
        must keep the single-winner put-if-absent semantics through the
        exclusive-create fallback — a plain store must not regress into
        BackendError."""
        import repro.cluster.backends as backends_module

        def no_link(src, dst, **kwargs):
            raise OSError(1, "Operation not permitted")  # EPERM

        monkeypatch.setattr(backends_module.os, "link", no_link)
        backend = LocalDirectoryBackend(tmp_path / "store")
        assert backend.put_if_absent("alpha/a.pkl", b"winner")
        assert not backend.put_if_absent("alpha/a.pkl", b"loser")
        assert backend.get("alpha/a.pkl") == b"winner"
        # The ArtifactCache store path (put_if_absent + adoption) works.
        cache = ArtifactCache(backend=backend)
        cache.store("beta", "b" * 64, {"x": 1}, code_version="1")
        assert cache.load("beta", "b" * 64)[0] == {"x": 1}


class TestOrphanedTempFileCollection:
    def test_stale_temp_files_are_collected(self, tmp_path):
        """A writer SIGKILLed mid-put leaves a dot-prefixed temp file
        that list() hides; collect_orphans must remove old ones so a
        budgeted cache cannot leak invisible disk — while in-flight
        (recent) temp files and the lock file are untouched."""
        import os
        import time

        backend = LocalDirectoryBackend(tmp_path / "store")
        backend.put("alpha/a.pkl", b"x")
        with backend.lock():
            pass  # materialize the lock file
        stage_dir = backend.root / "alpha"
        stale = stage_dir / ".a.pkl.orphan"
        stale.write_bytes(b"big orphan payload")
        old = time.time() - 2 * backend.TEMP_GC_AGE_SECONDS
        os.utime(stale, (old, old))
        fresh = stage_dir / ".b.pkl.inflight"
        fresh.write_bytes(b"in-flight write")
        lock = backend.root / backend.LOCK_FILENAME
        assert lock.exists()

        assert backend.collect_orphans() == 1
        assert not stale.exists()
        assert fresh.exists()
        assert lock.exists()
        assert backend.get("alpha/a.pkl") == b"x"
        # scan itself stays read-only: no hidden deletion side effects.
        fresh2 = stage_dir / ".c.pkl.orphan"
        fresh2.write_bytes(b"x")
        os.utime(fresh2, (old, old))
        backend.scan()
        assert fresh2.exists()


class TestOpenBackend:
    def test_directory_spec(self, tmp_path):
        backend = open_backend(tmp_path / "cache")
        assert isinstance(backend, LocalDirectoryBackend)

    def test_sqlite_suffix_spec(self, tmp_path):
        backend = open_backend(tmp_path / "cache.sqlite")
        assert isinstance(backend, SQLiteObjectStoreBackend)

    def test_sqlite_url_spec(self, tmp_path):
        backend = open_backend(f"sqlite://{tmp_path / 'store.db'}")
        assert isinstance(backend, SQLiteObjectStoreBackend)
        assert backend.path == tmp_path / "store.db"

    def test_existing_file_is_sniffed_as_sqlite(self, tmp_path):
        """A cache written by the sqlite backend under an extension-less
        name must still open as sqlite (tolerating the other backend)."""
        path = tmp_path / "store.db"
        SQLiteObjectStoreBackend(path).put("alpha/a.pkl", b"x")
        backend = open_backend(path)
        assert isinstance(backend, SQLiteObjectStoreBackend)
        assert backend.get("alpha/a.pkl") == b"x"

    def test_backend_instance_passes_through(self):
        backend = MemoryBackend()
        assert open_backend(backend) is backend


@pytest.fixture(params=("directory", "sqlite", "memory"))
def cache(request, tmp_path):
    return ArtifactCache(backend=make_backend(request.param, tmp_path))


class TestArtifactCacheOverBackends:
    def test_store_load_verify(self, cache):
        record = cache.store("alpha", "f" * 64, {"x": 1}, code_version="1")
        assert cache.contains("alpha", "f" * 64)
        loaded = cache.load("alpha", "f" * 64)
        assert loaded[0] == {"x": 1}
        assert loaded[1].payload_sha256 == record.payload_sha256

    def test_concurrent_identical_store_dedupes(self, cache):
        """Two workers publishing the same fingerprint: the second store
        adopts the first write (same payload hash) instead of rewriting."""
        first = cache.store("alpha", "a" * 64, {"x": 1}, code_version="1")
        second = cache.store("alpha", "a" * 64, {"x": 1}, code_version="1")
        assert second.payload_sha256 == first.payload_sha256
        assert second.created_at == first.created_at  # adopted, not rewritten
        assert cache.load("alpha", "a" * 64)[0] == {"x": 1}

    def test_corrupt_entry_is_repaired_by_store(self, cache):
        cache.store("alpha", "a" * 64, {"x": 1}, code_version="1")
        cache.backend.put(f"alpha/{'a' * 64}.pkl", b"corrupted!")
        assert cache.load("alpha", "a" * 64) is None
        cache.store("alpha", "a" * 64, {"x": 2}, code_version="1")
        assert cache.load("alpha", "a" * 64)[0] == {"x": 2}

    def test_stats_and_prune(self, cache):
        cache.store("alpha", "a" * 64, b"x" * 100, code_version="1")
        cache.store("beta", "b" * 64, b"y" * 1000, code_version="1")
        stats = cache.stats()
        assert stats.entries == 2
        assert set(stats.per_stage) == {"alpha", "beta"}
        assert stats.total_bytes > 1100  # payloads + sidecars, stat'd
        report = cache.prune(max_bytes=0)
        assert report.remaining_entries == 0
        assert cache.stats().entries == 0

    def test_entries_listing(self, cache):
        cache.store("alpha", "a" * 64, b"x", code_version="1")
        cache.store("alpha", "b" * 64, b"x", code_version="1")
        assert cache.entries() == {"alpha": ["a" * 64, "b" * 64]}


class TestStaleIndexTolerance:
    """`repro cache stats|prune` must survive advisory-index rot
    (entries for artifacts that no longer exist, artifacts the index
    never heard of, missing sidecars) with true stat-based sizes."""

    def test_index_entries_for_missing_artifacts_are_ignored(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store("alpha", "a" * 64, b"x" * 100, code_version="1")
        index = {
            "layout_version": 1,
            "entries": {f"ghost/{'0' * 64}": 1.0, f"alpha/{'a' * 64}": 2.0},
        }
        (tmp_path / INDEX_FILENAME).write_text(json.dumps(index))
        stats = cache.stats()
        assert stats.entries == 1
        assert "ghost" not in stats.per_stage
        report = cache.prune(max_bytes=0)  # must not crash on the ghost
        assert report.remaining_entries == 0

    def test_artifacts_unknown_to_index_get_statted_sizes(self, tmp_path):
        """An artifact written by another process/backend (index never
        updated) is sized by stat, not treated as zero bytes."""
        cache = ArtifactCache(tmp_path)
        cache.store("alpha", "a" * 64, b"x" * 500, code_version="1")
        (tmp_path / INDEX_FILENAME).unlink()  # the whole index is lost
        stats = cache.stats()
        assert stats.entries == 1
        assert stats.per_stage["alpha"]["bytes"] >= 500
        assert stats.total_bytes >= 500

    def test_payload_without_sidecar_is_still_counted(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store("alpha", "a" * 64, b"x" * 300, code_version="1")
        cache.meta_path("alpha", "a" * 64).unlink()
        stats = cache.stats()
        assert stats.entries == 1
        assert stats.per_stage["alpha"]["bytes"] >= 300
        # And pruning the sidecar-less entry works.
        report = cache.prune(max_bytes=0)
        assert report.remaining_entries == 0

    def test_cli_stats_on_non_database_file_errors_cleanly(self, tmp_path, capsys):
        """A regular file that is not a SQLite store must produce the
        CLI's clean error contract, not a BackendError traceback."""
        from repro.cli import main

        bogus = tmp_path / "notes.txt"
        bogus.write_text("not a database")
        assert main(["cache", "stats", "--cache-dir", str(bogus)]) == 2
        assert "cannot open cache" in capsys.readouterr().err

    def test_pruned_sqlite_store_releases_disk(self, tmp_path):
        """--cache-budget-bytes must bound the actual file size: with
        FULL auto-vacuum a pruned store shrinks instead of keeping its
        peak size forever."""
        spec = tmp_path / "cache.sqlite"
        cache = ArtifactCache.from_spec(spec)
        for index in range(20):
            cache.store("alpha", f"{index:064x}", b"x" * 50_000, code_version="1")
        peak = spec.stat().st_size
        assert peak > 20 * 50_000
        cache.prune(max_bytes=0)
        assert cache.stats().entries == 0
        assert spec.stat().st_size < peak / 4

    def test_cli_stats_and_prune_on_sqlite_cache(self, tmp_path, capsys):
        """The hygiene CLI auto-detects the object-store backend."""
        from repro.cli import main

        spec = str(tmp_path / "cache.sqlite")
        cache = ArtifactCache.from_spec(spec)
        cache.store("alpha", "a" * 64, b"x" * 100, code_version="1")
        assert main(["cache", "stats", "--cache-dir", spec, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 1
        assert stats["total_bytes"] > 100
        assert main(["cache", "prune", "--cache-dir", spec, "--max-bytes", "0"]) == 0
        assert "removed 1 artifacts" in capsys.readouterr().out
        assert ArtifactCache.from_spec(spec).stats().entries == 0


class TestPipelineOverSqliteBackend:
    def test_warm_rerun_fully_cached_and_identical(self, tmp_path):
        """The staged pipeline over the object-store backend: cold run
        computes, warm run reuses everything, reports bit-identical."""
        from repro.datasets import DatasetConfig
        from repro.pipeline import PipelineConfig, run_pipeline
        from repro.topology.generator import TopologyConfig

        config = PipelineConfig(
            dataset=DatasetConfig(
                topology=TopologyConfig(
                    seed=5, tier1_count=3, tier2_count=8, tier3_count=20
                ),
                seed=5,
                vantage_points=4,
            ),
            top=2,
            max_sources=10,
        )
        spec = str(tmp_path / "cache.sqlite")
        cold = run_pipeline(config, cache_dir=spec, targets=("section3",))
        warm = run_pipeline(config, cache_dir=spec, targets=("section3",))
        assert warm.computed_stages() == []
        assert warm.value("section3").as_dict() == cold.value("section3").as_dict()
