"""Cache hygiene: size accounting, the access index, age/LRU eviction.

Sweeps multiply cache entries, so the cache now reports its footprint
(:meth:`ArtifactCache.stats`) and evicts (:meth:`ArtifactCache.prune`)
— by age, then LRU down to a byte budget, ordered by the last-access
times in the ``cache-index.json`` sidecar.  Evicting a live artifact is
always safe: the next run recomputes it (a miss, never an error).
"""

from __future__ import annotations

import json

import pytest

from repro.datasets import DatasetConfig
from repro.pipeline import ArtifactCache, PipelineConfig, run_pipeline
from repro.pipeline.artifacts import INDEX_FILENAME
from repro.topology.generator import TopologyConfig


@pytest.fixture()
def cache(tmp_path):
    return ArtifactCache(tmp_path)


def _store(cache, stage, seed, payload_size=100):
    fingerprint = f"{seed:064x}"
    cache.store(stage, fingerprint, b"x" * payload_size, code_version="1")
    return fingerprint


def _age(cache, stage, fingerprint, by_seconds):
    """Make an entry look unused for ``by_seconds`` (both the sidecar
    index entry and the payload mtime feed the last-used time)."""
    import os
    import time

    old = time.time() - by_seconds
    os.utime(cache.payload_path(stage, fingerprint), (old, old))
    with cache._index_lock:
        entries = cache._read_index()
        entries[f"{stage}/{fingerprint}"] = old
        cache._write_index(entries)


class TestStats:
    def test_empty_cache(self, cache):
        stats = cache.stats()
        assert stats.entries == 0
        assert stats.total_bytes == 0
        assert stats.per_stage == {}

    def test_counts_and_bytes_match_disk(self, cache):
        fp_a = _store(cache, "alpha", 1, payload_size=10)
        fp_b = _store(cache, "beta", 2, payload_size=1000)
        stats = cache.stats()
        assert stats.entries == 2
        assert set(stats.per_stage) == {"alpha", "beta"}
        expected_alpha = (
            cache.payload_path("alpha", fp_a).stat().st_size
            + cache.meta_path("alpha", fp_a).stat().st_size
        )
        assert stats.per_stage["alpha"]["bytes"] == expected_alpha
        assert stats.total_bytes == sum(
            bucket["bytes"] for bucket in stats.per_stage.values()
        )
        assert stats.to_dict()["entries"] == 2
        # The root-level index file is metadata, not an artifact.
        assert (cache.root / INDEX_FILENAME).exists()


class TestAccessIndex:
    def test_store_writes_the_index(self, cache):
        fp = _store(cache, "alpha", 1)
        index = json.loads((cache.root / INDEX_FILENAME).read_text())
        assert f"alpha/{fp}" in index["entries"]

    def test_read_access_bumps_payload_mtime(self, cache):
        """Warm hits are O(1): a read bumps the payload's mtime instead
        of rewriting the index (which would be O(total entries))."""
        import os

        fp = _store(cache, "alpha", 1)
        payload = cache.payload_path("alpha", fp)
        old = payload.stat().st_mtime - 3600
        os.utime(payload, (old, old))
        cache.load("alpha", fp)
        assert payload.stat().st_mtime > old + 1800
        entry = {e.fingerprint: e for e in cache._scan_entries()}[fp]
        assert entry.last_used > old + 1800

    def test_non_utf8_index_is_ignored(self, cache):
        fp = _store(cache, "alpha", 1)
        (cache.root / INDEX_FILENAME).write_bytes(b"\xff\xfe broken")
        assert cache.contains("alpha", fp)
        assert cache.stats().entries == 1
        _store(cache, "beta", 2)  # store must not crash on the bad index

    def test_corrupt_index_is_ignored(self, cache):
        fp = _store(cache, "alpha", 1)
        (cache.root / INDEX_FILENAME).write_text("{broken", encoding="utf-8")
        # Reads still verify, stats still work (mtime fallback), and
        # the next store rebuilds the index.
        assert cache.contains("alpha", fp)
        assert cache.stats().entries == 1
        fp_b = _store(cache, "beta", 2)
        index = json.loads((cache.root / INDEX_FILENAME).read_text())
        assert f"beta/{fp_b}" in index["entries"]


class TestPrune:
    def test_requires_a_bound(self, cache):
        with pytest.raises(ValueError, match="max_bytes"):
            cache.prune()

    def test_prune_by_age(self, cache):
        fp_old = _store(cache, "alpha", 1)
        fp_new = _store(cache, "alpha", 2)
        _age(cache, "alpha", fp_old, by_seconds=3600)
        report = cache.prune(max_age_seconds=60)
        assert [e.fingerprint for e in report.removed] == [fp_old]
        assert cache.contains("alpha", fp_new)
        assert not cache.contains("alpha", fp_old)

    def test_prune_lru_keeps_recently_used(self, cache):
        fp_cold = _store(cache, "alpha", 1, payload_size=500)
        fp_warm = _store(cache, "beta", 2, payload_size=500)
        # Touch the older entry: it becomes the most recently used.
        cache.load("alpha", fp_cold)
        total = cache.stats().total_bytes
        report = cache.prune(max_bytes=total - 1)
        assert [e.fingerprint for e in report.removed] == [fp_warm]
        assert cache.contains("alpha", fp_cold)
        assert report.remaining_entries == 1
        assert report.remaining_bytes == cache.stats().total_bytes

    def test_prune_to_zero_removes_everything(self, cache):
        _store(cache, "alpha", 1)
        _store(cache, "beta", 2)
        report = cache.prune(max_bytes=0)
        assert report.remaining_entries == 0
        assert cache.stats().entries == 0
        # Emptied stage directories are cleaned up too.
        assert not (cache.root / "alpha").exists()

    def test_dry_run_deletes_nothing(self, cache):
        fp = _store(cache, "alpha", 1)
        report = cache.prune(max_bytes=0, dry_run=True)
        assert report.dry_run
        assert len(report.removed) == 1
        assert cache.contains("alpha", fp)

    def test_index_entries_of_removed_artifacts_are_dropped(self, cache):
        fp = _store(cache, "alpha", 1)
        _store(cache, "beta", 2)
        cache.prune(max_bytes=0)
        index = json.loads((cache.root / INDEX_FILENAME).read_text())
        assert index["entries"] == {}
        assert not cache.contains("alpha", fp)

    def test_report_serializes(self, cache):
        _store(cache, "alpha", 1)
        payload = cache.prune(max_bytes=0).to_dict()
        assert payload["freed_bytes"] > 0
        assert payload["removed"][0]["stage"] == "alpha"


class TestPruneLiveCache:
    def test_pruned_pipeline_cache_recomputes_cleanly(self, tmp_path):
        """Evicting live artifacts is a miss, never an error: the next
        run recomputes the evicted suffix and repairs the cache."""
        config = PipelineConfig(
            dataset=DatasetConfig(
                topology=TopologyConfig(
                    seed=5, tier1_count=3, tier2_count=8, tier3_count=20
                ),
                seed=5,
                vantage_points=4,
            ),
            top=2,
            max_sources=10,
        )
        cold = run_pipeline(config, cache_dir=tmp_path, targets=("section3",))
        reference = cold.value("section3").as_dict()
        cache = ArtifactCache(tmp_path)
        cache.prune(max_bytes=0)
        assert cache.stats().entries == 0
        recomputed = run_pipeline(config, cache_dir=tmp_path, targets=("section3",))
        assert recomputed.cached_stages() == []
        assert recomputed.value("section3").as_dict() == reference


class TestTempFileSweep:
    """Orphaned temp files (crashed writers) are swept by prune and
    surfaced in the report."""

    def _plant_orphan(self, cache, age_seconds=7200.0):
        import os
        import time

        orphan = cache.root / "alpha" / ".tmp-crashed-writer"
        orphan.parent.mkdir(parents=True, exist_ok=True)
        orphan.write_bytes(b"half-written payload")
        old = time.time() - age_seconds
        os.utime(orphan, (old, old))
        return orphan

    def test_prune_counts_and_removes_aged_orphans(self, cache):
        _store(cache, "alpha", 1)
        orphan = self._plant_orphan(cache)
        report = cache.prune(max_age_seconds=10**9)
        assert report.temp_files_removed == 1
        assert not orphan.exists()
        assert cache.load("alpha", f"{1:064x}") is not None  # live entry kept

    def test_fresh_temp_files_are_left_alone(self, cache):
        """An in-flight write (young temp file) must never be swept."""
        orphan = self._plant_orphan(cache, age_seconds=1.0)
        report = cache.prune(max_age_seconds=10**9)
        assert report.temp_files_removed == 0
        assert orphan.exists()

    def test_dry_run_counts_without_deleting(self, cache):
        orphan = self._plant_orphan(cache)
        report = cache.prune(max_age_seconds=10**9, dry_run=True)
        assert report.temp_files_removed == 1
        assert orphan.exists()

    def test_report_dict_carries_the_count(self, cache):
        self._plant_orphan(cache)
        report = cache.prune(max_age_seconds=10**9)
        assert report.to_dict()["temp_files_removed"] == 1
