"""Unit tests for MRT records, collectors and archives."""

import datetime as dt

import pytest

from repro.bgp.attributes import ASPath, Community, Origin, PathAttributes
from repro.bgp.messages import Route
from repro.bgp.prefixes import Prefix
from repro.collectors.archive import CollectorArchive
from repro.collectors.collector import Collector, VantagePoint, default_collectors
from repro.collectors.mrt import (
    MRTFormatError,
    TableDumpRecord,
    parse_table_dump,
    write_table_dump,
)
from repro.core.relationships import AFI, Relationship


def make_record(prefix="3fff:100::/32", peer_as=64500, path=(64500, 64501), **kwargs):
    defaults = dict(
        timestamp=1282262400,
        peer_ip="2001:db8::1",
        peer_as=peer_as,
        prefix=Prefix(prefix),
        as_path=ASPath(path),
        local_pref=300,
        communities=(Community(64500, 100),),
        collector="route-views6",
    )
    defaults.update(kwargs)
    return TableDumpRecord(**defaults)


class TestTableDumpRecord:
    def test_line_round_trip(self):
        record = make_record()
        line = record.to_line()
        parsed = TableDumpRecord.from_line(line, collector="route-views6")
        assert parsed.prefix == record.prefix
        assert parsed.as_path == record.as_path
        assert parsed.peer_as == record.peer_as
        assert parsed.local_pref == record.local_pref
        assert parsed.communities == record.communities

    def test_afi_property(self):
        assert make_record().afi is AFI.IPV6
        assert make_record(prefix="10.1.0.0/20").afi is AFI.IPV4

    def test_from_line_rejects_garbage(self):
        with pytest.raises(MRTFormatError):
            TableDumpRecord.from_line("not|enough|fields")
        with pytest.raises(MRTFormatError):
            TableDumpRecord.from_line("OTHER|1|B|ip|1|10.0.0.0/8|1 2|IGP||100|0||NAG|")
        with pytest.raises(MRTFormatError):
            TableDumpRecord.from_line(
                "TABLE_DUMP2|x|B|ip|1|10.0.0.0/8|1 2|IGP||100|0||NAG|"
            )

    def test_unparseable_communities_skipped(self):
        line = make_record(communities=()).to_line()
        parts = line.split("|")
        parts[11] = "64500:100 garbage 64501:xyz"
        parsed = TableDumpRecord.from_line("|".join(parts))
        assert parsed.communities == (Community(64500, 100),)

    def test_from_route_includes_vantage_in_path(self):
        attributes = PathAttributes(
            as_path=ASPath([64501, 64502]),
            local_pref=250,
            communities=(Community(64500, 20),),
        )
        route = Route(
            prefix=Prefix("3fff:200::/32"),
            holder=64500,
            attributes=attributes,
            learned_from=64501,
            learned_relationship=Relationship.P2P,
        )
        record = TableDumpRecord.from_route(route, peer_ip="::1", timestamp=1)
        assert record.as_path.hops == (64500, 64501, 64502)
        assert record.local_pref == 250
        without_pref = TableDumpRecord.from_route(
            route, peer_ip="::1", timestamp=1, include_local_pref=False
        )
        assert without_pref.local_pref is None

    def test_local_pref_zero_and_absent_round_trip(self):
        """A feed exporting LOCAL_PREF 0 is distinct from a non-exporting one."""
        exported_zero = make_record(local_pref=0)
        line = exported_zero.to_line()
        assert line.split("|")[9] == "0"
        assert TableDumpRecord.from_line(line).local_pref == 0
        absent = make_record(local_pref=None)
        line = absent.to_line()
        assert line.split("|")[9] == ""
        assert TableDumpRecord.from_line(line).local_pref is None

    def test_write_and_parse_table_dump(self):
        records = [make_record(), make_record(prefix="10.2.0.0/20")]
        text = write_table_dump(records)
        parsed = parse_table_dump(text, collector="rrc00")
        assert len(parsed) == 2
        assert all(record.collector == "rrc00" for record in parsed)

    def test_write_empty_dump(self):
        assert write_table_dump([]) == ""
        assert parse_table_dump("") == []


class TestCollector:
    def test_add_vantage_point_generates_ip(self):
        collector = Collector(name="route-views6")
        vantage = collector.add_vantage_point(64500)
        assert vantage.asn == 64500
        assert vantage.peer_ip
        assert collector.vantage_asns == [64500]

    def test_vantage_point_carries(self):
        vantage = VantagePoint(asn=1, peer_ip="::1", afis=(AFI.IPV6,))
        assert vantage.carries(AFI.IPV6)
        assert not vantage.carries(AFI.IPV4)

    def test_default_collectors_distribution(self):
        collectors = default_collectors(list(range(1, 13)), collectors_per_project=2)
        assert len(collectors) == 4
        total = sum(len(c.vantage_points) for c in collectors)
        assert total == 12
        projects = {c.project for c in collectors}
        assert projects == {"routeviews", "ris"}

    def test_default_collectors_require_vantages(self):
        with pytest.raises(ValueError):
            default_collectors([])

    def test_same_length_collector_names_get_distinct_peer_ips(self):
        # len("route-views1") == len("route-views2"): the seed derived the
        # address block from the name length and collided here.
        first = Collector(name="route-views1").add_vantage_point(64500)
        second = Collector(name="route-views2").add_vantage_point(64500)
        assert first.peer_ip != second.peer_ip

    def test_asns_250_apart_get_distinct_peer_ips(self):
        # The seed applied `asn % 250` to the IPv4 offset.
        collector = Collector(name="collision-regression")
        first = collector.add_vantage_point(100, afis=(AFI.IPV4,))
        second = collector.add_vantage_point(350, afis=(AFI.IPV4,))
        assert first.peer_ip != second.peer_ip

    def test_peer_ips_unique_at_paper_scale(self):
        # Both families, many collectors, a thousand vantage ASes: every
        # (collector, vantage) session must get its own address.
        vantages = list(range(1, 1201))
        collectors = default_collectors(vantages, collectors_per_project=3)
        ips = [v.peer_ip for c in collectors for v in c.vantage_points]
        assert len(ips) == len(vantages)
        assert len(set(ips)) == len(ips)

    def test_default_collectors_peer_ips_independent_of_process_history(self):
        """Archives from identical configs must be byte-reproducible."""
        first = default_collectors([1, 2, 3])
        # Creating unrelated collectors in between must not shift the
        # address blocks of a later identical collector set.
        Collector(name="unrelated-pollution").add_vantage_point(9)
        second = default_collectors([1, 2, 3])
        assert [v.peer_ip for c in first for v in c.vantage_points] == [
            v.peer_ip for c in second for v in c.vantage_points
        ]

    def test_collect_yields_lazily(self):
        import inspect

        assert inspect.isgeneratorfunction(Collector.collect)


class TestArchive:
    def make_archive(self):
        archive = CollectorArchive()
        date = dt.date(2010, 8, 20)
        archive.add_snapshot(
            "route-views6", date, [make_record()], project="routeviews"
        )
        archive.add_snapshot(
            "rrc00",
            date,
            [make_record(prefix="10.9.0.0/20", peer_as=64777, path=(64777, 64778))],
            project="ris",
        )
        return archive

    def test_record_counts_and_filters(self):
        archive = self.make_archive()
        assert len(archive) == 2
        assert archive.record_count(afi=AFI.IPV6) == 1
        assert archive.record_count(afi=AFI.IPV4) == 1
        assert len(list(archive.records(collector="rrc00"))) == 1
        assert len(list(archive.records(project="routeviews"))) == 1
        assert archive.vantage_points() == [64500, 64777]

    def test_collectors_and_dates(self):
        archive = self.make_archive()
        assert archive.collectors == ["route-views6", "rrc00"]
        assert archive.dates == [dt.date(2010, 8, 20)]
        assert archive.project_of("rrc00") == "ris"
        assert archive.project_of("unknown") == ""

    def test_save_and_load_round_trip(self, tmp_path):
        archive = self.make_archive()
        written = archive.save(tmp_path)
        assert len(written) == 2
        loaded = CollectorArchive.load(tmp_path)
        assert len(loaded) == len(archive)
        assert loaded.collectors == archive.collectors
        assert loaded.record_count(afi=AFI.IPV6) == 1

    def test_save_and_load_round_trips_projects(self, tmp_path):
        """The project mapping must survive a save/load cycle."""
        archive = self.make_archive()
        archive.save(tmp_path)
        loaded = CollectorArchive.load(tmp_path)
        assert loaded.project_of("route-views6") == "routeviews"
        assert loaded.project_of("rrc00") == "ris"
        # The seed dropped projects on save, so these filters silently
        # yielded nothing after a reload.
        assert len(list(loaded.records(project="ris"))) == 1
        assert len(list(loaded.records(project="routeviews"))) == 1

    def test_save_and_load_dotted_collector_names(self, tmp_path):
        """Real collectors like route-views.sydney contain dots."""
        archive = CollectorArchive()
        date = dt.date(2010, 8, 20)
        archive.add_snapshot(
            "route-views.sydney", date, [make_record()], project="routeviews"
        )
        archive.save(tmp_path)
        loaded = CollectorArchive.load(tmp_path)
        assert loaded.collectors == ["route-views.sydney"]
        assert loaded.dates == [date]
        assert loaded.project_of("route-views.sydney") == "routeviews"
        records = list(loaded.records(collector="route-views.sydney"))
        assert len(records) == 1
        assert records[0].collector == "route-views.sydney"

    def test_collect_from_propagation(self, snapshot):
        """The snapshot fixture's archive must contain both planes."""
        assert snapshot.archive.record_count(afi=AFI.IPV4) > 0
        assert snapshot.archive.record_count(afi=AFI.IPV6) > 0
        # Every record's vantage is one of the configured vantage points.
        vantages = {
            vantage.asn
            for collector in snapshot.collectors
            for vantage in collector.vantage_points
        }
        assert set(snapshot.archive.vantage_points()).issubset(vantages)
