"""Sweep execution: golden equivalence, exactly-once, failure isolation.

The acceptance criteria of the sweep subsystem:

* every grid cell is **bit-identical** to the corresponding standalone
  single-scenario pipeline run (the sweep may reorganize *when* stages
  compute, never *what* they compute),
* with a shared cache every distinct stage invocation is computed
  **exactly once** across the whole sweep (cache hit/miss counters),
* a warm rerun of the same grid recomputes nothing, and
* one failing scenario does not take the sweep down.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.correction import correction_payload
from repro.datasets import DatasetConfig
from repro.pipeline import PipelineConfig, full_stages, run_pipeline
from repro.sweep import GridAxis, SweepGrid, run_sweep
from repro.topology.generator import TopologyConfig


def tiny_base(seed: int = 5) -> PipelineConfig:
    return PipelineConfig(
        dataset=DatasetConfig(
            topology=TopologyConfig(
                seed=seed, tier1_count=3, tier2_count=8, tier3_count=20
            ),
            seed=seed,
            vantage_points=4,
        ),
        top=3,
        max_sources=10,
    )


def two_by_two() -> SweepGrid:
    """2 seeds x 2 correction depths — the acceptance-criteria grid."""
    return SweepGrid(
        tiny_base(),
        [GridAxis("dataset.seed", (1, 2)), GridAxis("top", (2, 3))],
    )


def standalone_cell(config: PipelineConfig):
    """The reference: one uncached, single-scenario pipeline run."""
    run = run_pipeline(config, targets=("section3", "correction"))
    return (
        run.value("section3").as_dict(),
        correction_payload(run.value("correction"), config.top, config.max_sources),
    )


@pytest.fixture(scope="module")
def cold_sweep(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("sweep-cache")
    grid = two_by_two()
    result = run_sweep(grid, cache_dir=cache_dir, executor="thread")
    return cache_dir, grid, result


class TestGolden2x2:
    def test_all_cells_ok(self, cold_sweep):
        _, _, result = cold_sweep
        assert [r.status for r in result.results] == ["ok"] * 4

    def test_cells_bit_identical_to_standalone_runs(self, cold_sweep):
        """The acceptance criterion: every cell equals an independently
        run `repro section3`/`figure2` for that configuration."""
        _, grid, result = cold_sweep
        by_id = result.by_id()
        for scenario in grid.expand():
            section3, correction = standalone_cell(scenario.config)
            cell = by_id[scenario.scenario_id]
            assert cell.section3 == section3, scenario.scenario_id
            assert cell.correction == correction, scenario.scenario_id

    def test_shared_stages_computed_exactly_once(self, cold_sweep):
        """Cache hit/miss counters: no fingerprint computes twice, and
        the number of computes equals the planner's distinct count."""
        _, _, result = cold_sweep
        assert result.duplicate_computes() == {}
        counters = result.cache_counters()
        assert counters["computed"] == result.plan.distinct_stage_invocations()
        assert (
            counters["computed"] + counters["cached"]
            == result.plan.total_stage_invocations()
        )

    def test_warm_rerun_is_fully_cached(self, cold_sweep):
        cache_dir, grid, cold = cold_sweep
        warm = run_sweep(grid, cache_dir=cache_dir, executor="thread")
        assert warm.fully_cached()
        assert warm.cache_counters()["computed"] == 0
        # And the warm cells still match the cold ones.
        cold_cells = {r.scenario_id: r.section3 for r in cold.results}
        warm_cells = {r.scenario_id: r.section3 for r in warm.results}
        assert warm_cells == cold_cells


class TestExecutors:
    def test_serial_and_thread_agree(self, tmp_path):
        grid = two_by_two()
        serial = run_sweep(grid, cache_dir=tmp_path / "serial", executor="serial")
        thread = run_sweep(grid, cache_dir=tmp_path / "thread", executor="thread")
        assert {r.scenario_id: r.section3 for r in serial.results} == {
            r.scenario_id: r.section3 for r in thread.results
        }
        assert serial.duplicate_computes() == {}
        assert thread.duplicate_computes() == {}

    def test_no_cache_runs_standalone_per_cell(self):
        """Without a cache nothing is shared — one wave, every scenario
        computes its full closure."""
        grid = SweepGrid(tiny_base(), [GridAxis("top", (2, 3))])
        result = run_sweep(grid, cache_dir=None, executor="serial")
        assert result.waves == [[r.scenario_id for r in result.results]]
        counters = result.cache_counters()
        assert counters["cached"] == 0
        assert counters["computed"] == result.plan.total_stage_invocations()

    def test_unknown_executor_rejected(self):
        grid = SweepGrid(tiny_base(), [GridAxis("top", (2,))])
        with pytest.raises(ValueError, match="executor"):
            run_sweep(grid, executor="carrier-pigeon")

    def test_process_executor_rejects_custom_stages(self):
        grid = SweepGrid(tiny_base(), [GridAxis("top", (2,))])
        with pytest.raises(ValueError, match="default stage DAG"):
            run_sweep(grid, executor="process", stages=full_stages())

    def test_concurrent_executors_reject_nested_parallelism(self):
        """Per-scenario process pools compose only with serial scenario
        execution: 'process' would nest pools, 'thread' would fork from
        a multithreaded process (inherited-lock deadlock)."""
        grid = SweepGrid(tiny_base(), [GridAxis("top", (2,))])
        for executor in ("process", "thread"):
            with pytest.raises(ValueError, match="propagation_workers"):
                run_sweep(grid, executor=executor, propagation_workers=2)

    def test_propagation_workers_bit_identical(self, tmp_path):
        """Routing the propagation stages through run_many (thread mode
        here; the process mode is pinned by the engine's golden suite)
        must not change a single number."""
        grid = SweepGrid(tiny_base(), [GridAxis("top", (2,))])
        plain = run_sweep(grid, executor="serial")
        from repro.pipeline.stages import propagation_parallelism

        with propagation_parallelism(2, executor="thread"):
            batched = run_sweep(grid, executor="serial")
        assert plain.results[0].section3 == batched.results[0].section3
        assert plain.results[0].correction == batched.results[0].correction


def _failing_stages():
    """The default DAG with a correction stage that detonates on top=99."""
    stages = []
    for spec in full_stages():
        if spec.name == "correction":
            original = spec.compute

            def compute(run, _original=original):
                if run.config.top == 99:
                    raise RuntimeError("injected sweep failure")
                return _original(run)

            spec = dataclasses.replace(spec, compute=compute)
        stages.append(spec)
    return stages


class TestNonCacheableTargets:
    def test_snapshot_target_reports_no_phantom_duplicates(self, tmp_path):
        """The snapshot stage is cacheable=False: every scenario
        recomputes its own by design.  That must not surface as a
        duplicate compute, and a warm rerun must still count as fully
        cached even though each scenario rebuilt its facade."""
        grid = SweepGrid(tiny_base(), [GridAxis("dataset.seed", (1, 2))])
        targets = ("snapshot", "section3")
        cold = run_sweep(grid, cache_dir=tmp_path, targets=targets, executor="serial")
        assert not cold.failed()
        assert cold.duplicate_computes() == {}
        assert cold.cache_counters()["computed"] == cold.plan.distinct_stage_invocations()
        warm = run_sweep(grid, cache_dir=tmp_path, targets=targets, executor="serial")
        assert warm.fully_cached()
        # The recompute is still truthfully visible per scenario.
        assert all(
            "snapshot" in r.computed_stages() for r in warm.results
        )


class TestFailureIsolation:
    def test_one_failure_does_not_stop_the_sweep(self, tmp_path):
        grid = SweepGrid(tiny_base(), [GridAxis("top", (2, 99, 3))])
        result = run_sweep(
            grid, cache_dir=tmp_path, executor="serial", stages=_failing_stages()
        )
        statuses = {r.scenario_id: r.status for r in result.results}
        assert statuses == {"top=2": "ok", "top=99": "failed", "top=3": "ok"}
        failed = result.by_id()["top=99"]
        assert "injected sweep failure" in failed.error
        assert failed.section3 is None
        # The stages that completed before the failure are still
        # visible (they were cached, and they feed the exactly-once
        # accounting): only the failing correction stage is absent.
        assert "views" in failed.stage_statuses
        assert "correction" not in failed.stage_statuses

    def test_rerun_resumes_from_cache_after_failure(self, tmp_path):
        grid = SweepGrid(tiny_base(), [GridAxis("top", (2, 99))])
        run_sweep(grid, cache_dir=tmp_path, executor="serial", stages=_failing_stages())
        # Second attempt with the failure fixed: everything the failed
        # run cached (the whole shared prefix) is reused.
        retry = run_sweep(grid, cache_dir=tmp_path, executor="serial")
        assert not retry.failed()
        recovered = retry.by_id()["top=99"]
        assert recovered.computed_stages() == ["correction"]

    def test_failed_scenarios_surface_in_waves_and_counters(self, tmp_path):
        grid = SweepGrid(tiny_base(), [GridAxis("top", (99,))])
        result = run_sweep(
            grid, cache_dir=tmp_path, executor="serial", stages=_failing_stages()
        )
        assert result.failed()
        assert not result.fully_cached()

    def test_completed_stages_of_failed_scenarios_are_counted(self, tmp_path):
        """A scenario that fails mid-pipeline still cached its completed
        prefix; those computations must appear in the exactly-once
        counters (otherwise the accounting silently undercounts and a
        real duplicate could never surface)."""
        calls = {"n": 0}
        stages = []
        for spec in full_stages():
            if spec.name == "store":
                original = spec.compute

                def compute(run, _original=original):
                    calls["n"] += 1
                    if calls["n"] == 1:
                        raise RuntimeError("transient store failure")
                    return _original(run)

                spec = dataclasses.replace(spec, compute=compute)
            stages.append(spec)
        grid = SweepGrid(tiny_base(), [GridAxis("top", (2, 3))])
        result = run_sweep(grid, cache_dir=tmp_path, executor="serial", stages=stages)
        failed, ok = result.results
        assert failed.status == "failed" and "transient" in failed.error
        assert ok.status == "ok"
        counts = result.computed_counts()
        # The failed scenario's completed upstream work is counted once ...
        assert counts[failed.fingerprints["topology"]] == 1
        # ... and reused by the surviving scenario from the cache.
        assert ok.stage_statuses["topology"] == "cached"
        # The stage that died mid-compute was completed only by the
        # retry, so its count is 1 — no phantom duplicate.
        assert counts[ok.fingerprints["store"]] == 1
        assert result.duplicate_computes() == {}
