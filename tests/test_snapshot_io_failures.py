"""Snapshot-directory failure modes: corrupt input must fail loudly.

A snapshot directory is an interchange artifact — it gets copied,
archived and hand-edited.  ``load_snapshot`` therefore cross-checks the
member files against the manifest and raises
:class:`~repro.datasets.SnapshotFormatError` with a message naming the
defect; none of these cases may come back as a silently partial (and
wrong) archive/registry.
"""

from __future__ import annotations

import json
import shutil

import pytest

from repro.datasets import SnapshotFormatError, load_snapshot, save_snapshot
from repro.datasets.snapshot_io import (
    GROUND_TRUTH_FILENAME,
    IRR_DIRNAME,
    MANIFEST_FILENAME,
    RIB_DIRNAME,
    SNAPSHOT_FORMAT_VERSION,
)


@pytest.fixture(scope="module")
def intact(tmp_path_factory, snapshot):
    directory = tmp_path_factory.mktemp("snapshot-io") / "intact"
    save_snapshot(snapshot, directory)
    return directory


@pytest.fixture()
def broken(intact, tmp_path):
    """A private copy of the intact directory, free to corrupt."""
    copy = tmp_path / "broken"
    shutil.copytree(intact, copy)
    return copy


def _edit_manifest(directory, **changes):
    path = directory / MANIFEST_FILENAME
    manifest = json.loads(path.read_text(encoding="utf-8"))
    manifest.update(changes)
    path.write_text(json.dumps(manifest), encoding="utf-8")


class TestManifestDefects:
    def test_missing_manifest(self, broken):
        (broken / MANIFEST_FILENAME).unlink()
        with pytest.raises(SnapshotFormatError, match="manifest"):
            load_snapshot(broken)

    def test_unparseable_manifest(self, broken):
        (broken / MANIFEST_FILENAME).write_text("{truncated", encoding="utf-8")
        with pytest.raises(SnapshotFormatError, match="not valid JSON"):
            load_snapshot(broken)

    def test_manifest_must_be_an_object(self, broken):
        (broken / MANIFEST_FILENAME).write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(SnapshotFormatError, match="JSON object"):
            load_snapshot(broken)

    def test_future_format_version(self, broken):
        _edit_manifest(broken, format_version=SNAPSHOT_FORMAT_VERSION + 1)
        with pytest.raises(SnapshotFormatError, match="format_version"):
            load_snapshot(broken)

    def test_missing_format_version(self, broken):
        path = broken / MANIFEST_FILENAME
        manifest = json.loads(path.read_text(encoding="utf-8"))
        del manifest["format_version"]
        path.write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(SnapshotFormatError, match="format_version"):
            load_snapshot(broken)

    def test_wrong_typed_record_count(self, broken):
        """Valid JSON with a corrupt value must still fail as a
        SnapshotFormatError naming the field, not a bare TypeError."""
        _edit_manifest(broken, records="100")
        with pytest.raises(SnapshotFormatError, match="'records'"):
            load_snapshot(broken)

    def test_wrong_typed_collectors(self, broken):
        _edit_manifest(broken, collectors=5)
        with pytest.raises(SnapshotFormatError, match="'collectors'"):
            load_snapshot(broken)

    def test_wrong_typed_documented_ases(self, broken):
        _edit_manifest(broken, documented_ases=[1])
        with pytest.raises(SnapshotFormatError, match="'documented_ases'"):
            load_snapshot(broken)


class TestMemberFileDefects:
    def test_truncated_rib_dump(self, broken):
        """Cutting a dump file in half drops records; the manifest's
        record count catches it."""
        dumps = sorted((broken / RIB_DIRNAME).glob("*.txt"))
        assert dumps
        victim = dumps[0]
        lines = victim.read_text(encoding="utf-8").splitlines()
        victim.write_text("\n".join(lines[: len(lines) // 2]) + "\n", encoding="utf-8")
        with pytest.raises(SnapshotFormatError, match="truncated or missing"):
            load_snapshot(broken)

    def test_deleted_rib_dump(self, broken):
        dumps = sorted((broken / RIB_DIRNAME).glob("*.txt"))
        dumps[0].unlink()
        with pytest.raises(SnapshotFormatError):
            load_snapshot(broken)

    def test_missing_irr_corpus(self, broken):
        """The manifest promises documented ASes; an absent corpus would
        silently disable the Communities inference."""
        shutil.rmtree(broken / IRR_DIRNAME)
        with pytest.raises(SnapshotFormatError, match="IRR corpus"):
            load_snapshot(broken)

    def test_deleted_irr_member_file(self, broken):
        members = sorted((broken / IRR_DIRNAME).glob("AS*.txt"))
        assert members
        members[0].unlink()
        with pytest.raises(SnapshotFormatError, match="IRR corpus"):
            load_snapshot(broken)

    def test_corrupt_ground_truth(self, broken):
        (broken / GROUND_TRUTH_FILENAME).write_text(
            "1|2|not-a-relationship|x\n", encoding="utf-8"
        )
        with pytest.raises(SnapshotFormatError, match="ground.?truth"):
            load_snapshot(broken)


class TestIntactStillLoads:
    def test_intact_directory_loads(self, intact, snapshot):
        loaded = load_snapshot(intact)
        assert len(loaded.archive) == len(snapshot.archive)
        assert loaded.manifest["format_version"] == SNAPSHOT_FORMAT_VERSION

    def test_absent_ground_truth_is_still_optional(self, broken):
        (broken / GROUND_TRUTH_FILENAME).unlink()
        assert load_snapshot(broken).ground_truth_graph is None
