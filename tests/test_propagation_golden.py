"""Golden-equivalence suite for the optimized propagation fast path.

The optimized :class:`~repro.bgp.propagation.PropagationSimulator` must
be indistinguishable, route for route, from the frozen seed
implementation in :mod:`repro.bgp.reference`.  These tests run both over
the same generated topologies (seeds 2010 / 2011 / 2012, both address
families, policy features switched on: mixed LOCAL_PREF schemes,
community tagging, traffic-engineering overrides and IPv6 export
relaxations) and compare everything observable:

* the best path of every AS towards every prefix,
* the per-prefix reachable counts (which the optimized code tracks
  incrementally during the events instead of re-scanning),
* the event counts (the optimized loop preserves the seed's event
  ordering exactly), and
* the RIB snapshots of sampled vantage ASes.

A separate set of tests pins the batched
:class:`~repro.bgp.engine.PropagationEngine` to the serial results
regardless of worker count.
"""

from __future__ import annotations

import pytest

from repro.core.relationships import AFI, Relationship
from repro.bgp.engine import PropagationEngine
from repro.bgp.policy import LocalPrefScheme, RoutingPolicy, TrafficEngineeringOverride
from repro.bgp.prefixes import PrefixAllocator
from repro.bgp.propagation import PropagationSimulator, originate_one_prefix_per_as
from repro.bgp.reference import ReferencePropagationSimulator
from repro.irr.registry import build_registry
from repro.topology.generator import TopologyConfig, generate_topology

GOLDEN_SEEDS = (2010, 2011, 2012)

_SCHEMES = (
    (300, 200, 100),
    (900, 800, 700),
    (250, 170, 90),
)


def _golden_topology(seed: int):
    return generate_topology(
        TopologyConfig(
            seed=seed,
            tier1_count=4,
            tier2_count=12,
            tier3_count=40,
        )
    )


def _rich_policies(graph, seed: int):
    """Policies exercising every code path the fast loop specializes.

    Mixed LOCAL_PREF numbering, community taggers for a subset of ASes,
    community stripping, a TE override on a multi-homed AS and an IPv6
    export relaxation on the first peering link — all deterministic in
    ``seed``.
    """
    registry = build_registry(graph.ases, documented_fraction=0.6, seed=seed)
    allocator = PrefixAllocator()
    policies = {}
    for index, asn in enumerate(graph.ases):
        customer, peer, provider = _SCHEMES[(index + seed) % len(_SCHEMES)]
        policies[asn] = RoutingPolicy(
            asn=asn,
            local_pref=LocalPrefScheme(
                customer=customer,
                peer=peer,
                provider=provider,
                sibling=(customer + peer) // 2,
            ),
            tagger=registry.dictionary_for(asn),
            strip_communities_on_export=(index + seed) % 7 == 0,
        )
    # One TE override on the first multi-homed AS.
    for asn in graph.ases:
        providers = graph.providers_of(asn, AFI.IPV4)
        if len(providers) >= 2:
            policies[asn].te_overrides.append(
                TrafficEngineeringOverride(
                    neighbor=providers[0],
                    local_pref=10,
                    prefixes=(allocator.prefix(graph.ases[0], AFI.IPV4),),
                )
            )
            break
    # One IPv6 export relaxation over a peering link.
    for link in graph.links(AFI.IPV6):
        if graph.relationship(link.a, link.b, AFI.IPV6) is Relationship.P2P:
            policies[link.a].add_relaxation(link.b, AFI.IPV6)
            break
    return policies


def _assert_equivalent(graph, reference, optimized, origins):
    assert reference.events == optimized.events
    assert reference.reachable_counts == optimized.reachable_counts
    for asn in graph.ases:
        for prefix in origins:
            assert reference.best_path(asn, prefix) == optimized.best_path(
                asn, prefix
            ), f"AS{asn} towards {prefix}"


class TestGoldenEquivalence:
    @pytest.mark.parametrize("seed", GOLDEN_SEEDS)
    @pytest.mark.parametrize("afi", (AFI.IPV4, AFI.IPV6))
    def test_routes_reachability_and_events_match_reference(self, seed, afi):
        topology = _golden_topology(seed)
        graph = topology.graph
        policies = _rich_policies(graph, seed)
        origins = originate_one_prefix_per_as(graph, afi)
        reference = ReferencePropagationSimulator(graph, policies).run(origins)
        optimized = PropagationSimulator(graph, policies).run(origins)
        _assert_equivalent(graph, reference, optimized, origins)

    @pytest.mark.parametrize("seed", GOLDEN_SEEDS)
    def test_snapshots_match_reference(self, seed):
        topology = _golden_topology(seed)
        graph = topology.graph
        policies = _rich_policies(graph, seed)
        origins = originate_one_prefix_per_as(graph, AFI.IPV4)
        reference = ReferencePropagationSimulator(graph, policies).run(origins)
        optimized = PropagationSimulator(graph, policies).run(origins)
        for asn in graph.ases[:10]:
            assert reference.snapshot(asn).best_routes == optimized.snapshot(asn).best_routes

    def test_pruned_mode_matches_reference(self):
        topology = _golden_topology(2010)
        graph = topology.graph
        policies = _rich_policies(graph, 2010)
        keep = graph.ases[:4]
        origins = originate_one_prefix_per_as(graph, AFI.IPV4)
        reference = ReferencePropagationSimulator(
            graph, policies, keep_ribs_for=keep
        ).run(origins)
        optimized = PropagationSimulator(graph, policies, keep_ribs_for=keep).run(
            origins
        )
        assert reference.reachable_counts == optimized.reachable_counts
        assert reference.events == optimized.events
        for asn in keep:
            assert reference.snapshot(asn).best_routes == optimized.snapshot(asn).best_routes
        # Non-kept speakers are fully pruned in both implementations.
        other = next(asn for asn in graph.ases if asn not in keep)
        assert not optimized.speakers[other].loc_rib.routes()

    def test_custom_policy_subclass_consulted_per_route(self):
        """Policies overriding the import hooks bypass the defaults cache."""

        class WeirdPolicy(RoutingPolicy):
            def local_pref_for(self, neighbor, relationship, prefix):
                # Prefer even-numbered neighbours, ignoring relationship:
                # only visible if the hook actually runs per route.
                return (500 if neighbor % 2 == 0 else 50), None

        topology = _golden_topology(2012)
        graph = topology.graph
        policies = {asn: WeirdPolicy(asn=asn) for asn in graph.ases}
        origins = originate_one_prefix_per_as(graph, AFI.IPV4)
        reference = ReferencePropagationSimulator(graph, policies).run(origins)
        optimized = PropagationSimulator(graph, policies).run(origins)
        _assert_equivalent(graph, reference, optimized, origins)

    def test_prefix_pickle_drops_cached_hash(self):
        """The per-process hash cache must not cross a pickle boundary."""
        import pickle

        from repro.bgp.prefixes import Prefix

        prefix = Prefix("10.0.0.0/20")
        hash(prefix)  # populate the cache
        assert "_hash" not in prefix.__getstate__()
        restored = pickle.loads(pickle.dumps(prefix))
        assert restored == prefix
        assert hash(restored) == hash(prefix)  # recomputed, same process
        assert restored.afi is prefix.afi

    def test_graph_stats_identical_across_rebuilds(self):
        """The indexed graph reports the same stats() after any rebuild."""
        for seed in GOLDEN_SEEDS:
            graph = _golden_topology(seed).graph
            baseline = graph.stats()
            assert graph.copy().stats() == baseline
            graph.rebuild_indexes()
            assert graph.stats() == baseline


class TestRunManyDeterminism:
    @pytest.fixture(scope="class")
    def setup(self):
        topology = _golden_topology(2011)
        graph = topology.graph
        policies = _rich_policies(graph, 2011)
        origins = originate_one_prefix_per_as(graph, AFI.IPV4)
        engine = PropagationEngine(graph, policies)
        serial = engine.run(origins)
        return graph, origins, engine, serial

    @pytest.mark.parametrize("workers", (2, 3, 8))
    def test_thread_parallel_identical_to_serial(self, setup, workers):
        graph, origins, engine, serial = setup
        parallel = engine.run_many(origins, workers=workers)
        assert parallel.events == serial.events
        assert parallel.reachable_counts == serial.reachable_counts
        for asn in graph.ases:
            for prefix in origins:
                assert parallel.best_path(asn, prefix) == serial.best_path(asn, prefix)

    def test_process_parallel_identical_to_serial(self, setup):
        """Fork path: graph+policies shared via the inherited module global."""
        graph, origins, engine, serial = setup
        parallel = engine.run_many(origins, workers=2, executor="process")
        assert parallel.events == serial.events
        assert parallel.reachable_counts == serial.reachable_counts
        for asn in graph.ases:
            assert parallel.snapshot(asn).best_routes == serial.snapshot(asn).best_routes

    def test_process_parallel_shared_registry_is_cleaned_up(self, setup):
        from repro.bgp import engine as engine_module

        _, origins, engine, _ = setup
        engine.run_many(origins, workers=2, executor="process")
        assert not engine_module._SHARED_ENGINES

    def test_process_spawn_fallback_identical_to_serial(self, setup, monkeypatch):
        """Spawn-platform fallback: engine pickled once per worker via the
        pool initializer instead of inherited — results must not change."""
        from repro.bgp import engine as engine_module

        graph, origins, engine, serial = setup
        monkeypatch.setattr(engine_module, "_start_method", lambda: "spawn")
        parallel = engine.run_many(origins, workers=2, executor="process")
        assert parallel.events == serial.events
        assert parallel.reachable_counts == serial.reachable_counts
        for asn in graph.ases:
            assert parallel.snapshot(asn).best_routes == serial.snapshot(asn).best_routes

    def test_serial_workers_take_no_executor_path(self, setup):
        graph, origins, engine, serial = setup
        for workers in (None, 0, 1):
            again = engine.run_many(origins, workers=workers)
            assert again.events == serial.events
            assert again.reachable_counts == serial.reachable_counts

    def test_unknown_executor_rejected(self, setup):
        _, origins, engine, _ = setup
        with pytest.raises(ValueError):
            engine.run_many(origins, workers=2, executor="fiber")

    def test_single_prefix_runs_serially(self, setup):
        graph, origins, engine, serial = setup
        prefix = next(iter(origins))
        lone = {prefix: origins[prefix]}
        result = engine.run_many(lone, workers=4)
        assert result.reachable_counts[prefix] == serial.reachable_counts[prefix]

    def test_worker_count_fuzz_identical_to_serial(self, setup):
        """Batch boundaries must never change the result — including when
        ``workers`` exceeds the origin count and naive splitting would
        hand some workers an empty batch."""
        graph, origins, engine, serial = setup
        n = len(origins)
        sampled = graph.ases[:6]
        for workers in (2, 3, 5, n - 1, n, n + 1, 2 * n, 10 * n):
            result = engine.run_many(origins, workers=workers)
            assert result.events == serial.events, f"workers={workers}"
            assert result.reachable_counts == serial.reachable_counts
            for asn in sampled:
                for prefix in origins:
                    assert result.best_path(asn, prefix) == serial.best_path(
                        asn, prefix
                    ), f"workers={workers} AS{asn} {prefix}"

    def test_split_never_yields_empty_batches(self, setup):
        """The splitter drops slices that would come out empty (more
        workers than origins) and always preserves item order."""
        _, origins, engine, _ = setup
        items = list(origins.items())
        for batches in (1, 2, 3, 7, len(items) - 1, len(items), len(items) + 5, 400):
            split = engine._split(origins, batches)
            assert all(split), f"empty batch with batches={batches}"
            assert len(split) <= min(batches, len(items))
            flattened = [pair for batch in split for pair in batch]
            assert flattened == items
