"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_section3_defaults(self):
        args = build_parser().parse_args(["section3"])
        assert args.command == "section3"
        assert args.seed == 7
        assert not args.paper_scale

    def test_scale_flags_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["section3", "--small", "--paper-scale"])

    def test_snapshot_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["snapshot"])


class TestCommands:
    def test_section3_prints_table_and_writes_json(self, tmp_path, capsys):
        json_path = tmp_path / "report.json"
        exit_code = main(["section3", "--small", "--seed", "3", "--json", str(json_path)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Section 3 statistics" in output
        assert "hybrid links" in output
        payload = json.loads(json_path.read_text())
        assert "section3" in payload
        assert payload["section3"]["ipv6_paths"] > 0

    def test_figure2_prints_series(self, capsys):
        exit_code = main(
            ["figure2", "--small", "--seed", "3", "--top", "3", "--max-sources", "20"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Figure 2" in output
        assert "avg path length" in output

    def test_snapshot_writes_files(self, tmp_path, capsys):
        exit_code = main(
            ["snapshot", "--small", "--seed", "3", "--output", str(tmp_path / "snap")]
        )
        assert exit_code == 0
        output_dir = tmp_path / "snap"
        assert (output_dir / "ground-truth-asrel.txt").exists()
        assert list((output_dir / "rib-dumps").glob("*.txt"))
        assert list((output_dir / "irr").glob("AS*.txt"))
        assert "snapshot written" in capsys.readouterr().out
