"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_section3_defaults(self):
        args = build_parser().parse_args(["section3"])
        assert args.command == "section3"
        assert args.seed == 7
        assert not args.paper_scale

    def test_scale_flags_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["section3", "--small", "--paper-scale"])

    def test_snapshot_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["snapshot"])


class TestCommands:
    def test_section3_prints_table_and_writes_json(self, tmp_path, capsys):
        json_path = tmp_path / "report.json"
        exit_code = main(["section3", "--small", "--seed", "3", "--json", str(json_path)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Section 3 statistics" in output
        assert "hybrid links" in output
        payload = json.loads(json_path.read_text())
        assert "section3" in payload
        assert payload["section3"]["ipv6_paths"] > 0

    def test_figure2_prints_series(self, capsys):
        exit_code = main(
            ["figure2", "--small", "--seed", "3", "--top", "3", "--max-sources", "20"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Figure 2" in output
        assert "avg path length" in output

    def test_snapshot_writes_files(self, tmp_path, capsys):
        exit_code = main(
            ["snapshot", "--small", "--seed", "3", "--output", str(tmp_path / "snap")]
        )
        assert exit_code == 0
        output_dir = tmp_path / "snap"
        assert (output_dir / "ground-truth-asrel.txt").exists()
        assert (output_dir / "snapshot.json").exists()
        assert list((output_dir / "rib-dumps").glob("*.txt"))
        assert list((output_dir / "irr").glob("AS*.txt"))
        assert "snapshot written" in capsys.readouterr().out

    def test_figure2_writes_json(self, tmp_path, capsys):
        json_path = tmp_path / "figure2.json"
        exit_code = main(
            [
                "figure2", "--small", "--seed", "3", "--top", "3",
                "--max-sources", "20", "--json", str(json_path),
            ]
        )
        assert exit_code == 0
        payload = json.loads(json_path.read_text())
        figure2 = payload["figure2"]
        assert figure2["top"] == 3
        assert len(figure2["averages"]) == len(figure2["corrected_links"])
        assert figure2["corrected_links"][0] == 0
        assert "average_reduction" in figure2["improvement"]


class TestPipelineOptions:
    def test_cache_dir_mutually_exclusive_with_from_snapshot(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["section3", "--cache-dir", "/tmp/x", "--from-snapshot", "/tmp/y"]
            )

    def test_figure2_reuses_section3_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["section3", "--small", "--seed", "3", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(
            [
                "figure2", "--small", "--seed", "3", "--top", "3",
                "--max-sources", "20", "--cache-dir", cache_dir,
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "reused cached stages" in output
        assert "inference" in output

    def test_section3_from_snapshot_matches_in_memory(self, tmp_path, capsys):
        snap_dir = str(tmp_path / "snap")
        in_memory_json = tmp_path / "memory.json"
        from_disk_json = tmp_path / "disk.json"
        assert main(["snapshot", "--small", "--seed", "3", "--output", snap_dir]) == 0
        assert main(
            ["section3", "--small", "--seed", "3", "--json", str(in_memory_json)]
        ) == 0
        assert main(
            ["section3", "--from-snapshot", snap_dir, "--json", str(from_disk_json)]
        ) == 0
        in_memory = json.loads(in_memory_json.read_text())["section3"]
        from_disk = json.loads(from_disk_json.read_text())["section3"]
        assert from_disk == in_memory
        assert json.loads(from_disk_json.read_text())["config"] == {
            "snapshot_dir": snap_dir
        }

    def test_figure2_from_snapshot_runs(self, tmp_path, capsys):
        snap_dir = str(tmp_path / "snap")
        assert main(["snapshot", "--small", "--seed", "3", "--output", snap_dir]) == 0
        assert main(
            [
                "figure2", "--top", "2", "--max-sources", "10",
                "--from-snapshot", snap_dir,
            ]
        ) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_sizing_flags_rejected_with_from_snapshot(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["section3", "--small", "--from-snapshot", str(tmp_path)])
        with pytest.raises(SystemExit):
            main(["figure2", "--paper-scale", "--from-snapshot", str(tmp_path)])
