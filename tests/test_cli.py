"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_section3_defaults(self):
        args = build_parser().parse_args(["section3"])
        assert args.command == "section3"
        assert args.seed == 7
        assert not args.paper_scale

    def test_scale_flags_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["section3", "--small", "--paper-scale"])

    def test_snapshot_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["snapshot"])


class TestCommands:
    def test_section3_prints_table_and_writes_json(self, tmp_path, capsys):
        json_path = tmp_path / "report.json"
        exit_code = main(["section3", "--small", "--seed", "3", "--json", str(json_path)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Section 3 statistics" in output
        assert "hybrid links" in output
        payload = json.loads(json_path.read_text())
        assert "section3" in payload
        assert payload["section3"]["ipv6_paths"] > 0

    def test_figure2_prints_series(self, capsys):
        exit_code = main(
            ["figure2", "--small", "--seed", "3", "--top", "3", "--max-sources", "20"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Figure 2" in output
        assert "avg path length" in output

    def test_snapshot_writes_files(self, tmp_path, capsys):
        exit_code = main(
            ["snapshot", "--small", "--seed", "3", "--output", str(tmp_path / "snap")]
        )
        assert exit_code == 0
        output_dir = tmp_path / "snap"
        assert (output_dir / "ground-truth-asrel.txt").exists()
        assert (output_dir / "snapshot.json").exists()
        assert list((output_dir / "rib-dumps").glob("*.txt"))
        assert list((output_dir / "irr").glob("AS*.txt"))
        assert "snapshot written" in capsys.readouterr().out

    def test_figure2_writes_json(self, tmp_path, capsys):
        json_path = tmp_path / "figure2.json"
        exit_code = main(
            [
                "figure2", "--small", "--seed", "3", "--top", "3",
                "--max-sources", "20", "--json", str(json_path),
            ]
        )
        assert exit_code == 0
        payload = json.loads(json_path.read_text())
        figure2 = payload["figure2"]
        assert figure2["top"] == 3
        assert len(figure2["averages"]) == len(figure2["corrected_links"])
        assert figure2["corrected_links"][0] == 0
        assert "average_reduction" in figure2["improvement"]


class TestPipelineOptions:
    def test_cache_dir_mutually_exclusive_with_from_snapshot(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["section3", "--cache-dir", "/tmp/x", "--from-snapshot", "/tmp/y"]
            )

    def test_figure2_reuses_section3_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["section3", "--small", "--seed", "3", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(
            [
                "figure2", "--small", "--seed", "3", "--top", "3",
                "--max-sources", "20", "--cache-dir", cache_dir,
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "reused cached stages" in output
        assert "inference" in output

    def test_section3_from_snapshot_matches_in_memory(self, tmp_path, capsys):
        snap_dir = str(tmp_path / "snap")
        in_memory_json = tmp_path / "memory.json"
        from_disk_json = tmp_path / "disk.json"
        assert main(["snapshot", "--small", "--seed", "3", "--output", snap_dir]) == 0
        assert main(
            ["section3", "--small", "--seed", "3", "--json", str(in_memory_json)]
        ) == 0
        assert main(
            ["section3", "--from-snapshot", snap_dir, "--json", str(from_disk_json)]
        ) == 0
        in_memory = json.loads(in_memory_json.read_text())["section3"]
        from_disk = json.loads(from_disk_json.read_text())["section3"]
        assert from_disk == in_memory
        assert json.loads(from_disk_json.read_text())["config"] == {
            "snapshot_dir": snap_dir
        }

    def test_figure2_from_snapshot_runs(self, tmp_path, capsys):
        snap_dir = str(tmp_path / "snap")
        assert main(["snapshot", "--small", "--seed", "3", "--output", snap_dir]) == 0
        assert main(
            [
                "figure2", "--top", "2", "--max-sources", "10",
                "--from-snapshot", snap_dir,
            ]
        ) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_sizing_flags_rejected_with_from_snapshot(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["section3", "--small", "--from-snapshot", str(tmp_path)])
        with pytest.raises(SystemExit):
            main(["figure2", "--paper-scale", "--from-snapshot", str(tmp_path)])

    def test_json_reports_carry_schema_version_and_sorted_keys(self, tmp_path, capsys):
        json_path = tmp_path / "report.json"
        assert main(["section3", "--small", "--seed", "3", "--json", str(json_path)]) == 0
        text = json_path.read_text()
        payload = json.loads(text)
        assert payload["schema_version"] == 1
        assert text == json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _tiny_grid(tmp_path, tops=(2, 3)):
    grid = {
        "schema_version": 1,
        "base": {
            "scale": "small",
            "overrides": {
                "dataset.topology.tier1_count": 3,
                "dataset.topology.tier2_count": 8,
                "dataset.topology.tier3_count": 20,
                "dataset.vantage_points": 4,
                "max_sources": 10,
            },
        },
        "axes": [
            {"field": "dataset.seed", "values": [3, 4]},
            {"field": "top", "values": list(tops)},
        ],
    }
    path = tmp_path / "grid.json"
    path.write_text(json.dumps(grid), encoding="utf-8")
    return str(path)


class TestSweepCommand:
    def test_requires_grid(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep"])

    def test_bad_grid_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "grid.json"
        path.write_text("{broken", encoding="utf-8")
        assert main(["sweep", "--grid", str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_sweep_end_to_end_with_reports(self, tmp_path, capsys):
        grid = _tiny_grid(tmp_path)
        cache_dir = str(tmp_path / "cache")
        json_path = tmp_path / "sweep.json"
        md_path = tmp_path / "sweep.md"
        assert main(
            [
                "sweep", "--grid", grid, "--cache-dir", cache_dir,
                "--executor", "serial",
                "--json", str(json_path), "--markdown", str(md_path),
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "4 scenarios" in output
        assert "shared" in output
        text = json_path.read_text()
        report = json.loads(text)
        from repro.sweep import SWEEP_REPORT_SCHEMA_VERSION

        assert report["schema_version"] == SWEEP_REPORT_SCHEMA_VERSION
        assert len(report["scenarios"]) == 4
        assert report["cache"]["duplicate_computes"] == {}
        # Stable serialization: sorted keys, trailing newline.
        assert text == json.dumps(report, indent=2, sort_keys=True) + "\n"
        assert "# Sweep report" in md_path.read_text()

    def test_invalid_option_combination_exits_2(self, tmp_path, capsys):
        grid = _tiny_grid(tmp_path)
        assert main(
            [
                "sweep", "--grid", grid, "--executor", "process",
                "--propagation-workers", "2",
            ]
        ) == 2
        assert "propagation_workers" in capsys.readouterr().err

    def test_cacheless_sweep_prints_no_duplicate_warning(self, tmp_path, capsys):
        """Without a cache, shared fingerprints recompute per cell by
        design — that is not a broken exactly-once schedule."""
        grid = _tiny_grid(tmp_path, tops=(2,))
        assert main(["sweep", "--grid", grid, "--executor", "serial"]) == 0
        assert "warning" not in capsys.readouterr().out

    def test_warm_sweep_reports_fully_cached(self, tmp_path, capsys):
        grid = _tiny_grid(tmp_path)
        cache_dir = str(tmp_path / "cache")
        assert main(
            ["sweep", "--grid", grid, "--cache-dir", cache_dir, "--executor", "serial"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["sweep", "--grid", grid, "--cache-dir", cache_dir, "--executor", "serial"]
        ) == 0
        assert "fully cached: nothing was recomputed" in capsys.readouterr().out


class TestDistributedSweepOptions:
    def test_worker_requires_queue_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker"])

    def test_distributed_requires_queue_dir(self, tmp_path, capsys):
        grid = _tiny_grid(tmp_path, tops=(2,))
        assert main(
            ["sweep", "--grid", grid, "--distributed",
             "--cache-dir", str(tmp_path / "cache")]
        ) == 2
        assert "queue_dir" in capsys.readouterr().err

    def test_distributed_requires_cache_dir(self, tmp_path, capsys):
        grid = _tiny_grid(tmp_path, tops=(2,))
        assert main(
            ["sweep", "--grid", grid, "--distributed",
             "--queue-dir", str(tmp_path / "queue")]
        ) == 2
        assert "cache_dir" in capsys.readouterr().err

    def test_distributed_conflicts_with_other_executor(self, tmp_path, capsys):
        grid = _tiny_grid(tmp_path, tops=(2,))
        assert main(
            ["sweep", "--grid", grid, "--distributed", "--executor", "serial",
             "--queue-dir", str(tmp_path / "q"), "--cache-dir", str(tmp_path / "c")]
        ) == 2
        assert "--distributed conflicts" in capsys.readouterr().err

    def test_budget_requires_cache_dir(self, tmp_path, capsys):
        grid = _tiny_grid(tmp_path, tops=(2,))
        assert main(
            ["sweep", "--grid", grid, "--executor", "serial",
             "--cache-budget-bytes", "100"]
        ) == 2
        assert "cache_budget_bytes" in capsys.readouterr().err

    def test_workers_flag_rejected_for_distributed(self, tmp_path, capsys):
        """--workers silently meaning 'zero local workers' would hang
        the coordinator forever; it must be an explicit error."""
        grid = _tiny_grid(tmp_path, tops=(2,))
        assert main(
            ["sweep", "--grid", grid, "--distributed",
             "--queue-dir", str(tmp_path / "q"),
             "--cache-dir", str(tmp_path / "c"), "--workers", "2"]
        ) == 2
        assert "--local-workers" in capsys.readouterr().err

    def test_cluster_flags_rejected_for_local_executors(self, tmp_path, capsys):
        """The symmetric silent drop: cluster-only flags on a local
        executor must error, not be ignored."""
        grid = _tiny_grid(tmp_path, tops=(2,))
        assert main(
            ["sweep", "--grid", grid, "--executor", "serial",
             "--local-workers", "2"]
        ) == 2
        assert "--distributed" in capsys.readouterr().err
        assert main(
            ["sweep", "--grid", grid, "--executor", "serial",
             "--lease-seconds", "10"]
        ) == 2
        assert "--distributed" in capsys.readouterr().err

    def test_distributed_sweep_end_to_end(self, tmp_path, capsys):
        """The CLI spelling of the acceptance run: --distributed with a
        spawned local worker, report identical in shape to the serial
        one and exactly-once intact."""
        grid = _tiny_grid(tmp_path, tops=(2,))
        json_path = tmp_path / "dist.json"
        assert main(
            [
                "sweep", "--grid", grid, "--distributed",
                "--queue-dir", str(tmp_path / "queue"),
                "--cache-dir", str(tmp_path / "cache"),
                "--local-workers", "1",
                "--json", str(json_path),
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "2 scenarios" in output
        report = json.loads(json_path.read_text())
        assert report["executor"] == "cluster"
        assert report["cache"]["duplicate_computes"] == {}
        assert all(
            cell["status"] == "ok" for cell in report["scenarios"].values()
        )


class TestCacheCommands:
    def _populated_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(
            ["section3", "--small", "--seed", "3", "--cache-dir", cache_dir]
        ) == 0
        return cache_dir

    def test_stats_requires_cache_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "stats"])

    def test_stats_on_missing_directory_exits_2(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path / "nope")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_stats_human_and_json(self, tmp_path, capsys):
        cache_dir = self._populated_cache(tmp_path)
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        human = capsys.readouterr().out
        assert "artifacts" in human
        assert "topology" in human
        assert main(["cache", "stats", "--cache-dir", cache_dir, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["schema_version"] == 1
        assert stats["entries"] > 0
        assert stats["total_bytes"] > 0

    def test_prune_requires_a_bound(self, tmp_path, capsys):
        cache_dir = self._populated_cache(tmp_path)
        capsys.readouterr()
        assert main(["cache", "prune", "--cache-dir", cache_dir]) == 2
        assert "--max-bytes" in capsys.readouterr().err

    def test_prune_to_budget(self, tmp_path, capsys):
        cache_dir = self._populated_cache(tmp_path)
        capsys.readouterr()
        assert main(
            ["cache", "prune", "--cache-dir", cache_dir, "--max-bytes", "1"]
        ) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache_dir, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["total_bytes"] <= 1

    def test_prune_dry_run_removes_nothing(self, tmp_path, capsys):
        cache_dir = self._populated_cache(tmp_path)
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir, "--json"]) == 0
        before = json.loads(capsys.readouterr().out)["total_bytes"]
        assert main(
            [
                "cache", "prune", "--cache-dir", cache_dir,
                "--max-bytes", "1", "--dry-run",
            ]
        ) == 0
        assert "would remove" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache_dir, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["total_bytes"] == before


class TestTaskTimeoutOptions:
    def test_worker_parser_accepts_task_timeout(self):
        args = build_parser().parse_args(
            ["worker", "--queue-dir", "/tmp/q", "--task-timeout", "8.5"]
        )
        assert args.task_timeout == 8.5

    def test_sweep_parser_accepts_task_timeout(self):
        args = build_parser().parse_args(
            ["sweep", "--grid", "g.json", "--distributed",
             "--queue-dir", "q", "--cache-dir", "c", "--task-timeout", "30"]
        )
        assert args.task_timeout == 30.0

    def test_task_timeout_rejected_without_distributed(self, tmp_path, capsys):
        grid = _tiny_grid(tmp_path, tops=(2,))
        assert main(["sweep", "--grid", grid, "--task-timeout", "5"]) == 2
        assert "--task-timeout require --distributed" in capsys.readouterr().err


class TestQueueStatusCommand:
    def _queue_with_history(self, tmp_path):
        from repro.cluster.coordinator import queue_path
        from repro.cluster.queue import TaskQueue, TaskSpec

        queue_dir = tmp_path / "queue"
        queue_dir.mkdir()
        queue = TaskQueue(queue_path(queue_dir))
        queue.enqueue(
            [
                TaskSpec(
                    task_id=task_id, sweep_id="sweep", wave=0,
                    scenario_id=f"scenario-{task_id}", config=b"cfg",
                    targets=json.dumps(["section3"]),
                    max_attempts=max_attempts,
                )
                for task_id, max_attempts in (("run-t", 3), ("dead-t", 1))
            ]
        )
        queue.claim("w1", lease_seconds=60)  # run-t stays running
        queue.claim("w2", lease_seconds=60)
        queue.fail("dead-t", "w2", "injected poison")  # quarantined
        return queue_dir

    def test_missing_queue_is_an_error_not_a_creation(self, tmp_path, capsys):
        queue_dir = tmp_path / "never-created"
        assert main(["queue", "status", "--queue-dir", str(queue_dir)]) == 2
        assert "no task queue at" in capsys.readouterr().err
        assert not queue_dir.exists()  # read-only command left no trace

    def test_human_output_shows_leases_and_dead_letters(self, tmp_path, capsys):
        queue_dir = self._queue_with_history(tmp_path)
        capsys.readouterr()
        assert main(["queue", "status", "--queue-dir", str(queue_dir)]) == 0
        out = capsys.readouterr().out
        assert "task queue at" in out
        assert "state: open, 2 tasks" in out
        assert "running run-t (owner w1, attempt 1)" in out
        assert "lease expires in" in out
        assert "dead    dead-t after 1 attempt(s): injected poison" in out
        assert "attempt 1 (w2): injected poison" in out

    def test_json_output_is_versioned_and_machine_readable(self, tmp_path, capsys):
        queue_dir = self._queue_with_history(tmp_path)
        capsys.readouterr()
        assert main(
            ["queue", "status", "--queue-dir", str(queue_dir), "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema_version"] == 1
        assert report["counts"] == {"dead": 1, "running": 1}
        (running,) = report["running"]
        assert running["task_id"] == "run-t"
        assert running["lease_seconds_remaining"] > 0
        (letter,) = report["dead_letters"]
        assert letter["task_id"] == "dead-t"
        assert [e["error"] for e in letter["attempts_log"]] == ["injected poison"]
        # Retries are visible from the outside via the task roster.
        roster = {row["task_id"]: row for row in report["tasks"]}
        assert roster["dead-t"]["status"] == "dead"
        assert roster["run-t"]["attempts"] == 1
