"""Tests for the hand-built scenarios and the synthetic snapshot builder."""

import pytest

from repro.core.annotation import ToRAnnotation
from repro.core.customer_tree import customer_tree
from repro.core.relationships import AFI, HybridType, Relationship
from repro.core.valley import PathValidity, validate_path
from repro.datasets.scenarios import (
    figure1_scenario,
    hybrid_scenario,
    rosetta_scenario,
    valley_scenario,
)
from repro.datasets.synthetic import DatasetConfig, build_snapshot, small_config
from repro.topology.generator import TopologyConfig


class TestScenarios:
    def test_figure1_trees(self):
        scenario = figure1_scenario()
        assert (
            customer_tree(scenario.annotation_p2c, 1).members
            == scenario.expected_tree_p2c
        )
        assert (
            customer_tree(scenario.annotation_p2p, 1).members
            == scenario.expected_tree_p2p
        )

    def test_hybrid_scenario_link(self):
        scenario = hybrid_scenario()
        graph = scenario.graph
        record = graph.dual_stack_relationship(10, 20)
        assert record.is_hybrid
        assert record.hybrid_type is HybridType.PEER4_TRANSIT6

    def test_rosetta_scenario_shape(self):
        scenario = rosetta_scenario()
        assert len(scenario.observations) == 5
        assert scenario.vantage in scenario.registry
        assert all(o.vantage == scenario.vantage for o in scenario.observations)

    def test_valley_scenario_is_a_reachability_valley(self):
        scenario = valley_scenario()
        validation = validate_path(scenario.valley_path, scenario.annotation)
        assert validation.validity is PathValidity.VALLEY
        assert (
            validate_path(scenario.valley_free_path, scenario.annotation).validity
            is PathValidity.VALLEY_FREE
        )


class TestDatasetConfig:
    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            DatasetConfig(documented_fraction=1.2)
        with pytest.raises(ValueError):
            DatasetConfig(vantage_points=0)

    def test_small_config_is_small(self):
        config = small_config()
        assert config.topology.total_ases <= 200


class TestSyntheticSnapshot:
    """Integration checks on the session-scoped snapshot fixture."""

    def test_observations_cover_both_planes(self, snapshot):
        v4 = snapshot.observations_for(AFI.IPV4)
        v6 = snapshot.observations_for(AFI.IPV6)
        assert v4 and v6
        assert len(v4) + len(v6) == len(snapshot.observations)

    def test_observations_are_clean(self, snapshot):
        for observation in snapshot.observations[:500]:
            assert len(set(observation.path)) == len(observation.path)
            assert observation.vantage == observation.path[0]

    def test_vantage_points_are_dual_stack(self, snapshot):
        graph = snapshot.graph
        for collector in snapshot.collectors:
            for vantage in collector.vantage_points:
                assert graph.node(vantage.asn).dual_stack

    def test_ground_truth_matches_graph(self, snapshot):
        annotation = snapshot.ground_truth_annotation(AFI.IPV6)
        graph = snapshot.graph
        for link in list(annotation.links())[:200]:
            assert (
                annotation.get(link.a, link.b)
                is graph.relationship(link.a, link.b, AFI.IPV6)
            )

    def test_true_hybrid_links_are_hybrid_in_ground_truth(self, snapshot):
        v4 = snapshot.ground_truth_annotation(AFI.IPV4)
        v6 = snapshot.ground_truth_annotation(AFI.IPV6)
        for link in snapshot.true_hybrid_links:
            assert v4.get_canonical(link).is_known
            assert v6.get_canonical(link).is_known
            assert v4.get_canonical(link) is not v6.get_canonical(link)

    def test_dispute_removed_ipv6_relationship(self, snapshot):
        for link in snapshot.dispute_links:
            assert (
                snapshot.graph.relationship(link.a, link.b, AFI.IPV6)
                is Relationship.UNKNOWN
            )
            assert snapshot.graph.relationship(link.a, link.b, AFI.IPV4).is_known

    def test_relaxations_are_ipv6_only(self, snapshot):
        for asn, neighbor in snapshot.relaxed_adjacencies:
            policy = snapshot.policies[asn]
            assert policy.is_relaxed(neighbor, AFI.IPV6)
            assert not policy.is_relaxed(neighbor, AFI.IPV4)

    def test_propagation_results_pruned_to_vantages(self, snapshot):
        vantages = {
            vantage.asn
            for collector in snapshot.collectors
            for vantage in collector.vantage_points
        }
        result = snapshot.propagation[AFI.IPV6]
        non_vantage = next(iter(set(snapshot.graph.ases) - vantages))
        assert not result.speakers[non_vantage].loc_rib.routes()

    def test_deterministic_rebuild(self):
        first = build_snapshot(small_config(seed=123))
        second = build_snapshot(small_config(seed=123))
        assert len(first.observations) == len(second.observations)
        assert first.true_hybrid_links == second.true_hybrid_links
        assert [o.path for o in first.observations[:50]] == [
            o.path for o in second.observations[:50]
        ]

    def test_extraction_counters_consistent(self, snapshot):
        assert snapshot.extraction.stats.observations == len(snapshot.observations)
        assert snapshot.extraction.stats.records >= len(snapshot.observations)
