"""Unit tests for tier classification and topology serialization."""

import io

import pytest

from repro.core.relationships import AFI, Relationship
from repro.topology.graph import ASGraph
from repro.topology.serialization import (
    TopologyFormatError,
    dumps_dual_stack,
    loads_dual_stack,
    read_caida_asrel,
    write_caida_asrel,
)
from repro.topology.tiers import (
    TierThresholds,
    annotate_tiers,
    classify_tiers,
    tier_histogram,
    tier_members,
    tier_of_link,
)


@pytest.fixture()
def hierarchy_graph():
    """Tier1 (1), tier2 (2, 3), stubs (4, 5, 6)."""
    graph = ASGraph()
    graph.add_link(1, 2, rel_v4=Relationship.P2C)
    graph.add_link(1, 3, rel_v4=Relationship.P2C)
    graph.add_link(2, 3, rel_v4=Relationship.P2P)
    graph.add_link(2, 4, rel_v4=Relationship.P2C)
    graph.add_link(2, 5, rel_v4=Relationship.P2C)
    graph.add_link(3, 6, rel_v4=Relationship.P2C)
    graph.add_link(3, 5, rel_v4=Relationship.P2C)
    return graph


class TestTiers:
    def test_classification(self, hierarchy_graph):
        tiers = classify_tiers(hierarchy_graph, AFI.IPV4)
        assert tiers[1] == 1
        assert tiers[2] == 2
        assert tiers[3] == 2
        assert tiers[4] == 3
        assert tiers[6] == 3

    def test_thresholds_affect_tier2(self, hierarchy_graph):
        strict = classify_tiers(
            hierarchy_graph, AFI.IPV4, TierThresholds(tier2_min_cone=10)
        )
        assert strict[2] == 3

    def test_annotate_writes_node_metadata(self, hierarchy_graph):
        annotate_tiers(hierarchy_graph, AFI.IPV4)
        assert hierarchy_graph.node(1).tier == 1
        assert hierarchy_graph.node(4).tier == 3

    def test_tier_members_and_histogram(self, hierarchy_graph):
        tiers = classify_tiers(hierarchy_graph, AFI.IPV4)
        assert tier_members(tiers, 1) == [1]
        histogram = tier_histogram(tiers)
        assert histogram[3] == 3
        assert sum(histogram.values()) == 6

    def test_tier_of_link(self, hierarchy_graph):
        tiers = classify_tiers(hierarchy_graph, AFI.IPV4)
        assert tier_of_link(tiers, 1, 2) == 1
        assert tier_of_link(tiers, 4, 5) == 3
        assert tier_of_link(tiers, 4, 999) == 3


class TestCaidaSerialization:
    def test_round_trip(self, hierarchy_graph):
        buffer = io.StringIO()
        written = write_caida_asrel(hierarchy_graph, buffer, AFI.IPV4)
        assert written == 7
        buffer.seek(0)
        loaded = read_caida_asrel(buffer, AFI.IPV4)
        for link in hierarchy_graph.links(AFI.IPV4):
            assert loaded.relationship(link.a, link.b, AFI.IPV4) == hierarchy_graph.relationship(
                link.a, link.b, AFI.IPV4
            )

    def test_p2c_written_provider_first(self, hierarchy_graph):
        buffer = io.StringIO()
        write_caida_asrel(hierarchy_graph, buffer, AFI.IPV4)
        lines = [l for l in buffer.getvalue().splitlines() if not l.startswith("#")]
        assert "1|2|-1" in lines
        assert "2|1|-1" not in lines

    def test_merge_two_planes(self, hierarchy_graph):
        v4 = io.StringIO()
        write_caida_asrel(hierarchy_graph, v4, AFI.IPV4)
        v4.seek(0)
        graph = read_caida_asrel(v4, AFI.IPV4)
        v6 = io.StringIO("2|3|0\n")
        read_caida_asrel(v6, AFI.IPV6, graph)
        assert graph.relationship(2, 3, AFI.IPV6) is Relationship.P2P
        assert graph.relationship(2, 3, AFI.IPV4) is Relationship.P2P

    def test_malformed_line_raises(self):
        with pytest.raises(TopologyFormatError):
            read_caida_asrel(io.StringIO("1|2\n"), AFI.IPV4)
        with pytest.raises(TopologyFormatError):
            read_caida_asrel(io.StringIO("a|b|-1\n"), AFI.IPV4)
        with pytest.raises(TopologyFormatError):
            read_caida_asrel(io.StringIO("1|2|9\n"), AFI.IPV4)

    def test_comments_and_blank_lines_ignored(self):
        text = "# header\n\n1|2|-1\n"
        graph = read_caida_asrel(io.StringIO(text), AFI.IPV4)
        assert graph.relationship(1, 2, AFI.IPV4) is Relationship.P2C


class TestDualStackSerialization:
    def test_round_trip_preserves_both_planes(self, hierarchy_graph):
        hierarchy_graph.set_relationship(2, 3, AFI.IPV4, Relationship.P2P)
        hierarchy_graph.add_link(2, 3, rel_v6=Relationship.P2C)
        text = dumps_dual_stack(hierarchy_graph)
        loaded = loads_dual_stack(text)
        assert loaded.relationship(2, 3, AFI.IPV4) is Relationship.P2P
        assert loaded.relationship(2, 3, AFI.IPV6) is Relationship.P2C
        assert len(loaded.links()) == len(hierarchy_graph.links())

    def test_ipv6_only_link_round_trip(self):
        graph = ASGraph()
        graph.add_link(10, 20, rel_v6=Relationship.P2P)
        loaded = loads_dual_stack(dumps_dual_stack(graph))
        assert loaded.relationship(10, 20, AFI.IPV6) is Relationship.P2P
        assert loaded.relationship(10, 20, AFI.IPV4) is Relationship.UNKNOWN

    def test_file_round_trip(self, tmp_path, hierarchy_graph):
        path = tmp_path / "topology.txt"
        from repro.topology.serialization import read_dual_stack, write_dual_stack

        write_dual_stack(hierarchy_graph, path)
        loaded = read_dual_stack(path)
        assert loaded.stats()["links"] == hierarchy_graph.stats()["links"]

    def test_malformed_dual_stack_raises(self):
        with pytest.raises(TopologyFormatError):
            loads_dual_stack("1|2|-1\n")
        with pytest.raises(TopologyFormatError):
            loads_dual_stack("2|1|-1|0\n")  # non-canonical orientation
        with pytest.raises(TopologyFormatError):
            loads_dual_stack("1|2|-1|7\n")
