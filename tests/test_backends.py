"""Cross-backend equivalence suite for the pluggable propagation engines.

The event simulator is the oracle: whatever policies are configured, its
converged state is correct by construction (it is itself pinned against
the frozen seed implementation in ``test_propagation_golden``).  Every
other backend must be indistinguishable from it on the configurations it
accepts:

* ``array`` replays the same event loop over interned ids — same event
  counts, same routes, attribute for attribute, on *arbitrary* policies
  (the rich golden mix: TE overrides, relaxations, taggers, strips),
* ``equilibrium`` computes the fixed point directly — same routes and
  reachable counts with zero events, on vanilla Gao-Rexford policies
  only, and must *refuse* anything else (``BackendNotApplicable``),
* ``auto`` selection picks the equilibrium solver exactly when it is
  applicable and falls back to the event engine — with the reason —
  otherwise.

A hypothesis harness drives the same assertions over random synthetic
topologies and random origin subsets, so the equivalence does not
silently narrow to the golden seeds.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.relationships import AFI, Relationship
from repro.bgp.backends import (
    ArrayBackend,
    BackendNotApplicable,
    EquilibriumBackend,
    EventBackend,
)
from repro.bgp.engine import PropagationEngine
from repro.bgp.policy import LocalPrefScheme, RoutingPolicy
from repro.bgp.propagation import PropagationSimulator, originate_one_prefix_per_as
from repro.irr.registry import build_registry
from repro.topology.generator import TopologyConfig, generate_topology

from test_propagation_golden import GOLDEN_SEEDS, _golden_topology, _rich_policies

_SCHEMES = (
    (300, 200, 100),
    (900, 800, 700),
    (250, 170, 90),
)


def _vanilla_policies(graph, seed: int):
    """Gao-Rexford-conformant policies that still exercise attributes.

    Mixed LOCAL_PREF numbering across ASes, community taggers and
    export-time community stripping are all fine for the equilibrium
    solver (they never change *which* route wins, only its attributes,
    which the shared materializer replays).  No TE overrides, no export
    relaxations — those are what the applicability check rejects.
    """
    registry = build_registry(graph.ases, documented_fraction=0.6, seed=seed)
    policies = {}
    for index, asn in enumerate(graph.ases):
        customer, peer, provider = _SCHEMES[(index + seed) % len(_SCHEMES)]
        policies[asn] = RoutingPolicy(
            asn=asn,
            local_pref=LocalPrefScheme(
                customer=customer,
                peer=peer,
                provider=provider,
                sibling=(customer + peer) // 2,
            ),
            tagger=registry.dictionary_for(asn),
            strip_communities_on_export=(index + seed) % 7 == 0,
        )
    return policies


def _assert_same_converged_state(graph, oracle, candidate, origins):
    """Bit-level equivalence of the converged state (not the event count)."""
    assert oracle.reachable_counts == candidate.reachable_counts
    for asn in graph.ases:
        for prefix in origins:
            assert oracle.best_route(asn, prefix) == candidate.best_route(
                asn, prefix
            ), f"AS{asn} towards {prefix}"
    for asn in graph.ases[:8]:
        assert oracle.snapshot(asn).best_routes == candidate.snapshot(asn).best_routes


class TestArrayBackendEquivalence:
    """``array`` is the event loop re-expressed — events included."""

    @pytest.mark.parametrize("seed", GOLDEN_SEEDS)
    @pytest.mark.parametrize("afi", (AFI.IPV4, AFI.IPV6))
    def test_rich_policies_bit_identical_to_event(self, seed, afi):
        graph = _golden_topology(seed).graph
        policies = _rich_policies(graph, seed)
        origins = originate_one_prefix_per_as(graph, afi)
        event = EventBackend(graph, policies).run(origins)
        array = ArrayBackend(graph, policies).run(origins)
        assert array.events == event.events
        _assert_same_converged_state(graph, event, array, origins)

    def test_pruned_mode_matches_event(self):
        graph = _golden_topology(2010).graph
        policies = _rich_policies(graph, 2010)
        keep = graph.ases[:4]
        origins = originate_one_prefix_per_as(graph, AFI.IPV4)
        event = EventBackend(graph, policies, keep_ribs_for=keep).run(origins)
        array = ArrayBackend(graph, policies, keep_ribs_for=keep).run(origins)
        assert array.events == event.events
        assert array.reachable_counts == event.reachable_counts
        for asn in keep:
            assert array.snapshot(asn).best_routes == event.snapshot(asn).best_routes
        other = next(asn for asn in graph.ases if asn not in keep)
        assert not array.speakers[other].loc_rib.routes()


class TestEquilibriumBackendEquivalence:
    """``equilibrium`` computes the same fixed point without events."""

    @pytest.mark.parametrize("seed", GOLDEN_SEEDS)
    @pytest.mark.parametrize("afi", (AFI.IPV4, AFI.IPV6))
    def test_vanilla_policies_same_routes_zero_events(self, seed, afi):
        graph = _golden_topology(seed).graph
        policies = _vanilla_policies(graph, seed)
        origins = originate_one_prefix_per_as(graph, afi)
        event = EventBackend(graph, policies).run(origins)
        equilibrium = EquilibriumBackend(graph, policies).run(origins)
        assert equilibrium.events == 0
        _assert_same_converged_state(graph, event, equilibrium, origins)

    def test_default_policies_accepted(self):
        """No policies at all is the most vanilla configuration there is."""
        graph = _golden_topology(2011).graph
        origins = originate_one_prefix_per_as(graph, AFI.IPV4)
        event = EventBackend(graph, None).run(origins)
        equilibrium = EquilibriumBackend(graph, None).run(origins)
        _assert_same_converged_state(graph, event, equilibrium, origins)

    def test_pruned_mode_matches_event(self):
        graph = _golden_topology(2012).graph
        policies = _vanilla_policies(graph, 2012)
        keep = graph.ases[:4]
        origins = originate_one_prefix_per_as(graph, AFI.IPV4)
        event = EventBackend(graph, policies, keep_ribs_for=keep).run(origins)
        equilibrium = EquilibriumBackend(graph, policies, keep_ribs_for=keep).run(
            origins
        )
        assert equilibrium.reachable_counts == event.reachable_counts
        for asn in keep:
            assert (
                equilibrium.snapshot(asn).best_routes
                == event.snapshot(asn).best_routes
            )
        other = next(asn for asn in graph.ases if asn not in keep)
        assert not equilibrium.speakers[other].loc_rib.routes()

    def test_rejects_non_gao_rexford_policies(self):
        """Direct use on a rich mix (TE override, relaxation) must refuse."""
        graph = _golden_topology(2010).graph
        policies = _rich_policies(graph, 2010)
        origins = originate_one_prefix_per_as(graph, AFI.IPV4)
        with pytest.raises(BackendNotApplicable):
            EquilibriumBackend(graph, policies).run(origins)

    def test_rejects_custom_policy_subclass(self):
        class WeirdPolicy(RoutingPolicy):
            def local_pref_for(self, neighbor, relationship, prefix):
                return (500 if neighbor % 2 == 0 else 50), None

        graph = _golden_topology(2012).graph
        policies = {asn: WeirdPolicy(asn=asn) for asn in graph.ases}
        reason = EquilibriumBackend.inapplicable_reason(graph, policies, AFI.IPV4)
        assert reason is not None and "WeirdPolicy" in reason


class TestEngineSelection:
    """``engine=`` config: validation, auto selection and fallback."""

    def test_invalid_engine_rejected(self):
        graph = _golden_topology(2010).graph
        with pytest.raises(ValueError):
            PropagationEngine(graph, engine="quantum")

    def test_invalid_engine_rejected_in_pipeline_config(self):
        from repro.pipeline import PropagationConfig

        with pytest.raises(ValueError):
            PropagationConfig(engine="quantum")

    def test_auto_selects_equilibrium_on_vanilla_policies(self):
        graph = _golden_topology(2011).graph
        policies = _vanilla_policies(graph, 2011)
        origins = originate_one_prefix_per_as(graph, AFI.IPV4)
        engine = PropagationEngine(graph, policies, engine="auto")
        name, reason = engine.select_backend(origins)
        assert (name, reason) == ("equilibrium", None)
        auto = engine.run(origins)
        event = PropagationEngine(graph, policies, engine="event").run(origins)
        assert auto.events == 0
        _assert_same_converged_state(graph, event, auto, origins)

    @pytest.mark.parametrize("mode", ("auto", "equilibrium"))
    def test_falls_back_to_event_on_non_gao_rexford(self, mode):
        """The adversarial case: rich policies break the class ordering,
        so selection must fall back (with the reason) and the run must be
        bit-identical to the event engine — events included."""
        graph = _golden_topology(2010).graph
        policies = _rich_policies(graph, 2010)
        origins = originate_one_prefix_per_as(graph, AFI.IPV4)
        engine = PropagationEngine(graph, policies, engine=mode)
        name, reason = engine.select_backend(origins)
        assert name == "event"
        assert reason  # a human-readable explanation, never empty
        fallback = engine.run(origins)
        event = PropagationSimulator(graph, policies).run(origins)
        assert fallback.events == event.events
        _assert_same_converged_state(graph, event, fallback, origins)

    def test_fallback_triggered_by_other_afi_in_origin_set(self):
        """Selection looks at *every* AFI present in the origins: an IPv6
        relaxation must push a mixed v4+v6 origin set off the solver."""
        graph = _golden_topology(2011).graph
        policies = _vanilla_policies(graph, 2011)
        for link in graph.links(AFI.IPV6):
            if graph.relationship(link.a, link.b, AFI.IPV6) is Relationship.P2P:
                policies[link.a].add_relaxation(link.b, AFI.IPV6)
                break
        origins = dict(originate_one_prefix_per_as(graph, AFI.IPV4))
        origins.update(originate_one_prefix_per_as(graph, AFI.IPV6))
        engine = PropagationEngine(graph, policies, engine="auto")
        name, reason = engine.select_backend(origins)
        assert name == "event"
        assert "relaxes exports" in reason
        # The IPv4-only subset alone is still solver-eligible.
        v4_only = originate_one_prefix_per_as(graph, AFI.IPV4)
        assert engine.select_backend(v4_only) == ("equilibrium", None)

    def test_run_many_pins_backend_across_batches(self):
        """Parallel batches must use the backend resolved on the full
        origin set, even when an individual batch is single-AFI."""
        graph = _golden_topology(2011).graph
        policies = _vanilla_policies(graph, 2011)
        origins = originate_one_prefix_per_as(graph, AFI.IPV4)
        engine = PropagationEngine(graph, policies, engine="auto")
        serial = engine.run(origins)
        parallel = engine.run_many(origins, workers=3)
        assert parallel.events == serial.events == 0
        assert parallel.reachable_counts == serial.reachable_counts
        for asn in graph.ases:
            for prefix in origins:
                assert parallel.best_route(asn, prefix) == serial.best_route(
                    asn, prefix
                )

    def test_array_engine_through_run_many(self):
        graph = _golden_topology(2012).graph
        policies = _rich_policies(graph, 2012)
        origins = originate_one_prefix_per_as(graph, AFI.IPV4)
        event = PropagationEngine(graph, policies, engine="event").run(origins)
        array = PropagationEngine(graph, policies, engine="array").run_many(
            origins, workers=2
        )
        assert array.events == event.events
        _assert_same_converged_state(graph, event, array, origins)


# ----------------------------------------------------------------------
# property-based harness: random topologies x random origin subsets
# ----------------------------------------------------------------------
@st.composite
def random_scenario(draw):
    """A small random topology, vanilla policies and an origin subset."""
    topo_seed = draw(st.integers(min_value=1, max_value=10_000))
    policy_seed = draw(st.integers(min_value=0, max_value=999))
    afi = draw(st.sampled_from((AFI.IPV4, AFI.IPV6)))
    topology = generate_topology(
        TopologyConfig(
            seed=topo_seed,
            tier1_count=draw(st.integers(min_value=3, max_value=5)),
            tier2_count=draw(st.integers(min_value=4, max_value=10)),
            tier3_count=draw(st.integers(min_value=8, max_value=24)),
            tier2_providers=(1, 2),
        )
    )
    graph = topology.graph
    policies = _vanilla_policies(graph, policy_seed)
    full = originate_one_prefix_per_as(graph, afi)
    prefixes = sorted(full, key=str)
    chosen = draw(
        st.lists(
            st.sampled_from(prefixes),
            min_size=1,
            max_size=min(len(prefixes), 8),
            unique=True,
        )
    )
    origins = {prefix: full[prefix] for prefix in chosen}
    return graph, policies, origins


class TestPropertyBasedCrossValidation:
    @settings(max_examples=20, deadline=None)
    @given(scenario=random_scenario())
    def test_equilibrium_matches_event_on_random_scenarios(self, scenario):
        graph, policies, origins = scenario
        event = EventBackend(graph, policies).run(origins)
        equilibrium = EquilibriumBackend(graph, policies).run(origins)
        assert equilibrium.events == 0
        assert equilibrium.reachable_counts == event.reachable_counts
        for asn in graph.ases:
            for prefix in origins:
                assert event.best_route(asn, prefix) == equilibrium.best_route(
                    asn, prefix
                ), f"AS{asn} towards {prefix}"

    @settings(max_examples=10, deadline=None)
    @given(scenario=random_scenario())
    def test_array_matches_event_on_random_scenarios(self, scenario):
        graph, policies, origins = scenario
        event = EventBackend(graph, policies).run(origins)
        array = ArrayBackend(graph, policies).run(origins)
        assert array.events == event.events
        assert array.reachable_counts == event.reachable_counts
        for asn in graph.ases:
            for prefix in origins:
                assert event.best_route(asn, prefix) == array.best_route(asn, prefix)
