"""Cache-correctness suite: fingerprints, invalidation and corruption.

Pins the contract of :mod:`repro.pipeline.artifacts` and the stage
fingerprinting rules: a changed seed / config field / stage code
version invalidates exactly the stages downstream of the change, and a
corrupted or truncated artifact is detected by its payload hash and
recomputed rather than loaded.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.datasets import DatasetConfig
from repro.pipeline import (
    ArtifactCache,
    PipelineConfig,
    PipelineRunner,
    config_token,
    full_stages,
    make_runner,
    run_pipeline,
)
from repro.topology.generator import TopologyConfig

ALL_ANALYSIS_TARGETS = ("section3", "correction")
#: Every cacheable stage in the closure of the analysis targets.
ANALYSIS_CLOSURE = [
    "topology",
    "irr",
    "scenario",
    "compress",
    "propagation_v4",
    "propagation_v6",
    "archive",
    "store",
    "inference",
    "views",
    "section3",
    "correction",
]


def tiny_config(seed: int = 5, **overrides) -> PipelineConfig:
    dataset = DatasetConfig(
        topology=TopologyConfig(
            seed=seed, tier1_count=3, tier2_count=8, tier3_count=20
        ),
        seed=seed,
        vantage_points=4,
        **overrides,
    )
    return PipelineConfig(dataset=dataset, top=3, max_sources=10)


@pytest.fixture()
def warm_cache(tmp_path):
    """A cache populated by one cold run of the tiny configuration."""
    config = tiny_config()
    run_pipeline(config, cache_dir=tmp_path, targets=ALL_ANALYSIS_TARGETS)
    return tmp_path, config


class TestWarmRuns:
    def test_second_run_is_fully_cached(self, warm_cache):
        cache_dir, config = warm_cache
        warm = run_pipeline(config, cache_dir=cache_dir, targets=ALL_ANALYSIS_TARGETS)
        assert warm.computed_stages() == []
        assert warm.cached_stages() == ANALYSIS_CLOSURE

    def test_figure2_after_section3_reuses_all_shared_stages(self, tmp_path):
        config = tiny_config()
        run_pipeline(config, cache_dir=tmp_path, targets=("section3",))
        figure2 = run_pipeline(config, cache_dir=tmp_path, targets=("correction",))
        assert figure2.computed_stages() == ["correction"]

    def test_uncached_runner_always_computes(self):
        config = tiny_config()
        run = run_pipeline(config, targets=("section3",))
        assert run.cached_stages() == []
        assert "section3" in run.computed_stages()

    def test_topology_artifact_pristine_cold_and_warm(self, warm_cache):
        """The scenario stage mutates a deep copy: the `topology`
        artifact must be identical whether computed or unpickled."""
        from repro.core.relationships import AFI

        cache_dir, config = warm_cache
        cold = run_pipeline(config, targets=("scenario",))
        warm = run_pipeline(config, cache_dir=cache_dir, targets=("scenario",))
        cold_links = {
            link: cold.value("topology").graph.relationship(link.a, link.b, AFI.IPV6)
            for link in cold.value("topology").graph.links()
        }
        warm_links = {
            link: warm.value("topology").graph.relationship(link.a, link.b, AFI.IPV6)
            for link in warm.value("topology").graph.links()
        }
        assert cold_links == warm_links
        # And the scenario's own copy differs where disputes removed links.
        scenario = cold.value("scenario")
        for link in scenario.dispute_links:
            assert not scenario.topology.graph.relationship(
                link.a, link.b, AFI.IPV6
            ).is_known
            assert cold_links[link].is_known


class TestInvalidation:
    def _statuses(self, cache_dir, config):
        run = run_pipeline(config, cache_dir=cache_dir, targets=ALL_ANALYSIS_TARGETS)
        return {outcome.stage: outcome.status for outcome in run.outcomes}

    def test_changed_dataset_seed_keeps_topology(self, warm_cache):
        """dataset.seed feeds irr+scenario but not the topology stage
        (the topology has its own seed), so exactly topology stays warm."""
        cache_dir, config = warm_cache
        changed = PipelineConfig(
            dataset=dataclasses.replace(config.dataset, seed=config.dataset.seed + 1),
            top=config.top,
            max_sources=config.max_sources,
        )
        statuses = self._statuses(cache_dir, changed)
        assert statuses["topology"] == "cached"
        for stage in ANALYSIS_CLOSURE[1:]:
            assert statuses[stage] == "computed", stage

    def test_changed_topology_seed_invalidates_everything(self, warm_cache):
        cache_dir, config = warm_cache
        changed_topology = dataclasses.replace(
            config.dataset.topology, seed=config.dataset.topology.seed + 1
        )
        changed = PipelineConfig(
            dataset=dataclasses.replace(config.dataset, topology=changed_topology),
            top=config.top,
            max_sources=config.max_sources,
        )
        statuses = self._statuses(cache_dir, changed)
        assert all(status == "computed" for status in statuses.values())

    def test_changed_correction_budget_invalidates_only_correction(self, warm_cache):
        cache_dir, config = warm_cache
        changed = PipelineConfig(
            dataset=config.dataset, top=config.top + 1, max_sources=config.max_sources
        )
        statuses = self._statuses(cache_dir, changed)
        assert statuses["correction"] == "computed"
        for stage in ANALYSIS_CLOSURE[:-1]:
            assert statuses[stage] == "cached", stage

    def test_changed_snapshot_date_invalidates_archive_and_downstream(self, warm_cache):
        import datetime

        cache_dir, config = warm_cache
        changed = PipelineConfig(
            dataset=dataclasses.replace(
                config.dataset, snapshot_date=datetime.date(2010, 8, 21)
            ),
            top=config.top,
            max_sources=config.max_sources,
        )
        statuses = self._statuses(cache_dir, changed)
        upstream = [
            "topology",
            "irr",
            "scenario",
            "compress",
            "propagation_v4",
            "propagation_v6",
        ]
        for stage in upstream:
            assert statuses[stage] == "cached", stage
        for stage in ANALYSIS_CLOSURE[len(upstream):]:
            assert statuses[stage] == "computed", stage

    def test_bumped_stage_version_invalidates_stage_and_descendants(self, warm_cache):
        cache_dir, config = warm_cache
        stages = [
            dataclasses.replace(spec, version=spec.version + ".bumped")
            if spec.name == "store"
            else spec
            for spec in full_stages()
        ]
        runner = PipelineRunner(stages, ArtifactCache(cache_dir))
        run = runner.run(config, targets=ALL_ANALYSIS_TARGETS)
        statuses = {outcome.stage: outcome.status for outcome in run.outcomes}
        before_store = ANALYSIS_CLOSURE[: ANALYSIS_CLOSURE.index("store")]
        from_store = ANALYSIS_CLOSURE[ANALYSIS_CLOSURE.index("store"):]
        for stage in before_store:
            assert statuses[stage] == "cached", stage
        for stage in from_store:
            assert statuses[stage] == "computed", stage


class TestCorruptionDetection:
    def _payload_path(self, cache_dir, config, stage):
        runner = make_runner(cache_dir)
        run = runner.run(config, targets=ALL_ANALYSIS_TARGETS)
        return runner.cache.payload_path(stage, run.fingerprints[stage])

    def test_truncated_payload_is_recomputed(self, warm_cache):
        cache_dir, config = warm_cache
        payload = self._payload_path(cache_dir, config, "store")
        payload.write_bytes(payload.read_bytes()[: len(payload.read_bytes()) // 2])
        run = run_pipeline(config, cache_dir=cache_dir, targets=("section3",))
        assert "store" in run.computed_stages()
        # Downstream stages still verify: their artifacts were not touched.
        assert run.status_of("section3") == "cached"
        # The recompute repaired the cache in place.
        repaired = run_pipeline(config, cache_dir=cache_dir, targets=("section3",))
        assert repaired.computed_stages() == []

    def test_bitflipped_payload_is_recomputed(self, warm_cache):
        cache_dir, config = warm_cache
        payload = self._payload_path(cache_dir, config, "inference")
        data = bytearray(payload.read_bytes())
        data[len(data) // 2] ^= 0xFF
        payload.write_bytes(bytes(data))
        run = run_pipeline(config, cache_dir=cache_dir, targets=("section3",))
        assert "inference" in run.computed_stages()

    def test_unreadable_metadata_is_a_miss(self, warm_cache):
        cache_dir, config = warm_cache
        runner = make_runner(cache_dir)
        run = runner.run(config, targets=("section3",))
        meta = runner.cache.meta_path("views", run.fingerprints["views"])
        meta.write_text("{not json", encoding="utf-8")
        rerun = run_pipeline(config, cache_dir=cache_dir, targets=("section3",))
        assert "views" in rerun.computed_stages()

    def test_corrupted_and_recomputed_results_match_clean_run(self, warm_cache):
        cache_dir, config = warm_cache
        clean = run_pipeline(config, targets=("section3",)).value("section3")
        payload = self._payload_path(cache_dir, config, "views")
        payload.write_bytes(b"garbage")
        recovered = run_pipeline(
            config, cache_dir=cache_dir, targets=("section3",)
        ).value("section3")
        assert recovered.as_dict() == clean.as_dict()


class TestArtifactCacheUnit:
    def test_store_load_round_trip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        record = cache.store("stage", "f" * 64, {"value": [1, 2, 3]}, code_version="1")
        loaded = cache.load("stage", "f" * 64)
        assert loaded is not None
        value, meta = loaded
        assert value == {"value": [1, 2, 3]}
        assert meta.payload_sha256 == record.payload_sha256
        assert cache.entries() == {"stage": ["f" * 64]}

    def test_missing_artifact_is_none(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.load("stage", "0" * 64) is None
        assert not cache.contains("stage", "0" * 64)

    def test_unpicklable_but_hash_valid_payload_is_a_miss(self, tmp_path):
        import hashlib

        cache = ArtifactCache(tmp_path)
        cache.store("stage", "a" * 64, 123, code_version="1")
        # Replace the payload with bytes whose hash matches the sidecar
        # but which do not unpickle.
        bogus = b"not a pickle"
        payload_path = cache.payload_path("stage", "a" * 64)
        meta_path = cache.meta_path("stage", "a" * 64)
        meta = json.loads(meta_path.read_text())
        meta["payload_sha256"] = hashlib.sha256(bogus).hexdigest()
        payload_path.write_bytes(bogus)
        meta_path.write_text(json.dumps(meta))
        assert cache.contains("stage", "a" * 64)  # hash verifies ...
        assert cache.load("stage", "a" * 64) is None  # ... but the load refuses


class TestConfigToken:
    def test_token_is_stable_and_discriminating(self):
        a = tiny_config(seed=5)
        b = tiny_config(seed=5)
        assert config_token(a) == config_token(b)
        assert config_token(a) != config_token(tiny_config(seed=6))

    def test_token_covers_nested_fields(self):
        base = tiny_config()
        changed = PipelineConfig(
            dataset=dataclasses.replace(base.dataset, documented_fraction=0.5),
            top=base.top,
            max_sources=base.max_sources,
        )
        assert config_token(base) != config_token(changed)

    def test_unsupported_type_is_loud(self):
        with pytest.raises(TypeError):
            config_token(object())
