"""Regression tests for the indexed ASGraph.

Covers the two satellite bugfixes of the fast-path PR:

* read-only queries used to *mutate* ``_adjacency`` for unknown ASNs via
  ``defaultdict`` access — they must raise ``KeyError`` instead, and
  probing must leave the graph untouched;
* ``remove_link`` used to leave the endpoints' plane flags stale — the
  default behaviour is now documented, and ``recompute_planes=True``
  re-derives the flags;

plus consistency checks: the incrementally maintained directed indexes
must always agree with a graph freshly rebuilt from the relationship
records, through any sequence of mutations.
"""

from __future__ import annotations

import random

import pytest

from repro.core.relationships import AFI, Relationship
from repro.topology.graph import ASGraph


@pytest.fixture()
def simple_graph():
    graph = ASGraph()
    graph.add_link(1, 2, rel_v4=Relationship.P2C, rel_v6=Relationship.P2C)
    graph.add_link(1, 3, rel_v4=Relationship.P2C, rel_v6=Relationship.P2C)
    graph.add_link(2, 3, rel_v4=Relationship.P2P, rel_v6=Relationship.P2P)
    graph.add_link(2, 4, rel_v4=Relationship.P2C)
    graph.add_link(3, 5, rel_v6=Relationship.P2P)
    return graph


class TestUnknownAsnValidation:
    @pytest.mark.parametrize(
        "query",
        ["providers_of", "customers_of", "peers_of", "siblings_of"],
    )
    def test_relationship_queries_raise_for_unknown_asn(self, simple_graph, query):
        with pytest.raises(KeyError):
            getattr(simple_graph, query)(999, AFI.IPV4)

    def test_customer_cone_raises_for_unknown_asn(self, simple_graph):
        with pytest.raises(KeyError):
            simple_graph.customer_cone(999, AFI.IPV4)

    def test_transit_free_and_degree_raise_for_unknown_asn(self, simple_graph):
        with pytest.raises(KeyError):
            simple_graph.transit_free(999, AFI.IPV4)
        with pytest.raises(KeyError):
            simple_graph.degree(999)
        with pytest.raises(KeyError):
            simple_graph.oriented_neighbors(999, AFI.IPV4)

    def test_probing_does_not_grow_the_graph(self, simple_graph):
        """The seed defaultdict silently created adjacency entries."""
        before = len(simple_graph)
        for probe in (999, 1000, 12345):
            with pytest.raises(KeyError):
                simple_graph.providers_of(probe, AFI.IPV4)
            assert probe not in simple_graph
        assert len(simple_graph) == before
        # relationship() stays tolerant for absent pairs (documented).
        assert simple_graph.relationship(999, 1, AFI.IPV4) is Relationship.UNKNOWN


class TestRemoveLinkPlanes:
    def test_default_keeps_plane_flags(self):
        graph = ASGraph()
        graph.add_link(1, 2, rel_v6=Relationship.P2P)
        graph.remove_link(1, 2)
        # Documented behaviour: flags are conservative, not recomputed.
        assert graph.node(1).ipv6
        assert graph.node(2).ipv6

    def test_recompute_planes_clears_stale_flags(self):
        graph = ASGraph()
        graph.add_link(1, 2, rel_v4=Relationship.P2C, rel_v6=Relationship.P2C)
        graph.add_link(1, 3, rel_v4=Relationship.P2C)
        graph.remove_link(1, 2, recompute_planes=True)
        # AS1 keeps IPv4 (link to 3 remains) but loses IPv6.
        assert graph.node(1).ipv4
        assert not graph.node(1).ipv6
        # AS2 lost its only link in both planes.
        assert not graph.node(2).ipv4
        assert not graph.node(2).ipv6
        assert graph.node(3).ipv4

    def test_remove_link_updates_indexes(self, simple_graph):
        assert simple_graph.customers_of(1, AFI.IPV4) == [2, 3]
        simple_graph.remove_link(1, 2)
        assert simple_graph.customers_of(1, AFI.IPV4) == [3]
        assert simple_graph.providers_of(2, AFI.IPV4) == []
        assert simple_graph.relationship(1, 2, AFI.IPV4) is Relationship.UNKNOWN
        assert simple_graph.neighbors(1) == [3]
        assert simple_graph.customer_cone(1, AFI.IPV4) == {1, 3}


class TestIndexConsistency:
    def test_set_relationship_updates_directed_indexes(self, simple_graph):
        simple_graph.set_relationship(2, 3, AFI.IPV4, Relationship.P2C)
        assert simple_graph.customers_of(2, AFI.IPV4) == [3, 4]
        assert simple_graph.providers_of(3, AFI.IPV4) == [1, 2]
        assert simple_graph.peers_of(2, AFI.IPV4) == []

    def test_set_relationship_unknown_clears_plane(self, simple_graph):
        simple_graph.set_relationship(2, 3, AFI.IPV4, Relationship.UNKNOWN)
        assert simple_graph.relationship(2, 3, AFI.IPV4) is Relationship.UNKNOWN
        assert simple_graph.peers_of(2, AFI.IPV4) == []
        assert 3 not in simple_graph.neighbors(2, AFI.IPV4)
        # The link itself survives (still present in IPv6).
        assert simple_graph.has_link(2, 3)
        assert simple_graph.peers_of(2, AFI.IPV6) == [3]

    def test_rebuild_after_direct_record_mutation(self, simple_graph):
        record = simple_graph.dual_stack_relationship(2, 3)
        record.ipv4 = Relationship.P2C  # bypasses the indexes on purpose
        simple_graph.rebuild_indexes()
        assert simple_graph.customers_of(2, AFI.IPV4) == [3, 4]

    def _assert_matches_rebuilt(self, graph: ASGraph) -> None:
        rebuilt = graph.copy()
        assert graph.stats() == rebuilt.stats()
        for asn in graph.ases:
            for afi in (AFI.IPV4, AFI.IPV6):
                assert graph.providers_of(asn, afi) == rebuilt.providers_of(asn, afi)
                assert graph.customers_of(asn, afi) == rebuilt.customers_of(asn, afi)
                assert graph.peers_of(asn, afi) == rebuilt.peers_of(asn, afi)
                assert graph.siblings_of(asn, afi) == rebuilt.siblings_of(asn, afi)
                assert graph.neighbors(asn, afi) == rebuilt.neighbors(asn, afi)
                assert graph.oriented_neighbors(asn, afi) == rebuilt.oriented_neighbors(asn, afi)

    def test_random_mutation_fuzz_matches_rebuilt_graph(self):
        """Incremental indexes equal a from-scratch rebuild at every step."""
        rng = random.Random(4242)
        relationships = [
            Relationship.P2C,
            Relationship.C2P,
            Relationship.P2P,
            Relationship.SIBLING,
        ]
        graph = ASGraph()
        asns = list(range(1, 21))
        for asn in asns:
            graph.add_as(asn)
        links = []
        for step in range(120):
            action = rng.random()
            if action < 0.5 or not links:
                a, b = rng.sample(asns, 2)
                if not graph.has_link(a, b):
                    links.append((a, b))
                graph.add_link(
                    a,
                    b,
                    rel_v4=rng.choice(relationships),
                    rel_v6=rng.choice(relationships) if rng.random() < 0.7 else None,
                )
            elif action < 0.8:
                a, b = links[rng.randrange(len(links))]
                afi = AFI.IPV4 if rng.random() < 0.5 else AFI.IPV6
                rel = rng.choice(relationships + [Relationship.UNKNOWN])
                graph.set_relationship(a, b, afi, rel)
            else:
                a, b = links.pop(rng.randrange(len(links)))
                graph.remove_link(a, b, recompute_planes=rng.random() < 0.5)
            if step % 20 == 19:
                self._assert_matches_rebuilt(graph)
        self._assert_matches_rebuilt(graph)
