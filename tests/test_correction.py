"""Unit tests for the Figure-2 correction experiment."""

import pytest

from repro.bgp.prefixes import Prefix
from repro.core.annotation import ToRAnnotation
from repro.core.correction import CorrectionExperiment
from repro.core.observations import ObservedRoute
from repro.core.relationships import AFI, Link, Relationship
from repro.core.visibility import build_visibility_index


def build_annotations():
    """A misinferred and a reference annotation differing on two links.

    Reference: 1 is provider of 2 and 3; 2-3 peer; 2-4, 3-5 p2c;
    2-6 peer; misinference turns 2-3 and 2-6 into p2c (the typical
    "peering inferred as transit" artifact).
    """
    reference = ToRAnnotation(AFI.IPV6)
    reference.set(1, 2, Relationship.P2C)
    reference.set(1, 3, Relationship.P2C)
    reference.set(2, 3, Relationship.P2P)
    reference.set(2, 4, Relationship.P2C)
    reference.set(3, 5, Relationship.P2C)
    reference.set(2, 6, Relationship.P2P)
    misinferred = reference.copy()
    misinferred.set(2, 3, Relationship.P2C)
    misinferred.set(2, 6, Relationship.P2C)
    return misinferred, reference


def observations():
    routes = []
    paths = [
        (4, 2, 3, 5),
        (4, 2, 3),
        (5, 3, 2, 4),
        (6, 2, 1),
        (4, 2, 6),
    ]
    for index, path in enumerate(paths):
        routes.append(
            ObservedRoute(
                path=path, prefix=Prefix(f"3fff:{index + 1:x}::/32"), vantage=path[0]
            )
        )
    return routes


class TestCorrectionExperiment:
    def test_correctable_links_filters_agreeing_and_unknown(self):
        misinferred, reference = build_annotations()
        experiment = CorrectionExperiment(misinferred, reference)
        candidates = [Link(2, 3), Link(2, 6), Link(2, 4), Link(7, 8)]
        assert experiment.correctable_links(candidates) == [Link(2, 3), Link(2, 6)]

    def test_afi_mismatch_rejected(self):
        misinferred, reference = build_annotations()
        other = ToRAnnotation(AFI.IPV4)
        with pytest.raises(ValueError):
            CorrectionExperiment(misinferred, other)

    def test_run_produces_monotone_series_on_this_example(self):
        misinferred, reference = build_annotations()
        experiment = CorrectionExperiment(misinferred, reference)
        series = experiment.run([Link(2, 3), Link(2, 6)])
        assert len(series.steps) == 3
        assert series.steps[0].corrected_links == 0
        assert series.steps[0].link is None
        assert series.steps[-1].link == Link(2, 6)
        # Correcting transit-to-peering misinference shrinks the metric.
        assert series.averages[0] >= series.averages[-1]
        assert series.diameters[0] >= series.diameters[-1]

    def test_run_does_not_mutate_inputs(self):
        misinferred, reference = build_annotations()
        experiment = CorrectionExperiment(misinferred, reference)
        experiment.run([Link(2, 3)])
        assert misinferred.get(2, 3) is Relationship.P2C

    def test_run_rejects_unknown_reference_link(self):
        misinferred, reference = build_annotations()
        experiment = CorrectionExperiment(misinferred, reference)
        with pytest.raises(ValueError):
            experiment.run([Link(7, 8)])

    def test_visibility_ranking_orders_links(self):
        misinferred, reference = build_annotations()
        experiment = CorrectionExperiment(misinferred, reference)
        index = build_visibility_index(observations(), afi=AFI.IPV6)
        ranked = experiment.rank_by_visibility([Link(2, 6), Link(2, 3)], index, top=2)
        # Link 2-3 appears in three paths, link 2-6 in one.
        assert ranked == [Link(2, 3), Link(2, 6)]

    def test_run_with_visibility(self):
        misinferred, reference = build_annotations()
        experiment = CorrectionExperiment(misinferred, reference)
        index = build_visibility_index(observations(), afi=AFI.IPV6)
        series = experiment.run_with_visibility([Link(2, 3), Link(2, 6)], index, top=1)
        assert len(series.steps) == 2
        assert series.steps[1].link == Link(2, 3)

    def test_random_order_control(self):
        misinferred, reference = build_annotations()
        experiment = CorrectionExperiment(misinferred, reference)
        series = experiment.run_random_order([Link(2, 3), Link(2, 6)], count=2, seed=3)
        assert len(series.steps) == 3
        assert {step.link for step in series.steps[1:]} == {Link(2, 3), Link(2, 6)}

    def test_improvement_summary(self):
        misinferred, reference = build_annotations()
        experiment = CorrectionExperiment(misinferred, reference)
        series = experiment.run([Link(2, 3), Link(2, 6)])
        improvement = series.improvement()
        assert improvement["average_start"] == series.averages[0]
        assert improvement["average_end"] == series.averages[-1]
        assert 0.0 <= improvement["average_reduction"] <= 1.0
        assert improvement["diameter_start"] >= improvement["diameter_end"]
