"""Legacy setup shim.

The execution environment has no ``wheel`` package, so PEP 517 editable
installs (which need to build an editable wheel) fail.  This shim lets
``pip install -e . --no-build-isolation`` fall back to the legacy
``setup.py develop`` path.  All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
