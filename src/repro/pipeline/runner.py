"""Generic stage-DAG runner with fingerprint-addressed caching.

:class:`PipelineRunner` executes a declared sequence of
:class:`~repro.pipeline.stages.StageSpec` objects in topological order.
For every stage it derives the invocation fingerprint (stage name, code
version, configuration token, upstream fingerprints — see
:mod:`repro.pipeline.artifacts`) and then either

* reuses a verified artifact from the :class:`ArtifactCache` (a *warm*
  stage — its payload is loaded lazily, only if something actually reads
  it), or
* calls the stage's compute function and stores the result.

Because fingerprints chain on upstream fingerprints rather than on
payload bytes, a warm run decides "everything is cached" without
deserializing a single artifact: each warm stage pays one sequential
read + hash of its payload (eager corruption detection, see
:meth:`ArtifactCache.verify`) but unpickles only the artifacts the
caller actually reads — for a fully warm ``section3`` + ``figure2``,
just the two small final ones.

The runner is deliberately generic: the concrete snapshot/analysis DAG
lives in :mod:`repro.pipeline.stages`, and nothing here knows about
topologies or BGP.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.pipeline.artifacts import ArtifactCache, config_token, fingerprint
from repro.telemetry import Tracer, activated, get_tracer


@dataclass(frozen=True)
class StageSpec:
    """Declaration of one pipeline stage.

    Attributes:
        name: Unique stage name (also the cache subdirectory).
        version: Code version of the stage implementation.  Bumping it
            invalidates every cached artifact of this stage *and* of all
            downstream stages (fingerprints chain).
        dependencies: Names of upstream stages whose artifacts this
            stage consumes.  Must be declared before this stage.
        compute: ``compute(run)`` produces the artifact; upstream values
            are read with ``run.value(name)``.
        config_slice: Maps the pipeline configuration to the slice this
            stage actually consumes; only changes to that slice
            invalidate the stage.  ``None`` means the stage reads no
            configuration beyond its upstream artifacts.
        cacheable: Cheap assembly stages can opt out of persistence;
            their fingerprint still chains so downstream caching works.
    """

    name: str
    version: str
    dependencies: Tuple[str, ...]
    compute: Callable[["PipelineRun"], object]
    config_slice: Optional[Callable[[object], object]] = None
    cacheable: bool = True


@dataclass
class StageOutcome:
    """What happened to one stage during a run."""

    stage: str
    fingerprint: str
    status: str  # "computed" | "cached"
    seconds: float


class StageFailure(RuntimeError):
    """A stage's compute function raised.

    Carries the partial :class:`PipelineRun` so callers that account
    for work across many runs (the sweep executor) can still see the
    outcomes of the stages that *did* complete — and were stored in the
    cache — before the failure.  The failing stage itself has no
    outcome (it never completed).  The original exception is chained as
    ``__cause__``.
    """

    def __init__(self, stage: str, run: "PipelineRun", cause: BaseException) -> None:
        super().__init__(
            f"stage {stage!r} failed: {type(cause).__name__}: {cause}"
        )
        self.stage = stage
        self.run = run


class PipelineRun:
    """One execution of (a target-closure of) the pipeline.

    Stage values are exposed through :meth:`value`; artifacts of warm
    stages are unpickled on first access.  When a cached payload turns
    out to be unloadable at access time (e.g. corrupted between the
    fingerprint check and the read), the stage is recomputed
    transparently and the repaired artifact is stored back.
    """

    def __init__(self, config: object, runner: "PipelineRunner") -> None:
        self.config = config
        self.fingerprints: Dict[str, str] = {}
        self.outcomes: List[StageOutcome] = []
        self._runner = runner
        self._ready: Dict[str, object] = {}
        self._pending: Set[str] = set()
        self._outcome_index: Dict[str, StageOutcome] = {}

    # ------------------------------------------------------------------
    # artifact access
    # ------------------------------------------------------------------
    def value(self, name: str):
        """The artifact of one stage, materializing it if necessary."""
        if name in self._ready:
            return self._ready[name]
        if name not in self._pending:
            raise KeyError(f"stage {name!r} was not part of this run")
        spec = self._runner.stage(name)
        cache = self._runner.cache
        loaded = (
            cache.load(name, self.fingerprints[name]) if cache is not None else None
        )
        if loaded is not None:
            value = loaded[0]
        else:
            # The verified artifact became unloadable; recompute.
            tracer = get_tracer()
            if tracer:
                tracer.counter("cache.unloadable", stage=name)
            started = time.perf_counter()
            try:
                value = spec.compute(self)
            except Exception as exc:
                raise StageFailure(name, self, exc) from exc
            if cache is not None and spec.cacheable:
                cache.store(name, self.fingerprints[name], value, spec.version)
            outcome = self._outcome_index[name]
            outcome.status = "computed"
            outcome.seconds = time.perf_counter() - started
        self._pending.discard(name)
        self._ready[name] = value
        return value

    def status_of(self, name: str) -> str:
        """``"computed"`` or ``"cached"`` for one stage of this run."""
        return self._outcome_index[name].status

    def cached_stages(self) -> List[str]:
        """Names of the stages satisfied from the artifact cache."""
        return [o.stage for o in self.outcomes if o.status == "cached"]

    def computed_stages(self) -> List[str]:
        """Names of the stages that were (re)computed."""
        return [o.stage for o in self.outcomes if o.status == "computed"]

    def summary_lines(self) -> List[str]:
        """Human-readable per-stage outcome lines (for the CLI)."""
        return [
            f"{outcome.stage:<14} {outcome.status:<8} {outcome.seconds:7.2f}s"
            for outcome in self.outcomes
        ]

    # internal: registration by the runner -----------------------------
    def _record(self, outcome: StageOutcome) -> None:
        self.outcomes.append(outcome)
        self._outcome_index[outcome.stage] = outcome


class PipelineRunner:
    """Execute a stage DAG, reusing cached artifacts when possible."""

    def __init__(
        self,
        stages: Sequence[StageSpec],
        cache: Optional[ArtifactCache] = None,
    ) -> None:
        self._order: List[StageSpec] = list(stages)
        self._by_name: Dict[str, StageSpec] = {}
        seen: Set[str] = set()
        for spec in self._order:
            if spec.name in self._by_name:
                raise ValueError(f"duplicate stage name {spec.name!r}")
            missing = [dep for dep in spec.dependencies if dep not in seen]
            if missing:
                raise ValueError(
                    f"stage {spec.name!r} depends on undeclared stage(s) {missing}; "
                    "stages must be declared in topological order"
                )
            self._by_name[spec.name] = spec
            seen.add(spec.name)
        self.cache = cache

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def stage_names(self) -> List[str]:
        return [spec.name for spec in self._order]

    def stage(self, name: str) -> StageSpec:
        return self._by_name[name]

    def closure(self, targets: Optional[Sequence[str]] = None) -> List[StageSpec]:
        """The targets plus all their ancestors, in execution order."""
        if targets is None:
            return list(self._order)
        needed: Set[str] = set()
        frontier = list(targets)
        while frontier:
            name = frontier.pop()
            if name in needed:
                continue
            if name not in self._by_name:
                raise KeyError(f"unknown stage {name!r}")
            needed.add(name)
            frontier.extend(self._by_name[name].dependencies)
        return [spec for spec in self._order if spec.name in needed]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def fingerprints(
        self, config: object, targets: Optional[Sequence[str]] = None
    ) -> Dict[str, str]:
        """Stage name -> invocation fingerprint for the target closure.

        Pure arithmetic over the stage declarations and the
        configuration — nothing is computed, loaded or cached.  This is
        what lets a sweep planner predict which stages two
        configurations share *before* running either of them.
        """
        fingerprints: Dict[str, str] = {}
        for spec in self.closure(targets):
            token = (
                config_token(spec.config_slice(config))
                if spec.config_slice is not None
                else ""
            )
            fingerprints[spec.name] = fingerprint(
                spec.name,
                spec.version,
                token,
                [fingerprints[dep] for dep in spec.dependencies],
            )
        return fingerprints

    def run(
        self, config: object, targets: Optional[Sequence[str]] = None
    ) -> PipelineRun:
        """Run the closure of ``targets`` (default: every stage).

        Warm stages are hash-verified here (one read of each payload —
        corruption surfaces immediately as a recompute) but *not*
        deserialized; payloads unpickle on first
        :meth:`PipelineRun.value` access, so artifacts nobody reads are
        never deserialized.

        Telemetry: when a tracer is active — or ``config.telemetry``
        carries an enabled :class:`~repro.telemetry.TelemetryConfig`,
        in which case the run owns a tracer for its duration and
        flushes it on exit — one ``"pipeline"`` span wraps the run and
        one ``"stage"`` span per stage records the fingerprint, cache
        status, verify time and artifact bytes.  Telemetry never feeds
        into fingerprints (``config.telemetry`` is in no stage's config
        slice), so a traced run is byte-identical to an untraced one.
        """
        telemetry = getattr(config, "telemetry", None)
        tracer = get_tracer()
        owned: Optional[Tracer] = None
        if telemetry is not None and getattr(telemetry, "enabled", False):
            # A fork-inherited tracer is the parent's copy — its buffer
            # must not be flushed here (the parent flushes the
            # original); own a fresh tracer joined to the context.
            if not tracer or tracer.pid != os.getpid():
                owned = tracer = Tracer.from_config(telemetry)
        # Nest under whatever span is already open on this thread (a
        # worker's "task" span, a serial sweep's "wave" span); the
        # context's parent is the fallback for threads with no open
        # span — a thread-pool sweep's pool threads land here.
        parent_id = (
            None
            if tracer.current_span_id() is not None
            else getattr(telemetry, "parent_span_id", None)
        )
        try:
            with activated(owned):
                with tracer.span(
                    "pipeline",
                    parent_id=parent_id,
                    targets=",".join(targets) if targets else "all",
                ):
                    return self._run(config, targets, tracer)
        finally:
            if owned is not None:
                owned.flush()

    def _run(
        self,
        config: object,
        targets: Optional[Sequence[str]],
        tracer,
    ) -> PipelineRun:
        run = PipelineRun(config, self)
        run.fingerprints = self.fingerprints(config, targets)
        for spec in self.closure(targets):
            stage_fingerprint = run.fingerprints[spec.name]
            with tracer.span(
                "stage", stage=spec.name, fingerprint=stage_fingerprint
            ) as span:
                if self.cache is not None and spec.cacheable:
                    verify_started = time.perf_counter()
                    record = self.cache.verify(spec.name, stage_fingerprint)
                    span.annotate(
                        verify_seconds=round(time.perf_counter() - verify_started, 6)
                    )
                    if record is not None:
                        span.annotate(
                            status="cached", artifact_bytes=record.size_bytes
                        )
                        run._pending.add(spec.name)
                        run._record(
                            StageOutcome(spec.name, stage_fingerprint, "cached", 0.0)
                        )
                        continue
                started = time.perf_counter()
                try:
                    value = spec.compute(run)
                except Exception as exc:
                    raise StageFailure(spec.name, run, exc) from exc
                elapsed = time.perf_counter() - started
                span.annotate(status="computed")
                if self.cache is not None and spec.cacheable:
                    stored = self.cache.store(
                        spec.name, stage_fingerprint, value, spec.version
                    )
                    span.annotate(artifact_bytes=stored.size_bytes)
                run._ready[spec.name] = value
                run._record(
                    StageOutcome(spec.name, stage_fingerprint, "computed", elapsed)
                )
        return run
