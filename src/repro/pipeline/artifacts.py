"""Durable, fingerprinted artifacts for the staged pipeline.

Every pipeline stage produces one *artifact*: a Python object whose
identity is fully determined by a **fingerprint** — a SHA-256 digest of

* the stage name,
* the stage's declared *code version* (bumped when the stage's
  implementation changes in a result-affecting way),
* a canonical token of the configuration slice the stage consumes, and
* the fingerprints of its upstream artifacts (so invalidation cascades
  through the DAG without ever loading a payload).

:class:`ArtifactCache` stores artifacts on disk under
``<root>/<stage>/<fingerprint>.pkl`` with a ``.json`` metadata sidecar
recording the SHA-256 of the pickled payload.  A load verifies the
payload hash against the sidecar, so a truncated or bit-flipped artifact
is detected and reported as a miss (the runner then recomputes and
overwrites it) instead of being deserialized into silent corruption.

Pickle is the payload format on purpose: artifacts are internal
intermediate state exchanged between stages of one code base, not an
interchange format — the stage *code version* participates in the
fingerprint precisely so that incompatible pickles are never looked up.
"""

from __future__ import annotations

import dataclasses
import datetime as _dt
import enum
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

#: Bump when the cache layout / metadata schema changes incompatibly.
CACHE_LAYOUT_VERSION = 1


# ----------------------------------------------------------------------
# canonical configuration tokens
# ----------------------------------------------------------------------
def config_token(value: object) -> str:
    """A canonical, deterministic string token for a config value.

    Handles the vocabulary configurations are made of — dataclasses,
    mappings, sequences, enums, dates and primitives — and refuses
    anything else loudly (a silently unstable ``repr`` would make two
    different configurations collide or one configuration drift between
    processes).
    """
    return "".join(_tokenize(value))


def _tokenize(value: object) -> List[str]:
    if value is None or isinstance(value, (bool, int, str)):
        return [repr(value)]
    if isinstance(value, float):
        # repr() of a float is exact in Python 3; keep it explicit.
        return [repr(value)]
    if isinstance(value, enum.Enum):
        return [f"{type(value).__name__}.{value.name}"]
    if isinstance(value, (_dt.datetime, _dt.date)):
        return [value.isoformat()]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        parts = [f"{type(value).__name__}("]
        for field in dataclasses.fields(value):
            parts.append(f"{field.name}=")
            parts.extend(_tokenize(getattr(value, field.name)))
            parts.append(",")
        parts.append(")")
        return parts
    if isinstance(value, dict):
        parts = ["{"]
        for key in sorted(value, key=repr):
            parts.extend(_tokenize(key))
            parts.append(":")
            parts.extend(_tokenize(value[key]))
            parts.append(",")
        parts.append("}")
        return parts
    if isinstance(value, (list, tuple)):
        parts = ["[" if isinstance(value, list) else "("]
        for item in value:
            parts.extend(_tokenize(item))
            parts.append(",")
        parts.append("]" if isinstance(value, list) else ")")
        return parts
    if isinstance(value, (set, frozenset)):
        parts = ["{s:"]
        for item in sorted(value, key=repr):
            parts.extend(_tokenize(item))
            parts.append(",")
        parts.append("}")
        return parts
    raise TypeError(
        f"cannot build a stable config token for {type(value).__name__!r}; "
        "add explicit support or pass a primitive projection instead"
    )


def fingerprint(
    stage: str,
    version: str,
    token: str,
    upstream: Sequence[str] = (),
) -> str:
    """The SHA-256 fingerprint of one stage invocation."""
    digest = hashlib.sha256()
    for part in (f"layout:{CACHE_LAYOUT_VERSION}", stage, version, token, *upstream):
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


# ----------------------------------------------------------------------
# the on-disk cache
# ----------------------------------------------------------------------
@dataclasses.dataclass
class ArtifactRecord:
    """Metadata of one stored artifact (the ``.json`` sidecar)."""

    stage: str
    fingerprint: str
    payload_sha256: str
    size_bytes: int
    code_version: str
    created_at: str

    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ArtifactRecord":
        data = json.loads(text)
        return cls(**{field.name: data[field.name] for field in dataclasses.fields(cls)})


class ArtifactCache:
    """Content-addressed on-disk store of stage artifacts.

    Layout::

        <root>/
          <stage-name>/
            <fingerprint>.pkl    # pickled payload
            <fingerprint>.json   # ArtifactRecord sidecar (payload hash)

    Writes are atomic (temp file + rename) so a crashed run never leaves
    a half-written payload that a later run would trust; loads verify
    the payload hash against the sidecar before unpickling.
    """

    PAYLOAD_SUFFIX = ".pkl"
    META_SUFFIX = ".json"

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def payload_path(self, stage: str, fingerprint: str) -> Path:
        return self.root / stage / f"{fingerprint}{self.PAYLOAD_SUFFIX}"

    def meta_path(self, stage: str, fingerprint: str) -> Path:
        return self.root / stage / f"{fingerprint}{self.META_SUFFIX}"

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def contains(self, stage: str, fingerprint: str) -> bool:
        """True when a *verifiable* artifact exists (hash checked)."""
        return self.verify(stage, fingerprint) is not None

    def _verified_bytes(
        self, stage: str, fingerprint: str
    ) -> Optional[Tuple[bytes, ArtifactRecord]]:
        """One read + one hash: the payload bytes iff they verify."""
        payload_path = self.payload_path(stage, fingerprint)
        meta_path = self.meta_path(stage, fingerprint)
        if not payload_path.exists() or not meta_path.exists():
            return None
        try:
            record = ArtifactRecord.from_json(meta_path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, KeyError, TypeError):
            return None
        payload = payload_path.read_bytes()
        if hashlib.sha256(payload).hexdigest() != record.payload_sha256:
            return None
        return payload, record

    def verify(self, stage: str, fingerprint: str) -> Optional[ArtifactRecord]:
        """Validate the stored artifact; ``None`` when missing/corrupt.

        Reads and hashes the payload — corruption is detected here, not
        at unpickle time.  The runner calls this once per warm stage, so
        a warm run pays one sequential read of each cached artifact in
        its closure (the deliberate price of eager corruption
        detection) but no deserialization.
        """
        verified = self._verified_bytes(stage, fingerprint)
        return verified[1] if verified is not None else None

    def load(self, stage: str, fingerprint: str) -> Optional[Tuple[object, ArtifactRecord]]:
        """Load and hash-verify an artifact; ``None`` on any defect.

        A hash mismatch, an unreadable sidecar or a failing unpickle all
        report a miss — the runner recomputes and the defective entry is
        overwritten by the subsequent :meth:`store`.  The payload is
        read and hashed once (re-verified here even if :meth:`verify`
        passed earlier, because the file may have changed in between).
        """
        verified = self._verified_bytes(stage, fingerprint)
        if verified is None:
            return None
        payload, record = verified
        try:
            value = pickle.loads(payload)
        except Exception:
            return None
        return value, record

    def store(
        self, stage: str, fingerprint: str, value: object, code_version: str
    ) -> ArtifactRecord:
        """Persist one artifact atomically; returns its metadata record."""
        directory = self.root / stage
        directory.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        record = ArtifactRecord(
            stage=stage,
            fingerprint=fingerprint,
            payload_sha256=hashlib.sha256(payload).hexdigest(),
            size_bytes=len(payload),
            code_version=code_version,
            created_at=_dt.datetime.now(_dt.timezone.utc).isoformat(timespec="seconds"),
        )
        self._write_atomic(self.payload_path(stage, fingerprint), payload)
        self._write_atomic(
            self.meta_path(stage, fingerprint), record.to_json().encode("utf-8")
        )
        return record

    @staticmethod
    def _write_atomic(path: Path, data: bytes) -> None:
        handle, temp_name = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.")
        try:
            with os.fdopen(handle, "wb") as stream:
                stream.write(data)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def entries(self) -> Dict[str, List[str]]:
        """Stage name -> stored fingerprints (for reports and tests)."""
        result: Dict[str, List[str]] = {}
        for stage_dir in sorted(self.root.iterdir()):
            if not stage_dir.is_dir():
                continue
            fingerprints = sorted(
                path.name[: -len(self.PAYLOAD_SUFFIX)]
                for path in stage_dir.glob(f"*{self.PAYLOAD_SUFFIX}")
            )
            if fingerprints:
                result[stage_dir.name] = fingerprints
        return result
