"""Durable, fingerprinted artifacts for the staged pipeline.

Every pipeline stage produces one *artifact*: a Python object whose
identity is fully determined by a **fingerprint** — a SHA-256 digest of

* the stage name,
* the stage's declared *code version* (bumped when the stage's
  implementation changes in a result-affecting way),
* a canonical token of the configuration slice the stage consumes, and
* the fingerprints of its upstream artifacts (so invalidation cascades
  through the DAG without ever loading a payload).

:class:`ArtifactCache` stores artifacts on disk under
``<root>/<stage>/<fingerprint>.pkl`` with a ``.json`` metadata sidecar
recording the SHA-256 of the pickled payload.  A load verifies the
payload hash against the sidecar, so a truncated or bit-flipped artifact
is detected and reported as a miss (the runner then recomputes and
overwrites it) instead of being deserialized into silent corruption.

Pickle is the payload format on purpose: artifacts are internal
intermediate state exchanged between stages of one code base, not an
interchange format — the stage *code version* participates in the
fingerprint precisely so that incompatible pickles are never looked up.

Hygiene: the cache records when each artifact was last used so
:meth:`ArtifactCache.prune` can evict by age and/or LRU order down to
a byte budget, and :meth:`ArtifactCache.stats` reports size accounting
per stage — sweeps make unbounded caches a real problem in long-lived
checkouts (CLI: ``repro cache stats`` / ``repro cache prune``).  Two
mechanisms cooperate: a **sidecar index** (``cache-index.json`` at the
root) written when an artifact is stored or pruned, and an
``os.utime`` bump of the payload file on every successful read — an
O(1) touch that keeps warm cache hits cheap (rewriting the index per
access would make each hit O(total entries)).  An entry's last-use
time is the newer of the two.  Both are advisory metadata only: a lost
index or a filesystem that ignores utime never affects correctness, it
just degrades eviction order (entries fall back to their creation
time).
"""

from __future__ import annotations

import dataclasses
import datetime as _dt
import enum
import hashlib
import json
import os
import pickle
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

#: Bump when the cache layout / metadata schema changes incompatibly.
CACHE_LAYOUT_VERSION = 1

#: Root-level sidecar recording last-access times for LRU eviction.
INDEX_FILENAME = "cache-index.json"


# ----------------------------------------------------------------------
# canonical configuration tokens
# ----------------------------------------------------------------------
def config_token(value: object) -> str:
    """A canonical, deterministic string token for a config value.

    Handles the vocabulary configurations are made of — dataclasses,
    mappings, sequences, enums, dates and primitives — and refuses
    anything else loudly (a silently unstable ``repr`` would make two
    different configurations collide or one configuration drift between
    processes).
    """
    return "".join(_tokenize(value))


def _tokenize(value: object) -> List[str]:
    if value is None or isinstance(value, (bool, int, str)):
        return [repr(value)]
    if isinstance(value, float):
        # repr() of a float is exact in Python 3; keep it explicit.
        return [repr(value)]
    if isinstance(value, enum.Enum):
        return [f"{type(value).__name__}.{value.name}"]
    if isinstance(value, (_dt.datetime, _dt.date)):
        return [value.isoformat()]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        parts = [f"{type(value).__name__}("]
        for field in dataclasses.fields(value):
            parts.append(f"{field.name}=")
            parts.extend(_tokenize(getattr(value, field.name)))
            parts.append(",")
        parts.append(")")
        return parts
    if isinstance(value, dict):
        parts = ["{"]
        for key in sorted(value, key=repr):
            parts.extend(_tokenize(key))
            parts.append(":")
            parts.extend(_tokenize(value[key]))
            parts.append(",")
        parts.append("}")
        return parts
    if isinstance(value, (list, tuple)):
        parts = ["[" if isinstance(value, list) else "("]
        for item in value:
            parts.extend(_tokenize(item))
            parts.append(",")
        parts.append("]" if isinstance(value, list) else ")")
        return parts
    if isinstance(value, (set, frozenset)):
        parts = ["{s:"]
        for item in sorted(value, key=repr):
            parts.extend(_tokenize(item))
            parts.append(",")
        parts.append("}")
        return parts
    raise TypeError(
        f"cannot build a stable config token for {type(value).__name__!r}; "
        "add explicit support or pass a primitive projection instead"
    )


def fingerprint(
    stage: str,
    version: str,
    token: str,
    upstream: Sequence[str] = (),
) -> str:
    """The SHA-256 fingerprint of one stage invocation."""
    digest = hashlib.sha256()
    for part in (f"layout:{CACHE_LAYOUT_VERSION}", stage, version, token, *upstream):
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


# ----------------------------------------------------------------------
# the on-disk cache
# ----------------------------------------------------------------------
@dataclasses.dataclass
class ArtifactRecord:
    """Metadata of one stored artifact (the ``.json`` sidecar)."""

    stage: str
    fingerprint: str
    payload_sha256: str
    size_bytes: int
    code_version: str
    created_at: str

    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ArtifactRecord":
        data = json.loads(text)
        return cls(**{field.name: data[field.name] for field in dataclasses.fields(cls)})


@dataclasses.dataclass
class CacheEntry:
    """One stored artifact as the hygiene machinery sees it."""

    stage: str
    fingerprint: str
    size_bytes: int  # payload + metadata sidecar
    last_used: float  # epoch seconds (access index, else created_at)


@dataclasses.dataclass
class CacheStats:
    """Size accounting of one artifact cache."""

    root: str
    entries: int
    total_bytes: int
    per_stage: Dict[str, Dict[str, int]]  # stage -> {"entries", "bytes"}

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class PruneReport:
    """What one :meth:`ArtifactCache.prune` call removed (or would)."""

    removed: List[CacheEntry]
    freed_bytes: int
    remaining_entries: int
    remaining_bytes: int
    dry_run: bool

    def to_dict(self) -> Dict[str, object]:
        return {
            "removed": [
                {
                    "stage": entry.stage,
                    "fingerprint": entry.fingerprint,
                    "size_bytes": entry.size_bytes,
                }
                for entry in self.removed
            ],
            "freed_bytes": self.freed_bytes,
            "remaining_entries": self.remaining_entries,
            "remaining_bytes": self.remaining_bytes,
            "dry_run": self.dry_run,
        }


class ArtifactCache:
    """Content-addressed on-disk store of stage artifacts.

    Layout::

        <root>/
          cache-index.json       # last-access times (LRU eviction order)
          <stage-name>/
            <fingerprint>.pkl    # pickled payload
            <fingerprint>.json   # ArtifactRecord sidecar (payload hash)

    Writes are atomic (temp file + rename) so a crashed run never leaves
    a half-written payload that a later run would trust; loads verify
    the payload hash against the sidecar before unpickling.
    """

    PAYLOAD_SUFFIX = ".pkl"
    META_SUFFIX = ".json"

    #: Class-level: every ArtifactCache instance over any root shares it
    #: (sweep executors build one instance per scenario over the same
    #: root, so a per-instance lock would never serialize anything).
    _index_lock = threading.Lock()

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def payload_path(self, stage: str, fingerprint: str) -> Path:
        return self.root / stage / f"{fingerprint}{self.PAYLOAD_SUFFIX}"

    def meta_path(self, stage: str, fingerprint: str) -> Path:
        return self.root / stage / f"{fingerprint}{self.META_SUFFIX}"

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def contains(self, stage: str, fingerprint: str) -> bool:
        """True when a *verifiable* artifact exists (hash checked)."""
        return self.verify(stage, fingerprint) is not None

    def _verified_bytes(
        self, stage: str, fingerprint: str
    ) -> Optional[Tuple[bytes, ArtifactRecord]]:
        """One read + one hash: the payload bytes iff they verify."""
        payload_path = self.payload_path(stage, fingerprint)
        meta_path = self.meta_path(stage, fingerprint)
        if not payload_path.exists() or not meta_path.exists():
            return None
        try:
            record = ArtifactRecord.from_json(meta_path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, KeyError, TypeError):
            return None
        payload = payload_path.read_bytes()
        if hashlib.sha256(payload).hexdigest() != record.payload_sha256:
            return None
        return payload, record

    def verify(self, stage: str, fingerprint: str) -> Optional[ArtifactRecord]:
        """Validate the stored artifact; ``None`` when missing/corrupt.

        Reads and hashes the payload — corruption is detected here, not
        at unpickle time.  The runner calls this once per warm stage, so
        a warm run pays one sequential read of each cached artifact in
        its closure (the deliberate price of eager corruption
        detection) but no deserialization.
        """
        verified = self._verified_bytes(stage, fingerprint)
        if verified is not None:
            self._touch(stage, fingerprint)
        return verified[1] if verified is not None else None

    def load(self, stage: str, fingerprint: str) -> Optional[Tuple[object, ArtifactRecord]]:
        """Load and hash-verify an artifact; ``None`` on any defect.

        A hash mismatch, an unreadable sidecar or a failing unpickle all
        report a miss — the runner recomputes and the defective entry is
        overwritten by the subsequent :meth:`store`.  The payload is
        read and hashed once (re-verified here even if :meth:`verify`
        passed earlier, because the file may have changed in between).
        """
        verified = self._verified_bytes(stage, fingerprint)
        if verified is None:
            return None
        payload, record = verified
        try:
            value = pickle.loads(payload)
        except Exception:
            return None
        self._touch(stage, fingerprint)
        return value, record

    def store(
        self, stage: str, fingerprint: str, value: object, code_version: str
    ) -> ArtifactRecord:
        """Persist one artifact atomically; returns its metadata record."""
        directory = self.root / stage
        directory.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        record = ArtifactRecord(
            stage=stage,
            fingerprint=fingerprint,
            payload_sha256=hashlib.sha256(payload).hexdigest(),
            size_bytes=len(payload),
            code_version=code_version,
            created_at=_dt.datetime.now(_dt.timezone.utc).isoformat(timespec="seconds"),
        )
        self._write_atomic(self.payload_path(stage, fingerprint), payload)
        self._write_atomic(
            self.meta_path(stage, fingerprint), record.to_json().encode("utf-8")
        )
        self._touch(stage, fingerprint, stored=True)
        return record

    @staticmethod
    def _write_atomic(path: Path, data: bytes) -> None:
        handle, temp_name = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.")
        try:
            with os.fdopen(handle, "wb") as stream:
                stream.write(data)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def entries(self) -> Dict[str, List[str]]:
        """Stage name -> stored fingerprints (for reports and tests)."""
        result: Dict[str, List[str]] = {}
        for stage_dir in sorted(self.root.iterdir()):
            if not stage_dir.is_dir():
                continue
            fingerprints = sorted(
                path.name[: -len(self.PAYLOAD_SUFFIX)]
                for path in stage_dir.glob(f"*{self.PAYLOAD_SUFFIX}")
            )
            if fingerprints:
                result[stage_dir.name] = fingerprints
        return result

    # ------------------------------------------------------------------
    # hygiene: access index, size accounting, eviction
    # ------------------------------------------------------------------
    @property
    def index_path(self) -> Path:
        return self.root / INDEX_FILENAME

    def _read_index(self) -> Dict[str, float]:
        """``"stage/fingerprint" -> last-used epoch seconds`` (best effort)."""
        try:
            data = json.loads(self.index_path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            return {}
        entries = data.get("entries") if isinstance(data, dict) else None
        if not isinstance(entries, dict):
            return {}
        return {
            key: float(value)
            for key, value in entries.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }

    def _write_index(self, entries: Dict[str, float]) -> None:
        payload = json.dumps(
            {"layout_version": CACHE_LAYOUT_VERSION, "entries": entries},
            indent=2,
            sort_keys=True,
        )
        self._write_atomic(self.index_path, payload.encode("utf-8"))

    def _touch(self, stage: str, fingerprint: str, stored: bool = False) -> None:
        """Record an access for LRU ordering.

        A plain read access is an O(1) ``os.utime`` bump of the payload
        file — cheap enough for every warm cache hit, visible across
        processes.  Only a *store* rewrites the sidecar index (stores
        are amortized by the stage computation they follow); the
        read-modify-write runs under the class-level lock, and
        concurrent processes race last-writer-wins, which is fine for
        advisory access times — a lost touch only makes the entry look
        slightly colder to a later ``prune``.
        """
        try:
            if not stored:
                os.utime(self.payload_path(stage, fingerprint))
                return
            with self._index_lock:
                entries = self._read_index()
                entries[f"{stage}/{fingerprint}"] = time.time()
                self._write_index(entries)
        except OSError:
            # A read-only or vanished cache directory must never break
            # the run the touch was bookkeeping for.
            pass

    def _scan_entries(self) -> List[CacheEntry]:
        """Every stored artifact with its on-disk size and last use.

        ``last_used`` is the newer of the sidecar-index entry (written
        at store time) and the payload mtime (bumped by :meth:`_touch`
        on every read).  Entries whose files vanish mid-scan — another
        process pruning the same cache — are silently skipped: hygiene
        is best-effort by contract, never an error.
        """
        index = self._read_index()
        entries: List[CacheEntry] = []
        for stage_dir in sorted(self.root.iterdir()):
            if not stage_dir.is_dir():
                continue
            for payload_path in sorted(stage_dir.glob(f"*{self.PAYLOAD_SUFFIX}")):
                fingerprint = payload_path.name[: -len(self.PAYLOAD_SUFFIX)]
                meta_path = self.meta_path(stage_dir.name, fingerprint)
                try:
                    size = payload_path.stat().st_size
                    mtime = payload_path.stat().st_mtime
                except OSError:
                    continue  # unlinked between glob and stat
                try:
                    size += meta_path.stat().st_size
                except OSError:
                    pass
                last_used = max(
                    index.get(f"{stage_dir.name}/{fingerprint}", 0.0), mtime
                )
                entries.append(
                    CacheEntry(
                        stage=stage_dir.name,
                        fingerprint=fingerprint,
                        size_bytes=size,
                        last_used=last_used,
                    )
                )
        return entries

    def stats(self) -> CacheStats:
        """Per-stage entry counts and byte totals."""
        per_stage: Dict[str, Dict[str, int]] = {}
        total_bytes = 0
        count = 0
        for entry in self._scan_entries():
            bucket = per_stage.setdefault(entry.stage, {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += entry.size_bytes
            total_bytes += entry.size_bytes
            count += 1
        return CacheStats(
            root=str(self.root),
            entries=count,
            total_bytes=total_bytes,
            per_stage=per_stage,
        )

    def prune(
        self,
        max_bytes: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
        now: Optional[float] = None,
        dry_run: bool = False,
    ) -> PruneReport:
        """Evict artifacts by age, then LRU down to a byte budget.

        ``max_age_seconds`` removes everything not used for that long;
        ``max_bytes`` then removes the least-recently-used survivors
        until the cache fits the budget.  ``dry_run`` reports what would
        be removed without touching a file.  Evicting a live entry is
        always safe — the next run that needs it recomputes and
        re-stores it (a cache miss, never an error).
        """
        if max_bytes is None and max_age_seconds is None:
            raise ValueError("prune needs max_bytes and/or max_age_seconds")
        if now is None:
            now = time.time()
        entries = self._scan_entries()
        total = sum(entry.size_bytes for entry in entries)
        doomed: List[CacheEntry] = []
        survivors: List[CacheEntry] = []
        for entry in entries:
            if (
                max_age_seconds is not None
                and now - entry.last_used > max_age_seconds
            ):
                doomed.append(entry)
            else:
                survivors.append(entry)
        if max_bytes is not None:
            remaining = total - sum(entry.size_bytes for entry in doomed)
            for entry in sorted(survivors, key=lambda e: (e.last_used, e.stage, e.fingerprint)):
                if remaining <= max_bytes:
                    break
                doomed.append(entry)
                remaining -= entry.size_bytes
        removed_keys = {(entry.stage, entry.fingerprint) for entry in doomed}
        survivors = [
            entry for entry in entries
            if (entry.stage, entry.fingerprint) not in removed_keys
        ]
        if not dry_run and doomed:
            for entry in doomed:
                for path in (
                    self.payload_path(entry.stage, entry.fingerprint),
                    self.meta_path(entry.stage, entry.fingerprint),
                ):
                    try:
                        path.unlink()
                    except OSError:
                        # Already gone, or undeletable (permissions,
                        # read-only mount): hygiene is best-effort —
                        # keep evicting the rest.
                        pass
                stage_dir = self.root / entry.stage
                try:
                    stage_dir.rmdir()  # only succeeds when empty
                except OSError:
                    pass
            with self._index_lock:
                index = self._read_index()
                kept = {f"{e.stage}/{e.fingerprint}" for e in survivors}
                self._write_index(
                    {key: value for key, value in index.items() if key in kept}
                )
        freed = sum(entry.size_bytes for entry in doomed)
        return PruneReport(
            removed=sorted(doomed, key=lambda e: (e.stage, e.fingerprint)),
            freed_bytes=freed,
            remaining_entries=len(survivors),
            remaining_bytes=total - freed,
            dry_run=dry_run,
        )
