"""Durable, fingerprinted artifacts for the staged pipeline.

Every pipeline stage produces one *artifact*: a Python object whose
identity is fully determined by a **fingerprint** — a SHA-256 digest of

* the stage name,
* the stage's declared *code version* (bumped when the stage's
  implementation changes in a result-affecting way),
* a canonical token of the configuration slice the stage consumes, and
* the fingerprints of its upstream artifacts (so invalidation cascades
  through the DAG without ever loading a payload).

:class:`ArtifactCache` stores artifacts through a pluggable
:class:`~repro.cluster.backends.CacheBackend` under the keys
``<stage>/<fingerprint>.pkl`` with a ``.json`` metadata sidecar
recording the SHA-256 of the pickled payload.  The default backend is
the original on-disk directory layout
(:class:`~repro.cluster.backends.LocalDirectoryBackend`); a SQLite
object store is available for caches shared by concurrent worker
processes (``ArtifactCache.from_spec`` sniffs the kind, so
``repro cache stats|prune`` work on either).  A load verifies the
payload hash against the sidecar, so a truncated or bit-flipped artifact
is detected and reported as a miss (the runner then recomputes and
overwrites it) instead of being deserialized into silent corruption.
Stores go through the backend's **atomic put-if-absent**: when two
workers race to publish the same fingerprint, one write wins and the
loser adopts it (the payloads are bit-identical by construction).

Pickle is the payload format on purpose: artifacts are internal
intermediate state exchanged between stages of one code base, not an
interchange format — the stage *code version* participates in the
fingerprint precisely so that incompatible pickles are never looked up.

Hygiene: the cache records when each artifact was last used so
:meth:`ArtifactCache.prune` can evict by age and/or LRU order down to
a byte budget, and :meth:`ArtifactCache.stats` reports size accounting
per stage — sweeps make unbounded caches a real problem in long-lived
checkouts (CLI: ``repro cache stats`` / ``repro cache prune``).  Two
mechanisms cooperate: a **sidecar index** (``cache-index.json`` at the
root) written when an artifact is stored or pruned, and an
``os.utime`` bump of the payload file on every successful read — an
O(1) touch that keeps warm cache hits cheap (rewriting the index per
access would make each hit O(total entries)).  An entry's last-use
time is the newer of the two.  Both are advisory metadata only: a lost
index or a filesystem that ignores utime never affects correctness, it
just degrades eviction order (entries fall back to their creation
time).
"""

from __future__ import annotations

import dataclasses
import datetime as _dt
import enum
import hashlib
import json
import pickle
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.cluster.backends import (
    CacheBackend,
    LocalDirectoryBackend,
    open_backend,
)
from repro.cluster.retry import RetryPolicy, with_retries
from repro.telemetry import get_tracer

#: Bump when the cache layout / metadata schema changes incompatibly.
CACHE_LAYOUT_VERSION = 1

#: Root-level sidecar recording last-access times for LRU eviction.
INDEX_FILENAME = "cache-index.json"

#: Bounded wait for the locks guarding advisory index maintenance.
#: Past it the touch/cleanup is skipped — LRU recency degrades, the run
#: proceeds.  Honest contention (one small read-modify-write) clears in
#: well under this; only a wedged holder exhausts it.
INDEX_LOCK_TIMEOUT_SECONDS = 0.25


# ----------------------------------------------------------------------
# canonical configuration tokens
# ----------------------------------------------------------------------
def config_token(value: object) -> str:
    """A canonical, deterministic string token for a config value.

    Handles the vocabulary configurations are made of — dataclasses,
    mappings, sequences, enums, dates and primitives — and refuses
    anything else loudly (a silently unstable ``repr`` would make two
    different configurations collide or one configuration drift between
    processes).
    """
    return "".join(_tokenize(value))


def _tokenize(value: object) -> List[str]:
    if value is None or isinstance(value, (bool, int, str)):
        return [repr(value)]
    if isinstance(value, float):
        # repr() of a float is exact in Python 3; keep it explicit.
        return [repr(value)]
    if isinstance(value, enum.Enum):
        return [f"{type(value).__name__}.{value.name}"]
    if isinstance(value, (_dt.datetime, _dt.date)):
        return [value.isoformat()]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        parts = [f"{type(value).__name__}("]
        for field in dataclasses.fields(value):
            parts.append(f"{field.name}=")
            parts.extend(_tokenize(getattr(value, field.name)))
            parts.append(",")
        parts.append(")")
        return parts
    if isinstance(value, dict):
        parts = ["{"]
        for key in sorted(value, key=repr):
            parts.extend(_tokenize(key))
            parts.append(":")
            parts.extend(_tokenize(value[key]))
            parts.append(",")
        parts.append("}")
        return parts
    if isinstance(value, (list, tuple)):
        parts = ["[" if isinstance(value, list) else "("]
        for item in value:
            parts.extend(_tokenize(item))
            parts.append(",")
        parts.append("]" if isinstance(value, list) else ")")
        return parts
    if isinstance(value, (set, frozenset)):
        parts = ["{s:"]
        for item in sorted(value, key=repr):
            parts.extend(_tokenize(item))
            parts.append(",")
        parts.append("}")
        return parts
    raise TypeError(
        f"cannot build a stable config token for {type(value).__name__!r}; "
        "add explicit support or pass a primitive projection instead"
    )


def fingerprint(
    stage: str,
    version: str,
    token: str,
    upstream: Sequence[str] = (),
) -> str:
    """The SHA-256 fingerprint of one stage invocation."""
    digest = hashlib.sha256()
    for part in (f"layout:{CACHE_LAYOUT_VERSION}", stage, version, token, *upstream):
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


# ----------------------------------------------------------------------
# the on-disk cache
# ----------------------------------------------------------------------
@dataclasses.dataclass
class ArtifactRecord:
    """Metadata of one stored artifact (the ``.json`` sidecar)."""

    stage: str
    fingerprint: str
    payload_sha256: str
    size_bytes: int
    code_version: str
    created_at: str

    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ArtifactRecord":
        data = json.loads(text)
        return cls(**{field.name: data[field.name] for field in dataclasses.fields(cls)})


@dataclasses.dataclass
class CacheEntry:
    """One stored artifact as the hygiene machinery sees it."""

    stage: str
    fingerprint: str
    size_bytes: int  # payload + metadata sidecar
    last_used: float  # epoch seconds (access index, else created_at)


@dataclasses.dataclass
class CacheStats:
    """Size accounting of one artifact cache."""

    root: str
    entries: int
    total_bytes: int
    per_stage: Dict[str, Dict[str, int]]  # stage -> {"entries", "bytes"}

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class PruneReport:
    """What one :meth:`ArtifactCache.prune` call removed (or would)."""

    removed: List[CacheEntry]
    freed_bytes: int
    remaining_entries: int
    remaining_bytes: int
    dry_run: bool
    #: Orphaned temporary files swept (directory backend: leftovers of
    #: writers that crashed mid ``put_if_absent``; 0 for other backends).
    temp_files_removed: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "removed": [
                {
                    "stage": entry.stage,
                    "fingerprint": entry.fingerprint,
                    "size_bytes": entry.size_bytes,
                }
                for entry in self.removed
            ],
            "freed_bytes": self.freed_bytes,
            "remaining_entries": self.remaining_entries,
            "remaining_bytes": self.remaining_bytes,
            "dry_run": self.dry_run,
            "temp_files_removed": self.temp_files_removed,
        }


class ArtifactCache:
    """Content-addressed store of stage artifacts over a backend.

    Default (directory backend) layout::

        <root>/
          cache-index.json       # last-access times (LRU eviction order)
          <stage-name>/
            <fingerprint>.pkl    # pickled payload
            <fingerprint>.json   # ArtifactRecord sidecar (payload hash)

    Writes are atomic (the backend contract) so a crashed run never
    leaves a half-written payload that a later run would trust; loads
    verify the payload hash against the sidecar before unpickling.
    """

    PAYLOAD_SUFFIX = ".pkl"
    META_SUFFIX = ".json"

    #: Class-level: every ArtifactCache instance over any root shares it
    #: (sweep executors build one instance per scenario over the same
    #: root, so a per-instance lock would never serialize anything).
    #: Cross-*process* exclusion is the backend lock's job.
    _index_lock = threading.Lock()

    def __init__(
        self,
        root: Union[str, Path, CacheBackend, None] = None,
        backend: Optional[CacheBackend] = None,
        retry: Union[RetryPolicy, bool, None] = None,
    ) -> None:
        if backend is None:
            if root is None:
                raise ValueError("ArtifactCache needs a root path or a backend")
            backend = (
                root if isinstance(root, CacheBackend) else LocalDirectoryBackend(root)
            )
        # Every cache tolerates transient storage faults by default —
        # ``retry=False`` opts out (tests asserting exact backend call
        # sequences), a RetryPolicy overrides attempt/backoff tuning.
        if retry is not False:
            backend = with_retries(
                backend, retry if isinstance(retry, RetryPolicy) else None
            )
        self.backend = backend
        #: The backend location as a path.  For the directory backend
        #: this is the cache root the ``payload_path``/``meta_path``
        #: helpers resolve under; for other backends it is the store
        #: file and the path helpers are meaningless (the artifacts are
        #: not files).
        self.root = Path(backend.location)

    @classmethod
    def from_spec(cls, spec: Union[str, Path, CacheBackend]) -> "ArtifactCache":
        """Open a cache from a spec string: a directory path (the
        default layout), ``sqlite://PATH`` / a ``*.sqlite`` path / an
        existing file (the SQLite object store), or a ready backend."""
        return cls(backend=open_backend(spec))

    # ------------------------------------------------------------------
    # keys and (directory-layout) paths
    # ------------------------------------------------------------------
    def _payload_key(self, stage: str, fingerprint: str) -> str:
        return f"{stage}/{fingerprint}{self.PAYLOAD_SUFFIX}"

    def _meta_key(self, stage: str, fingerprint: str) -> str:
        return f"{stage}/{fingerprint}{self.META_SUFFIX}"

    def payload_path(self, stage: str, fingerprint: str) -> Path:
        """The payload file of the *directory* backend layout."""
        return self.root / stage / f"{fingerprint}{self.PAYLOAD_SUFFIX}"

    def meta_path(self, stage: str, fingerprint: str) -> Path:
        """The sidecar file of the *directory* backend layout."""
        return self.root / stage / f"{fingerprint}{self.META_SUFFIX}"

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def contains(self, stage: str, fingerprint: str) -> bool:
        """True when a *verifiable* artifact exists (hash checked)."""
        return self.verify(stage, fingerprint) is not None

    def _verified_bytes(
        self, stage: str, fingerprint: str
    ) -> Optional[Tuple[bytes, ArtifactRecord]]:
        """One read + one hash: the payload bytes iff they verify."""
        meta = self.backend.get(self._meta_key(stage, fingerprint))
        if meta is None:
            return None
        try:
            record = ArtifactRecord.from_json(meta.decode("utf-8"))
        except (json.JSONDecodeError, KeyError, TypeError, UnicodeDecodeError):
            return None
        payload = self.backend.get(self._payload_key(stage, fingerprint))
        if payload is None:
            return None
        if hashlib.sha256(payload).hexdigest() != record.payload_sha256:
            return None
        return payload, record

    def verify(self, stage: str, fingerprint: str) -> Optional[ArtifactRecord]:
        """Validate the stored artifact; ``None`` when missing/corrupt.

        Reads and hashes the payload — corruption is detected here, not
        at unpickle time.  The runner calls this once per warm stage, so
        a warm run pays one sequential read of each cached artifact in
        its closure (the deliberate price of eager corruption
        detection) but no deserialization.
        """
        verified = self._verified_bytes(stage, fingerprint)
        tracer = get_tracer()
        if tracer:
            tracer.counter("cache.verify", stage=stage)
            tracer.counter("cache.hit" if verified is not None else "cache.miss",
                           stage=stage)
        if verified is not None:
            self._touch(stage, fingerprint)
        return verified[1] if verified is not None else None

    def load(self, stage: str, fingerprint: str) -> Optional[Tuple[object, ArtifactRecord]]:
        """Load and hash-verify an artifact; ``None`` on any defect.

        A hash mismatch, an unreadable sidecar or a failing unpickle all
        report a miss — the runner recomputes and the defective entry is
        overwritten by the subsequent :meth:`store`.  The payload is
        read and hashed once (re-verified here even if :meth:`verify`
        passed earlier, because the file may have changed in between).
        """
        verified = self._verified_bytes(stage, fingerprint)
        tracer = get_tracer()
        if tracer:
            tracer.counter("cache.load", stage=stage)
        if verified is None:
            if tracer:
                tracer.counter("cache.miss", stage=stage)
            return None
        payload, record = verified
        try:
            value = pickle.loads(payload)
        except Exception:
            if tracer:
                tracer.counter("cache.miss", stage=stage)
            return None
        self._touch(stage, fingerprint)
        return value, record

    def store(
        self, stage: str, fingerprint: str, value: object, code_version: str
    ) -> ArtifactRecord:
        """Persist one artifact atomically; returns its metadata record.

        The payload goes through the backend's **put-if-absent**: when a
        concurrent worker already published this fingerprint, the
        existing entry is adopted if it verifies (bit-identical by
        construction — same fingerprint, same deterministic pipeline)
        and the duplicate write is skipped.  A present-but-corrupt entry
        (the defect :meth:`load` reports as a miss) is overwritten.
        """
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        record = ArtifactRecord(
            stage=stage,
            fingerprint=fingerprint,
            payload_sha256=hashlib.sha256(payload).hexdigest(),
            size_bytes=len(payload),
            code_version=code_version,
            created_at=_dt.datetime.now(_dt.timezone.utc).isoformat(timespec="seconds"),
        )
        payload_key = self._payload_key(stage, fingerprint)
        meta_key = self._meta_key(stage, fingerprint)
        if not self.backend.put_if_absent(payload_key, payload):
            existing = self._verified_bytes(stage, fingerprint)
            if (
                existing is not None
                and existing[1].payload_sha256 == record.payload_sha256
            ):
                # Another worker won the race with the same bytes:
                # dedupe — adopt its record instead of rewriting.
                self._touch(stage, fingerprint, stored=True)
                return existing[1]
            self.backend.put(payload_key, payload)
        self.backend.put(meta_key, record.to_json().encode("utf-8"))
        self._touch(stage, fingerprint, stored=True)
        tracer = get_tracer()
        if tracer:
            tracer.counter("cache.put", stage=stage)
            tracer.counter("cache.put_bytes", value=record.size_bytes, stage=stage)
        return record

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def _payload_keys(self) -> List[Tuple[str, str]]:
        """Every stored ``(stage, fingerprint)`` pair, sorted."""
        pairs: List[Tuple[str, str]] = []
        for key in self.backend.list():
            if "/" not in key or not key.endswith(self.PAYLOAD_SUFFIX):
                continue  # the index, locks, foreign top-level objects
            stage, name = key.split("/", 1)
            pairs.append((stage, name[: -len(self.PAYLOAD_SUFFIX)]))
        return sorted(pairs)

    def entries(self) -> Dict[str, List[str]]:
        """Stage name -> stored fingerprints (for reports and tests)."""
        result: Dict[str, List[str]] = {}
        for stage, fingerprint in self._payload_keys():
            result.setdefault(stage, []).append(fingerprint)
        return result

    # ------------------------------------------------------------------
    # hygiene: access index, size accounting, eviction
    # ------------------------------------------------------------------
    @property
    def index_path(self) -> Path:
        return self.root / INDEX_FILENAME

    def _read_index(self) -> Dict[str, float]:
        """``"stage/fingerprint" -> last-used epoch seconds`` (best effort)."""
        try:
            raw = self.backend.get(INDEX_FILENAME)
        except OSError:
            return {}
        if raw is None:
            return {}
        try:
            data = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            return {}
        entries = data.get("entries") if isinstance(data, dict) else None
        if not isinstance(entries, dict):
            return {}
        return {
            key: float(value)
            for key, value in entries.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }

    def _write_index(self, entries: Dict[str, float]) -> None:
        payload = json.dumps(
            {"layout_version": CACHE_LAYOUT_VERSION, "entries": entries},
            indent=2,
            sort_keys=True,
        )
        self.backend.put(INDEX_FILENAME, payload.encode("utf-8"))

    def _touch(self, stage: str, fingerprint: str, stored: bool = False) -> None:
        """Record an access for LRU ordering.

        A plain read access is an O(1) backend ``touch`` (an
        ``os.utime`` bump for the directory backend) — cheap enough for
        every warm cache hit, visible across processes.  Only a *store*
        rewrites the sidecar index (stores are amortized by the stage
        computation they follow); the read-modify-write runs under the
        class-level thread lock **and** the backend's cross-process
        lock, so concurrent workers and prunes never interleave their
        index rewrites (a worker/prune race used to be able to resurrect
        just-pruned index entries or drop a fresh store's).

        Both locks are acquired with a *bounded* wait and the touch is
        skipped when they stay busy: the section does backend IO, so a
        wedged holder — e.g. a watchdog-abandoned worker thread stalled
        inside its index read — would otherwise pass its fate on to
        every healthy sibling that merely wanted to note a timestamp.
        Recency is advisory by contract; stalling a run for it is not.
        """
        try:
            if not stored:
                self.backend.touch(self._payload_key(stage, fingerprint))
                return
            if not self._index_lock.acquire(timeout=INDEX_LOCK_TIMEOUT_SECONDS):
                return
            try:
                with self.backend.lock(timeout=INDEX_LOCK_TIMEOUT_SECONDS):
                    entries = self._read_index()
                    entries[f"{stage}/{fingerprint}"] = time.time()
                    self._write_index(entries)
            finally:
                self._index_lock.release()
        except OSError:
            # A read-only or vanished cache (or a lock timeout —
            # TransientBackendError) must never break the run the touch
            # was bookkeeping for (BackendError subclasses OSError).
            pass

    def _scan_entries(self) -> List[CacheEntry]:
        """Every stored artifact with its actual size and last use.

        Sizes always come from the backend's ``stat`` of the object
        itself — never from the advisory index — so artifacts the index
        has no entry for (written by another process or backend, index
        lost or stale) are reported at their true size instead of being
        miscounted.  A missing metadata sidecar only loses the sidecar's
        own bytes from the total.  ``last_used`` is the newer of the
        index entry (written at store time) and the object's mtime
        (bumped by :meth:`_touch` on every read).  Entries that vanish
        mid-scan — another process pruning the same cache — are silently
        skipped: hygiene is best-effort by contract, never an error.
        """
        index = self._read_index()
        try:
            stats = dict(self.backend.scan())
        except OSError:
            return []
        entries: List[CacheEntry] = []
        for key in sorted(stats):
            if "/" not in key or not key.endswith(self.PAYLOAD_SUFFIX):
                continue  # the index, locks, foreign top-level objects
            stage, name = key.split("/", 1)
            fingerprint = name[: -len(self.PAYLOAD_SUFFIX)]
            payload_stat = stats[key]
            size = payload_stat.size
            meta_stat = stats.get(self._meta_key(stage, fingerprint))
            if meta_stat is not None:
                size += meta_stat.size
            last_used = max(index.get(f"{stage}/{fingerprint}", 0.0), payload_stat.mtime)
            entries.append(
                CacheEntry(
                    stage=stage,
                    fingerprint=fingerprint,
                    size_bytes=size,
                    last_used=last_used,
                )
            )
        return entries

    def stats(self) -> CacheStats:
        """Per-stage entry counts and byte totals."""
        try:
            # Hygiene entry point: sweep crashed writers' stale temp
            # files while we are here (best effort, like prune's).
            self.backend.collect_orphans()
        except OSError:
            pass
        per_stage: Dict[str, Dict[str, int]] = {}
        total_bytes = 0
        count = 0
        for entry in self._scan_entries():
            bucket = per_stage.setdefault(entry.stage, {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += entry.size_bytes
            total_bytes += entry.size_bytes
            count += 1
        return CacheStats(
            root=str(self.root),
            entries=count,
            total_bytes=total_bytes,
            per_stage=per_stage,
        )

    def prune(
        self,
        max_bytes: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
        now: Optional[float] = None,
        dry_run: bool = False,
    ) -> PruneReport:
        """Evict artifacts by age, then LRU down to a byte budget.

        ``max_age_seconds`` removes everything not used for that long;
        ``max_bytes`` then removes the least-recently-used survivors
        until the cache fits the budget.  ``dry_run`` reports what would
        be removed without touching a file.  Evicting a live entry is
        always safe — the next run that needs it recomputes and
        re-stores it (a cache miss, never an error).
        """
        if max_bytes is None and max_age_seconds is None:
            raise ValueError("prune needs max_bytes and/or max_age_seconds")
        if now is None:
            now = time.time()
        try:
            # Count crashed writers' stale temp files before the entry
            # scan (whose backend-side hygiene also collects them, but
            # silently); best-effort like the rest of prune.
            temp_files_removed = self.backend.collect_orphans(dry_run=dry_run)
        except OSError:
            temp_files_removed = 0
        entries = self._scan_entries()
        total = sum(entry.size_bytes for entry in entries)
        doomed: List[CacheEntry] = []
        survivors: List[CacheEntry] = []
        for entry in entries:
            if (
                max_age_seconds is not None
                and now - entry.last_used > max_age_seconds
            ):
                doomed.append(entry)
            else:
                survivors.append(entry)
        if max_bytes is not None:
            remaining = total - sum(entry.size_bytes for entry in doomed)
            for entry in sorted(survivors, key=lambda e: (e.last_used, e.stage, e.fingerprint)):
                if remaining <= max_bytes:
                    break
                doomed.append(entry)
                remaining -= entry.size_bytes
        removed_keys = {(entry.stage, entry.fingerprint) for entry in doomed}
        survivors = [
            entry for entry in entries
            if (entry.stage, entry.fingerprint) not in removed_keys
        ]
        if not dry_run and doomed:
            for entry in doomed:
                for key in (
                    self._payload_key(entry.stage, entry.fingerprint),
                    self._meta_key(entry.stage, entry.fingerprint),
                ):
                    try:
                        self.backend.delete(key)
                    except OSError:
                        # Already gone, or undeletable (permissions,
                        # read-only mount): hygiene is best-effort —
                        # keep evicting the rest.
                        pass
            # Bounded like _touch: eviction already happened, the index
            # cleanup is advisory — a wedged lock holder must not stall
            # the prune (stale index entries are ignored by _scan_entries).
            if self._index_lock.acquire(timeout=INDEX_LOCK_TIMEOUT_SECONDS):
                try:
                    with self.backend.lock(timeout=INDEX_LOCK_TIMEOUT_SECONDS):
                        index = self._read_index()
                        kept = {f"{e.stage}/{e.fingerprint}" for e in survivors}
                        self._write_index(
                            {key: value for key, value in index.items() if key in kept}
                        )
                except OSError:
                    pass
                finally:
                    self._index_lock.release()
        freed = sum(entry.size_bytes for entry in doomed)
        return PruneReport(
            removed=sorted(doomed, key=lambda e: (e.stage, e.fingerprint)),
            freed_bytes=freed,
            remaining_entries=len(survivors),
            remaining_bytes=total - freed,
            dry_run=dry_run,
            temp_files_removed=temp_files_removed,
        )
