"""The concrete stage DAG of the reproduction pipeline.

This module decomposes the formerly monolithic
``repro.datasets.synthetic.build_snapshot`` +
``repro.analysis.stats.compute_section3`` chain into declared,
individually cacheable stages (see ``docs/architecture.md`` for the
full picture)::

    topology ──┬─> scenario ──┬─> compress ─┬─> propagation_v4 ──┐
    irr ───────┘              │             └─> propagation_v6 ──┼─> archive ─> store
                              └─> ground_truth                   │
                                                                 v
    snapshot  <─────── (assembly of everything above) ───────────┘

    store + irr ─> inference ─> views ─┬─> section3
                                       └─> correction   (Figure 2)

Every stage calls exactly the code the monolithic path called, in the
same order; in particular the *scenario* stage owns the single
``random.Random(seed)`` stream the legacy builder threaded through
policy construction, peering disputes, gratuitous leaks, vantage
selection and origin selection — so the staged pipeline is
**bit-identical** to the frozen monolith
(:func:`repro.datasets.reference.reference_build_snapshot`), which the
golden tests pin on two seeds.

Stage *code versions* are declared next to each stage; bump one when
the stage's implementation changes in a result-affecting way, and every
cached artifact of that stage and its descendants is invalidated
(fingerprints chain — see :mod:`repro.pipeline.artifacts`).
"""

from __future__ import annotations

import contextlib
import copy
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.paths import ExtractionResult, extract_from_archive
from repro.analysis.stats import (
    Section3Artifacts,
    Section3Report,
    Section3Views,
    assemble_report,
    build_views,
    run_inference,
)
from repro.bgp.policy import RoutingPolicy
from repro.bgp.prefixes import Prefix, PrefixAllocator
from repro.bgp.propagation import PropagationResult
from repro.collectors.archive import CollectorArchive
from repro.collectors.collector import Collector, default_collectors
from repro.core.annotation import ToRAnnotation
from repro.core.combined_inference import CombinedInferenceResult
from repro.core.correction import CorrectionSeries, run_correction_sweep
from repro.core.relationships import AFI, HybridType, Link
from repro.datasets.synthetic import (
    DatasetConfig,
    SyntheticSnapshot,
    _apply_gratuitous_leaks,
    _apply_peering_disputes,
    _build_policies,
    _select_origins,
    _select_vantage_points,
)
from repro.irr.registry import IRRRegistry, build_registry
from repro.pipeline.artifacts import ArtifactCache
from repro.pipeline.runner import PipelineRun, PipelineRunner, StageSpec
from repro.telemetry import TelemetryConfig
from repro.topology.generator import GeneratedTopology, generate_topology


@dataclass(frozen=True)
class PropagationConfig:
    """How the propagation stages compute their results.

    Attributes:
        engine: Propagation backend (see :mod:`repro.bgp.backends`):
            ``event`` (default), ``array``, ``equilibrium`` or ``auto``.
            Every engine is pinned to produce identical routes (the
            golden parity suite), so changing it changes wall time, the
            reported event counts and — deliberately — the stage
            fingerprints: a changed engine is a cache miss, and the
            freshly computed result is still golden-identical.
        compression: Control-plane compression mode (see
            :mod:`repro.topology.compress`): ``off`` (default),
            ``stubs`` (one-pass signature grouping of export-silent
            sinks) or ``full`` (bisimulation refinement).  Transparent
            to the engine choice — the ``compress`` stage builds the
            quotient plan once per scenario, the propagation stages run
            their backend through it and inflate back, and the inflated
            Loc-RIBs are bit-identical to an uncompressed run (the
            golden compression suite).  Sweepable as the
            ``propagation.compression`` grid axis.
    """

    engine: str = "event"
    compression: str = "off"

    def __post_init__(self) -> None:
        from repro.bgp.backends import ENGINE_CHOICES
        from repro.topology.compress import COMPRESSION_CHOICES

        if self.engine not in ENGINE_CHOICES:
            raise ValueError(
                f"propagation.engine must be one of {ENGINE_CHOICES}, "
                f"got {self.engine!r}"
            )
        if self.compression not in COMPRESSION_CHOICES:
            raise ValueError(
                "propagation.compression must be one of "
                f"{COMPRESSION_CHOICES}, got {self.compression!r}"
            )


@dataclass(frozen=True)
class PipelineConfig:
    """Everything one end-to-end run is a function of.

    Attributes:
        dataset: The synthetic snapshot configuration.
        top: Figure-2 correction budget (links corrected).
        max_sources: Valley-free BFS sampling bound for the
            customer-tree metric (``None`` = exact).
        propagation: Propagation-engine selection (sweepable as the
            ``propagation.engine`` grid axis).
        telemetry: Optional trace context
            (:class:`~repro.telemetry.TelemetryConfig`).  ``None`` (the
            default) keeps telemetry off.  Deliberately absent from
            every stage's ``config_slice`` — tracing a run must never
            change a fingerprint or an output byte, which the
            fingerprint-neutrality tests and the CI trace smoke pin.
    """

    dataset: DatasetConfig = field(default_factory=DatasetConfig)
    top: int = 20
    max_sources: Optional[int] = 60
    propagation: PropagationConfig = field(default_factory=PropagationConfig)
    telemetry: Optional[TelemetryConfig] = None


# ----------------------------------------------------------------------
# artifact shapes
# ----------------------------------------------------------------------
@dataclass
class ScenarioArtifact:
    """The fully configured measurement scenario.

    ``topology`` is a deep copy of the generated topology *after* the
    peering disputes mutated its IPv6 plane — downstream stages (and
    the assembled snapshot) must use this copy; the ``topology`` stage
    artifact itself stays pristine.
    """

    topology: GeneratedTopology
    policies: Dict[int, RoutingPolicy]
    dispute_links: List[Link]
    relaxed_adjacencies: List[Tuple[int, int]]
    vantage_asns: List[int]
    collectors: List[Collector]
    origins: Dict[AFI, Dict[Prefix, int]]


@dataclass
class GroundTruthArtifact:
    """Per-AFI ground-truth annotations plus the surviving hybrid set."""

    annotations: Dict[AFI, ToRAnnotation]
    true_hybrid_links: Dict[Link, HybridType]


# ----------------------------------------------------------------------
# snapshot-side stage computations
# ----------------------------------------------------------------------
def _stage_topology(run: PipelineRun) -> GeneratedTopology:
    return generate_topology(run.config.dataset.topology)


def _stage_irr(run: PipelineRun) -> IRRRegistry:
    config = run.config.dataset
    topology: GeneratedTopology = run.value("topology")
    return build_registry(
        topology.graph.ases,
        documented_fraction=config.documented_fraction,
        seed=config.seed,
    )


def _stage_scenario(run: PipelineRun) -> ScenarioArtifact:
    """Policies, disputes, leaks, vantages, collectors and origins.

    This stage consumes the shared ``random.Random(config.seed)`` stream
    in exactly the order the monolithic builder did: policies →
    disputes → leaks → vantage points → IPv4 origins → IPv6 origins
    (nothing between the two origin selections touched the stream).
    Splitting any of these into separate stages would need the RNG state
    itself to become an artifact; keeping them together keeps the
    fingerprinting honest and the results bit-identical.

    The disputes mutate the topology, so this stage works on a deep
    copy: the ``topology`` artifact stays pristine (identical whether
    it was just computed or unpickled from the cache) and the mutated
    copy travels inside the scenario artifact.
    """
    config = run.config.dataset
    topology: GeneratedTopology = copy.deepcopy(run.value("topology"))
    registry: IRRRegistry = run.value("irr")
    rng = random.Random(config.seed)
    allocator = PrefixAllocator()
    policies = _build_policies(topology, registry, config, rng, allocator)
    dispute_links, dispute_relaxed = _apply_peering_disputes(
        topology, policies, config, rng
    )
    leak_relaxed = _apply_gratuitous_leaks(topology, policies, config, rng)
    vantage_asns = _select_vantage_points(topology, config, rng)
    collectors = default_collectors(
        vantage_asns,
        collectors_per_project=config.collectors_per_project,
        exports_local_pref_fraction=config.exports_local_pref_fraction,
    )
    origins = {
        afi: _select_origins(topology, config, allocator, rng, afi)
        for afi in (AFI.IPV4, AFI.IPV6)
    }
    return ScenarioArtifact(
        topology=topology,
        policies=policies,
        dispute_links=dispute_links,
        relaxed_adjacencies=dispute_relaxed + leak_relaxed,
        vantage_asns=vantage_asns,
        collectors=collectors,
        origins=origins,
    )


#: When set (workers, executor), the propagation stages run batched via
#: :meth:`repro.bgp.engine.PropagationEngine.run_many` instead of one
#: serial simulator.  ``run_many`` is bit-identical to the serial run
#: regardless of worker count (the golden determinism suite pins this),
#: so the knob changes wall time only — results and fingerprints are
#: untouched, which is why it deliberately does not participate in any
#: config slice.  Process-wide on purpose: set it through
#: :func:`propagation_parallelism`, typically around a serial sweep.
_PROPAGATION_PARALLELISM: Optional[Tuple[int, str]] = None


@contextlib.contextmanager
def propagation_parallelism(workers: int, executor: str = "process") -> Iterator[None]:
    """Run the propagation stages batched over ``workers`` simulators.

    Reuses the ``run_many`` fork-sharing machinery: on fork platforms a
    ``"process"`` executor shares the graph and policies with the
    workers through a fork-inherited module global, so each task ships
    only a small origin batch.
    """
    global _PROPAGATION_PARALLELISM
    previous = _PROPAGATION_PARALLELISM
    _PROPAGATION_PARALLELISM = (workers, executor)
    try:
        yield
    finally:
        _PROPAGATION_PARALLELISM = previous


def _stage_compress(run: PipelineRun):
    """Build the quotient-graph plan for this scenario (cheap when off).

    Origins of *both* address families and the vantage ASes are pinned
    as singleton survivors, so one cached plan serves both propagation
    stages — and any run whose origins are a subset of the scenario's.
    With ``compression="off"`` the stage returns an unapplied plan
    carrying the explicit reason, keeping the DAG shape (and downstream
    fingerprint chaining) identical across modes.
    """
    from repro.topology.compress import compress_topology

    scenario: ScenarioArtifact = run.value("scenario")
    origin_asns = set()
    for per_afi in scenario.origins.values():
        origin_asns.update(per_afi.values())
    return compress_topology(
        scenario.topology.graph,
        scenario.policies,
        mode=run.config.propagation.compression,
        pinned=scenario.vantage_asns,
        origin_asns=origin_asns,
    )


def _propagate(run: PipelineRun, afi: AFI) -> PropagationResult:
    scenario: ScenarioArtifact = run.value("scenario")
    from repro.bgp.engine import PropagationEngine

    compression = run.config.propagation.compression
    engine = PropagationEngine(
        scenario.topology.graph,
        scenario.policies,
        keep_ribs_for=scenario.vantage_asns,
        engine=run.config.propagation.engine,
        compression=compression,
        compression_plan=(
            run.value("compress") if compression != "off" else None
        ),
    )
    if _PROPAGATION_PARALLELISM is not None:
        workers, executor = _PROPAGATION_PARALLELISM
        return engine.run_many(
            scenario.origins[afi], workers=workers, executor=executor
        )
    return engine.run(scenario.origins[afi])


def _stage_propagation_v4(run: PipelineRun) -> PropagationResult:
    return _propagate(run, AFI.IPV4)


def _stage_propagation_v6(run: PipelineRun) -> PropagationResult:
    return _propagate(run, AFI.IPV6)


def _stage_archive(run: PipelineRun) -> CollectorArchive:
    config = run.config.dataset
    scenario: ScenarioArtifact = run.value("scenario")
    results = {
        AFI.IPV4: run.value("propagation_v4"),
        AFI.IPV6: run.value("propagation_v6"),
    }
    archive = CollectorArchive()
    for afi in (AFI.IPV4, AFI.IPV6):
        for collector in scenario.collectors:
            records = collector.collect(results[afi], afi=afi)
            archive.add_collection(collector, config.snapshot_date, records)
    return archive


def _stage_store(run: PipelineRun) -> ExtractionResult:
    return extract_from_archive(run.value("archive"))


def _stage_ground_truth(run: PipelineRun) -> GroundTruthArtifact:
    scenario: ScenarioArtifact = run.value("scenario")
    graph = scenario.topology.graph
    annotations = {
        AFI.IPV4: ToRAnnotation.from_graph(graph, AFI.IPV4),
        AFI.IPV6: ToRAnnotation.from_graph(graph, AFI.IPV6),
    }
    # The peering disputes removed some planted hybrid links' IPv6 side;
    # drop them from the ground-truth hybrid set if that happened.
    true_hybrid = {
        link: hybrid_type
        for link, hybrid_type in scenario.topology.hybrid_links.items()
        if annotations[AFI.IPV6].get_canonical(link).is_known
        and annotations[AFI.IPV4].get_canonical(link).is_known
    }
    return GroundTruthArtifact(annotations=annotations, true_hybrid_links=true_hybrid)


def _stage_snapshot(run: PipelineRun) -> SyntheticSnapshot:
    """Assemble the :class:`SyntheticSnapshot` facade (never cached —
    it only references the upstream artifacts)."""
    scenario: ScenarioArtifact = run.value("scenario")
    extraction: ExtractionResult = run.value("store")
    ground_truth: GroundTruthArtifact = run.value("ground_truth")
    return SyntheticSnapshot(
        config=run.config.dataset,
        topology=scenario.topology,
        registry=run.value("irr"),
        policies=scenario.policies,
        collectors=scenario.collectors,
        archive=run.value("archive"),
        observations=list(extraction.observations),
        store=extraction.store,
        extraction=extraction,
        ground_truth=ground_truth.annotations,
        true_hybrid_links=ground_truth.true_hybrid_links,
        relaxed_adjacencies=scenario.relaxed_adjacencies,
        dispute_links=scenario.dispute_links,
        propagation={
            AFI.IPV4: run.value("propagation_v4"),
            AFI.IPV6: run.value("propagation_v6"),
        },
    )


# ----------------------------------------------------------------------
# analysis-side stage computations
# ----------------------------------------------------------------------
def _stage_inference(run: PipelineRun) -> CombinedInferenceResult:
    extraction: ExtractionResult = run.value("store")
    return run_inference(extraction.store, run.value("irr"))


def _stage_views(run: PipelineRun) -> Section3Views:
    extraction: ExtractionResult = run.value("store")
    return build_views(extraction.store, run.value("inference"))


def _stage_section3(run: PipelineRun) -> Section3Report:
    return assemble_report(run.value("views"), run.value("inference"))


def _stage_correction(run: PipelineRun) -> CorrectionSeries:
    """The Figure-2 sweep over the most visible hybrid links."""
    views: Section3Views = run.value("views")
    inference: CombinedInferenceResult = run.value("inference")
    return run_correction_sweep(
        inference.annotation(AFI.IPV4),
        inference.annotation(AFI.IPV6),
        views.hybrid.hybrid_link_set(),
        views.visibility,
        top=run.config.top,
        max_sources=run.config.max_sources,
    )


# ----------------------------------------------------------------------
# stage declarations
# ----------------------------------------------------------------------
def _scenario_slice(config: PipelineConfig) -> tuple:
    """The dataset fields the scenario stage actually consumes."""
    dataset = config.dataset
    return (
        dataset.seed,
        dataset.strip_communities_fraction,
        dataset.te_override_fraction,
        dataset.ipv6_peering_disputes,
        dataset.gratuitous_leak_fraction,
        dataset.vantage_points,
        dataset.collectors_per_project,
        dataset.exports_local_pref_fraction,
        dataset.origin_fraction,
    )


def snapshot_stages() -> List[StageSpec]:
    """The snapshot-building half of the DAG (topology → snapshot)."""
    return [
        StageSpec(
            name="topology",
            version="1",
            dependencies=(),
            compute=_stage_topology,
            config_slice=lambda config: config.dataset.topology,
        ),
        StageSpec(
            name="irr",
            version="1",
            dependencies=("topology",),
            compute=_stage_irr,
            config_slice=lambda config: (
                config.dataset.documented_fraction,
                config.dataset.seed,
            ),
        ),
        StageSpec(
            name="scenario",
            version="1",
            dependencies=("topology", "irr"),
            compute=_stage_scenario,
            config_slice=_scenario_slice,
        ),
        # The quotient-graph plan: one compression pass per scenario,
        # shared by both propagation stages (and cached across sweeps
        # that share a topology/scenario but vary the engine).
        StageSpec(
            name="compress",
            version="1",
            dependencies=("scenario",),
            compute=_stage_compress,
            config_slice=lambda config: config.propagation.compression,
        ),
        # Version 2: pluggable propagation backends.  Version 3: the
        # compress → propagate → inflate path.  Both the engine and the
        # compression mode participate in the fingerprint on purpose —
        # either change recomputes (and its descendants with it) even
        # though a correct backend/compression produces identical
        # routes, so a cached artifact always states truthfully which
        # configuration built it.
        StageSpec(
            name="propagation_v4",
            version="3",
            dependencies=("scenario", "compress"),
            compute=_stage_propagation_v4,
            config_slice=lambda config: (
                config.propagation.engine,
                config.propagation.compression,
            ),
        ),
        StageSpec(
            name="propagation_v6",
            version="3",
            dependencies=("scenario", "compress"),
            compute=_stage_propagation_v6,
            config_slice=lambda config: (
                config.propagation.engine,
                config.propagation.compression,
            ),
        ),
        StageSpec(
            name="archive",
            version="1",
            dependencies=("scenario", "propagation_v4", "propagation_v6"),
            compute=_stage_archive,
            config_slice=lambda config: config.dataset.snapshot_date,
        ),
        StageSpec(
            name="store",
            version="1",
            dependencies=("archive",),
            compute=_stage_store,
        ),
        StageSpec(
            name="ground_truth",
            version="1",
            dependencies=("scenario",),
            compute=_stage_ground_truth,
        ),
        StageSpec(
            name="snapshot",
            version="1",
            dependencies=(
                "scenario",
                "irr",
                "archive",
                "store",
                "ground_truth",
                "propagation_v4",
                "propagation_v6",
            ),
            compute=_stage_snapshot,
            cacheable=False,
        ),
    ]


def analysis_stages() -> List[StageSpec]:
    """The measurement half of the DAG (store → section3 / correction)."""
    return [
        StageSpec(
            name="inference",
            version="1",
            dependencies=("store", "irr"),
            compute=_stage_inference,
        ),
        StageSpec(
            name="views",
            version="1",
            dependencies=("store", "inference"),
            compute=_stage_views,
        ),
        StageSpec(
            name="section3",
            version="1",
            dependencies=("views", "inference"),
            compute=_stage_section3,
        ),
        StageSpec(
            name="correction",
            version="1",
            dependencies=("views", "inference"),
            compute=_stage_correction,
            config_slice=lambda config: (config.top, config.max_sources),
        ),
    ]


def full_stages() -> List[StageSpec]:
    """The complete DAG: snapshot building plus analysis."""
    return snapshot_stages() + analysis_stages()


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def make_runner(
    cache_dir=None, stages: Optional[Sequence[StageSpec]] = None
) -> PipelineRunner:
    """A runner over the full DAG, optionally backed by a cache.

    ``cache_dir`` is a cache *spec*: a directory path (the default
    layout), a ``sqlite://``/``*.sqlite`` object store, or a ready
    backend — see :meth:`ArtifactCache.from_spec`.
    """
    cache = ArtifactCache.from_spec(cache_dir) if cache_dir is not None else None
    return PipelineRunner(list(stages) if stages is not None else full_stages(), cache)


def run_pipeline(
    config: PipelineConfig,
    cache_dir=None,
    targets: Optional[Sequence[str]] = None,
) -> PipelineRun:
    """Run (part of) the pipeline for one configuration."""
    return make_runner(cache_dir).run(config, targets=targets)


def section3_artifacts(run: PipelineRun) -> Section3Artifacts:
    """Assemble the legacy :class:`Section3Artifacts` facade from a run
    that executed (at least) the ``section3`` target."""
    views: Section3Views = run.value("views")
    return Section3Artifacts(
        report=run.value("section3"),
        inventory=views.inventory,
        inference=run.value("inference"),
        hybrid=views.hybrid,
        visibility=views.visibility,
        valley=views.valley,
    )
