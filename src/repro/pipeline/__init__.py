"""Staged artifact pipeline: cacheable, resumable end-to-end runs.

The package decomposes the end-to-end reproduction (synthetic snapshot
building + Section-3 measurement + Figure-2 correction) into declared
stages with fingerprinted inputs and serializable outputs:

* :mod:`repro.pipeline.artifacts` — fingerprinting and the on-disk
  artifact cache (hash-verified payloads),
* :mod:`repro.pipeline.runner` — the generic stage-DAG runner,
* :mod:`repro.pipeline.stages` — the concrete DAG of this repository.

See ``docs/architecture.md`` for the stage DAG, artifact formats,
fingerprinting rules and cache layout.
"""

from repro.pipeline.artifacts import (
    ArtifactCache,
    ArtifactRecord,
    CacheEntry,
    CacheStats,
    PruneReport,
    config_token,
    fingerprint,
)
from repro.pipeline.runner import (
    PipelineRun,
    PipelineRunner,
    StageFailure,
    StageOutcome,
    StageSpec,
)
from repro.pipeline.stages import (
    GroundTruthArtifact,
    PipelineConfig,
    PropagationConfig,
    ScenarioArtifact,
    analysis_stages,
    full_stages,
    make_runner,
    run_pipeline,
    section3_artifacts,
    snapshot_stages,
)

__all__ = [
    "ArtifactCache",
    "ArtifactRecord",
    "CacheEntry",
    "CacheStats",
    "PruneReport",
    "config_token",
    "fingerprint",
    "PipelineRun",
    "PipelineRunner",
    "StageFailure",
    "StageOutcome",
    "StageSpec",
    "GroundTruthArtifact",
    "PipelineConfig",
    "PropagationConfig",
    "ScenarioArtifact",
    "analysis_stages",
    "full_stages",
    "make_runner",
    "run_pipeline",
    "section3_artifacts",
    "snapshot_stages",
]
