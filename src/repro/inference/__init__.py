"""Baseline Type-of-Relationship inference algorithms and comparison tools."""

from repro.inference.comparison import (
    ComparisonReport,
    compare_annotations,
    misinference_rate,
)
from repro.inference.degree_based import DegreeBasedInference, DegreeParameters
from repro.inference.gao import GaoInference, GaoParameters

__all__ = [
    "ComparisonReport",
    "compare_annotations",
    "misinference_rate",
    "DegreeBasedInference",
    "DegreeParameters",
    "GaoInference",
    "GaoParameters",
]
