"""Gao's (2001) degree-based Type-of-Relationship inference.

This is the classic baseline the paper contrasts with: a heuristic that
looks only at AS paths and node degrees, assumes every path is
valley-free, and therefore mislabels links whose IPv6 relationship
departs from the conventional hierarchy.

The implementation follows the structure of the original algorithm
(Gao, "On inferring autonomous system relationships in the Internet",
IEEE/ACM ToN 2001):

1. Compute the degree of every AS from the observed paths.
2. For every path, locate the *top provider* — the highest-degree AS on
   the path.  Every link left of the top provider is recorded as a
   customer-to-provider hop, every link right of it as
   provider-to-customer.
3. Aggregate the per-path votes: links whose votes are (almost) all in
   one transit direction become p2c/c2p; links with substantial votes in
   both directions become sibling (we map them to p2p here, the common
   simplification when sibling information is unavailable).
4. A final peering phase re-labels as p2p the links adjacent to the top
   provider whose endpoints have comparable degrees and that were not
   confirmed as transit by step 3.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.annotation import ToRAnnotation
from repro.core.observations import ObservedRoute
from repro.core.relationships import AFI, Link, Relationship, RelationshipSource


@dataclass
class GaoParameters:
    """Tunable parameters of the Gao inference.

    Attributes:
        transit_ratio: Minimum fraction of votes in the dominant transit
            direction for a link to be labelled p2c/c2p (Gao's parameter
            L, expressed as a ratio).
        peering_degree_ratio: Maximum degree ratio between two ASes for
            the peering phase to consider them comparable (Gao's R).
    """

    transit_ratio: float = 0.6
    peering_degree_ratio: float = 60.0

    def __post_init__(self) -> None:
        if not 0.5 <= self.transit_ratio <= 1.0:
            raise ValueError("transit_ratio must be within [0.5, 1.0]")
        if self.peering_degree_ratio < 1.0:
            raise ValueError("peering_degree_ratio must be >= 1")


class GaoInference:
    """Infer relationships for one address family from observed paths."""

    def __init__(self, parameters: Optional[GaoParameters] = None) -> None:
        self.parameters = parameters or GaoParameters()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @staticmethod
    def degrees_from_paths(paths: Iterable[Sequence[int]]) -> Dict[int, int]:
        """Node degree (number of distinct neighbours) seen in the paths."""
        neighbors: Dict[int, Set[int]] = defaultdict(set)
        for path in paths:
            for index in range(len(path) - 1):
                a, b = path[index], path[index + 1]
                if a == b:
                    continue
                neighbors[a].add(b)
                neighbors[b].add(a)
        return {asn: len(adjacent) for asn, adjacent in neighbors.items()}

    @staticmethod
    def top_provider_index(path: Sequence[int], degrees: Dict[int, int]) -> int:
        """Index of the highest-degree AS on the path (ties: first)."""
        best_index = 0
        best_degree = -1
        for index, asn in enumerate(path):
            degree = degrees.get(asn, 0)
            if degree > best_degree:
                best_degree = degree
                best_index = index
        return best_index

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def infer_paths(
        self, paths: Iterable[Sequence[int]], afi: AFI
    ) -> ToRAnnotation:
        """Run the inference over raw AS paths (observer-side first)."""
        path_list = [tuple(path) for path in paths]
        degrees = self.degrees_from_paths(path_list)
        # Vote counting: for each canonical link, votes[link][rel] counts
        # how many paths implied that canonical relationship.
        votes: Dict[Link, Dict[Relationship, int]] = defaultdict(lambda: defaultdict(int))
        adjacent_to_top: Set[Link] = set()
        for path in path_list:
            if len(path) < 2:
                continue
            top = self.top_provider_index(path, degrees)
            for index in range(len(path) - 1):
                a, b = path[index], path[index + 1]
                if a == b:
                    continue
                link = Link(a, b)
                # Paths are observer-first: hops before the top provider
                # climb towards it (a is a customer of b), hops after it
                # descend (a is a provider of b).
                if index < top:
                    rel_from_a = Relationship.C2P
                else:
                    rel_from_a = Relationship.P2C
                canonical = rel_from_a if link.a == a else rel_from_a.inverse
                votes[link][canonical] += 1
                if index in (top - 1, top):
                    adjacent_to_top.add(link)

        annotation = ToRAnnotation(afi, source=RelationshipSource.GAO)
        for link, link_votes in votes.items():
            p2c = link_votes.get(Relationship.P2C, 0)
            c2p = link_votes.get(Relationship.C2P, 0)
            total = p2c + c2p
            if total == 0:
                continue
            if p2c / total >= self.parameters.transit_ratio:
                annotation.set_canonical(link, Relationship.P2C)
            elif c2p / total >= self.parameters.transit_ratio:
                annotation.set_canonical(link, Relationship.C2P)
            else:
                # Conflicting transit evidence: Gao labels these sibling;
                # without sibling ground truth we fall back to peering.
                annotation.set_canonical(link, Relationship.P2P)

        # Peering phase: links next to the top provider whose endpoints
        # have comparable degrees are re-labelled p2p.
        ratio = self.parameters.peering_degree_ratio
        for link in adjacent_to_top:
            current = annotation.get_canonical(link)
            if not current.is_transit:
                continue
            degree_a = degrees.get(link.a, 1) or 1
            degree_b = degrees.get(link.b, 1) or 1
            if max(degree_a, degree_b) / min(degree_a, degree_b) < ratio:
                # Only re-label when the transit evidence is not unanimous.
                link_votes = votes[link]
                p2c = link_votes.get(Relationship.P2C, 0)
                c2p = link_votes.get(Relationship.C2P, 0)
                if p2c and c2p:
                    annotation.set_canonical(link, Relationship.P2P)
        return annotation

    def infer(
        self, observations: Iterable[ObservedRoute], afi: AFI
    ) -> ToRAnnotation:
        """Run the inference over the distinct paths of some observations."""
        paths = {
            observation.path
            for observation in observations
            if observation.afi is afi
        }
        return self.infer_paths(sorted(paths), afi)
