"""Degree-ratio Type-of-Relationship inference (Dimitropoulos-style).

A second, simpler baseline in the spirit of the CAIDA / Dimitropoulos et
al. family of heuristics: it classifies every observed link directly from
the (transit-)degrees of its endpoints.

* If the two endpoints have comparable degrees (within
  ``peering_ratio``), the link is labelled p2p.
* Otherwise the higher-degree endpoint is assumed to be the provider.

Like all valley-free-based heuristics it produces a single label per
link, independent of the address family semantics — which is exactly the
limitation the paper attacks.  It exists in this repository to provide
the "misinferred" starting annotation for the Figure-2 experiment and a
comparison point for the agreement benchmarks.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Set

from repro.core.annotation import ToRAnnotation
from repro.core.observations import ObservedRoute
from repro.core.relationships import AFI, Link, Relationship, RelationshipSource


@dataclass
class DegreeParameters:
    """Parameters of the degree-ratio heuristic.

    Attributes:
        peering_ratio: Maximum degree ratio for two ASes to be considered
            peers.
        use_transit_degree: Use the number of *customers implied by path
            positions* (transit degree) instead of the plain degree when
            ranking; plain degree is the default, as in the simplest
            published variants.
    """

    peering_ratio: float = 2.5
    use_transit_degree: bool = False

    def __post_init__(self) -> None:
        if self.peering_ratio < 1.0:
            raise ValueError("peering_ratio must be >= 1")


class DegreeBasedInference:
    """Classify links by comparing endpoint degrees."""

    def __init__(self, parameters: Optional[DegreeParameters] = None) -> None:
        self.parameters = parameters or DegreeParameters()

    @staticmethod
    def _degrees(paths: Iterable[Sequence[int]]) -> Dict[int, int]:
        neighbors: Dict[int, Set[int]] = defaultdict(set)
        for path in paths:
            for index in range(len(path) - 1):
                a, b = path[index], path[index + 1]
                if a == b:
                    continue
                neighbors[a].add(b)
                neighbors[b].add(a)
        return {asn: len(adjacent) for asn, adjacent in neighbors.items()}

    @staticmethod
    def _transit_degrees(paths: Iterable[Sequence[int]]) -> Dict[int, int]:
        """Number of distinct ASes observed "below" each AS in some path.

        An AS that appears in the middle of a path transits for the AS
        that follows it (towards the observer side the relationship is
        unknown, so only the origin-side neighbour is counted).
        """
        below: Dict[int, Set[int]] = defaultdict(set)
        for path in paths:
            for index in range(len(path) - 1):
                below[path[index]].add(path[index + 1])
        return {asn: len(members) for asn, members in below.items()}

    def infer_paths(self, paths: Iterable[Sequence[int]], afi: AFI) -> ToRAnnotation:
        """Run the heuristic over raw AS paths (observer-side first)."""
        path_list = [tuple(path) for path in paths]
        if self.parameters.use_transit_degree:
            degrees = self._transit_degrees(path_list)
        else:
            degrees = self._degrees(path_list)
        links: Set[Link] = set()
        for path in path_list:
            for index in range(len(path) - 1):
                if path[index] != path[index + 1]:
                    links.add(Link(path[index], path[index + 1]))
        annotation = ToRAnnotation(afi, source=RelationshipSource.DEGREE)
        ratio = self.parameters.peering_ratio
        for link in links:
            degree_a = degrees.get(link.a, 1) or 1
            degree_b = degrees.get(link.b, 1) or 1
            larger, smaller = max(degree_a, degree_b), min(degree_a, degree_b)
            if larger / smaller <= ratio:
                annotation.set_canonical(link, Relationship.P2P)
            elif degree_a > degree_b:
                annotation.set_canonical(link, Relationship.P2C)
            else:
                annotation.set_canonical(link, Relationship.C2P)
        return annotation

    def infer(self, observations: Iterable[ObservedRoute], afi: AFI) -> ToRAnnotation:
        """Run the heuristic over the distinct paths of some observations."""
        paths = {
            observation.path for observation in observations if observation.afi is afi
        }
        return self.infer_paths(sorted(paths), afi)
