"""Comparing Type-of-Relationship annotations.

The paper's argument hinges on the disagreement between heuristic
inference and the Communities-derived relationships: those disagreements
are the misinferences whose impact Figure 2 quantifies.  This module
provides the agreement/misinference accounting used by the analysis
pipeline, the benchmarks and the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.annotation import ToRAnnotation
from repro.core.relationships import Link, Relationship


@dataclass
class ComparisonReport:
    """Link-level comparison of a candidate annotation against a reference.

    Attributes:
        common_links: Links annotated by both.
        agreements: Links with the same relationship in both.
        disagreements: Links whose relationship differs, with the pair of
            (candidate, reference) relationships.
        only_candidate: Links only the candidate annotated.
        only_reference: Links only the reference annotated.
    """

    common_links: int = 0
    agreements: int = 0
    disagreements: Dict[Link, Tuple[Relationship, Relationship]] = field(default_factory=dict)
    only_candidate: int = 0
    only_reference: int = 0

    @property
    def disagreement_count(self) -> int:
        """Number of links with differing relationships."""
        return len(self.disagreements)

    @property
    def accuracy(self) -> float:
        """Agreement fraction over the common links."""
        if self.common_links == 0:
            return 0.0
        return self.agreements / self.common_links

    @property
    def misinferred_links(self) -> List[Link]:
        """The links the candidate got wrong (relative to the reference)."""
        return sorted(self.disagreements)

    def confusion(self) -> Dict[Tuple[Relationship, Relationship], int]:
        """Counts of (candidate, reference) relationship pairs that disagree."""
        result: Dict[Tuple[Relationship, Relationship], int] = {}
        for pair in self.disagreements.values():
            result[pair] = result.get(pair, 0) + 1
        return result

    def summary(self) -> Dict[str, float]:
        """Compact numeric summary for reports and benchmarks."""
        return {
            "common_links": float(self.common_links),
            "agreements": float(self.agreements),
            "disagreements": float(self.disagreement_count),
            "accuracy": self.accuracy,
            "only_candidate": float(self.only_candidate),
            "only_reference": float(self.only_reference),
        }


def compare_annotations(
    candidate: ToRAnnotation,
    reference: ToRAnnotation,
    links: Optional[Iterable[Link]] = None,
) -> ComparisonReport:
    """Compare a candidate annotation against a reference one.

    ``links`` optionally restricts the comparison, e.g. to the links
    visible in the measured IPv6 paths.
    """
    if candidate.afi is not reference.afi:
        raise ValueError("annotations must describe the same address family")
    candidate_links = set(candidate.links())
    reference_links = set(reference.links())
    if links is not None:
        restriction = set(links)
        candidate_links &= restriction
        reference_links &= restriction
    report = ComparisonReport()
    common = candidate_links & reference_links
    report.common_links = len(common)
    report.only_candidate = len(candidate_links - reference_links)
    report.only_reference = len(reference_links - candidate_links)
    for link in common:
        mine = candidate.get_canonical(link)
        theirs = reference.get_canonical(link)
        if mine is theirs:
            report.agreements += 1
        else:
            report.disagreements[link] = (mine, theirs)
    return report


def misinference_rate(
    candidate: ToRAnnotation,
    reference: ToRAnnotation,
    links: Optional[Iterable[Link]] = None,
) -> float:
    """Fraction of common links the candidate misinfers."""
    report = compare_annotations(candidate, reference, links)
    if report.common_links == 0:
        return 0.0
    return report.disagreement_count / report.common_links
