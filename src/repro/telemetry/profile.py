"""Opt-in per-span profiling hooks: ``cProfile`` + ``tracemalloc``.

Profiling rides *next to* tracing: a :class:`ProfilingConfig` inside
:class:`~repro.telemetry.TelemetryConfig` tells every tracer joined to
the run to wrap its hot spans (pipeline stages, engine runs, pool
batches — :data:`PROFILED_SPANS`) in a deterministic ``cProfile``
capture and, optionally, a ``tracemalloc`` peak sample.  Each profiled
span emits one ``kind: "profile"`` record — the top-N functions by
cumulative time, schema-versioned, sorted keys — which
:meth:`~repro.telemetry.Tracer.flush` appends to ``profile*.jsonl``
*beside* the trace, never into it, so trace readers and the CI trace
smoke are unaffected.  ``repro trace profile`` renders the records.

The same two guarantees tracing established hold here:

* **Off by default, provably free.**  A tracer without a profiling
  config takes one ``is None`` branch per span; no profiler objects
  exist.  With no tracer at all nothing changes (the ``NullTracer``
  path is untouched).
* **Fingerprint-neutral when on.**  ``ProfilingConfig`` lives inside
  ``PipelineConfig.telemetry``, which no stage ``config_slice``
  projects — a profiled run produces byte-identical reports and
  unchanged fingerprints (pinned by tests and the CI profile smoke).
  ``cProfile`` is a deterministic (tracing, not sampling) profiler:
  it observes every call, changing only wall time, never results.

Nesting: ``cProfile`` cannot stack on one thread and ``tracemalloc``
is process-global, so only the *outermost* profiled span on a thread
captures (its capture covers the nested spans' functions anyway);
inner profiled spans simply pass through.
"""

from __future__ import annotations

import cProfile
import glob
import json
import os
import pstats
import threading
import time
import tracemalloc
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

PROFILE_SCHEMA_VERSION = 1
PROFILE_FILENAME = "profile.jsonl"

#: Span names that get wrapped when profiling is on: the pipeline's
#: per-stage spans, the engine's per-run spans, and the pool-batch
#: spans (the only profiled span a pool process opens locally).
PROFILED_SPANS = frozenset({"stage", "propagation", "propagation.batch"})


@dataclass(frozen=True)
class ProfilingConfig:
    """Opt-in profiling rider on a :class:`TelemetryConfig`.

    Frozen and picklable like its carrier, so a sweep's profiling
    choice travels to pool processes and cluster workers inside the
    trace context.

    Attributes:
        top_n: Functions kept per span record, by cumulative time.
        memory: Also sample the ``tracemalloc`` peak across the span
            (costlier than ``cProfile`` — allocation tracing — but
            still deterministic).
    """

    top_n: int = 15
    memory: bool = True


def _function_label(func: tuple) -> str:
    """``file:lineno:name`` with the path collapsed to its basename —
    stable across checkouts, unique enough to find the code."""
    filename, lineno, name = func
    if filename.startswith("<"):  # builtins: ("~", 0, "<built-in ...>")
        return name if filename == "~" else f"{filename}:{name}"
    return f"{os.path.basename(filename)}:{lineno}:{name}"


class SpanProfiler:
    """Wraps span handles of one tracer in profile capture.

    Thread-safe: ``cProfile`` is per-thread (``sys.setprofile`` is
    thread-local), guarded by a thread-local depth flag;
    ``tracemalloc`` is process-global, guarded by a process-wide lock
    so concurrent profiled spans race for one memory sample instead of
    corrupting each other's peaks.
    """

    _MEMORY_LOCK = threading.Lock()
    _MEMORY_BUSY = False

    def __init__(self, config: ProfilingConfig) -> None:
        self.config = config
        self.span_names = PROFILED_SPANS
        self._local = threading.local()

    # -- capture -------------------------------------------------------
    def _acquire_memory(self) -> bool:
        if not self.config.memory:
            return False
        cls = SpanProfiler
        with cls._MEMORY_LOCK:
            if cls._MEMORY_BUSY or tracemalloc.is_tracing():
                return False
            cls._MEMORY_BUSY = True
        tracemalloc.start()
        return True

    def _release_memory(self) -> Optional[Dict[str, int]]:
        current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        cls = SpanProfiler
        with cls._MEMORY_LOCK:
            cls._MEMORY_BUSY = False
        return {"peak_kb": peak // 1024, "current_kb": current // 1024}

    def start(self) -> Optional[tuple]:
        """Begin capture for one span; ``None`` when already inside a
        profiled span on this thread (the outer capture covers us)."""
        if getattr(self._local, "active", False):
            return None
        self._local.active = True
        memory = self._acquire_memory()
        profiler = cProfile.Profile()
        profiler.enable()
        return (profiler, memory)

    def finish(self, token: tuple, span_record: Dict[str, object]) -> Dict[str, object]:
        """End capture and build the ``kind: "profile"`` record."""
        profiler, memory = token
        profiler.disable()
        memory_block = self._release_memory() if memory else None
        self._local.active = False

        stats = pstats.Stats(profiler)
        rows = []
        for func, (cc, nc, tt, ct, _callers) in stats.stats.items():  # type: ignore[attr-defined]
            if func[0] == __file__:
                continue  # our own harness frames
            label = _function_label(func)
            rows.append(
                {
                    "function": label,
                    "ncalls": nc,
                    "tottime": round(tt, 6),
                    "cumtime": round(ct, 6),
                }
            )
        # Deterministic order: cumulative time desc, label as tiebreak.
        rows.sort(key=lambda row: (-row["cumtime"], row["function"]))
        record: Dict[str, object] = {
            "kind": "profile",
            "schema_version": PROFILE_SCHEMA_VERSION,
            "run_id": span_record.get("run_id"),
            "span_id": span_record.get("span_id"),
            "name": span_record.get("name"),
            "attrs": dict(span_record.get("attrs") or {}),
            "top_functions": rows[: self.config.top_n],
            "total_calls": stats.total_calls,  # type: ignore[attr-defined]
            "pid": os.getpid(),
            "time": time.time(),
        }
        if memory_block is not None:
            record["memory"] = memory_block
        return record


class ProfiledSpanHandle:
    """A span handle wrapped in profile capture.

    Delegates the span lifecycle to the real handle; on exit (after the
    span record is finalized, so its attributes include everything
    ``annotate`` added) it hands the profile record to ``sink`` — the
    owning tracer's buffer append.
    """

    __slots__ = ("_handle", "_record", "_profiler", "_sink", "_token")

    def __init__(self, handle, record, profiler: SpanProfiler, sink: Callable) -> None:
        self._handle = handle
        self._record = record
        self._profiler = profiler
        self._sink = sink
        self._token: Optional[tuple] = None

    @property
    def span_id(self):
        return self._handle.span_id

    def annotate(self, **attrs) -> None:
        self._handle.annotate(**attrs)

    def __enter__(self) -> "ProfiledSpanHandle":
        self._token = self._profiler.start()
        self._handle.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        suppress = self._handle.__exit__(exc_type, exc, tb)
        if self._token is not None:
            self._sink(self._profiler.finish(self._token, self._record))
            self._token = None
        return suppress


# ----------------------------------------------------------------------
# reading profiles back (``repro trace profile``)
# ----------------------------------------------------------------------
def profile_files(trace_dir) -> List[str]:
    """All ``profile*.jsonl`` files of a trace directory, sorted."""
    return sorted(glob.glob(os.path.join(os.fspath(trace_dir), "profile*.jsonl")))


def read_profiles(trace_dir) -> List[dict]:
    """Every profile record under ``trace_dir``.

    Raises ``FileNotFoundError`` when the directory holds no profile
    files and ``ValueError`` on an unparsable interior line; a torn
    final line (a concurrent writer mid-append) is skipped, matching
    :func:`repro.telemetry.analyze.read_trace`.
    """
    from repro.telemetry.analyze import parse_jsonl

    files = profile_files(trace_dir)
    if not files:
        raise FileNotFoundError(f"no profile*.jsonl files under {trace_dir!r}")
    records: List[dict] = []
    for path in files:
        records.extend(parse_jsonl(path))
    return records


def profile_rollup(records: Sequence[dict], top_n: int = 10) -> Dict[str, dict]:
    """Aggregate profile records per profiled unit.

    Records group by the most specific label available — the stage name
    for ``stage`` spans, the backend for engine spans, else the span
    name — and their function rows merge by function label (cumulative
    and total times summed, call counts summed), re-ranked by
    cumulative time.
    """
    groups: Dict[str, dict] = {}
    for record in records:
        attrs = record.get("attrs") or {}
        name = str(record.get("name"))
        if attrs.get("stage"):
            label = f"stage:{attrs['stage']}"
        elif attrs.get("backend"):
            label = f"{name}:{attrs['backend']}"
        else:
            label = name
        group = groups.setdefault(
            label,
            {"records": 0, "total_calls": 0, "functions": {}, "peak_kb": 0},
        )
        group["records"] += 1
        group["total_calls"] += int(record.get("total_calls") or 0)
        memory = record.get("memory") or {}
        group["peak_kb"] = max(group["peak_kb"], int(memory.get("peak_kb") or 0))
        for row in record.get("top_functions") or []:
            entry = group["functions"].setdefault(
                str(row.get("function")),
                {"ncalls": 0, "tottime": 0.0, "cumtime": 0.0},
            )
            entry["ncalls"] += int(row.get("ncalls") or 0)
            entry["tottime"] += float(row.get("tottime") or 0.0)
            entry["cumtime"] += float(row.get("cumtime") or 0.0)
    rollup: Dict[str, dict] = {}
    for label, group in sorted(groups.items()):
        functions = [
            {"function": function, **{k: round(v, 6) if isinstance(v, float) else v
                                      for k, v in entry.items()}}
            for function, entry in group["functions"].items()
        ]
        functions.sort(key=lambda row: (-row["cumtime"], row["function"]))
        rollup[label] = {
            "records": group["records"],
            "total_calls": group["total_calls"],
            "peak_kb": group["peak_kb"],
            "top_functions": functions[:top_n],
        }
    return rollup


def render_profiles(records: Sequence[dict], top_n: int = 10) -> List[str]:
    """Human-readable lines behind ``repro trace profile``."""
    rollup = profile_rollup(records, top_n=top_n)
    lines: List[str] = []
    for label, group in rollup.items():
        peak = f", peak {group['peak_kb']:,} kB" if group["peak_kb"] else ""
        lines.append(
            f"{label}  x{group['records']} "
            f"({group['total_calls']:,} calls{peak})"
        )
        if group["top_functions"]:
            lines.append("    cumtime  tottime  ncalls  function")
        for row in group["top_functions"]:
            lines.append(
                f"   {row['cumtime']:8.3f} {row['tottime']:8.3f} "
                f"{row['ncalls']:>7}  {row['function']}"
            )
    return lines


def dump_profiles(records: Sequence[dict]) -> str:
    """Stable JSONL serialization for tests/tools (sorted keys)."""
    return "\n".join(json.dumps(record, sort_keys=True, default=str) for record in records)
