"""Read, join and roll up trace files written by :mod:`repro.telemetry`.

A trace directory holds one or more ``trace*.jsonl`` files (a shared
``trace.jsonl`` plus any per-process files).  :func:`read_trace` merges
them; :func:`build_tree` reassembles the span tree across processes
(a distributed sweep's coordinator, workers and pool processes all
stamp the same ``run_id`` and resolvable parent ids);
:func:`summarize` produces the per-stage / per-engine / counter
rollups behind ``repro trace summary``.
"""

from __future__ import annotations

import glob
import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

SUMMARY_SCHEMA_VERSION = 1


def trace_files(trace_dir) -> List[str]:
    """All ``trace*.jsonl`` files of a trace directory, sorted."""
    return sorted(glob.glob(os.path.join(os.fspath(trace_dir), "trace*.jsonl")))


def parse_jsonl(path) -> List[dict]:
    """Parse one JSONL file, tolerating exactly one *torn* final line.

    A concurrent writer appends whole lines atomically (``O_APPEND``,
    single write), so the only benign malformation a live reader can
    observe is a final line still mid-write: last line of the file,
    no trailing newline.  That record is skipped — it will be complete
    on the next read.  Any *other* unparsable line is real corruption
    and raises ``ValueError``: the CI smoke gate relies on a malformed
    trace failing loudly.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    torn_tail = bool(text) and not text.endswith("\n")
    lines = text.split("\n")
    records: List[dict] = []
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            records.append(json.loads(stripped))
        except json.JSONDecodeError as exc:
            if torn_tail and lineno == len(lines):
                continue  # a concurrent append caught mid-write
            raise ValueError(f"{path}:{lineno}: unparsable trace line") from exc
    return records


def read_trace(trace_dir) -> List[dict]:
    """Every record of every trace file in ``trace_dir``.

    Raises ``FileNotFoundError`` when the directory holds no trace
    files and ``ValueError`` on an unparsable line; a torn final line
    (a live run's flush caught mid-append) is skipped, so monitors can
    read the trace of a running sweep (see :func:`parse_jsonl`).
    """
    files = trace_files(trace_dir)
    if not files:
        raise FileNotFoundError(f"no trace*.jsonl files under {trace_dir!r}")
    records: List[dict] = []
    for path in files:
        records.extend(parse_jsonl(path))
    return records


def spans_of(records: Sequence[dict]) -> List[dict]:
    return [record for record in records if record.get("kind") == "span"]


def counters_of(records: Sequence[dict]) -> List[dict]:
    return [record for record in records if record.get("kind") == "counter"]


# ----------------------------------------------------------------------
# tree assembly
# ----------------------------------------------------------------------
def build_tree(records: Sequence[dict]) -> Tuple[List[dict], List[dict]]:
    """Reassemble the span forest: ``(roots, orphans)``.

    A span is a *root* when it has no parent id; an *orphan* when its
    parent id does not resolve to any span in the record set (a trace
    file is missing or a flush was lost).  Children are attached under
    a ``"children"`` key, ordered by start time.
    """
    spans = spans_of(records)
    by_id: Dict[str, dict] = {}
    for span in spans:
        node = dict(span)
        node["children"] = []
        by_id[span["span_id"]] = node
    roots: List[dict] = []
    orphans: List[dict] = []
    for span in spans:
        node = by_id[span["span_id"]]
        parent_id = span.get("parent_id")
        if parent_id is None:
            roots.append(node)
        elif parent_id in by_id:
            by_id[parent_id]["children"].append(node)
        else:
            orphans.append(node)
    for node in by_id.values():
        node["children"].sort(key=lambda child: child.get("start_time", 0.0))
    roots.sort(key=lambda node: node.get("start_time", 0.0))
    orphans.sort(key=lambda node: node.get("start_time", 0.0))
    return roots, orphans


def render_tree(records: Sequence[dict], max_attrs: int = 4) -> List[str]:
    """Human-readable indented span tree (``repro trace show``)."""
    roots, orphans = build_tree(records)
    lines: List[str] = []

    preferred = ("stage", "backend", "status", "scenario", "task_id",
                 "worker", "engine", "events", "targets")

    def describe(node: dict) -> str:
        attrs = node.get("attrs") or {}
        shown = [f"{key}={attrs[key]}" for key in preferred if key in attrs]
        if not shown:
            shown = [f"{k}={attrs[k]}" for k in sorted(attrs)[:max_attrs]]
        status = node.get("status", "ok")
        marker = "" if status == "ok" else f" [{status}]"
        detail = f" ({', '.join(shown[:max_attrs])})" if shown else ""
        return f"{node['name']}{marker} {node.get('seconds', 0.0):.3f}s{detail}"

    # Iterative walk: a pathological trace (a recursion bug in traced
    # code) can nest deeper than Python's recursion limit, and a render
    # tool must not crash on the traces it exists to debug.
    stack = [(root, 0) for root in reversed(roots)]
    while stack:
        node, depth = stack.pop()
        lines.append("  " * depth + describe(node))
        stack.extend((child, depth + 1) for child in reversed(node["children"]))
    for orphan in orphans:
        lines.append(f"ORPHAN {describe(orphan)}")
    return lines


# ----------------------------------------------------------------------
# rollups
# ----------------------------------------------------------------------
def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (0 for an empty list)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


def _duration_rollup(durations: List[float]) -> Dict[str, float]:
    return {
        "count": len(durations),
        "total_seconds": round(sum(durations), 6),
        "p50_seconds": round(percentile(durations, 0.50), 6),
        "p95_seconds": round(percentile(durations, 0.95), 6),
    }


def summarize(records: Sequence[dict], trace_dir: Optional[str] = None) -> dict:
    """The ``repro trace summary`` payload: rollups over one trace dir.

    Per-stage rollups (count, total, p50/p95, computed vs cached and
    the cache hit rate, artifact bytes), per-engine rollups (events,
    per-phase timings), aggregated counters, and tree health (roots /
    orphans) — everything the acceptance gate compares against the
    sweep's own accounting.
    """
    spans = spans_of(records)
    roots, orphans = build_tree(records)

    stages: Dict[str, dict] = {}
    for span in spans:
        if span.get("name") != "stage":
            continue
        attrs = span.get("attrs") or {}
        entry = stages.setdefault(
            str(attrs.get("stage")),
            {"durations": [], "computed": 0, "cached": 0,
             "artifact_bytes": 0, "verify_seconds": 0.0, "errors": 0},
        )
        entry["durations"].append(float(span.get("seconds", 0.0)))
        status = attrs.get("status")
        if status in ("computed", "cached"):
            entry[status] += 1
        if span.get("status") != "ok":
            entry["errors"] += 1
        entry["artifact_bytes"] += int(attrs.get("artifact_bytes") or 0)
        entry["verify_seconds"] += float(attrs.get("verify_seconds") or 0.0)
    stage_rollup = {}
    for name, entry in stages.items():
        lookups = entry["computed"] + entry["cached"]
        rollup = _duration_rollup(entry["durations"])
        rollup.update(
            computed=entry["computed"],
            cached=entry["cached"],
            errors=entry["errors"],
            cache_hit_rate=round(entry["cached"] / lookups, 4) if lookups else 0.0,
            artifact_bytes=entry["artifact_bytes"],
            verify_seconds=round(entry["verify_seconds"], 6),
        )
        stage_rollup[name] = rollup

    engines: Dict[str, dict] = {}
    phase_names = ("propagation.compress", "propagation.propagate",
                   "propagation.inflate", "propagation.batch")
    phase_groups: Dict[str, Dict[str, List[float]]] = {}
    for span in spans:
        name = span.get("name")
        attrs = span.get("attrs") or {}
        if name == "propagation":
            backend = str(attrs.get("backend", "unknown"))
            entry = engines.setdefault(
                backend,
                {"durations": [], "events": 0, "prefixes": 0, "compression": {}},
            )
            entry["durations"].append(float(span.get("seconds", 0.0)))
            entry["events"] += int(attrs.get("events") or 0)
            entry["prefixes"] += int(attrs.get("prefixes") or 0)
            mode = str(attrs.get("compression", "off"))
            entry["compression"][mode] = entry["compression"].get(mode, 0) + 1
        elif name in phase_names:
            backend = str(attrs.get("backend", "unknown"))
            phases = phase_groups.setdefault(backend, {})
            phases.setdefault(name.split(".", 1)[1], []).append(
                float(span.get("seconds", 0.0))
            )
    engine_rollup = {}
    for backend, entry in engines.items():
        rollup = _duration_rollup(entry["durations"])
        rollup.update(
            events=entry["events"],
            prefixes=entry["prefixes"],
            compression=entry["compression"],
            phases={
                phase: _duration_rollup(durations)
                for phase, durations in phase_groups.get(backend, {}).items()
            },
        )
        engine_rollup[backend] = rollup
    # Phase spans can come from pool processes that never emit the
    # enclosing "propagation" span locally; keep their timings visible.
    for backend, phases in phase_groups.items():
        if backend not in engine_rollup:
            engine_rollup[backend] = {
                "count": 0, "total_seconds": 0.0, "p50_seconds": 0.0,
                "p95_seconds": 0.0, "events": 0, "prefixes": 0,
                "compression": {},
                "phases": {phase: _duration_rollup(d) for phase, d in phases.items()},
            }

    counters: Dict[str, float] = {}
    for record in counters_of(records):
        name = str(record.get("name"))
        counters[name] = counters.get(name, 0) + record.get("value", 1)

    summary = {
        "schema_version": SUMMARY_SCHEMA_VERSION,
        "files": len(trace_files(trace_dir)) if trace_dir is not None else None,
        "runs": sorted({str(r.get("run_id")) for r in records if r.get("run_id")}),
        "spans": {
            "total": len(spans),
            "roots": len(roots),
            "orphans": len(orphans),
            "errors": sum(1 for span in spans if span.get("status") != "ok"),
        },
        "stages": stage_rollup,
        "engines": engine_rollup,
        "counters": counters,
        "retries": int(counters.get("backend.retry", 0)),
        "dead_letters": int(counters.get("queue.task_dead", 0)),
    }
    return summary
