"""Process-local tracer: nested spans, counters and gauges.

The tracer is deliberately tiny and stdlib-only.  A :class:`Tracer`
collects finished records in memory (thread-safe) and appends them to
``trace.jsonl`` in its trace directory on :meth:`Tracer.flush` — one
JSON object per line, ``schema_version`` + sorted keys like every other
report in the repo.  Appends go through a single ``O_APPEND`` write so
several processes (sweep pool workers, cluster workers) can share one
file without interleaving mid-line; readers additionally glob
``trace*.jsonl`` so per-process files merge too.

Telemetry is **off by default**: :func:`get_tracer` returns the shared
:data:`NULL_TRACER` unless something activated a real tracer, and every
``NullTracer`` operation is a constant-time no-op on shared singletons
(no allocation, no locking — the disabled path is benchmark-guarded by
``tests/test_telemetry.py``).  Instrumented code therefore calls
``get_tracer()`` unconditionally; spans and counters cost nothing until
someone opts in via ``--trace-dir`` or
:class:`~repro.telemetry.TelemetryConfig`.

Cross-process propagation uses :class:`TelemetryConfig` as the trace
*context*: run id + parent span id + trace directory.  It is a small
frozen dataclass, picklable, and rides inside
``PipelineConfig.telemetry`` — which no stage ``config_slice`` ever
projects, so tracing a run never changes a fingerprint or an output
byte (pinned by the fingerprint-neutrality tests and the CI trace
smoke).
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional

from repro.telemetry.profile import (
    PROFILE_FILENAME,
    ProfiledSpanHandle,
    ProfilingConfig,
    SpanProfiler,
)

TRACE_SCHEMA_VERSION = 1
TRACE_FILENAME = "trace.jsonl"


@dataclass(frozen=True)
class TelemetryConfig:
    """Trace context: where to write and how to join an existing tree.

    Attributes:
        trace_dir: Directory receiving ``trace.jsonl``; ``None`` keeps
            telemetry off (the default — a disabled config is inert and
            fingerprint-neutral).
        run_id: Trace/run identifier shared by every span of one
            logical run (a sweep stamps its own onto every scenario so
            all workers' spans merge into one tree).
        parent_span_id: Span the receiving process should parent its
            root spans under (e.g. the coordinator's wave span).
        profiling: Opt-in :class:`~repro.telemetry.ProfilingConfig`
            riding with the context, so every process joined to the
            run profiles the same spans.  ``None`` (the default) keeps
            profiling off; like the rest of this config it is in no
            stage's config slice, so turning it on never changes a
            fingerprint or an output byte.
    """

    trace_dir: Optional[str] = None
    run_id: Optional[str] = None
    parent_span_id: Optional[str] = None
    profiling: Optional[ProfilingConfig] = None

    @property
    def enabled(self) -> bool:
        return self.trace_dir is not None

    def child(self, parent_span_id: Optional[str]) -> "TelemetryConfig":
        """The same context re-rooted under ``parent_span_id``."""
        return replace(self, parent_span_id=parent_span_id)


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


class _SpanHandle:
    """Context manager for one open span of a real tracer."""

    __slots__ = ("_tracer", "_record", "_attrs")

    def __init__(self, tracer: "Tracer", record: Dict[str, object]) -> None:
        self._tracer = tracer
        self._record = record
        self._attrs = record["attrs"]

    @property
    def span_id(self) -> str:
        return self._record["span_id"]  # type: ignore[return-value]

    def annotate(self, **attrs) -> None:
        """Attach attributes to the span while it is open."""
        self._attrs.update(attrs)

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        record = self._record
        ended = time.perf_counter()
        record["seconds"] = round(ended - record.pop("_started"), 6)
        record["end_time"] = time.time()
        if exc is not None:
            record["status"] = "error"
            self._attrs.setdefault("error", f"{type(exc).__name__}: {exc}")
        self._tracer._finish_span(record)
        return False


class _NullSpan:
    """Shared no-op span handle (the disabled path allocates nothing)."""

    __slots__ = ()
    span_id = None

    def annotate(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a shared-singleton no-op."""

    __slots__ = ()
    run_id = None
    parent_span_id = None
    trace_dir = None
    pid = None

    def __bool__(self) -> bool:
        return False

    def span(self, name, parent_id=None, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def counter(self, name, value=1, **attrs) -> None:
        pass

    def gauge(self, name, value, **attrs) -> None:
        pass

    def current_span_id(self) -> None:
        return None

    def context(self, parent_span_id=None) -> None:
        return None

    def flush(self) -> None:
        return None


NULL_TRACER = NullTracer()


class Tracer:
    """Collects spans/counters/gauges; thread-safe; flushes to JSONL.

    Span parentage is per-thread (a thread-local stack of open spans);
    a span opened on a thread with no open span parents to
    ``parent_span_id`` — the join point handed over in the trace
    context — unless an explicit ``parent_id`` is given.
    """

    def __init__(
        self,
        trace_dir,
        *,
        run_id: Optional[str] = None,
        parent_span_id: Optional[str] = None,
        filename: str = TRACE_FILENAME,
        profiling: Optional[ProfilingConfig] = None,
    ) -> None:
        self.trace_dir = os.fspath(trace_dir) if trace_dir is not None else None
        self.run_id = run_id or _new_id()
        self.parent_span_id = parent_span_id
        self.filename = filename
        #: Opt-in per-span profiling (``None`` = off; the disabled path
        #: is a single ``is None`` branch per span).
        self.profiling = profiling
        self._profiler = SpanProfiler(profiling) if profiling is not None else None
        #: Creating process — a fork-inherited copy of a tracer is
        #: recognizable by ``tracer.pid != os.getpid()`` (its buffer
        #: belongs to the parent; children must not flush it).
        self.pid = os.getpid()
        self._records: List[Dict[str, object]] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    def __bool__(self) -> bool:
        return True

    @classmethod
    def from_config(cls, config: TelemetryConfig) -> "Tracer":
        return cls(
            config.trace_dir,
            run_id=config.run_id,
            parent_span_id=config.parent_span_id,
            profiling=getattr(config, "profiling", None),
        )

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_span_id(self) -> Optional[str]:
        """The innermost open span on this thread (or the context parent)."""
        stack = self._stack()
        return stack[-1] if stack else self.parent_span_id

    def span(self, name: str, parent_id: Optional[str] = None, **attrs) -> _SpanHandle:
        """Open a nested span; close it by exiting the context manager."""
        stack = self._stack()
        if parent_id is None:
            parent_id = stack[-1] if stack else self.parent_span_id
        record: Dict[str, object] = {
            "kind": "span",
            "schema_version": TRACE_SCHEMA_VERSION,
            "run_id": self.run_id,
            "span_id": _new_id(),
            "parent_id": parent_id,
            "name": name,
            "attrs": dict(attrs),
            "status": "ok",
            "start_time": time.time(),
            "pid": os.getpid(),
            "_started": time.perf_counter(),
        }
        stack.append(record["span_id"])
        handle = _SpanHandle(self, record)
        if self._profiler is not None and name in self._profiler.span_names:
            return ProfiledSpanHandle(handle, record, self._profiler, self._append)
        return handle

    def _finish_span(self, record: Dict[str, object]) -> None:
        stack = self._stack()
        if stack and stack[-1] == record["span_id"]:
            stack.pop()
        with self._lock:
            self._records.append(record)

    def _append(self, record: Dict[str, object]) -> None:
        """Buffer a ready-made record (profile records use this)."""
        with self._lock:
            self._records.append(record)

    def counter(self, name: str, value: int = 1, **attrs) -> None:
        self._emit("counter", name, value, attrs)

    def gauge(self, name: str, value: float, **attrs) -> None:
        self._emit("gauge", name, value, attrs)

    def _emit(self, kind: str, name: str, value, attrs: Dict[str, object]) -> None:
        record = {
            "kind": kind,
            "schema_version": TRACE_SCHEMA_VERSION,
            "run_id": self.run_id,
            "span_id": self.current_span_id(),
            "name": name,
            "value": value,
            "attrs": attrs,
            "time": time.time(),
            "pid": os.getpid(),
        }
        with self._lock:
            self._records.append(record)

    def context(self, parent_span_id: Optional[str] = None) -> TelemetryConfig:
        """A picklable trace context joining new spans to this tracer."""
        if parent_span_id is None:
            parent_span_id = self.current_span_id()
        return TelemetryConfig(
            trace_dir=self.trace_dir,
            run_id=self.run_id,
            parent_span_id=parent_span_id,
            profiling=self.profiling,
        )

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def records(self) -> List[Dict[str, object]]:
        """Snapshot of the unflushed records (tests, introspection)."""
        with self._lock:
            return [dict(record) for record in self._records]

    def flush(self) -> Optional[str]:
        """Append all buffered records to ``<trace_dir>/<filename>``.

        The whole batch goes through one ``O_APPEND`` write, so flushes
        from concurrent processes never interleave mid-line.  Profile
        records flush the same way but to ``profile.jsonl`` — beside
        the trace, never into it, so ``trace*.jsonl`` readers see only
        span/counter records.  Returns the trace path written (``None``
        when nothing was buffered or the tracer has no trace
        directory).
        """
        with self._lock:
            records, self._records = self._records, []
        if not records or self.trace_dir is None:
            return None
        trace_lines, profile_lines = [], []
        for record in records:
            record.pop("_started", None)
            line = json.dumps(record, sort_keys=True, default=str)
            if record.get("kind") == "profile":
                profile_lines.append(line)
            else:
                trace_lines.append(line)
        os.makedirs(self.trace_dir, exist_ok=True)
        path: Optional[str] = None
        if trace_lines:
            path = os.path.join(self.trace_dir, self.filename)
            self._append_file(path, trace_lines)
        if profile_lines:
            self._append_file(
                os.path.join(self.trace_dir, PROFILE_FILENAME), profile_lines
            )
        return path

    @staticmethod
    def _append_file(path: str, lines: List[str]) -> None:
        payload = ("\n".join(lines) + "\n").encode("utf-8")
        fd = os.open(path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644)
        try:
            while payload:
                written = os.write(fd, payload)
                payload = payload[written:]
        finally:
            os.close(fd)


# ----------------------------------------------------------------------
# activation: a process-wide stack of active tracers
# ----------------------------------------------------------------------
_ACTIVE: List[Tracer] = []
_ACTIVE_LOCK = threading.Lock()


def get_tracer():
    """The innermost active tracer, or the no-op :data:`NULL_TRACER`."""
    active = _ACTIVE
    return active[-1] if active else NULL_TRACER


def activate(tracer: Tracer) -> None:
    """Push ``tracer`` onto the process-wide activation stack."""
    with _ACTIVE_LOCK:
        _ACTIVE.append(tracer)


def deactivate(tracer: Tracer) -> None:
    """Pop the most recent activation of ``tracer`` (no-op if absent)."""
    with _ACTIVE_LOCK:
        for index in range(len(_ACTIVE) - 1, -1, -1):
            if _ACTIVE[index] is tracer:
                del _ACTIVE[index]
                return


@contextmanager
def activated(tracer) -> Iterator[None]:
    """Activate ``tracer`` for the duration of the block.

    Accepts ``None`` or a :class:`NullTracer` (the block runs with the
    ambient tracer untouched), so call sites need no conditionals.
    """
    if not tracer:
        yield
        return
    activate(tracer)
    try:
        yield
    finally:
        deactivate(tracer)
