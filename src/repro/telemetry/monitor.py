"""Live observability over a running (or finished) sweep.

:func:`snapshot` joins the two on-disk sources of truth a distributed
sweep leaves behind — the queue SQLite (per-state counts, lease ages,
attempts, dead letters: exactly
:meth:`repro.cluster.queue.TaskQueue.status_report`, embedded verbatim
so ``repro top`` can never disagree with ``repro queue status``) and
the trace directory (cache hit/miss counters, gauges) — into one
schema-versioned dict with derived views: per-wave progress,
per-worker liveness, cache hit rate, an ETA extrapolated from the
completion rate, and a health verdict.

The same snapshot backs three surfaces:

* ``repro top [--once] [--json]`` — a poll loop (or one shot) in the
  terminal,
* ``GET /metrics`` — Prometheus text exposition (version 0.0.4) of
  the queue/wave/worker gauges and every telemetry counter, via
  :class:`MonitorServer` (stdlib ``http.server``; the admin plane the
  roadmap's ``repro serve`` item builds on),
* ``GET /health`` — the verdict as JSON, HTTP 200 for
  ``drained``/``active``/``empty``/``idle`` and 503 for
  ``stalled``/``degraded``.

Verdicts (see ``docs/observability.md``):

* ``drained`` — every task terminal and none dead,
* ``degraded`` — at least one dead letter,
* ``stalled`` — a running task's lease has expired (its worker shows
  no sign of life, the queue will re-assign it),
* ``active`` — pending or running tasks with live leases,
* ``empty`` — a queue with no tasks yet,
* ``idle`` — no queue at all (trace-only monitoring).

Everything is read-only: the monitor never opens the queue for
writing, never mutates a trace, and tolerates a torn trace line from
a live writer (see :func:`repro.telemetry.analyze.parse_jsonl`).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, Tuple

MONITOR_SCHEMA_VERSION = 1

#: HTTP statuses per verdict: healthy surfaces return 200, a sweep
#: needing intervention returns 503 so load balancers / checkers trip.
_HEALTHY_VERDICTS = ("drained", "active", "empty", "idle")


# ----------------------------------------------------------------------
# snapshot assembly
# ----------------------------------------------------------------------
def _queue_report(queue_dir) -> Optional[Dict[str, object]]:
    from repro.cluster.coordinator import queue_path
    from repro.cluster.queue import TaskQueue

    queue_file = queue_path(queue_dir)
    if not queue_file.exists():
        # A read-only monitor must not create an empty queue file.
        raise FileNotFoundError(f"no task queue at {queue_file}")
    return TaskQueue(queue_file).status_report()


def _wave_progress(report: Dict[str, object]) -> Dict[str, Dict[str, int]]:
    """Per-wave status counts derived from the queue roster."""
    waves: Dict[str, Dict[str, int]] = {}
    for task in report.get("tasks", []):  # type: ignore[union-attr]
        wave = str(task.get("wave"))
        bucket = waves.setdefault(wave, {"total": 0})
        bucket["total"] += 1
        status = str(task.get("status"))
        bucket[status] = bucket.get(status, 0) + 1
    return waves


def _worker_liveness(report: Dict[str, object]) -> List[Dict[str, object]]:
    """One row per worker currently holding a lease."""
    workers: Dict[str, Dict[str, object]] = {}
    for row in report.get("running", []):  # type: ignore[union-attr]
        owner = str(row.get("owner"))
        entry = workers.setdefault(
            owner,
            {
                "worker_id": owner,
                "running_tasks": 0,
                "task_ids": [],
                "seconds_since_update": 0.0,
                "lease_seconds_remaining": None,
            },
        )
        entry["running_tasks"] += 1  # type: ignore[operator]
        entry["task_ids"].append(row.get("task_id"))  # type: ignore[union-attr]
        entry["seconds_since_update"] = max(
            float(entry["seconds_since_update"]),  # type: ignore[arg-type]
            float(row.get("seconds_since_update") or 0.0),
        )
        remaining = row.get("lease_seconds_remaining")
        if remaining is not None:
            current = entry["lease_seconds_remaining"]
            entry["lease_seconds_remaining"] = (
                float(remaining)
                if current is None
                else min(float(current), float(remaining))  # type: ignore[arg-type]
            )
        entry["alive"] = (
            entry["lease_seconds_remaining"] is None
            or float(entry["lease_seconds_remaining"]) > 0.0  # type: ignore[arg-type]
        )
    return [workers[owner] for owner in sorted(workers)]


def _progress_and_eta(
    report: Dict[str, object], now: float
) -> Tuple[Dict[str, object], Optional[float]]:
    counts: Dict[str, int] = dict(report.get("counts", {}))  # type: ignore[arg-type]
    total = int(report.get("total_tasks") or 0)
    terminal = counts.get("done", 0) + counts.get("dead", 0)
    progress = {
        "total": total,
        "terminal": terminal,
        "fraction": round(terminal / total, 4) if total else 0.0,
    }
    remaining = total - terminal
    if remaining <= 0 or counts.get("done", 0) < 2:
        return progress, None
    # Completion timestamps reconstructed from the roster: for a
    # terminal task ``seconds_in_state`` measures from its transition.
    finished = sorted(
        now - float(task.get("seconds_in_state") or 0.0)
        for task in report.get("tasks", [])  # type: ignore[union-attr]
        if task.get("status") == "done"
    )
    window = finished[-1] - finished[0]
    if window <= 0:
        return progress, None
    rate = (len(finished) - 1) / window  # tasks per second
    return progress, round(remaining / rate, 1)


def verdict(report: Optional[Dict[str, object]]) -> Dict[str, object]:
    """The health verdict for one queue status report."""
    if report is None:
        return {"verdict": "idle", "reasons": ["no queue directory monitored"]}
    counts: Dict[str, int] = dict(report.get("counts", {}))  # type: ignore[arg-type]
    total = int(report.get("total_tasks") or 0)
    if total == 0:
        return {"verdict": "empty", "reasons": ["queue holds no tasks"]}
    reasons: List[str] = []
    dead = counts.get("dead", 0)
    if dead:
        reasons.append(f"{dead} dead-lettered task(s)")
        return {"verdict": "degraded", "reasons": reasons}
    expired = [
        row
        for row in report.get("running", [])  # type: ignore[union-attr]
        if (row.get("lease_seconds_remaining") or 0.0) <= 0.0
    ]
    if expired:
        reasons.append(
            f"{len(expired)} running task(s) with expired leases: "
            + ", ".join(str(row.get("task_id")) for row in expired[:5])
        )
        return {"verdict": "stalled", "reasons": reasons}
    if counts.get("done", 0) == total:
        return {"verdict": "drained", "reasons": [f"all {total} tasks done"]}
    live = counts.get("pending", 0) + counts.get("running", 0)
    reasons.append(
        f"{counts.get('running', 0)} running, {counts.get('pending', 0)} pending"
    )
    if live:
        return {"verdict": "active", "reasons": reasons}
    # Terminal mix without dead letters and not all done cannot happen
    # with the current status set; classify conservatively.
    return {"verdict": "active", "reasons": reasons}


def _trace_block(trace_dir) -> Optional[Dict[str, object]]:
    from repro.telemetry.analyze import read_trace

    try:
        records = read_trace(trace_dir)
    except FileNotFoundError:
        return None
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    runs = set()
    for record in records:
        run_id = record.get("run_id")
        if run_id:
            runs.add(str(run_id))
        kind = record.get("kind")
        name = str(record.get("name"))
        if kind == "counter":
            counters[name] = counters.get(name, 0) + record.get("value", 1)
        elif kind == "gauge":
            gauges[name] = float(record.get("value") or 0.0)  # last value wins
    hits = counters.get("cache.hit", 0)
    misses = counters.get("cache.miss", 0)
    lookups = hits + misses
    return {
        "runs": len(runs),
        "counters": counters,
        "gauges": gauges,
        "cache": {
            "hits": int(hits),
            "misses": int(misses),
            "hit_rate": round(hits / lookups, 4) if lookups else None,
        },
    }


def snapshot(
    queue_dir=None, trace_dir=None, now: Optional[float] = None
) -> Dict[str, object]:
    """One coherent monitor snapshot (``repro top --once --json``).

    ``queue`` embeds :meth:`TaskQueue.status_report` verbatim — the
    acceptance contract is that ``repro top`` and ``/metrics`` can
    never disagree with ``repro queue status`` because they render the
    same report.  ``waves``/``workers``/``progress``/``eta_seconds``
    are derived views over that report; ``trace`` rolls up the trace
    directory's counters and gauges when one is given.
    """
    if queue_dir is None and trace_dir is None:
        raise ValueError("snapshot needs a queue_dir and/or a trace_dir")
    if now is None:
        now = time.time()
    queue_report = _queue_report(queue_dir) if queue_dir is not None else None
    trace_block = _trace_block(trace_dir) if trace_dir is not None else None
    waves = _wave_progress(queue_report) if queue_report is not None else {}
    workers = _worker_liveness(queue_report) if queue_report is not None else []
    if queue_report is not None:
        progress, eta = _progress_and_eta(queue_report, now)
    else:
        progress, eta = {"total": 0, "terminal": 0, "fraction": 0.0}, None
    return {
        "schema_version": MONITOR_SCHEMA_VERSION,
        "generated_at": round(now, 3),
        "queue_dir": str(queue_dir) if queue_dir is not None else None,
        "trace_dir": str(trace_dir) if trace_dir is not None else None,
        "queue": queue_report,
        "waves": waves,
        "workers": workers,
        "progress": progress,
        "eta_seconds": eta,
        "trace": trace_block,
        "health": verdict(queue_report),
    }


# ----------------------------------------------------------------------
# rendering: terminal and Prometheus text exposition
# ----------------------------------------------------------------------
def render_snapshot(snap: Dict[str, object]) -> List[str]:
    """Human-readable lines behind ``repro top``."""
    lines: List[str] = []
    sources = []
    if snap.get("queue_dir"):
        sources.append(f"queue {snap['queue_dir']}")
    if snap.get("trace_dir"):
        sources.append(f"trace {snap['trace_dir']}")
    lines.append("repro top — " + ", ".join(sources))
    health = snap.get("health") or {}
    lines.append(
        f"  health: {health.get('verdict')} "
        f"({'; '.join(health.get('reasons', []))})"
    )
    queue = snap.get("queue")
    if queue is not None:
        counts = queue.get("counts") or {}
        summary = ", ".join(f"{counts[s]} {s}" for s in sorted(counts))
        lines.append(
            f"  queue: {queue.get('state')}, {queue.get('total_tasks')} "
            f"task(s) ({summary or 'no tasks'})"
        )
        waves = snap.get("waves") or {}
        if waves:
            parts = []
            for wave in sorted(waves, key=lambda w: int(w)):
                bucket = waves[wave]
                done = bucket.get("done", 0)
                parts.append(f"{wave}: {done}/{bucket['total']} done")
            lines.append("  waves: " + " | ".join(parts))
        workers = snap.get("workers") or []
        if workers:
            for worker in workers:
                remaining = worker.get("lease_seconds_remaining")
                lease = (
                    f"lease {remaining:.1f}s left"
                    if remaining is not None
                    else "no lease age"
                )
                lines.append(
                    f"  worker {worker['worker_id']}: "
                    f"{worker['running_tasks']} running, "
                    f"{worker['seconds_since_update']:.1f}s since heartbeat, "
                    f"{lease}"
                )
        else:
            lines.append("  workers: none holding leases")
        progress = snap.get("progress") or {}
        eta = snap.get("eta_seconds")
        lines.append(
            f"  progress: {progress.get('terminal')}/{progress.get('total')} "
            f"terminal ({100 * float(progress.get('fraction') or 0):.0f}%)"
            + (f", eta {eta:.0f}s" if eta is not None else "")
        )
    trace = snap.get("trace")
    if trace is not None:
        cache = trace.get("cache") or {}
        rate = cache.get("hit_rate")
        lines.append(
            f"  cache: {cache.get('hits')} hit(s) / {cache.get('misses')} "
            f"miss(es)"
            + (f" ({rate:.0%} hit rate)" if rate is not None else "")
        )
    return lines


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def prometheus_metrics(snap: Dict[str, object]) -> str:
    """Prometheus text exposition (0.0.4) of one snapshot.

    Queue counts, wave progress and worker liveness gauges come from
    the embedded queue status report; every telemetry counter/gauge of
    the trace directory is exported under ``repro_counter_total`` /
    ``repro_gauge`` with its dotted name as the ``name`` label.
    """
    lines: List[str] = []

    def emit(name: str, value, help_text: str, metric_type: str, labels=None):
        if not any(line.startswith(f"# HELP {name} ") for line in lines):
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {metric_type}")
        label_text = ""
        if labels:
            rendered = ",".join(
                f'{key}="{_escape_label(str(val))}"' for key, val in labels.items()
            )
            label_text = "{" + rendered + "}"
        lines.append(f"{name}{label_text} {value}")

    queue = snap.get("queue")
    if queue is not None:
        emit(
            "repro_queue_total_tasks", int(queue.get("total_tasks") or 0),
            "Tasks in the queue.", "gauge",
        )
        for status in sorted(queue.get("counts") or {}):
            emit(
                "repro_queue_tasks", (queue.get("counts") or {})[status],
                "Tasks by status.", "gauge", {"status": status},
            )
        emit(
            "repro_queue_open", 1 if queue.get("state") == "open" else 0,
            "1 while the coordinator holds the queue open.", "gauge",
        )
        emit(
            "repro_queue_dead_letters", len(queue.get("dead_letters") or []),
            "Quarantined tasks.", "gauge",
        )
        for wave in sorted(snap.get("waves") or {}, key=lambda w: int(w)):
            bucket = (snap.get("waves") or {})[wave]
            for status, count in sorted(bucket.items()):
                if status == "total":
                    continue
                emit(
                    "repro_wave_tasks", count,
                    "Tasks by wave and status.", "gauge",
                    {"wave": wave, "status": status},
                )
            emit(
                "repro_wave_tasks", bucket["total"],
                "Tasks by wave and status.", "gauge",
                {"wave": wave, "status": "total"},
            )
        for worker in snap.get("workers") or []:
            emit(
                "repro_worker_running_tasks", worker["running_tasks"],
                "Running tasks per worker holding a lease.", "gauge",
                {"worker": worker["worker_id"]},
            )
            emit(
                "repro_worker_seconds_since_heartbeat",
                worker["seconds_since_update"],
                "Seconds since the worker last claimed or heartbeat.", "gauge",
                {"worker": worker["worker_id"]},
            )
        progress = snap.get("progress") or {}
        emit(
            "repro_progress_fraction", progress.get("fraction", 0.0),
            "Fraction of tasks terminal.", "gauge",
        )
        eta = snap.get("eta_seconds")
        if eta is not None:
            emit("repro_eta_seconds", eta, "Estimated seconds to drain.", "gauge")
    trace = snap.get("trace")
    if trace is not None:
        for name in sorted(trace.get("counters") or {}):
            emit(
                "repro_counter_total", (trace.get("counters") or {})[name],
                "Telemetry counters summed over the trace directory.",
                "counter", {"name": name},
            )
        for name in sorted(trace.get("gauges") or {}):
            emit(
                "repro_gauge", (trace.get("gauges") or {})[name],
                "Telemetry gauges (last value) from the trace directory.",
                "gauge", {"name": name},
            )
    health = snap.get("health") or {}
    emit(
        "repro_health",
        1 if health.get("verdict") in _HEALTHY_VERDICTS else 0,
        "1 when the verdict is drained/active/empty/idle.", "gauge",
        {"verdict": str(health.get("verdict"))},
    )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# the /metrics + /health server
# ----------------------------------------------------------------------
class MonitorServer:
    """Stdlib HTTP server exposing the snapshot (``repro top --serve``).

    Routes:

    * ``GET /metrics`` — Prometheus text exposition,
    * ``GET /health`` — the verdict as JSON (200 healthy, 503 not),
    * ``GET /`` or ``/snapshot`` — the full snapshot as JSON.

    Every request computes a fresh snapshot — the queue SQLite and the
    trace dir are the state; there is nothing to cache or invalidate.
    Bind ``port=0`` for an ephemeral port (tests); the bound port is
    ``server.port``.
    """

    def __init__(
        self, queue_dir=None, trace_dir=None, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        if queue_dir is None and trace_dir is None:
            raise ValueError("MonitorServer needs a queue_dir and/or a trace_dir")
        self.queue_dir = queue_dir
        self.trace_dir = trace_dir
        monitor = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):  # noqa: A003 - quiet by design
                pass

            def _respond(self, status: int, content_type: str, body: bytes) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0].rstrip("/") or "/"
                try:
                    snap = monitor.snapshot()
                except FileNotFoundError as exc:
                    self._respond(
                        404, "text/plain; charset=utf-8", f"{exc}\n".encode()
                    )
                    return
                except Exception as exc:  # noqa: BLE001 - surface, don't die
                    self._respond(
                        500, "text/plain; charset=utf-8", f"{exc}\n".encode()
                    )
                    return
                if path == "/metrics":
                    self._respond(
                        200,
                        "text/plain; version=0.0.4; charset=utf-8",
                        prometheus_metrics(snap).encode("utf-8"),
                    )
                elif path == "/health":
                    health = dict(snap.get("health") or {})
                    health["schema_version"] = MONITOR_SCHEMA_VERSION
                    status = (
                        200 if health.get("verdict") in _HEALTHY_VERDICTS else 503
                    )
                    self._respond(
                        status,
                        "application/json",
                        (json.dumps(health, sort_keys=True) + "\n").encode(),
                    )
                elif path in ("/", "/snapshot"):
                    self._respond(
                        200,
                        "application/json",
                        (json.dumps(snap, sort_keys=True) + "\n").encode(),
                    )
                else:
                    self._respond(
                        404, "text/plain; charset=utf-8", b"not found\n"
                    )

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._thread: Optional[threading.Thread] = None

    def snapshot(self) -> Dict[str, object]:
        return snapshot(queue_dir=self.queue_dir, trace_dir=self.trace_dir)

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "MonitorServer":
        """Serve on a daemon thread (tests, ``repro top --serve``)."""
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-monitor", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._server.serve_forever()

    def shutdown(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
