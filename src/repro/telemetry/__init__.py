"""Structured tracing, metrics and run provenance (stdlib-only).

Public surface:

* :class:`Tracer` / :data:`NULL_TRACER` / :func:`get_tracer` /
  :func:`activated` — the span/counter emitter and its process-wide
  activation stack (off by default, zero-overhead no-op when off).
* :class:`TelemetryConfig` — the picklable trace context (trace dir,
  run id, parent span id) that rides in ``PipelineConfig.telemetry``
  and through cluster task payloads.
* :func:`read_trace` / :func:`build_tree` / :func:`summarize` /
  :func:`render_tree` — the join/rollup side behind
  ``repro trace show|summary``.
* :class:`ProfilingConfig` / :func:`read_profiles` /
  :func:`profile_rollup` — opt-in per-span ``cProfile`` +
  ``tracemalloc`` capture behind ``repro trace profile``.
* :func:`monitor_snapshot` / :class:`MonitorServer` — the live view
  (``repro top``) and its ``/metrics`` + ``/health`` HTTP plane.
* :mod:`repro.telemetry.history` — the benchmark-history ledger and
  regression gate behind ``repro bench record|compare``.

See ``docs/observability.md`` for the span model and the JSONL schema.
"""

from repro.telemetry.analyze import (
    SUMMARY_SCHEMA_VERSION,
    build_tree,
    parse_jsonl,
    read_trace,
    render_tree,
    summarize,
    trace_files,
)
from repro.telemetry.monitor import (
    MONITOR_SCHEMA_VERSION,
    MonitorServer,
    prometheus_metrics,
    render_snapshot,
)
from repro.telemetry.monitor import snapshot as monitor_snapshot
from repro.telemetry.monitor import verdict as monitor_verdict
from repro.telemetry.profile import (
    PROFILE_FILENAME,
    PROFILE_SCHEMA_VERSION,
    PROFILED_SPANS,
    ProfilingConfig,
    profile_files,
    profile_rollup,
    read_profiles,
    render_profiles,
)
from repro.telemetry.tracer import (
    NULL_TRACER,
    TRACE_FILENAME,
    TRACE_SCHEMA_VERSION,
    NullTracer,
    TelemetryConfig,
    Tracer,
    activate,
    activated,
    deactivate,
    get_tracer,
)

__all__ = [
    "MONITOR_SCHEMA_VERSION",
    "MonitorServer",
    "NULL_TRACER",
    "NullTracer",
    "PROFILED_SPANS",
    "PROFILE_FILENAME",
    "PROFILE_SCHEMA_VERSION",
    "ProfilingConfig",
    "SUMMARY_SCHEMA_VERSION",
    "TRACE_FILENAME",
    "TRACE_SCHEMA_VERSION",
    "TelemetryConfig",
    "Tracer",
    "activate",
    "activated",
    "build_tree",
    "deactivate",
    "get_tracer",
    "monitor_snapshot",
    "monitor_verdict",
    "parse_jsonl",
    "profile_files",
    "profile_rollup",
    "prometheus_metrics",
    "read_profiles",
    "read_trace",
    "render_profiles",
    "render_snapshot",
    "render_tree",
    "summarize",
    "trace_files",
]
