"""Structured tracing, metrics and run provenance (stdlib-only).

Public surface:

* :class:`Tracer` / :data:`NULL_TRACER` / :func:`get_tracer` /
  :func:`activated` — the span/counter emitter and its process-wide
  activation stack (off by default, zero-overhead no-op when off).
* :class:`TelemetryConfig` — the picklable trace context (trace dir,
  run id, parent span id) that rides in ``PipelineConfig.telemetry``
  and through cluster task payloads.
* :func:`read_trace` / :func:`build_tree` / :func:`summarize` /
  :func:`render_tree` — the join/rollup side behind
  ``repro trace show|summary``.

See ``docs/observability.md`` for the span model and the JSONL schema.
"""

from repro.telemetry.analyze import (
    SUMMARY_SCHEMA_VERSION,
    build_tree,
    read_trace,
    render_tree,
    summarize,
    trace_files,
)
from repro.telemetry.tracer import (
    NULL_TRACER,
    TRACE_FILENAME,
    TRACE_SCHEMA_VERSION,
    NullTracer,
    TelemetryConfig,
    Tracer,
    activate,
    activated,
    deactivate,
    get_tracer,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "SUMMARY_SCHEMA_VERSION",
    "TRACE_FILENAME",
    "TRACE_SCHEMA_VERSION",
    "TelemetryConfig",
    "Tracer",
    "activate",
    "activated",
    "build_tree",
    "deactivate",
    "get_tracer",
    "read_trace",
    "render_tree",
    "summarize",
    "trace_files",
]
