"""Benchmark-history ledger and regression gate (``repro bench``).

``benchmarks/run_benchmarks.py`` refreshes the committed
``BENCH_*.json`` trajectory the ROADMAP mandates, but until this module
nothing *compared* runs — a silent 2x regression would merge green.
The ledger turns the trajectory into an enforced invariant:

* :func:`record` appends one entry per benchmark run to an append-only
  directory (``benchmarks/history/``), keyed by git commit + the host
  block every report already carries — one small JSON file per entry,
  so concurrent CI runs never contend and ``git log`` shows the
  trajectory.
* :func:`extract_metrics` flattens a report's ``results`` tree to the
  dotted-path wall-clock leaves (``*wall_seconds``) — the only numbers
  a regression gate can act on; counts and ratios are covered by the
  asserting benchmarks themselves.
* :func:`compare` judges current metrics against a baseline with a
  *relative* noise threshold (default 30%: CI runners are shared; a
  gate that cries wolf gets deleted).  The baseline is the per-metric
  **minimum** over the most recent same-host entries — best-known
  performance, so a slow flake can never ratchet the baseline upward.

Same-host matters: wall-clock comparisons across machines measure the
machines.  :func:`host_key` reduces a host block to the fields that
make timings comparable; ``repro bench compare`` *skips* (exit 0, with
a note) when the ledger has no same-host baseline, unless forced with
``--any-host``.

Exit codes (``repro bench compare``): 0 OK-or-skipped, 1 regression,
2 usage error — the CI gate treats 1 as failure.
"""

from __future__ import annotations

import datetime
import json
import os
import subprocess
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

HISTORY_SCHEMA_VERSION = 1

#: Default relative slowdown tolerated before a metric counts as a
#: regression (current > baseline * (1 + threshold)).
DEFAULT_THRESHOLD = 0.30

#: BENCH report filenames, as written by ``benchmarks/run_benchmarks.py``.
BENCH_GLOB = "BENCH_*.json"


# ----------------------------------------------------------------------
# provenance
# ----------------------------------------------------------------------
def git_info(cwd=None) -> Dict[str, object]:
    """``{"commit": <hex-or-None>, "dirty": <bool-or-None>}`` for the
    checkout at ``cwd`` — ``None`` fields outside a repo or without git.

    Shared by the ``BENCH_*.json`` host block and the history ledger so
    every wall-clock number is attributable to the code that produced
    it.
    """
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        if commit.returncode != 0:
            return {"commit": None, "dirty": None}
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        dirty = bool(status.stdout.strip()) if status.returncode == 0 else None
        return {"commit": commit.stdout.strip(), "dirty": dirty}
    except (OSError, subprocess.SubprocessError):
        return {"commit": None, "dirty": None}


def host_key(host: Optional[Dict[str, object]]) -> str:
    """Collapse a host block to the fields that make wall-clock numbers
    comparable: architecture, core count, interpreter and its
    major.minor (a 3.11 → 3.12 jump changes timings legitimately)."""
    host = host or {}
    python = str(host.get("python") or "?")
    major_minor = ".".join(python.split(".")[:2])
    return (
        f"{host.get('machine') or '?'}"
        f"/{host.get('cpus') or '?'}cpu"
        f"/{host.get('python_implementation') or '?'}"
        f"-{major_minor}"
    )


# ----------------------------------------------------------------------
# metric extraction
# ----------------------------------------------------------------------
def extract_metrics(report: Dict[str, object], prefix: str = "") -> Dict[str, float]:
    """Dotted-path ``*wall_seconds`` leaves of one report's results.

    Only wall-clock timings gate: counts, ratios and budgets are either
    asserted by the benchmarks themselves or not performance at all.
    """
    results = report.get("results", report)
    metrics: Dict[str, float] = {}

    def walk(node, path: str) -> None:
        if isinstance(node, dict):
            for key in sorted(node):
                walk(node[key], f"{path}.{key}" if path else str(key))
        elif isinstance(node, (int, float)) and not isinstance(node, bool):
            leaf = path.rsplit(".", 1)[-1]
            if leaf.endswith("wall_seconds"):
                metrics[path] = float(node)

    walk(results, prefix)
    return metrics


def load_reports(bench_dir) -> Dict[str, Dict[str, object]]:
    """All ``BENCH_*.json`` reports of a directory, by stem."""
    bench_dir = Path(bench_dir)
    reports: Dict[str, Dict[str, object]] = {}
    for path in sorted(bench_dir.glob(BENCH_GLOB)):
        reports[path.stem] = json.loads(path.read_text())
    return reports


def metrics_of_reports(reports: Dict[str, Dict[str, object]]) -> Dict[str, float]:
    """One flat metric namespace over a set of reports
    (``BENCH_pipeline.pipeline_cache.cold_wall_seconds = ...``)."""
    metrics: Dict[str, float] = {}
    for name, report in sorted(reports.items()):
        for path, value in extract_metrics(report).items():
            metrics[f"{name}.{path}"] = value
    return metrics


# ----------------------------------------------------------------------
# the ledger
# ----------------------------------------------------------------------
def record(
    history_dir,
    reports: Dict[str, Dict[str, object]],
    smoke: bool = False,
    commit: Optional[str] = None,
    dirty: Optional[bool] = None,
    recorded_at: Optional[str] = None,
) -> Path:
    """Append one ledger entry for a benchmark run; returns its path.

    ``commit``/``dirty`` default to the reports' host block (which
    carries git provenance since this PR) and fall back to asking git.
    One file per entry — append-only, no read-modify-write, safe under
    concurrent CI runs.
    """
    if not reports:
        raise ValueError("no BENCH_*.json reports to record")
    history_dir = Path(history_dir)
    history_dir.mkdir(parents=True, exist_ok=True)
    host = next(iter(sorted(reports.items())))[1].get("host") or {}
    if commit is None:
        commit = host.get("git_commit")
    if dirty is None:
        dirty = host.get("git_dirty")
    if commit is None:
        info = git_info()
        commit, dirty = info["commit"], info["dirty"]
    if recorded_at is None:
        recorded_at = datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        )
    entry = {
        "schema_version": HISTORY_SCHEMA_VERSION,
        "recorded_at": recorded_at,
        "commit": commit,
        "dirty": dirty,
        "host": {k: v for k, v in host.items() if not k.startswith("git_")},
        "host_key": host_key(host),
        "smoke": bool(smoke),
        "sources": sorted(reports),
        "metrics": metrics_of_reports(reports),
    }
    stamp = recorded_at.replace(":", "").replace("-", "").replace("+0000", "Z")
    short = (commit or "nocommit")[:12]
    kind = "smoke" if smoke else "full"
    path = history_dir / f"{stamp}-{kind}-{short}.json"
    # Append-only: never overwrite an existing entry (same second, same
    # commit → disambiguate).
    suffix = 1
    while path.exists():
        path = history_dir / f"{stamp}-{kind}-{short}-{suffix}.json"
        suffix += 1
    path.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
    return path


def load_entries(history_dir) -> List[Dict[str, object]]:
    """Every ledger entry, oldest first; unreadable files raise."""
    history_dir = Path(history_dir)
    if not history_dir.is_dir():
        return []
    entries = []
    for path in sorted(history_dir.glob("*.json")):
        entry = json.loads(path.read_text())
        entry["_path"] = str(path)
        entries.append(entry)
    entries.sort(key=lambda e: str(e.get("recorded_at") or ""))
    return entries


def baseline(
    entries: Sequence[Dict[str, object]],
    host: Optional[Dict[str, object]],
    smoke: bool = False,
    any_host: bool = False,
    window: int = 10,
) -> Tuple[Dict[str, float], List[Dict[str, object]]]:
    """Per-metric best (minimum) over the last ``window`` comparable
    entries; returns ``(metrics, entries_used)``.

    Comparable = same :func:`host_key` (unless ``any_host``) and same
    smoke/full kind.  The minimum — not the latest — is the baseline:
    a slow flake in the ledger must not loosen the gate.
    """
    key = host_key(host)
    matching = [
        entry
        for entry in entries
        if bool(entry.get("smoke")) == bool(smoke)
        and (any_host or str(entry.get("host_key")) == key)
    ]
    used = matching[-window:]
    best: Dict[str, float] = {}
    for entry in used:
        for metric, value in (entry.get("metrics") or {}).items():
            try:
                value = float(value)
            except (TypeError, ValueError):
                continue
            if metric not in best or value < best[metric]:
                best[metric] = value
    return best, used


def compare(
    current: Dict[str, float],
    base: Dict[str, float],
    threshold: float = DEFAULT_THRESHOLD,
) -> Dict[str, object]:
    """Judge ``current`` against ``base`` metric by metric.

    A metric regresses when ``current > base * (1 + threshold)``.
    Metrics present on only one side are reported (new scenarios appear,
    old ones get renamed) but never fail the gate.
    """
    regressions = []
    improvements = []
    compared = 0
    for metric in sorted(set(current) & set(base)):
        now, then = current[metric], base[metric]
        compared += 1
        if then <= 0:
            continue
        ratio = now / then
        row = {
            "metric": metric,
            "current_seconds": round(now, 6),
            "baseline_seconds": round(then, 6),
            "ratio": round(ratio, 4),
        }
        if ratio > 1.0 + threshold:
            regressions.append(row)
        elif ratio < 1.0 - threshold:
            improvements.append(row)
    return {
        "schema_version": HISTORY_SCHEMA_VERSION,
        "threshold": threshold,
        "compared": compared,
        "only_current": sorted(set(current) - set(base)),
        "only_baseline": sorted(set(base) - set(current)),
        "regressions": regressions,
        "improvements": improvements,
        "ok": not regressions,
    }


def render_comparison(result: Dict[str, object]) -> List[str]:
    """Human-readable lines behind ``repro bench compare``."""
    lines = [
        f"compared {result['compared']} metric(s) at "
        f"±{100 * float(result['threshold']):.0f}% threshold"
    ]
    for row in result["regressions"]:
        lines.append(
            f"  REGRESSION {row['metric']}: {row['current_seconds']}s vs "
            f"baseline {row['baseline_seconds']}s ({row['ratio']}x)"
        )
    for row in result["improvements"]:
        lines.append(
            f"  improved {row['metric']}: {row['current_seconds']}s vs "
            f"baseline {row['baseline_seconds']}s ({row['ratio']}x)"
        )
    if result["only_current"]:
        lines.append(
            f"  new metric(s) without baseline: "
            f"{', '.join(result['only_current'][:5])}"
            + (" ..." if len(result["only_current"]) > 5 else "")
        )
    if not result["regressions"]:
        lines.append("  no regressions")
    return lines
