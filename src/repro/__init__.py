"""Reproduction of "Detecting and Assessing the Hybrid IPv4/IPv6 AS Relationships".

Giotsas & Zhou, SIGCOMM 2011.

The package is organised as follows:

* :mod:`repro.core` — the paper's contribution: relationship inference
  from BGP Communities and Local Preference, hybrid-link detection,
  valley-path analysis, customer-tree metrics and the Figure-2
  correction experiment.
* :mod:`repro.topology` — AS-level topology substrate (annotated graph,
  synthetic Internet generator, serialization).
* :mod:`repro.bgp` — BGP substrate (attributes, policies, speakers,
  route propagation).
* :mod:`repro.collectors` — RouteViews / RIPE RIS substitute (MRT-like
  records, collectors, archives).
* :mod:`repro.irr` — community documentation substrate (dictionaries,
  registry, free-text parser).
* :mod:`repro.inference` — baseline ToR algorithms (Gao 2001,
  degree-based) and comparison tooling.
* :mod:`repro.analysis` — the measurement pipeline and the Section-3
  statistics.
* :mod:`repro.datasets` — synthetic snapshot builder and hand-built
  scenarios.
"""

from repro.core.relationships import AFI, HybridType, Link, Relationship

__version__ = "1.0.0"

__all__ = ["AFI", "HybridType", "Link", "Relationship", "__version__"]
