"""An archive of collector snapshots, with a pybgpstream-like reader.

The paper's pipeline iterates over daily RIB dumps from several
collectors.  :class:`CollectorArchive` plays that role: it stores the
:class:`~repro.collectors.mrt.TableDumpRecord` lines produced by each
collector for each snapshot date, can persist them to plain-text dump
files, and exposes a flat record iterator similar in spirit to
``pybgpstream.BGPStream`` (filter by project, collector, address family
and date).
"""

from __future__ import annotations

import datetime as _dt
import json
from collections import defaultdict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.relationships import AFI
from repro.collectors.collector import Collector
from repro.collectors.mrt import TableDumpRecord, parse_table_dump, write_table_dump


@dataclass(frozen=True, order=True)
class SnapshotKey:
    """Identifies one archived snapshot: a collector on a given date."""

    date: _dt.date
    collector: str


class CollectorArchive:
    """In-memory (and optionally on-disk) archive of RIB snapshots."""

    def __init__(self) -> None:
        self._snapshots: Dict[SnapshotKey, List[TableDumpRecord]] = defaultdict(list)
        self._projects: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def add_snapshot(
        self,
        collector: str,
        date: _dt.date,
        records: Iterable[TableDumpRecord],
        project: str = "",
    ) -> SnapshotKey:
        """Store the records of one collector snapshot."""
        key = SnapshotKey(date=date, collector=collector)
        self._snapshots[key].extend(records)
        if project:
            self._projects[collector] = project
        return key

    def add_collection(
        self, collector: Collector, date: _dt.date, records: Iterable[TableDumpRecord]
    ) -> SnapshotKey:
        """Store records produced by a :class:`Collector` object."""
        return self.add_snapshot(collector.name, date, records, project=collector.project)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def collectors(self) -> List[str]:
        """Names of all collectors with at least one snapshot."""
        return sorted({key.collector for key in self._snapshots})

    @property
    def dates(self) -> List[_dt.date]:
        """All snapshot dates present in the archive."""
        return sorted({key.date for key in self._snapshots})

    def project_of(self, collector: str) -> str:
        """The project a collector belongs to ('' when unknown)."""
        return self._projects.get(collector, "")

    def snapshots(self) -> List[SnapshotKey]:
        """All (date, collector) snapshot keys, sorted."""
        return sorted(self._snapshots)

    def records(
        self,
        afi: Optional[AFI] = None,
        collector: Optional[str] = None,
        project: Optional[str] = None,
        date: Optional[_dt.date] = None,
    ) -> Iterator[TableDumpRecord]:
        """Iterate over archived records with pybgpstream-style filters."""
        for key in self.snapshots():
            if collector is not None and key.collector != collector:
                continue
            if date is not None and key.date != date:
                continue
            if project is not None and self.project_of(key.collector) != project:
                continue
            for record in self._snapshots[key]:
                if afi is not None and record.afi is not afi:
                    continue
                yield record

    def record_count(self, afi: Optional[AFI] = None) -> int:
        """Total number of archived records (optionally per family)."""
        return sum(1 for _ in self.records(afi=afi))

    def vantage_points(self, afi: Optional[AFI] = None) -> List[int]:
        """Distinct vantage-point ASNs appearing in the archive."""
        return sorted({record.peer_as for record in self.records(afi=afi)})

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    #: Sidecar file recording the collector -> project mapping, so that
    #: ``records(project=...)`` keeps working after a save/load cycle.
    PROJECTS_FILENAME = "projects.json"

    @staticmethod
    def _dump_filename(key: SnapshotKey) -> str:
        return f"{key.collector}.rib.{key.date.strftime('%Y%m%d')}.txt"

    def save(self, directory: Path) -> List[Path]:
        """Write every snapshot to ``directory`` as a text dump file.

        A ``projects.json`` sidecar preserves the collector -> project
        mapping; :meth:`load` reads it back when present.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written = []
        for key, records in sorted(self._snapshots.items()):
            path = directory / self._dump_filename(key)
            path.write_text(write_table_dump(records), encoding="utf-8")
            written.append(path)
        (directory / self.PROJECTS_FILENAME).write_text(
            json.dumps(dict(sorted(self._projects.items())), indent=2) + "\n",
            encoding="utf-8",
        )
        return written

    @classmethod
    def load(cls, directory: Path) -> "CollectorArchive":
        """Load an archive previously written by :meth:`save`.

        Collector names may themselves contain dots (``route-views.sydney``),
        so the filename is parsed from the right: everything before the
        trailing ``.rib.YYYYMMDD.txt`` suffix is the collector name.
        """
        directory = Path(directory)
        archive = cls()
        projects: Dict[str, str] = {}
        projects_path = directory / cls.PROJECTS_FILENAME
        if projects_path.exists():
            projects = json.loads(projects_path.read_text(encoding="utf-8"))
        for path in sorted(directory.glob("*.rib.*.txt")):
            collector, ribtag, datestr = path.name[: -len(".txt")].rsplit(".", 2)
            if ribtag != "rib" or not collector:
                continue
            date = _dt.datetime.strptime(datestr, "%Y%m%d").date()
            records = parse_table_dump(path.read_text(encoding="utf-8"), collector=collector)
            archive.add_snapshot(
                collector, date, records, project=projects.get(collector, "")
            )
        return archive

    def __len__(self) -> int:
        return sum(len(records) for records in self._snapshots.values())
