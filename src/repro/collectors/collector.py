"""Route collectors and their vantage points.

A *collector* (RouteViews' ``route-views6``, RIPE RIS' ``rrc00`` ...)
maintains BGP sessions with a set of *vantage points*: operator ASes
that feed it their routing tables.  The paper's raw material is the
union of the RIB snapshots archived by those collectors.

In this reproduction the vantage points are ASes of the synthetic
topology; a collector reads their converged Loc-RIBs out of a
:class:`~repro.bgp.propagation.PropagationResult` and archives them as
:class:`~repro.collectors.mrt.TableDumpRecord` lines, exactly the shape
the measurement pipeline would get from ``bgpdump``.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.relationships import AFI
from repro.bgp.propagation import PropagationResult
from repro.collectors.mrt import TableDumpRecord

#: Default snapshot timestamp: 2010-08-20 00:00:00 UTC, inside the
#: August 2010 measurement window used by the paper.
DEFAULT_TIMESTAMP = 1282262400


@dataclass(frozen=True)
class VantagePoint:
    """One full-feed peering session of a collector.

    Attributes:
        asn: The vantage-point AS.
        peer_ip: Address of the session (synthetic but stable).
        exports_local_pref: Whether the feed exports LOCAL_PREF.  Real
            archives contain a mix; the LocPrf part of the methodology
            can only use feeds where this is True.
        afis: The address families the session carries.
    """

    asn: int
    peer_ip: str
    exports_local_pref: bool = True
    afis: Tuple[AFI, ...] = (AFI.IPV4, AFI.IPV6)

    def carries(self, afi: AFI) -> bool:
        """True when the session carries routes of the given family."""
        return afi in self.afis


def _synthetic_peer_ip(collector_index: int, asn: int, afi: AFI) -> str:
    """Deterministic, collision-free session addresses for vantage points."""
    if afi is AFI.IPV4:
        base = int(ipaddress.IPv4Address("198.51.100.0")) + collector_index * 256
        return str(ipaddress.IPv4Address(base + (asn % 250) + 1))
    base = int(ipaddress.IPv6Address("2001:db8:ffff::")) + (collector_index << 64)
    return str(ipaddress.IPv6Address(base + asn))


@dataclass
class Collector:
    """A RouteViews / RIPE-RIS style route collector."""

    name: str
    project: str = "routeviews"
    vantage_points: List[VantagePoint] = field(default_factory=list)

    def add_vantage_point(
        self,
        asn: int,
        peer_ip: Optional[str] = None,
        exports_local_pref: bool = True,
        afis: Tuple[AFI, ...] = (AFI.IPV4, AFI.IPV6),
    ) -> VantagePoint:
        """Register a vantage point feeding this collector."""
        if peer_ip is None:
            peer_ip = _synthetic_peer_ip(len(self.name) % 16, asn, afis[0])
        vantage = VantagePoint(
            asn=asn, peer_ip=peer_ip, exports_local_pref=exports_local_pref, afis=afis
        )
        self.vantage_points.append(vantage)
        return vantage

    @property
    def vantage_asns(self) -> List[int]:
        """ASNs of all vantage points."""
        return sorted(v.asn for v in self.vantage_points)

    def collect(
        self,
        result: PropagationResult,
        afi: Optional[AFI] = None,
        timestamp: int = DEFAULT_TIMESTAMP,
    ) -> List[TableDumpRecord]:
        """Archive a RIB snapshot from every vantage point.

        Each vantage point contributes its best route for every prefix it
        can reach, restricted to ``afi`` when given.
        """
        records: List[TableDumpRecord] = []
        for vantage in self.vantage_points:
            if vantage.asn not in result.speakers:
                continue
            snapshot = result.snapshot(vantage.asn)
            for route in snapshot.routes(afi):
                if not vantage.carries(route.afi):
                    continue
                records.append(
                    TableDumpRecord.from_route(
                        route,
                        peer_ip=vantage.peer_ip,
                        timestamp=timestamp,
                        collector=self.name,
                        include_local_pref=vantage.exports_local_pref,
                    )
                )
        return records


def default_collectors(
    vantage_asns: Sequence[int],
    collectors_per_project: int = 2,
    exports_local_pref_fraction: float = 0.7,
) -> List[Collector]:
    """Build a plausible set of collectors over the given vantage ASes.

    Vantage points are distributed round-robin over RouteViews-style and
    RIS-style collectors; a deterministic fraction of the feeds export
    LOCAL_PREF (the rest report 0, as many real feeds do).
    """
    if not vantage_asns:
        raise ValueError("at least one vantage AS is required")
    names = [f"route-views{index or ''}" for index in range(collectors_per_project)]
    names += [f"rrc{index:02d}" for index in range(collectors_per_project)]
    collectors = [
        Collector(name=name, project="routeviews" if name.startswith("route-views") else "ris")
        for name in names
    ]
    for position, asn in enumerate(vantage_asns):
        collector = collectors[position % len(collectors)]
        exports_local_pref = (position % 10) < int(round(exports_local_pref_fraction * 10))
        collector.add_vantage_point(asn, exports_local_pref=exports_local_pref)
    return collectors
