"""Route collectors and their vantage points.

A *collector* (RouteViews' ``route-views6``, RIPE RIS' ``rrc00`` ...)
maintains BGP sessions with a set of *vantage points*: operator ASes
that feed it their routing tables.  The paper's raw material is the
union of the RIB snapshots archived by those collectors.

In this reproduction the vantage points are ASes of the synthetic
topology; a collector reads their converged Loc-RIBs out of a
:class:`~repro.bgp.propagation.PropagationResult` and archives them as
:class:`~repro.collectors.mrt.TableDumpRecord` lines, exactly the shape
the measurement pipeline would get from ``bgpdump``.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.relationships import AFI
from repro.bgp.propagation import PropagationResult
from repro.collectors.mrt import TableDumpRecord

#: Default snapshot timestamp: 2010-08-20 00:00:00 UTC, inside the
#: August 2010 measurement window used by the paper.
DEFAULT_TIMESTAMP = 1282262400


@dataclass(frozen=True)
class VantagePoint:
    """One full-feed peering session of a collector.

    Attributes:
        asn: The vantage-point AS.
        peer_ip: Address of the session (synthetic but stable).
        exports_local_pref: Whether the feed exports LOCAL_PREF.  Real
            archives contain a mix; the LocPrf part of the methodology
            can only use feeds where this is True.
        afis: The address families the session carries.
    """

    asn: int
    peer_ip: str
    exports_local_pref: bool = True
    afis: Tuple[AFI, ...] = (AFI.IPV4, AFI.IPV6)

    def carries(self, afi: AFI) -> bool:
        """True when the session carries routes of the given family."""
        return afi in self.afis


#: Collector ids below this bound are reserved for explicitly indexed
#: collectors (``Collector(index=...)``); interned fallback ids start
#: here so the two spaces can never collide.
_EXPLICIT_INDEX_LIMIT = 1024

#: Registration-order identifiers for collector names without an
#: explicit index.  Interning the *full* name guarantees two distinct
#: collectors never share an id (the previous ``len(name) % 16``
#: collided for same-length names such as
#: ``route-views1``/``route-views2``), which in turn keeps the derived
#: session addresses collision-free — but the id then depends on the
#: order collectors were first seen in the process, so reproducible
#: archives (the dataset builder) assign explicit indexes instead.
_collector_ids: Dict[str, int] = {}


def _collector_id(name: str) -> int:
    """A unique, process-stable integer id for a collector name."""
    return _EXPLICIT_INDEX_LIMIT + _collector_ids.setdefault(name, len(_collector_ids))


def _synthetic_peer_ip(collector_index: int, asn: int, afi: AFI, position: int) -> str:
    """Collision-free session addresses for vantage points.

    Each collector id owns a disjoint block (a /16 for IPv4, a /64 for
    IPv6).  Inside the block the offset is the session's registration
    position for IPv4 (4-byte ASNs do not fit 16 bits) and the position
    combined with the vantage ASN for IPv6 (keeping the ASN readable in
    the address); no modulus is applied anywhere, so two distinct
    sessions can never map to the same address — even two sessions of
    the same AS on one collector.  Explicitly indexed collectors get
    fully reproducible addresses; interned ids are deterministic given
    the order collectors are first seen in the process.
    """
    if afi is AFI.IPV4:
        if position >= 2 ** 16:
            raise ValueError(
                "too many vantage points for one synthetic IPv4 collector block"
            )
        base = int(ipaddress.IPv4Address("198.51.100.0")) + collector_index * 2 ** 16
        if base + position >= 2 ** 32:
            raise ValueError("too many collectors for the synthetic IPv4 address plan")
        return str(ipaddress.IPv4Address(base + position))
    if not 0 <= asn < 2 ** 32:
        raise ValueError(f"AS{asn} is not a valid 4-byte AS number")
    base = int(ipaddress.IPv6Address("2001:db8:ffff::")) + (collector_index << 64)
    return str(ipaddress.IPv6Address(base + (position << 32) + asn))


@dataclass
class Collector:
    """A RouteViews / RIPE-RIS style route collector.

    ``index`` pins the collector's synthetic address block.  Collector
    sets meant to produce *reproducible* archives (the dataset builder)
    assign each collector a distinct index; without one, a unique id is
    interned per name in registration order — collision-free within the
    process, but dependent on what was created before.
    """

    name: str
    project: str = "routeviews"
    vantage_points: List[VantagePoint] = field(default_factory=list)
    index: Optional[int] = None

    def __post_init__(self) -> None:
        if self.index is not None and not 0 <= self.index < _EXPLICIT_INDEX_LIMIT:
            raise ValueError(
                f"collector index must be within [0, {_EXPLICIT_INDEX_LIMIT})"
            )

    def add_vantage_point(
        self,
        asn: int,
        peer_ip: Optional[str] = None,
        exports_local_pref: bool = True,
        afis: Tuple[AFI, ...] = (AFI.IPV4, AFI.IPV6),
    ) -> VantagePoint:
        """Register a vantage point feeding this collector."""
        if peer_ip is None:
            collector_id = (
                self.index if self.index is not None else _collector_id(self.name)
            )
            peer_ip = _synthetic_peer_ip(
                collector_id, asn, afis[0], position=len(self.vantage_points)
            )
        vantage = VantagePoint(
            asn=asn, peer_ip=peer_ip, exports_local_pref=exports_local_pref, afis=afis
        )
        self.vantage_points.append(vantage)
        return vantage

    @property
    def vantage_asns(self) -> List[int]:
        """ASNs of all vantage points."""
        return sorted(v.asn for v in self.vantage_points)

    def collect(
        self,
        result: PropagationResult,
        afi: Optional[AFI] = None,
        timestamp: int = DEFAULT_TIMESTAMP,
    ) -> Iterator[TableDumpRecord]:
        """Archive a RIB snapshot from every vantage point.

        Each vantage point contributes its best route for every prefix it
        can reach, restricted to ``afi`` when given.  Records are yielded
        lazily so the archive (or an extraction pass) can consume them in
        a single stream without materializing a per-collector list.
        """
        for vantage in self.vantage_points:
            if vantage.asn not in result.speakers:
                continue
            snapshot = result.snapshot(vantage.asn)
            for route in snapshot.routes(afi):
                if not vantage.carries(route.afi):
                    continue
                yield TableDumpRecord.from_route(
                    route,
                    peer_ip=vantage.peer_ip,
                    timestamp=timestamp,
                    collector=self.name,
                    include_local_pref=vantage.exports_local_pref,
                )


def default_collectors(
    vantage_asns: Sequence[int],
    collectors_per_project: int = 2,
    exports_local_pref_fraction: float = 0.7,
) -> List[Collector]:
    """Build a plausible set of collectors over the given vantage ASes.

    Vantage points are distributed round-robin over RouteViews-style and
    RIS-style collectors; a deterministic fraction of the feeds export
    LOCAL_PREF (the rest report 0, as many real feeds do).
    """
    if not vantage_asns:
        raise ValueError("at least one vantage AS is required")
    names = [f"route-views{index or ''}" for index in range(collectors_per_project)]
    names += [f"rrc{index:02d}" for index in range(collectors_per_project)]
    # Explicit indexes make the synthetic peer addresses (and therefore
    # the archived dump files) a pure function of this collector set,
    # independent of any collectors created earlier in the process.
    collectors = [
        Collector(
            name=name,
            project="routeviews" if name.startswith("route-views") else "ris",
            index=position,
        )
        for position, name in enumerate(names)
    ]
    for position, asn in enumerate(vantage_asns):
        collector = collectors[position % len(collectors)]
        exports_local_pref = (position % 10) < int(round(exports_local_pref_fraction * 10))
        collector.add_vantage_point(asn, exports_local_pref=exports_local_pref)
    return collectors
