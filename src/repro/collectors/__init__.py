"""Collector substrate: MRT-like records, collectors, vantage points, archives."""

from repro.collectors.archive import CollectorArchive, SnapshotKey
from repro.collectors.collector import (
    DEFAULT_TIMESTAMP,
    Collector,
    VantagePoint,
    default_collectors,
)
from repro.collectors.mrt import (
    MRTFormatError,
    TableDumpRecord,
    parse_table_dump,
    write_table_dump,
)

__all__ = [
    "CollectorArchive",
    "SnapshotKey",
    "DEFAULT_TIMESTAMP",
    "Collector",
    "VantagePoint",
    "default_collectors",
    "MRTFormatError",
    "TableDumpRecord",
    "parse_table_dump",
    "write_table_dump",
]
