"""MRT-like RIB dump records.

RouteViews and RIPE RIS publish BGP table snapshots in the binary MRT
format, which analysis pipelines usually consume through ``bgpdump``'s
pipe-separated text rendering.  This module implements that *text*
rendering — one line per (vantage point, prefix) — plus a parser, so the
measurement pipeline in :mod:`repro.analysis` is written exactly the way
it would be against real ``bgpdump`` output::

    TABLE_DUMP2|1282348800|B|192.0.2.1|64500|2001:db8::/32|64500 64501 64510|IGP|...|300|0|64500:200 64501:100|NAG||

Field order (matching ``bgpdump -m``):

``type|timestamp|flag|peer_ip|peer_as|prefix|as_path|origin|next_hop|local_pref|med|communities|atomic_aggregate|aggregator``

The ``local_pref`` field is *empty* when the vantage feed does not
export LOCAL_PREF (as ``bgpdump`` renders an absent attribute) and
carries the numeric value otherwise — including a genuine ``0``.
Earlier revisions serialized absent LOCAL_PREF as ``0``, which conflated
non-exporting feeds with feeds that export LOCAL_PREF 0; the parser maps
an empty field back to ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.relationships import AFI
from repro.bgp.attributes import ASPath, Community, Origin
from repro.bgp.messages import Route
from repro.bgp.prefixes import Prefix

#: The record type emitted for RIB snapshots, as bgpdump does.
TABLE_DUMP2 = "TABLE_DUMP2"


class MRTFormatError(ValueError):
    """Raised when an MRT text line cannot be parsed."""


@dataclass(frozen=True)
class TableDumpRecord:
    """One line of a RIB table dump.

    Attributes:
        timestamp: Unix timestamp of the snapshot.
        peer_ip: Address of the vantage-point peering session.
        peer_as: AS number of the vantage point.
        prefix: The routed prefix.
        as_path: AS path as announced by the vantage point (the vantage
            AS itself is the first hop).
        origin: BGP ORIGIN attribute.
        next_hop: Next hop address (cosmetic in this reproduction).
        local_pref: LOCAL_PREF as reported by the vantage point's feed;
            ``None`` when the feed does not export it (``0`` is a valid
            exported value and is kept distinct from "absent").
        med: Multi-exit discriminator.
        communities: Communities attached to the route.
        collector: Name of the collector that archived the record.
    """

    timestamp: int
    peer_ip: str
    peer_as: int
    prefix: Prefix
    as_path: ASPath
    origin: Origin = Origin.IGP
    next_hop: str = ""
    local_pref: Optional[int] = None
    med: int = 0
    communities: Tuple[Community, ...] = ()
    collector: str = ""

    @property
    def afi(self) -> AFI:
        """Address family of the record's prefix."""
        return self.prefix.afi

    def to_line(self) -> str:
        """Serialize to the bgpdump pipe-separated text form."""
        communities = " ".join(str(c) for c in self.communities)
        fields = [
            TABLE_DUMP2,
            str(self.timestamp),
            "B",
            self.peer_ip,
            str(self.peer_as),
            str(self.prefix),
            str(self.as_path),
            str(self.origin),
            self.next_hop,
            "" if self.local_pref is None else str(self.local_pref),
            str(self.med),
            communities,
            "NAG",
            "",
        ]
        return "|".join(fields)

    @classmethod
    def from_line(cls, line: str, collector: str = "") -> "TableDumpRecord":
        """Parse a bgpdump-style text line."""
        parts = line.rstrip("\n").split("|")
        if len(parts) < 12:
            raise MRTFormatError(f"expected at least 12 fields, got {len(parts)}: {line!r}")
        if parts[0] != TABLE_DUMP2:
            raise MRTFormatError(f"unsupported record type {parts[0]!r}")
        try:
            timestamp = int(parts[1])
            peer_as = int(parts[4])
            prefix = Prefix(parts[5])
            as_path = ASPath.parse(parts[6])
            origin = Origin(parts[7]) if parts[7] else Origin.IGP
            local_pref = int(parts[9]) if parts[9] else None
            med = int(parts[10]) if parts[10] else 0
        except (ValueError, KeyError) as exc:
            raise MRTFormatError(f"malformed record: {line!r}") from exc
        communities: List[Community] = []
        if parts[11]:
            for token in parts[11].split():
                try:
                    communities.append(Community.parse(token))
                except ValueError:
                    # Real dumps contain extended/large communities the
                    # analysis does not interpret; skip them silently.
                    continue
        return cls(
            timestamp=timestamp,
            peer_ip=parts[3],
            peer_as=peer_as,
            prefix=prefix,
            as_path=as_path,
            origin=origin,
            next_hop=parts[8],
            local_pref=local_pref,
            med=med,
            communities=tuple(communities),
            collector=collector,
        )

    @classmethod
    def from_route(
        cls,
        route: Route,
        peer_ip: str,
        timestamp: int,
        collector: str = "",
        include_local_pref: bool = True,
    ) -> "TableDumpRecord":
        """Build the record a collector would archive for a vantage route.

        The AS path archived by the collector starts with the vantage AS
        itself (the route is announced over the collector session with
        the vantage AS prepended); LOCAL_PREF is included only for feeds
        configured to export it, mirroring the mix of feeds found in the
        real archives.  Non-exporting feeds archive an absent (``None``)
        LOCAL_PREF, never a ``0``.
        """
        return cls(
            timestamp=timestamp,
            peer_ip=peer_ip,
            peer_as=route.holder,
            prefix=route.prefix,
            as_path=ASPath(route.full_path()),
            origin=route.attributes.origin,
            next_hop="",
            local_pref=route.local_pref if include_local_pref else None,
            med=route.attributes.med,
            communities=route.communities,
            collector=collector,
        )


def write_table_dump(records: Sequence[TableDumpRecord]) -> str:
    """Serialize many records to a text blob (one line each)."""
    return "\n".join(record.to_line() for record in records) + ("\n" if records else "")


def parse_table_dump(text: str, collector: str = "") -> List[TableDumpRecord]:
    """Parse a text blob produced by :func:`write_table_dump`."""
    records = []
    for line in text.splitlines():
        if not line.strip():
            continue
        records.append(TableDumpRecord.from_line(line, collector=collector))
    return records
