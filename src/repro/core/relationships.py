"""Fundamental relationship and address-family types.

The whole library is built around two observations made by the paper:

* an AS *link* (an edge in the AS-level topology) can carry traffic for
  both IPv4 and IPv6 prefixes, and
* the *business relationship* expressed over that link is not necessarily
  the same for the two address families.  When it differs the link has a
  **hybrid IPv4/IPv6 relationship**.

This module defines the vocabulary used everywhere else:

``AFI``
    The address family (IPv4 or IPv6) of a prefix, path or relationship.

``Relationship``
    The classic Type-of-Relationship (ToR) values: provider-to-customer
    (p2c), customer-to-provider (c2p), peer-to-peer (p2p) and sibling.
    Relationships are *directional*: they are always expressed from the
    point of view of the first AS of an ordered pair ``(a, b)``.

``Link``
    A canonical, undirected AS link.  The canonical orientation places
    the numerically smaller ASN first, and every relationship stored for
    a link is expressed in that canonical orientation.

``RelationshipRecord``
    A single piece of relationship evidence: link + AFI + relationship +
    the source that produced it (communities, LocPrf, a baseline
    inference algorithm, ground truth ...).

``HybridType``
    Classification of the ways the IPv4 and IPv6 relationships of a
    dual-stack link can disagree, mirroring the categories reported in
    Section 3 of the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional, Tuple


class AFI(enum.Enum):
    """Address Family Identifier: the IP version of a prefix or path."""

    IPV4 = 4
    IPV6 = 6

    @property
    def other(self) -> "AFI":
        """Return the opposite address family."""
        return AFI.IPV6 if self is AFI.IPV4 else AFI.IPV4

    def __str__(self) -> str:  # pragma: no cover - trivial
        return "IPv4" if self is AFI.IPV4 else "IPv6"


class Relationship(enum.Enum):
    """Type of business relationship between two ASes.

    Values are always interpreted *from the first AS of an ordered pair*:
    if the relationship of ``(a, b)`` is ``P2C`` then ``a`` is the
    provider and ``b`` the customer; if it is ``C2P`` then ``a`` is the
    customer of ``b``.
    """

    P2C = "p2c"
    C2P = "c2p"
    P2P = "p2p"
    SIBLING = "s2s"
    UNKNOWN = "unknown"

    @property
    def inverse(self) -> "Relationship":
        """The same relationship seen from the other end of the link."""
        if self is Relationship.P2C:
            return Relationship.C2P
        if self is Relationship.C2P:
            return Relationship.P2C
        return self

    @property
    def is_transit(self) -> bool:
        """True for provider/customer (transit) relationships."""
        return self in (Relationship.P2C, Relationship.C2P)

    @property
    def is_peering(self) -> bool:
        """True for settlement-free peering."""
        return self is Relationship.P2P

    @property
    def is_known(self) -> bool:
        """True unless the relationship is :data:`Relationship.UNKNOWN`."""
        return self is not Relationship.UNKNOWN

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class RelationshipSource(enum.Enum):
    """Provenance of a relationship record."""

    GROUND_TRUTH = "ground-truth"
    COMMUNITIES = "communities"
    LOCPREF = "locpref"
    COMBINED = "combined"
    GAO = "gao"
    DEGREE = "degree"
    MANUAL = "manual"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, order=True)
class Link:
    """A canonical (undirected) AS-level link.

    The canonical orientation stores the numerically smaller ASN in
    :attr:`a`.  Relationships attached to a link are always expressed in
    this orientation, so that two independently constructed ``Link``
    objects for the same pair of ASes compare and hash equal and carry
    comparable relationship values.
    """

    a: int
    b: int

    def __init__(self, a: int, b: int) -> None:  # noqa: D107 - documented above
        if a == b:
            raise ValueError(f"self-loop link for AS{a} is not allowed")
        if a < 0 or b < 0:
            raise ValueError("AS numbers must be non-negative")
        lo, hi = (a, b) if a < b else (b, a)
        object.__setattr__(self, "a", lo)
        object.__setattr__(self, "b", hi)

    @classmethod
    def of(cls, a: int, b: int) -> "Link":
        """Build a canonical link from any ordering of its endpoints."""
        return cls(a, b)

    @property
    def endpoints(self) -> Tuple[int, int]:
        """Both endpoints in canonical order."""
        return (self.a, self.b)

    def other(self, asn: int) -> int:
        """Return the endpoint that is not ``asn``."""
        if asn == self.a:
            return self.b
        if asn == self.b:
            return self.a
        raise ValueError(f"AS{asn} is not an endpoint of {self}")

    def contains(self, asn: int) -> bool:
        """True if ``asn`` is one of the link's endpoints."""
        return asn in (self.a, self.b)

    def oriented(self, first: int) -> Tuple[int, int]:
        """Return the endpoints ordered so that ``first`` comes first."""
        if first == self.a:
            return (self.a, self.b)
        if first == self.b:
            return (self.b, self.a)
        raise ValueError(f"AS{first} is not an endpoint of {self}")

    def relationship_from(self, asn: int, canonical: Relationship) -> Relationship:
        """Re-express a canonically oriented relationship from ``asn``'s view."""
        if asn == self.a:
            return canonical
        if asn == self.b:
            return canonical.inverse
        raise ValueError(f"AS{asn} is not an endpoint of {self}")

    def __str__(self) -> str:
        return f"AS{self.a}-AS{self.b}"


def orient_relationship(a: int, b: int, relationship: Relationship) -> Relationship:
    """Convert a relationship expressed for ordered pair ``(a, b)`` to canonical form.

    The canonical form is the relationship expressed from the smaller ASN.
    ``orient_relationship(3, 1, Relationship.P2C)`` therefore returns
    ``C2P`` (AS1, the canonical first endpoint, is the customer).
    """
    if a == b:
        raise ValueError("cannot orient a relationship on a self-loop")
    if a < b:
        return relationship
    return relationship.inverse


class HybridType(enum.Enum):
    """Classification of hybrid IPv4/IPv6 relationship combinations.

    The categories follow Section 3 of the paper:

    * ``PEER4_TRANSIT6`` — peering for IPv4, transit (p2c or c2p) for
      IPv6; 67 % of the hybrid links observed by the paper.
    * ``PEER6_TRANSIT4`` — peering for IPv6, transit for IPv4; the bulk
      of the remaining hybrid links.
    * ``TRANSIT_REVERSED`` — transit in both planes but with the roles of
      provider and customer swapped (the paper observed a single case).
    * ``OTHER`` — any other disagreement (e.g. involving sibling links).
    * ``NOT_HYBRID`` — the relationships agree.
    """

    PEER4_TRANSIT6 = "p2p-ipv4/transit-ipv6"
    PEER6_TRANSIT4 = "p2p-ipv6/transit-ipv4"
    TRANSIT_REVERSED = "transit-reversed"
    OTHER = "other"
    NOT_HYBRID = "not-hybrid"

    @property
    def is_hybrid(self) -> bool:
        """True when the IPv4 and IPv6 relationships differ."""
        return self is not HybridType.NOT_HYBRID

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def classify_hybrid(rel_v4: Relationship, rel_v6: Relationship) -> HybridType:
    """Classify the combination of an IPv4 and an IPv6 relationship.

    Both relationships must be expressed in the *same* orientation
    (normally the canonical orientation of the link).  Unknown
    relationships cannot be classified and raise ``ValueError``: the
    caller is expected to restrict itself to links whose relationship is
    known in both planes, as the paper does.
    """
    if not rel_v4.is_known or not rel_v6.is_known:
        raise ValueError("cannot classify hybrid type with unknown relationships")
    if rel_v4 is rel_v6:
        return HybridType.NOT_HYBRID
    if rel_v4.is_peering and rel_v6.is_transit:
        return HybridType.PEER4_TRANSIT6
    if rel_v6.is_peering and rel_v4.is_transit:
        return HybridType.PEER6_TRANSIT4
    if rel_v4.is_transit and rel_v6.is_transit:
        return HybridType.TRANSIT_REVERSED
    return HybridType.OTHER


@dataclass(frozen=True)
class RelationshipRecord:
    """A single observation of a relationship for a link in one AFI."""

    link: Link
    afi: AFI
    relationship: Relationship
    source: RelationshipSource
    confidence: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError("confidence must be within [0, 1]")

    def as_seen_from(self, asn: int) -> Relationship:
        """The relationship from the point of view of endpoint ``asn``."""
        return self.link.relationship_from(asn, self.relationship)


@dataclass
class DualStackRelationship:
    """The pair of relationships a dual-stack link has in the two planes."""

    link: Link
    ipv4: Relationship = Relationship.UNKNOWN
    ipv6: Relationship = Relationship.UNKNOWN

    def relationship(self, afi: AFI) -> Relationship:
        """Return the relationship for ``afi``."""
        return self.ipv4 if afi is AFI.IPV4 else self.ipv6

    def set_relationship(self, afi: AFI, relationship: Relationship) -> None:
        """Set the relationship for ``afi``."""
        if afi is AFI.IPV4:
            self.ipv4 = relationship
        else:
            self.ipv6 = relationship

    @property
    def both_known(self) -> bool:
        """True when the relationship is known in both planes."""
        return self.ipv4.is_known and self.ipv6.is_known

    @property
    def hybrid_type(self) -> HybridType:
        """Hybrid classification; requires :attr:`both_known`."""
        return classify_hybrid(self.ipv4, self.ipv6)

    @property
    def is_hybrid(self) -> bool:
        """True when both relationships are known and they differ."""
        return self.both_known and self.ipv4 is not self.ipv6


def majority_relationship(
    relationships: Iterable[Relationship],
    min_votes: int = 1,
    min_agreement: float = 0.5,
) -> Optional[Relationship]:
    """Pick the majority relationship from a collection of votes.

    ``UNKNOWN`` votes are ignored.  Returns ``None`` when fewer than
    ``min_votes`` known votes are present or when the most common value
    does not reach ``min_agreement`` (a strict-majority fraction of the
    known votes).  Ties also return ``None``: a tie means the evidence is
    contradictory and the paper's methodology refuses to guess.
    """
    # Counted with identity checks into plain ints: this function runs
    # once per candidate link and once per calibration route, and dict
    # counters keyed by enum members (whose __hash__ is a Python call)
    # dominated its cost.
    p2c = c2p = p2p = sibling = 0
    for rel in relationships:
        if rel is Relationship.P2C:
            p2c += 1
        elif rel is Relationship.C2P:
            c2p += 1
        elif rel is Relationship.P2P:
            p2p += 1
        elif rel is Relationship.SIBLING:
            sibling += 1
    total = p2c + c2p + p2p + sibling
    if total < min_votes or total == 0:
        return None
    best = max(p2c, c2p, p2p, sibling)
    winner: Optional[Relationship] = None
    for rel, count in (
        (Relationship.P2C, p2c),
        (Relationship.C2P, c2p),
        (Relationship.P2P, p2p),
        (Relationship.SIBLING, sibling),
    ):
        if count == best:
            if winner is not None:
                return None  # tie: contradictory evidence
            winner = rel
    if best / total < min_agreement:
        return None
    return winner
