"""The Figure-2 correction experiment.

Figure 2 of the paper shows how the average shortest valley-free path
length and the diameter of the union of the IPv6 customer trees change
"as we gradually correct the misinferred relationship of the 20 hybrid AS
relationships with the highest visibility in the IPv6 AS paths".

The experiment therefore needs four ingredients:

1. a **misinferred** IPv6 annotation (in the paper, the Oliveira et al.
   inference; here, one of the baseline algorithms in
   :mod:`repro.inference`, or any annotation the caller provides),
2. a **reference** annotation with the correct relationships (the
   Communities/LocPrf inference, or the ground truth),
3. the list of **hybrid links** to correct, and
4. a **visibility ranking** of those links in the observed IPv6 paths.

:class:`CorrectionExperiment` applies the corrections one link at a time
(in decreasing visibility order, or any other order) and records the
customer-tree metrics after every step, producing the two series plotted
in Figure 2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.annotation import ToRAnnotation
from repro.core.customer_tree import (
    PathLengthMetrics,
    customer_tree_union_metrics,
)
from repro.core.relationships import AFI, Link, Relationship
from repro.core.visibility import VisibilityIndex


@dataclass(frozen=True)
class CorrectionStep:
    """The state of the metric after a number of corrections.

    Attributes:
        corrected_links: How many links have been corrected so far.
        link: The link corrected at this step (``None`` for step 0).
        metrics: Customer-tree metrics measured after the correction.
    """

    corrected_links: int
    link: Optional[Link]
    metrics: PathLengthMetrics

    @property
    def average_path_length(self) -> float:
        """Average shortest valley-free path length after this step."""
        return self.metrics.average

    @property
    def diameter(self) -> int:
        """Diameter after this step."""
        return self.metrics.diameter


@dataclass
class CorrectionSeries:
    """The full Figure-2 series.

    Attributes:
        steps: One entry per number of corrected links (0 .. N).
    """

    steps: List[CorrectionStep] = field(default_factory=list)

    @property
    def averages(self) -> List[float]:
        """Average path length series (x = number of corrected links)."""
        return [step.average_path_length for step in self.steps]

    @property
    def diameters(self) -> List[int]:
        """Diameter series (x = number of corrected links)."""
        return [step.diameter for step in self.steps]

    @property
    def initial(self) -> CorrectionStep:
        """The uncorrected starting point."""
        return self.steps[0]

    @property
    def final(self) -> CorrectionStep:
        """The fully corrected end point."""
        return self.steps[-1]

    def improvement(self) -> Dict[str, float]:
        """Relative reduction of both metrics from start to end."""
        start, end = self.initial, self.final
        average_reduction = (
            (start.average_path_length - end.average_path_length)
            / start.average_path_length
            if start.average_path_length
            else 0.0
        )
        diameter_reduction = (
            (start.diameter - end.diameter) / start.diameter if start.diameter else 0.0
        )
        return {
            "average_start": start.average_path_length,
            "average_end": end.average_path_length,
            "average_reduction": average_reduction,
            "diameter_start": float(start.diameter),
            "diameter_end": float(end.diameter),
            "diameter_reduction": diameter_reduction,
        }


def correction_payload(
    series: "CorrectionSeries", top: int, max_sources: Optional[int]
) -> Dict[str, object]:
    """The one JSON-shaped rendering of a Figure-2 series.

    Shared by ``repro figure2 --json`` and every sweep cell, so the two
    reports stay comparable field-for-field (the sweep benchmark
    asserts cells bit-identical to standalone runs).
    """
    return {
        "top": top,
        "max_sources": max_sources,
        "corrected_links": [step.corrected_links for step in series.steps],
        "links": [
            None if step.link is None else [step.link.a, step.link.b]
            for step in series.steps
        ],
        "averages": [step.average_path_length for step in series.steps],
        "diameters": [step.diameter for step in series.steps],
        "improvement": series.improvement(),
    }


def plane_agnostic_annotation(
    ipv6_reference: ToRAnnotation,
    ipv4_annotation: ToRAnnotation,
    links: Optional[Iterable[Link]] = None,
) -> ToRAnnotation:
    """Build the "misinferred" IPv6 annotation the paper starts from.

    The existing ToR algorithms "analyze the IPv4 and IPv6 AS links using
    exactly the same principles" (paper, Section 1): a dual-stack link
    gets a single relationship, which in practice is the IPv4-dominated
    one.  This helper models that artifact: it copies ``ipv6_reference``
    and overwrites every link that also has an IPv4 relationship with the
    IPv4 label.  Hybrid links therefore end up *misinferred* — exactly
    the starting point of Figure 2.

    ``links`` restricts the overwrite (e.g. to the links visible in the
    measured IPv6 topology).
    """
    if ipv6_reference.afi is not AFI.IPV6:
        raise ValueError("ipv6_reference must be an IPv6 annotation")
    if ipv4_annotation.afi is not AFI.IPV4:
        raise ValueError("ipv4_annotation must be an IPv4 annotation")
    result = ipv6_reference.copy()
    candidates = set(links) if links is not None else set(ipv6_reference.links())
    for link in candidates:
        ipv4_relationship = ipv4_annotation.get_canonical(link)
        if ipv4_relationship.is_known and ipv6_reference.get_canonical(link).is_known:
            result.set_canonical(link, ipv4_relationship)
    return result


def run_correction_sweep(
    ipv4_annotation: ToRAnnotation,
    ipv6_annotation: ToRAnnotation,
    hybrid_links: Iterable[Link],
    visibility: VisibilityIndex,
    top: int = 20,
    max_sources: Optional[int] = None,
) -> CorrectionSeries:
    """The canonical Figure-2 sweep from a pair of inferred annotations.

    Builds the paper's starting point — the plane-agnostic (misinferred)
    IPv6 annotation — corrects the ``top`` most visible hybrid links
    towards ``ipv6_annotation`` and measures after each step.  The one
    shared implementation behind the pipeline's ``correction`` stage
    and the CLI's ``figure2`` command (both in-memory and
    ``--from-snapshot``), so the sweep cannot drift between entry
    points.
    """
    misinferred = plane_agnostic_annotation(ipv6_annotation, ipv4_annotation)
    experiment = CorrectionExperiment(
        misinferred, ipv6_annotation, max_sources=max_sources
    )
    return experiment.run_with_visibility(hybrid_links, visibility, top=top)


class CorrectionExperiment:
    """Gradually correct misinferred relationships and track the metrics.

    Args:
        misinferred: The starting (misinferred) IPv6 annotation.  It is
            never mutated; every step works on a copy.
        reference: The annotation holding the correct relationships for
            the links to be corrected.
        max_sources: Optional sampling bound passed to the customer-tree
            metric (useful on large topologies).
    """

    def __init__(
        self,
        misinferred: ToRAnnotation,
        reference: ToRAnnotation,
        max_sources: Optional[int] = None,
    ) -> None:
        if misinferred.afi is not reference.afi:
            raise ValueError("both annotations must describe the same address family")
        self.misinferred = misinferred
        self.reference = reference
        self.max_sources = max_sources

    # ------------------------------------------------------------------
    # link selection
    # ------------------------------------------------------------------
    def correctable_links(self, candidate_links: Iterable[Link]) -> List[Link]:
        """Candidates whose relationship actually differs between the annotations.

        Links absent from either annotation, or already agreeing, would
        be no-op corrections and are dropped.
        """
        result = []
        for link in candidate_links:
            mis = self.misinferred.get_canonical(link)
            ref = self.reference.get_canonical(link)
            if not ref.is_known:
                continue
            if mis is ref:
                continue
            result.append(link)
        return sorted(result)

    def rank_by_visibility(
        self, links: Iterable[Link], visibility: VisibilityIndex, top: int = 20
    ) -> List[Link]:
        """The paper's ordering: top-``top`` links by IPv6 path visibility."""
        return visibility.top_links(top, links=self.correctable_links(links))

    # ------------------------------------------------------------------
    # the experiment itself
    # ------------------------------------------------------------------
    def run(self, ordered_links: Sequence[Link]) -> CorrectionSeries:
        """Apply corrections one link at a time and measure after each.

        Step 0 measures the uncorrected annotation; step ``k`` measures
        the annotation with the first ``k`` links of ``ordered_links``
        replaced by their reference relationship.
        """
        series = CorrectionSeries()
        working = self.misinferred.copy()
        _, metrics = customer_tree_union_metrics(working, max_sources=self.max_sources)
        series.steps.append(CorrectionStep(corrected_links=0, link=None, metrics=metrics))
        for index, link in enumerate(ordered_links, start=1):
            reference_relationship = self.reference.get_canonical(link)
            if not reference_relationship.is_known:
                raise ValueError(f"reference annotation has no relationship for {link}")
            working.set_canonical(link, reference_relationship)
            _, metrics = customer_tree_union_metrics(
                working, max_sources=self.max_sources
            )
            series.steps.append(
                CorrectionStep(corrected_links=index, link=link, metrics=metrics)
            )
        return series

    def run_with_visibility(
        self,
        candidate_links: Iterable[Link],
        visibility: VisibilityIndex,
        top: int = 20,
    ) -> CorrectionSeries:
        """Run the experiment on the top-``top`` most visible candidates."""
        ordered = self.rank_by_visibility(candidate_links, visibility, top=top)
        return self.run(ordered)

    def run_random_order(
        self,
        candidate_links: Iterable[Link],
        count: int = 20,
        seed: int = 0,
    ) -> CorrectionSeries:
        """Control experiment: correct ``count`` random candidates instead.

        DESIGN.md lists this as the ablation showing that the visibility
        ranking matters: correcting low-visibility links first barely
        moves the metric.
        """
        candidates = self.correctable_links(candidate_links)
        rng = random.Random(seed)
        rng.shuffle(candidates)
        return self.run(candidates[:count])
