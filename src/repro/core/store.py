"""An indexed, build-once store of route observations.

Every inference stage of the measurement pipeline consumes the same flat
list of :class:`~repro.core.observations.ObservedRoute` objects, and
before this module existed each stage re-scanned that list from scratch:
the communities inference walked every observation looking for tagged
routes, the LocPrf inference grouped by vantage twice, the visibility
index re-created ``Link`` objects per path, the valley analysis re-dedup
-licated paths, and the link inventory re-walked every hop.  On a
paper-scale snapshot those repeated passes dominate ``build_snapshot``.

:class:`ObservationStore` applies the precompute-once methodology of the
propagation fast path (PR 1) to the measurement side: one pass over the
observations builds every shared index —

* observations **by AFI** and **by vantage** (and, lazily, by origin AS
  and by canonical link),
* the **distinct-path tables** (global and per AFI, in first-seen
  order, exactly the order the legacy scans produced),
* the canonical **link tuple of every distinct path** (``Link`` objects
  are created once per path instead of once per scan),
* the subsets of observations **carrying LOCAL_PREF** and **carrying
  communities** (the only observations the LocPrf and communities
  inferences can use), and
* lazily, per-AFI :class:`~repro.core.visibility.VisibilityIndex` tables
  and per-path next-hop maps.

The consumers (``repro.analysis`` and the inference modules in
``repro.core``) accept either a plain iterable of observations — the
legacy path, kept bit-identical — or an ``ObservationStore``, in which
case they query the indexes instead of re-iterating.

Index invariants
----------------

1. ``observations`` preserves extraction order; every other index
   preserves the relative order of that list (``by_afi``/``by_vantage``
   lists, ``with_local_pref``/``with_communities`` subsequences,
   distinct-path tables in first-seen order).  This is what makes the
   store path produce *identical* results to the legacy scans, down to
   dict insertion order.
2. ``path_links(path)`` is a pure function of the path; the cached tuple
   is shared by every observation of that path in either plane.
3. ``links(afi)`` equals the union of ``path_links(p)`` over the
   distinct paths of that plane — links are plane-tagged only through
   the prefixes observed over them.
4. The store treats observations as immutable; do not mutate the lists
   or sets it returns (they are the live indexes, not copies).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from repro.core.observations import ObservedRoute
from repro.core.relationships import AFI, Link
from repro.core.visibility import VisibilityIndex

#: A cleaned AS path, vantage first.
PathTuple = Tuple[int, ...]


class ObservationStore:
    """Build-once indexes over a set of observations.

    Args:
        observations: The (already extracted and deduplicated)
            observations, in extraction order.
    """

    def __init__(self, observations: Iterable[ObservedRoute]) -> None:
        self.observations: List[ObservedRoute] = list(observations)
        self.by_afi: Dict[AFI, List[ObservedRoute]] = {AFI.IPV4: [], AFI.IPV6: []}
        self.by_vantage: Dict[int, List[ObservedRoute]] = {}
        self.with_local_pref: List[ObservedRoute] = []
        self.with_communities: List[ObservedRoute] = []
        self._path_links: Dict[PathTuple, Tuple[Link, ...]] = {}
        # The mixed-plane (afi=None) table is derived lazily: it is only
        # consulted by whole-archive queries, not the per-plane pipeline.
        self._distinct: Dict[Optional[AFI], Optional[List[PathTuple]]] = {
            None: None,
            AFI.IPV4: [],
            AFI.IPV6: [],
        }
        self._links: Dict[AFI, Set[Link]] = {AFI.IPV4: set(), AFI.IPV6: set()}
        # Canonical Link interning table: distinct links number in the
        # low thousands while the paths reference them tens of thousands
        # of times, so construct each once and share it.
        self._link_memo: Dict[Tuple[int, int], Link] = {}
        # Lazy caches.
        self._all_links: Optional[Set[Link]] = None
        self._dual_stack_links: Optional[Set[Link]] = None
        self._visibility: Dict[Tuple[Optional[AFI], bool], VisibilityIndex] = {}
        self._next_hops: Dict[PathTuple, Dict[int, int]] = {}
        self._by_origin: Optional[Dict[int, List[ObservedRoute]]] = None
        self._by_link: Optional[Dict[Link, List[ObservedRoute]]] = None
        self._paths_by_origin: Dict[Optional[AFI], Dict[int, List[PathTuple]]] = {}
        self._build()

    def _build(self) -> None:
        # NOTE: the streaming extraction in repro.analysis.paths._extract
        # maintains these same indexes inline (one pass over the archive
        # records); any index added here must be added there as well.
        # tests/test_store.py compares the full eager index state of the
        # two constructions, so a forgotten mirror fails loudly.
        path_links = self._path_links
        by_afi = self.by_afi
        by_vantage = self.by_vantage
        with_local_pref = self.with_local_pref
        with_communities = self.with_communities
        ipv4 = AFI.IPV4
        # Per-plane structures bound to locals and selected with one
        # identity check per observation: enum-keyed dict probes per
        # observation were a measurable share of the build.
        v4_obs, v6_obs = by_afi[ipv4], by_afi[AFI.IPV6]
        v4_distinct, v6_distinct = self._distinct[ipv4], self._distinct[AFI.IPV6]
        v4_links, v6_links = self._links[ipv4], self._links[AFI.IPV6]
        v4_seen: Set[PathTuple] = set()
        v6_seen: Set[PathTuple] = set()
        for observation in self.observations:
            path = observation.path
            if observation.afi is ipv4:
                obs_list, seen = v4_obs, v4_seen
                distinct, plane_links = v4_distinct, v4_links
            else:
                obs_list, seen = v6_obs, v6_seen
                distinct, plane_links = v6_distinct, v6_links
            obs_list.append(observation)
            vantage_list = by_vantage.get(observation.vantage)
            if vantage_list is None:
                by_vantage[observation.vantage] = [observation]
            else:
                vantage_list.append(observation)
            links = path_links.get(path)
            if links is None:
                links = path_links[path] = self._links_of(path)
            if path not in seen:
                seen.add(path)
                distinct.append(path)
                plane_links.update(links)
            if observation.local_pref is not None:
                with_local_pref.append(observation)
            if observation.communities:
                with_communities.append(observation)

    # ------------------------------------------------------------------
    # basic container behaviour
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[ObservedRoute]:
        return iter(self.observations)

    def __len__(self) -> int:
        return len(self.observations)

    # ------------------------------------------------------------------
    # observation subsets
    # ------------------------------------------------------------------
    def observations_for(self, afi: Optional[AFI]) -> List[ObservedRoute]:
        """Observations of one plane (``None`` = all), in extraction order."""
        if afi is None:
            return self.observations
        return self.by_afi[afi]

    @property
    def vantages(self) -> List[int]:
        """Vantage-point ASes, in first-seen order."""
        return list(self.by_vantage)

    @property
    def by_origin(self) -> Dict[int, List[ObservedRoute]]:
        """Observations grouped by origin AS (built on first access)."""
        if self._by_origin is None:
            grouped: Dict[int, List[ObservedRoute]] = {}
            for observation in self.observations:
                grouped.setdefault(observation.origin_as, []).append(observation)
            self._by_origin = grouped
        return self._by_origin

    @property
    def by_link(self) -> Dict[Link, List[ObservedRoute]]:
        """Observations grouped by the canonical links their path crosses."""
        if self._by_link is None:
            grouped: Dict[Link, List[ObservedRoute]] = {}
            for observation in self.observations:
                for link in self._path_links[observation.path]:
                    grouped.setdefault(link, []).append(observation)
            self._by_link = grouped
        return self._by_link

    def observations_crossing(self, link: Link) -> List[ObservedRoute]:
        """Observations whose path traverses ``link`` (any plane)."""
        return self.by_link.get(link, [])

    # ------------------------------------------------------------------
    # path tables
    # ------------------------------------------------------------------
    def distinct_paths(self, afi: Optional[AFI] = None) -> List[PathTuple]:
        """Distinct AS paths (of one plane), in first-seen order."""
        paths = self._distinct[afi]
        if paths is None:  # afi is None: derive the mixed table on demand
            seen: Set[PathTuple] = set()
            paths = []
            for observation in self.observations:
                path = observation.path
                if path not in seen:
                    seen.add(path)
                    paths.append(path)
            self._distinct[afi] = paths
        return paths

    def distinct_path_count(self, afi: Optional[AFI] = None) -> int:
        """Number of distinct AS paths (of one plane)."""
        return len(self.distinct_paths(afi))

    def _links_of(self, path: PathTuple) -> Tuple[Link, ...]:
        """Build a path's link tuple through the interning table."""
        memo = self._link_memo
        links = []
        previous = path[0]
        for hop in path[1:]:
            pair = (previous, hop)
            link = memo.get(pair)
            if link is None:
                link = memo[pair] = Link(previous, hop)
            links.append(link)
            previous = hop
        return tuple(links)

    def path_links(self, path: PathTuple) -> Tuple[Link, ...]:
        """Canonical links of a path (cached; observer side first)."""
        links = self._path_links.get(path)
        if links is None:
            links = self._path_links[path] = self._links_of(path)
        return links

    def next_hops(self, path: PathTuple) -> Mapping[int, int]:
        """Map each non-origin hop of ``path`` to the hop it learned from.

        Equivalent to :meth:`ObservedRoute.next_hop_of` for every AS on
        the path at once (paths are loop-free, so the map is unambiguous).
        """
        cached = self._next_hops.get(path)
        if cached is None:
            cached = {path[i]: path[i + 1] for i in range(len(path) - 1)}
            self._next_hops[path] = cached
        return cached

    def paths_by_origin(self, afi: Optional[AFI] = None) -> Dict[int, List[PathTuple]]:
        """Distinct paths grouped by origin AS (sorted per origin)."""
        cached = self._paths_by_origin.get(afi)
        if cached is None:
            grouped: Dict[int, Set[PathTuple]] = {}
            for observation in self.observations_for(afi):
                grouped.setdefault(observation.origin_as, set()).add(observation.path)
            cached = {origin: sorted(paths) for origin, paths in grouped.items()}
            self._paths_by_origin[afi] = cached
        return cached

    # ------------------------------------------------------------------
    # link tables
    # ------------------------------------------------------------------
    def links(self, afi: Optional[AFI] = None) -> Set[Link]:
        """Links visible in the paths of one plane (``None`` = union)."""
        if afi is not None:
            return self._links[afi]
        if self._all_links is None:
            self._all_links = self._links[AFI.IPV4] | self._links[AFI.IPV6]
        return self._all_links

    def dual_stack_links(self) -> Set[Link]:
        """Links visible in both planes."""
        if self._dual_stack_links is None:
            self._dual_stack_links = self._links[AFI.IPV4] & self._links[AFI.IPV6]
        return self._dual_stack_links

    def visibility_index(
        self, afi: Optional[AFI] = None, distinct_paths_only: bool = True
    ) -> VisibilityIndex:
        """The per-link path-visibility table of one plane (cached).

        Identical to running
        :func:`repro.core.visibility.build_visibility_index` over the
        plane's observations, but each path's link set is taken from the
        shared cache instead of being rebuilt.
        """
        key = (afi, distinct_paths_only)
        cached = self._visibility.get(key)
        if cached is not None:
            return cached
        index = VisibilityIndex(afi=afi)
        counter: Counter = Counter()
        path_links: List[Set[Link]] = []
        if distinct_paths_only:
            for path in self.distinct_paths(afi):
                links = set(self._path_links[path])
                counter.update(links)
                path_links.append(links)
        else:
            for observation in self.observations_for(afi):
                links = set(self._path_links[observation.path])
                counter.update(links)
                path_links.append(links)
        index.path_count = len(path_links)
        index.link_paths = dict(counter)
        index._path_links = path_links
        self._visibility[key] = index
        return index
