"""Detection and classification of hybrid IPv4/IPv6 relationships.

A *hybrid* link is a dual-stack AS link whose relationship differs
between the IPv4 and the IPv6 plane — the central object of the paper.
Given the per-AFI annotations produced by the inference (or the ground
truth, for validation), this module

* identifies the dual-stack links whose relationship is known in both
  planes,
* classifies each as hybrid / not hybrid and, when hybrid, into the
  :class:`~repro.core.relationships.HybridType` categories the paper
  reports (peering-for-IPv4 / transit-for-IPv6, the reverse, and the
  single reversed-transit case), and
* when ground truth is available, scores the detection with
  precision/recall — something the original study could not do on the
  real Internet but which the synthetic substrate makes possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.annotation import ToRAnnotation
from repro.core.relationships import (
    AFI,
    HybridType,
    Link,
    Relationship,
    classify_hybrid,
)


@dataclass(frozen=True)
class HybridLink:
    """One dual-stack link and its per-plane relationships."""

    link: Link
    ipv4: Relationship
    ipv6: Relationship
    hybrid_type: HybridType

    @property
    def is_hybrid(self) -> bool:
        """True when the relationships differ."""
        return self.hybrid_type.is_hybrid


@dataclass
class HybridDetectionReport:
    """Result of hybrid-link detection over a set of dual-stack links.

    Attributes:
        assessed_links: Dual-stack links whose relationship was known in
            both planes (the denominator of the paper's 13 %).
        hybrid_links: The subset classified as hybrid.
        type_counts: Number of hybrid links per hybrid type.
    """

    assessed_links: List[HybridLink] = field(default_factory=list)
    hybrid_links: List[HybridLink] = field(default_factory=list)
    type_counts: Dict[HybridType, int] = field(default_factory=dict)

    @property
    def hybrid_fraction(self) -> float:
        """Fraction of assessed links that are hybrid."""
        if not self.assessed_links:
            return 0.0
        return len(self.hybrid_links) / len(self.assessed_links)

    def type_share(self, hybrid_type: HybridType) -> float:
        """Share of one hybrid type among all hybrid links."""
        if not self.hybrid_links:
            return 0.0
        return self.type_counts.get(hybrid_type, 0) / len(self.hybrid_links)

    def hybrid_link_set(self) -> Set[Link]:
        """The set of links classified as hybrid."""
        return {entry.link for entry in self.hybrid_links}

    def summary(self) -> Dict[str, float]:
        """Compact numeric summary used by reports and benchmarks."""
        return {
            "assessed_links": float(len(self.assessed_links)),
            "hybrid_links": float(len(self.hybrid_links)),
            "hybrid_fraction": self.hybrid_fraction,
            "share_peer4_transit6": self.type_share(HybridType.PEER4_TRANSIT6),
            "share_peer6_transit4": self.type_share(HybridType.PEER6_TRANSIT4),
            "share_transit_reversed": self.type_share(HybridType.TRANSIT_REVERSED),
        }


@dataclass
class HybridValidation:
    """Precision/recall of detected hybrid links against ground truth."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        """Fraction of detected hybrid links that are truly hybrid."""
        detected = self.true_positives + self.false_positives
        return self.true_positives / detected if detected else 0.0

    @property
    def recall(self) -> float:
        """Fraction of true hybrid links that were detected."""
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 0.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        if self.precision + self.recall == 0.0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


class HybridDetector:
    """Detect hybrid relationships from per-AFI annotations."""

    def __init__(self, ipv4: ToRAnnotation, ipv6: ToRAnnotation) -> None:
        if ipv4.afi is not AFI.IPV4 or ipv6.afi is not AFI.IPV6:
            raise ValueError("annotations must be given as (IPv4, IPv6)")
        self.ipv4 = ipv4
        self.ipv6 = ipv6

    def dual_stack_links(self) -> List[Link]:
        """Links annotated (with a known relationship) in both planes."""
        common = set(self.ipv4.links()) & set(self.ipv6.links())
        return sorted(
            link
            for link in common
            if self.ipv4.get_canonical(link).is_known
            and self.ipv6.get_canonical(link).is_known
        )

    def classify(self, link: Link) -> Optional[HybridLink]:
        """Classify one link (``None`` when unknown in either plane)."""
        rel_v4 = self.ipv4.get_canonical(link)
        rel_v6 = self.ipv6.get_canonical(link)
        if not rel_v4.is_known or not rel_v6.is_known:
            return None
        return HybridLink(
            link=link,
            ipv4=rel_v4,
            ipv6=rel_v6,
            hybrid_type=classify_hybrid(rel_v4, rel_v6),
        )

    def detect_visible(self, store: "ObservationStore") -> HybridDetectionReport:
        """Classify the dual-stack links actually visible in a store.

        Convenience for the common measurement flow: restrict the
        assessment to the links an
        :class:`~repro.core.store.ObservationStore` saw in both planes.
        """
        return self.detect(store.dual_stack_links())

    def detect(self, links: Optional[Iterable[Link]] = None) -> HybridDetectionReport:
        """Classify all (or the given) dual-stack links.

        ``links`` restricts the assessment, e.g. to the links actually
        visible in both planes of the measured data rather than every
        annotated link.
        """
        candidates = sorted(links) if links is not None else self.dual_stack_links()
        report = HybridDetectionReport()
        for link in candidates:
            entry = self.classify(link)
            if entry is None:
                continue
            report.assessed_links.append(entry)
            if entry.is_hybrid:
                report.hybrid_links.append(entry)
                report.type_counts[entry.hybrid_type] = (
                    report.type_counts.get(entry.hybrid_type, 0) + 1
                )
        return report

    def validate(
        self,
        report: HybridDetectionReport,
        true_hybrid_links: Iterable[Link],
        assessable_only: bool = True,
    ) -> HybridValidation:
        """Score a detection report against the ground-truth hybrid set.

        ``assessable_only`` restricts the ground truth to links that were
        actually assessed (known in both planes), which measures the
        classifier itself rather than the coverage of the inference.
        """
        truth = set(true_hybrid_links)
        if assessable_only:
            assessed = {entry.link for entry in report.assessed_links}
            truth &= assessed
        detected = report.hybrid_link_set()
        return HybridValidation(
            true_positives=len(detected & truth),
            false_positives=len(detected - truth),
            false_negatives=len(truth - detected),
        )


def detect_hybrid_links(
    ipv4: ToRAnnotation,
    ipv6: ToRAnnotation,
    links: Optional[Iterable[Link]] = None,
) -> HybridDetectionReport:
    """Convenience wrapper around :class:`HybridDetector`."""
    return HybridDetector(ipv4, ipv6).detect(links)
