"""Relationship inference from the Local Preference attribute.

This is the second half of the paper's methodology.  LOCAL_PREF usually
obeys ``customer > peer > provider``, but the numeric values are
operator-specific and routinely overridden for traffic engineering, so a
raw LocPrf value says nothing by itself.  The paper's trick — the
"Rosetta Stone" — is to *calibrate* each vantage point's LocPrf values
against the relationships already established from its communities:

1. For every vantage AS, collect the routes whose first-hop relationship
   is known from that AS's own relationship communities **and** that
   carry no traffic-engineering communities.  These routes map a LocPrf
   value to a relationship.
2. Keep only LocPrf values that map consistently to a single
   relationship (ambiguous values are dropped).
3. Apply the mapping to the remaining routes of the same vantage point
   (again skipping routes with traffic-engineering communities), which
   yields relationships for first-hop links that communities alone did
   not cover.

The class also exposes the two ablation knobs evaluated in the benchmark
harness: disabling the communities validation (step 1-2 replaced by a
rank-based guess) and disabling the traffic-engineering filter.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.annotation import ToRAnnotation
from repro.core.observations import ObservedRoute, group_by_vantage
from repro.core.relationships import (
    AFI,
    Link,
    Relationship,
    RelationshipSource,
    majority_relationship,
)
from repro.irr.registry import IRRRegistry


@dataclass
class LocPrefMapping:
    """The calibrated LocPrf → relationship mapping of one vantage AS.

    Attributes:
        vantage: The vantage-point AS the mapping belongs to.
        mapping: Validated ``local_pref value -> relationship`` entries.
        ambiguous_values: LocPrf values discarded because they were seen
            with more than one communities-derived relationship.
        samples: Number of calibration routes that contributed.
    """

    vantage: int
    mapping: Dict[int, Relationship] = field(default_factory=dict)
    ambiguous_values: Set[int] = field(default_factory=set)
    samples: int = 0

    def relationship_for(self, local_pref: int) -> Optional[Relationship]:
        """Relationship a LocPrf value maps to (``None`` when unvalidated)."""
        return self.mapping.get(local_pref)


@dataclass
class LocPrefInferenceResult:
    """Outcome of the LocPrf-based inference.

    Attributes:
        annotations: Per-AFI annotations of first-hop links.
        mappings: The per-vantage Rosetta-Stone mappings used.
        filtered_traffic_engineering: Number of observations skipped
            because they carried traffic-engineering communities.
        unmapped_observations: Number of observations whose LocPrf value
            had no validated mapping.
    """

    annotations: Dict[AFI, ToRAnnotation]
    mappings: Dict[int, LocPrefMapping] = field(default_factory=dict)
    filtered_traffic_engineering: int = 0
    unmapped_observations: int = 0

    def annotation(self, afi: AFI) -> ToRAnnotation:
        """The annotation for one address family."""
        return self.annotations[afi]


class LocPrefInference:
    """Infer first-hop relationships from calibrated LOCAL_PREF values.

    Args:
        registry: IRR registry used both to read the vantage AS's own
            relationship communities (calibration) and to recognise
            traffic-engineering communities (filtering).
        validate_with_communities: When False the Rosetta-Stone
            calibration is replaced by the naive rank heuristic (highest
            observed value = customer, middle = peer, lowest = provider).
            This is ablation A1 in DESIGN.md.
        filter_traffic_engineering: When False routes carrying
            traffic-engineering communities are *not* excluded, letting
            TE-tuned LocPrf values pollute both calibration and
            application.
        min_calibration_samples: Minimum number of calibration routes a
            (vantage, value) pair needs before it is trusted.
    """

    def __init__(
        self,
        registry: IRRRegistry,
        validate_with_communities: bool = True,
        filter_traffic_engineering: bool = True,
        min_calibration_samples: int = 1,
    ) -> None:
        self.registry = registry
        self.validate_with_communities = validate_with_communities
        self.filter_traffic_engineering = filter_traffic_engineering
        self.min_calibration_samples = min_calibration_samples

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _te_checker(self):
        """A route -> "carries a traffic-engineering community" predicate.

        Memoized per distinct community value: snapshots carry few
        distinct values but each appears on thousands of routes, so one
        checker instance (one memo) should be shared across a whole
        calibration/application pass.
        """
        memo: Dict[object, bool] = {}
        is_te = self.registry.is_traffic_engineering

        def has_te(route: ObservedRoute) -> bool:
            for community in route.communities:
                try:
                    flag = memo[community]
                except KeyError:
                    flag = memo[community] = is_te(community)
                if flag:
                    return True
            return False

        return has_te

    def _first_hop_checker(self):
        """A route -> first-hop-relationship resolver, per the vantage's tags.

        Memoized per distinct community value, like :meth:`_te_checker`.
        """
        memo: Dict[object, Optional[Relationship]] = {}
        relationship_for = self.registry.relationship_for

        def first_hop_relationship(route: ObservedRoute) -> Optional[Relationship]:
            if len(route.path) < 2:
                return None
            vantage = route.vantage
            votes: List[Relationship] = []
            for community in route.communities:
                if community.asn != vantage:
                    continue
                try:
                    relationship = memo[community]
                except KeyError:
                    relationship = relationship_for(community)
                    if relationship is not None and not relationship.is_known:
                        relationship = None
                    memo[community] = relationship
                if relationship is not None:
                    votes.append(relationship)
            if len(votes) == 1:  # the common case; unanimity is trivial
                return votes[0]
            return majority_relationship(votes, min_votes=1, min_agreement=1.0)

        return first_hop_relationship

    def _te_flags(self, routes: List[ObservedRoute]) -> List[bool]:
        """Whether each route is excluded by the traffic-engineering filter."""
        if not self.filter_traffic_engineering:
            return [False] * len(routes)
        has_te = self._te_checker()
        return [has_te(route) for route in routes]

    # ------------------------------------------------------------------
    # calibration (the Rosetta Stone)
    # ------------------------------------------------------------------
    def calibrate(self, observations: Iterable[ObservedRoute]) -> Dict[int, LocPrefMapping]:
        """Build per-vantage LocPrf → relationship mappings.

        An :class:`~repro.core.store.ObservationStore` input calibrates
        from the store's LOCAL_PREF-carrying subset instead of
        re-grouping every observation; results are identical.
        """
        from repro.core.store import ObservationStore

        if isinstance(observations, ObservationStore):
            store = observations
            routes = store.with_local_pref
            return self._calibrate_store(store, routes, self._te_flags(routes))
        by_vantage = group_by_vantage(observations)
        mappings: Dict[int, LocPrefMapping] = {}
        for vantage, routes in by_vantage.items():
            mapping = LocPrefMapping(vantage=vantage)
            if self.validate_with_communities:
                self._calibrate_with_communities(mapping, routes)
            else:
                self._calibrate_by_rank(mapping, routes)
            mappings[vantage] = mapping
        return mappings

    def _calibrate_store(
        self,
        store: "ObservationStore",
        routes: List[ObservedRoute],
        te_flags: List[bool],
    ) -> Dict[int, LocPrefMapping]:
        """Store-indexed calibration: same mappings, one grouping pass.

        Every vantage of the store gets a mapping (possibly empty), in
        the same first-seen order the legacy ``group_by_vantage`` pass
        produced, so the result dict compares equal.
        """
        by_vantage: Dict[int, List[Tuple[ObservedRoute, bool]]] = {
            vantage: [] for vantage in store.by_vantage
        }
        for route, excluded in zip(routes, te_flags):
            by_vantage[route.vantage].append((route, excluded))
        mappings: Dict[int, LocPrefMapping] = {}
        first_hop_relationship = self._first_hop_checker()
        for vantage, pairs in by_vantage.items():
            mapping = LocPrefMapping(vantage=vantage)
            if self.validate_with_communities:
                self._calibrate_pairs(mapping, pairs, first_hop_relationship)
            else:
                self._calibrate_by_rank(mapping, [route for route, _ in pairs])
            mappings[vantage] = mapping
        return mappings

    def _calibrate_with_communities(
        self, mapping: LocPrefMapping, routes: List[ObservedRoute]
    ) -> None:
        has_te = self._te_checker()
        self._calibrate_pairs(
            mapping,
            (
                (route, self.filter_traffic_engineering and has_te(route))
                for route in routes
                if route.local_pref is not None
            ),
            self._first_hop_checker(),
        )

    def _calibrate_pairs(
        self,
        mapping: LocPrefMapping,
        pairs: Iterable[Tuple[ObservedRoute, bool]],
        first_hop_relationship,
    ) -> None:
        """Calibrate from (LOCAL_PREF-carrying route, TE-excluded) pairs."""
        value_votes: Dict[int, Dict[Relationship, int]] = defaultdict(lambda: defaultdict(int))
        for route, excluded in pairs:
            if excluded:
                continue
            relationship = first_hop_relationship(route)
            if relationship is None:
                continue
            value_votes[route.local_pref][relationship] += 1
            mapping.samples += 1
        for value, votes in value_votes.items():
            total = sum(votes.values())
            if total < self.min_calibration_samples:
                continue
            if len(votes) == 1:
                mapping.mapping[value] = next(iter(votes))
            else:
                mapping.ambiguous_values.add(value)

    def _calibrate_by_rank(
        self, mapping: LocPrefMapping, routes: List[ObservedRoute]
    ) -> None:
        """Naive calibration used when communities validation is disabled.

        Assumes the conventional ordering holds and that the vantage uses
        at most three values: the highest seen is customer, the lowest is
        provider, anything in between is peer.  This is exactly the kind
        of assumption the paper warns produces artifacts.
        """
        values: Set[int] = set()
        for route in routes:
            if route.local_pref is not None:
                values.add(route.local_pref)
                mapping.samples += 1
        if not values:
            return
        ordered = sorted(values, reverse=True)
        mapping.mapping[ordered[0]] = Relationship.P2C
        if len(ordered) > 1:
            mapping.mapping[ordered[-1]] = Relationship.C2P
        for value in ordered[1:-1]:
            mapping.mapping[value] = Relationship.P2P

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def infer(self, observations: Iterable[ObservedRoute]) -> LocPrefInferenceResult:
        """Run calibration then apply the mappings to all observations.

        An :class:`~repro.core.store.ObservationStore` input walks only
        the LOCAL_PREF-carrying subset and evaluates the
        traffic-engineering filter once per route (the legacy path
        evaluates it separately for calibration and application); the
        result is identical.
        """
        from repro.core.store import ObservationStore

        if isinstance(observations, ObservationStore):
            store = observations
            routes = store.with_local_pref
            te_flags = self._te_flags(routes)
            mappings = self._calibrate_store(store, routes, te_flags)
            candidates = zip(routes, te_flags)
        else:
            observations = list(observations)
            mappings = self.calibrate(observations)
            has_te = self._te_checker()
            candidates = (
                (route, self.filter_traffic_engineering and has_te(route))
                for route in observations
                if route.local_pref is not None
            )
        annotations = {
            AFI.IPV4: ToRAnnotation(AFI.IPV4, source=RelationshipSource.LOCPREF),
            AFI.IPV6: ToRAnnotation(AFI.IPV6, source=RelationshipSource.LOCPREF),
        }
        votes: Dict[Tuple[Link, AFI], List[Relationship]] = defaultdict(list)
        filtered = 0
        unmapped = 0
        # The vote a route casts is a pure function of (vantage, first
        # hop, LOCAL_PREF value, AFI) once the mappings are fixed, and a
        # snapshot has only a few hundred distinct such keys for tens of
        # thousands of routes — memoize the outcome per key.  The key
        # carries the AFI as its integer value (enum hashing is a Python
        # call; int hashing is not).
        outcome_memo: Dict[Tuple[int, int, int, int], Tuple] = {}
        for route, excluded in candidates:
            path = route.path
            if len(path) < 2:
                continue
            if excluded:
                filtered += 1
                continue
            key = (route.vantage, path[1], route.local_pref, route.afi.value)
            outcome = outcome_memo.get(key)
            if outcome is None:
                mapping = mappings.get(route.vantage)
                relationship = (
                    None if mapping is None else mapping.relationship_for(route.local_pref)
                )
                if mapping is None:
                    outcome = ("uncalibrated",)
                elif relationship is None:
                    outcome = ("unmapped",)
                else:
                    link = Link(route.vantage, path[1])
                    canonical = (
                        relationship if link.a == route.vantage else relationship.inverse
                    )
                    outcome = ("vote", (link, route.afi), canonical)
                outcome_memo[key] = outcome
            tag = outcome[0]
            if tag == "vote":
                votes[outcome[1]].append(outcome[2])
            elif tag == "unmapped":
                unmapped += 1
        for (link, afi), link_votes in votes.items():
            winner = majority_relationship(link_votes, min_votes=1, min_agreement=0.75)
            if winner is not None:
                annotations[afi].set_canonical(link, winner)
        return LocPrefInferenceResult(
            annotations=annotations,
            mappings=mappings,
            filtered_traffic_engineering=filtered,
            unmapped_observations=unmapped,
        )
