"""Relationship inference from the Local Preference attribute.

This is the second half of the paper's methodology.  LOCAL_PREF usually
obeys ``customer > peer > provider``, but the numeric values are
operator-specific and routinely overridden for traffic engineering, so a
raw LocPrf value says nothing by itself.  The paper's trick — the
"Rosetta Stone" — is to *calibrate* each vantage point's LocPrf values
against the relationships already established from its communities:

1. For every vantage AS, collect the routes whose first-hop relationship
   is known from that AS's own relationship communities **and** that
   carry no traffic-engineering communities.  These routes map a LocPrf
   value to a relationship.
2. Keep only LocPrf values that map consistently to a single
   relationship (ambiguous values are dropped).
3. Apply the mapping to the remaining routes of the same vantage point
   (again skipping routes with traffic-engineering communities), which
   yields relationships for first-hop links that communities alone did
   not cover.

The class also exposes the two ablation knobs evaluated in the benchmark
harness: disabling the communities validation (step 1-2 replaced by a
rank-based guess) and disabling the traffic-engineering filter.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.annotation import ToRAnnotation
from repro.core.observations import ObservedRoute, group_by_vantage
from repro.core.relationships import (
    AFI,
    Link,
    Relationship,
    RelationshipSource,
    majority_relationship,
)
from repro.irr.registry import IRRRegistry


@dataclass
class LocPrefMapping:
    """The calibrated LocPrf → relationship mapping of one vantage AS.

    Attributes:
        vantage: The vantage-point AS the mapping belongs to.
        mapping: Validated ``local_pref value -> relationship`` entries.
        ambiguous_values: LocPrf values discarded because they were seen
            with more than one communities-derived relationship.
        samples: Number of calibration routes that contributed.
    """

    vantage: int
    mapping: Dict[int, Relationship] = field(default_factory=dict)
    ambiguous_values: Set[int] = field(default_factory=set)
    samples: int = 0

    def relationship_for(self, local_pref: int) -> Optional[Relationship]:
        """Relationship a LocPrf value maps to (``None`` when unvalidated)."""
        return self.mapping.get(local_pref)


@dataclass
class LocPrefInferenceResult:
    """Outcome of the LocPrf-based inference.

    Attributes:
        annotations: Per-AFI annotations of first-hop links.
        mappings: The per-vantage Rosetta-Stone mappings used.
        filtered_traffic_engineering: Number of observations skipped
            because they carried traffic-engineering communities.
        unmapped_observations: Number of observations whose LocPrf value
            had no validated mapping.
    """

    annotations: Dict[AFI, ToRAnnotation]
    mappings: Dict[int, LocPrefMapping] = field(default_factory=dict)
    filtered_traffic_engineering: int = 0
    unmapped_observations: int = 0

    def annotation(self, afi: AFI) -> ToRAnnotation:
        """The annotation for one address family."""
        return self.annotations[afi]


class LocPrefInference:
    """Infer first-hop relationships from calibrated LOCAL_PREF values.

    Args:
        registry: IRR registry used both to read the vantage AS's own
            relationship communities (calibration) and to recognise
            traffic-engineering communities (filtering).
        validate_with_communities: When False the Rosetta-Stone
            calibration is replaced by the naive rank heuristic (highest
            observed value = customer, middle = peer, lowest = provider).
            This is ablation A1 in DESIGN.md.
        filter_traffic_engineering: When False routes carrying
            traffic-engineering communities are *not* excluded, letting
            TE-tuned LocPrf values pollute both calibration and
            application.
        min_calibration_samples: Minimum number of calibration routes a
            (vantage, value) pair needs before it is trusted.
    """

    def __init__(
        self,
        registry: IRRRegistry,
        validate_with_communities: bool = True,
        filter_traffic_engineering: bool = True,
        min_calibration_samples: int = 1,
    ) -> None:
        self.registry = registry
        self.validate_with_communities = validate_with_communities
        self.filter_traffic_engineering = filter_traffic_engineering
        self.min_calibration_samples = min_calibration_samples

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _has_traffic_engineering(self, route: ObservedRoute) -> bool:
        return any(self.registry.is_traffic_engineering(c) for c in route.communities)

    def _first_hop_relationship_from_communities(
        self, route: ObservedRoute
    ) -> Optional[Relationship]:
        """Relationship of the vantage towards its first hop, per the vantage's tags."""
        first_hop = route.path[1] if len(route.path) > 1 else None
        if first_hop is None:
            return None
        votes: List[Relationship] = []
        for community in route.communities_of(route.vantage):
            relationship = self.registry.relationship_for(community)
            if relationship is not None and relationship.is_known:
                votes.append(relationship)
        return majority_relationship(votes, min_votes=1, min_agreement=1.0)

    # ------------------------------------------------------------------
    # calibration (the Rosetta Stone)
    # ------------------------------------------------------------------
    def calibrate(self, observations: Iterable[ObservedRoute]) -> Dict[int, LocPrefMapping]:
        """Build per-vantage LocPrf → relationship mappings."""
        by_vantage = group_by_vantage(observations)
        mappings: Dict[int, LocPrefMapping] = {}
        for vantage, routes in by_vantage.items():
            mapping = LocPrefMapping(vantage=vantage)
            if self.validate_with_communities:
                self._calibrate_with_communities(mapping, routes)
            else:
                self._calibrate_by_rank(mapping, routes)
            mappings[vantage] = mapping
        return mappings

    def _calibrate_with_communities(
        self, mapping: LocPrefMapping, routes: List[ObservedRoute]
    ) -> None:
        value_votes: Dict[int, Dict[Relationship, int]] = defaultdict(lambda: defaultdict(int))
        for route in routes:
            if route.local_pref is None or route.local_pref <= 0:
                continue
            if self.filter_traffic_engineering and self._has_traffic_engineering(route):
                continue
            relationship = self._first_hop_relationship_from_communities(route)
            if relationship is None:
                continue
            value_votes[route.local_pref][relationship] += 1
            mapping.samples += 1
        for value, votes in value_votes.items():
            total = sum(votes.values())
            if total < self.min_calibration_samples:
                continue
            if len(votes) == 1:
                mapping.mapping[value] = next(iter(votes))
            else:
                mapping.ambiguous_values.add(value)

    def _calibrate_by_rank(
        self, mapping: LocPrefMapping, routes: List[ObservedRoute]
    ) -> None:
        """Naive calibration used when communities validation is disabled.

        Assumes the conventional ordering holds and that the vantage uses
        at most three values: the highest seen is customer, the lowest is
        provider, anything in between is peer.  This is exactly the kind
        of assumption the paper warns produces artifacts.
        """
        values: Set[int] = set()
        for route in routes:
            if route.local_pref is not None and route.local_pref > 0:
                values.add(route.local_pref)
                mapping.samples += 1
        if not values:
            return
        ordered = sorted(values, reverse=True)
        mapping.mapping[ordered[0]] = Relationship.P2C
        if len(ordered) > 1:
            mapping.mapping[ordered[-1]] = Relationship.C2P
        for value in ordered[1:-1]:
            mapping.mapping[value] = Relationship.P2P

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def infer(self, observations: Iterable[ObservedRoute]) -> LocPrefInferenceResult:
        """Run calibration then apply the mappings to all observations."""
        observations = list(observations)
        mappings = self.calibrate(observations)
        annotations = {
            AFI.IPV4: ToRAnnotation(AFI.IPV4, source=RelationshipSource.LOCPREF),
            AFI.IPV6: ToRAnnotation(AFI.IPV6, source=RelationshipSource.LOCPREF),
        }
        votes: Dict[Tuple[Link, AFI], List[Relationship]] = defaultdict(list)
        filtered = 0
        unmapped = 0
        for route in observations:
            if route.local_pref is None or route.local_pref <= 0:
                continue
            if len(route.path) < 2:
                continue
            if self.filter_traffic_engineering and self._has_traffic_engineering(route):
                filtered += 1
                continue
            mapping = mappings.get(route.vantage)
            if mapping is None:
                continue
            relationship = mapping.relationship_for(route.local_pref)
            if relationship is None:
                unmapped += 1
                continue
            first_hop = route.path[1]
            link = Link(route.vantage, first_hop)
            canonical = relationship if link.a == route.vantage else relationship.inverse
            votes[(link, route.afi)].append(canonical)
        for (link, afi), link_votes in votes.items():
            winner = majority_relationship(link_votes, min_votes=1, min_agreement=0.75)
            if winner is not None:
                annotations[afi].set_canonical(link, winner)
        return LocPrefInferenceResult(
            annotations=annotations,
            mappings=mappings,
            filtered_traffic_engineering=filtered,
            unmapped_observations=unmapped,
        )
