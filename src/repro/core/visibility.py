"""Link visibility in observed AS paths.

The paper reports that hybrid links, despite being only 13 % of the
dual-stack links, appear in more than 28 % of the IPv6 AS paths because
they sit between well-connected tier-1/tier-2 ASes.  Figure 2 then
corrects the 20 hybrid links "with the highest visibility in the IPv6 AS
paths".  Both need the same primitive: counting, for every link, how many
observed paths traverse it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.observations import ObservedRoute
from repro.core.relationships import AFI, Link


@dataclass
class VisibilityIndex:
    """Per-link path-visibility counters for one set of observations.

    Attributes:
        afi: Address family of the indexed paths (``None`` = mixed).
        path_count: Number of distinct paths indexed.
        link_paths: For every link, the number of distinct paths that
            traverse it.
    """

    afi: Optional[AFI]
    path_count: int = 0
    link_paths: Dict[Link, int] = field(default_factory=dict)

    def visibility_of(self, link: Link) -> int:
        """Number of indexed paths that traverse ``link``."""
        return self.link_paths.get(link, 0)

    def visibility_fraction(self, link: Link) -> float:
        """Fraction of indexed paths that traverse ``link``."""
        if self.path_count == 0:
            return 0.0
        return self.visibility_of(link) / self.path_count

    def rank_links(self, links: Optional[Iterable[Link]] = None) -> List[Tuple[Link, int]]:
        """Links ranked by decreasing visibility.

        ``links`` restricts the ranking (e.g. to the hybrid links); links
        never seen in a path get visibility 0 and sort last.  Ties are
        broken by the canonical link ordering so the ranking is stable.
        """
        candidates = list(links) if links is not None else list(self.link_paths)
        return sorted(
            ((link, self.visibility_of(link)) for link in candidates),
            key=lambda item: (-item[1], item[0]),
        )

    def top_links(self, count: int, links: Optional[Iterable[Link]] = None) -> List[Link]:
        """The ``count`` most visible links (optionally among ``links``)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [link for link, _ in self.rank_links(links)[:count]]

    def paths_crossing_any(self, links: Iterable[Link]) -> int:
        """Number of indexed paths that traverse at least one of ``links``.

        This is the statistic behind the paper's ">28 % of the IPv6 paths
        contain at least one hybrid link"; it cannot be derived from the
        per-link counters alone (paths may cross several hybrid links),
        so the index keeps the per-path link sets as well.
        """
        target = set(links)
        return sum(1 for path_links in self._path_links if path_links & target)

    def fraction_crossing_any(self, links: Iterable[Link]) -> float:
        """Fraction of indexed paths traversing at least one of ``links``."""
        if self.path_count == 0:
            return 0.0
        return self.paths_crossing_any(links) / self.path_count

    # Internal per-path link sets (kept for paths_crossing_any).
    _path_links: List[Set[Link]] = field(default_factory=list)


def build_visibility_index(
    observations: Iterable[ObservedRoute],
    afi: Optional[AFI] = None,
    distinct_paths_only: bool = True,
) -> VisibilityIndex:
    """Index the paths of a set of observations.

    ``distinct_paths_only`` counts each distinct AS path once, which is
    how the paper counts "IPv6 AS paths"; setting it to False counts
    every observation (one per vantage point, prefix and collector).

    When ``observations`` is an
    :class:`~repro.core.store.ObservationStore` the store's cached index
    is returned instead of re-scanning (identical contents).
    """
    from repro.core.store import ObservationStore  # circular at module level

    if isinstance(observations, ObservationStore):
        return observations.visibility_index(afi, distinct_paths_only)
    index = VisibilityIndex(afi=afi)
    seen_paths: Set[Tuple[int, ...]] = set()
    counter: Counter = Counter()
    path_links: List[Set[Link]] = []
    for observation in observations:
        if afi is not None and observation.afi is not afi:
            continue
        if distinct_paths_only:
            if observation.path in seen_paths:
                continue
            seen_paths.add(observation.path)
        links = set(observation.links())
        counter.update(links)
        path_links.append(links)
    index.path_count = len(path_links)
    index.link_paths = dict(counter)
    index._path_links = path_links
    return index
