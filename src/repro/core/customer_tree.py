"""Customer trees and the metrics built on them.

The *customer tree* of an AS (the root) contains all the ASes the root
can reach by following provider-to-customer links only (Figure 1 of the
paper, originally introduced by Dimitropoulos et al.).  Because the tree
changes dramatically when a single link flips between p2c and p2p, the
paper uses the following metric to quantify the impact of relationship
misinference:

    the average length and the longest length (diameter) of the shortest
    valley-free AS paths of the *union of the IPv6 customer trees*.

This module implements customer-tree computation, the union of trees,
and the average/diameter of shortest valley-free paths over the union —
the quantities plotted in Figure 2.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.annotation import ToRAnnotation, valley_free_distances
from repro.core.relationships import Link, Relationship


@dataclass(frozen=True)
class CustomerTree:
    """The customer tree of one root AS.

    Attributes:
        root: The AS at the top of the tree.
        members: Every AS reachable from the root via p2c links,
            including the root itself.
        edges: The p2c links used to reach the members (canonical
            orientation).
        depth: Length (in hops) of the longest root-to-member chain.
    """

    root: int
    members: frozenset
    edges: frozenset
    depth: int

    @property
    def size(self) -> int:
        """Number of ASes in the tree (root included)."""
        return len(self.members)

    def contains(self, asn: int) -> bool:
        """True when ``asn`` belongs to the tree."""
        return asn in self.members


def customer_tree(annotation: ToRAnnotation, root: int) -> CustomerTree:
    """Compute the customer tree of ``root`` under an annotation.

    The traversal follows p2c edges only (provider side towards customer
    side), breadth-first, recording every link used at least once.
    """
    members: Set[int] = {root}
    edges: Set[Link] = set()
    frontier = [root]
    depth = 0
    while frontier:
        next_frontier: List[int] = []
        for asn in frontier:
            for customer in annotation.customers_of(asn):
                edges.add(Link(asn, customer))
                if customer not in members:
                    members.add(customer)
                    next_frontier.append(customer)
        if next_frontier:
            depth += 1
        frontier = next_frontier
    return CustomerTree(
        root=root, members=frozenset(members), edges=frozenset(edges), depth=depth
    )


@dataclass
class CustomerTreeUnion:
    """The union of the customer trees of a set of roots.

    Attributes:
        roots: The roots whose trees were united.
        members: Union of all tree member sets.
        edges: Union of all tree edge sets.
    """

    roots: Tuple[int, ...]
    members: frozenset
    edges: frozenset

    @property
    def size(self) -> int:
        """Number of ASes in the union."""
        return len(self.members)


def union_of_customer_trees(
    annotation: ToRAnnotation, roots: Optional[Iterable[int]] = None
) -> CustomerTreeUnion:
    """Union of the customer trees of ``roots``.

    ``roots`` defaults to every AS of the annotation, matching the
    paper's "union of the IPv6 customer trees".  (ASes without customers
    contribute a trivial tree containing only themselves.)
    """
    root_list = sorted(roots) if roots is not None else annotation.ases
    members: Set[int] = set()
    edges: Set[Link] = set()
    for root in root_list:
        tree = customer_tree(annotation, root)
        members.update(tree.members)
        edges.update(tree.edges)
    return CustomerTreeUnion(
        roots=tuple(root_list), members=frozenset(members), edges=frozenset(edges)
    )


@dataclass
class PathLengthMetrics:
    """Average and maximum (diameter) of shortest valley-free path lengths.

    Attributes:
        average: Mean shortest valley-free path length over the measured
            pairs (0 when no pair is reachable).
        diameter: Longest of the shortest valley-free path lengths.
        reachable_pairs: Number of ordered pairs with a valley-free path.
        measured_sources: Number of source ASes the BFS ran from.
    """

    average: float = 0.0
    diameter: int = 0
    reachable_pairs: int = 0
    measured_sources: int = 0

    def as_tuple(self) -> Tuple[float, int]:
        """(average, diameter) — convenient for plotting Figure 2."""
        return (self.average, self.diameter)


def valley_free_path_metrics(
    annotation: ToRAnnotation,
    nodes: Iterable[int],
    max_sources: Optional[int] = None,
) -> PathLengthMetrics:
    """Average / diameter of shortest valley-free paths among ``nodes``.

    Runs the two-state valley-free BFS from every node (or the first
    ``max_sources`` nodes, for sampled evaluation on large topologies)
    and aggregates the distances towards the other nodes of the set.
    Unreachable pairs are ignored, as in the paper's metric.
    """
    node_list = sorted(set(nodes))
    node_set = set(node_list)
    sources = node_list if max_sources is None else node_list[:max_sources]
    total = 0
    pairs = 0
    diameter = 0
    for source in sources:
        distances = valley_free_distances(annotation, source)
        for target, distance in distances.items():
            if target == source or target not in node_set:
                continue
            total += distance
            pairs += 1
            if distance > diameter:
                diameter = distance
    average = total / pairs if pairs else 0.0
    return PathLengthMetrics(
        average=average,
        diameter=diameter,
        reachable_pairs=pairs,
        measured_sources=len(sources),
    )


def customer_tree_union_metrics(
    annotation: ToRAnnotation,
    roots: Optional[Iterable[int]] = None,
    max_sources: Optional[int] = None,
) -> Tuple[CustomerTreeUnion, PathLengthMetrics]:
    """The paper's Figure-2 metric for one annotation.

    Builds the union of customer trees, then measures the shortest
    valley-free paths among the union's member ASes.
    """
    union = union_of_customer_trees(annotation, roots)
    metrics = valley_free_path_metrics(annotation, union.members, max_sources=max_sources)
    return union, metrics
