"""Core package: the paper's contribution.

Everything needed to (a) extract AS relationships from BGP Communities
and Local Preference, (b) detect hybrid IPv4/IPv6 relationships, and
(c) assess their impact through valley analysis and customer-tree
metrics.
"""

from repro.core.annotation import ToRAnnotation, valley_free_distances
from repro.core.combined_inference import (
    CombinedInference,
    CombinedInferenceResult,
    CoverageReport,
)
from repro.core.communities_inference import (
    CommunitiesInference,
    CommunitiesInferenceResult,
    RelationshipVote,
)
from repro.core.correction import (
    CorrectionExperiment,
    CorrectionSeries,
    CorrectionStep,
    plane_agnostic_annotation,
)
from repro.core.customer_tree import (
    CustomerTree,
    CustomerTreeUnion,
    PathLengthMetrics,
    customer_tree,
    customer_tree_union_metrics,
    union_of_customer_trees,
    valley_free_path_metrics,
)
from repro.core.hybrid import (
    HybridDetectionReport,
    HybridDetector,
    HybridLink,
    HybridValidation,
    detect_hybrid_links,
)
from repro.core.locpref_inference import (
    LocPrefInference,
    LocPrefInferenceResult,
    LocPrefMapping,
)
from repro.core.observations import (
    ObservedRoute,
    clean_raw_path,
    group_by_afi,
    group_by_vantage,
    unique_links,
    unique_paths,
)
from repro.core.relationships import (
    AFI,
    DualStackRelationship,
    HybridType,
    Link,
    Relationship,
    RelationshipRecord,
    RelationshipSource,
    classify_hybrid,
    majority_relationship,
    orient_relationship,
)
from repro.core.store import ObservationStore
from repro.core.valley import (
    PathValidation,
    PathValidity,
    ValleyAnalysisReport,
    ValleyAnalyzer,
    ValleyPath,
    ValleyReason,
    validate_path,
)
from repro.core.visibility import VisibilityIndex, build_visibility_index

__all__ = [
    "ToRAnnotation",
    "valley_free_distances",
    "CombinedInference",
    "CombinedInferenceResult",
    "CoverageReport",
    "CommunitiesInference",
    "CommunitiesInferenceResult",
    "RelationshipVote",
    "CorrectionExperiment",
    "CorrectionSeries",
    "CorrectionStep",
    "plane_agnostic_annotation",
    "CustomerTree",
    "CustomerTreeUnion",
    "PathLengthMetrics",
    "customer_tree",
    "customer_tree_union_metrics",
    "union_of_customer_trees",
    "valley_free_path_metrics",
    "HybridDetectionReport",
    "HybridDetector",
    "HybridLink",
    "HybridValidation",
    "detect_hybrid_links",
    "LocPrefInference",
    "LocPrefInferenceResult",
    "LocPrefMapping",
    "ObservedRoute",
    "clean_raw_path",
    "group_by_afi",
    "group_by_vantage",
    "unique_links",
    "unique_paths",
    "AFI",
    "DualStackRelationship",
    "HybridType",
    "Link",
    "Relationship",
    "RelationshipRecord",
    "RelationshipSource",
    "classify_hybrid",
    "majority_relationship",
    "orient_relationship",
    "ObservationStore",
    "PathValidation",
    "PathValidity",
    "ValleyAnalysisReport",
    "ValleyAnalyzer",
    "ValleyPath",
    "ValleyReason",
    "validate_path",
    "VisibilityIndex",
    "build_visibility_index",
]
