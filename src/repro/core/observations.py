"""Observed routes: the measurement-side view of BGP data.

The inference algorithms never see the ground-truth topology.  Their
input is a list of :class:`ObservedRoute` objects — one per archived
table-dump record — carrying exactly the fields the paper's methodology
uses: the (cleaned) AS path, the communities, the LOCAL_PREF reported by
the vantage feed, and the prefix/address family.

Keeping this type in :mod:`repro.core` (rather than the analysis
pipeline) lets the inference be exercised on hand-built observations in
unit tests without dragging the whole collector substrate in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.relationships import AFI, Link
from repro.bgp.attributes import Community
from repro.bgp.prefixes import Prefix


@dataclass(frozen=True)
class ObservedRoute:
    """One route observation from a vantage point.

    Attributes:
        path: The cleaned AS path — prepending collapsed, vantage AS
            first, origin AS last.  Paths with loops are dropped during
            extraction and never reach the inference.
        prefix: The prefix the path leads to.
        vantage: The vantage-point AS (equals ``path[0]``).
        communities: Communities carried by the route.
        local_pref: LOCAL_PREF reported by the vantage feed, ``None``
            when the feed does not export it.
        collector: Name of the collector the record came from.
        afi: Address family of the observation (derived from the prefix
            at construction; a plain attribute, not a dataclass field,
            because every per-plane filter of every pipeline stage reads
            it).
    """

    path: Tuple[int, ...]
    prefix: Prefix
    vantage: int
    communities: Tuple[Community, ...] = ()
    local_pref: Optional[int] = None
    collector: str = ""

    def __post_init__(self) -> None:
        if len(self.path) < 1:
            raise ValueError("an observed path cannot be empty")
        if self.path[0] != self.vantage:
            raise ValueError("the vantage AS must be the first hop of the path")
        if len(set(self.path)) != len(self.path):
            raise ValueError("observed paths must be loop-free and prepending-free")
        # ``afi`` is read on every per-plane filter of every pipeline
        # stage; a plain attribute beats a property chain through the
        # prefix.  Not a dataclass field: equality and repr stay keyed on
        # the declared fields.
        object.__setattr__(self, "afi", self.prefix.afi)

    @classmethod
    def trusted(
        cls,
        path: Tuple[int, ...],
        prefix: Prefix,
        vantage: int,
        communities: Tuple[Community, ...] = (),
        local_pref: Optional[int] = None,
        collector: str = "",
    ) -> "ObservedRoute":
        """Build an observation whose invariants the caller guarantees.

        The extraction pipeline cleans every path through
        :func:`clean_raw_path` (which already proves it non-empty and
        loop-free) and anchors the vantage AS itself, so re-validating in
        ``__post_init__`` would redo that work once per archived record.
        Hand-built observations should use the normal constructor.
        """
        observation = object.__new__(cls)
        # One __dict__ swap instead of seven frozen-bypassing setattrs;
        # extraction creates one instance per archived record.
        object.__setattr__(
            observation,
            "__dict__",
            {
                "path": path,
                "prefix": prefix,
                "vantage": vantage,
                "communities": communities,
                "local_pref": local_pref,
                "collector": collector,
                "afi": prefix.afi,
            },
        )
        return observation

    @property
    def origin_as(self) -> int:
        """The AS originating the prefix."""
        return self.path[-1]

    @property
    def length(self) -> int:
        """Number of AS hops in the path."""
        return len(self.path)

    def links(self) -> List[Link]:
        """Canonical links traversed by the path (observer side first)."""
        return [Link(self.path[i], self.path[i + 1]) for i in range(len(self.path) - 1)]

    def next_hop_of(self, asn: int) -> Optional[int]:
        """The AS from which ``asn`` learned this route (towards the origin).

        Returns ``None`` when ``asn`` is the origin or not on the path.
        This is the step the communities-based inference relies on: a
        relationship community set by ``asn`` describes its relationship
        with ``next_hop_of(asn)``.
        """
        for index, hop in enumerate(self.path[:-1]):
            if hop == asn:
                return self.path[index + 1]
        return None

    def communities_of(self, asn: int) -> List[Community]:
        """Communities administered by ``asn`` carried on this route."""
        return [community for community in self.communities if community.asn == asn]

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.prefix} via {' '.join(str(h) for h in self.path)}"


def clean_raw_path(raw_hops: Sequence[int]) -> Optional[Tuple[int, ...]]:
    """Collapse prepending and reject loops.

    Returns the cleaned hop tuple, or ``None`` when the path contains a
    (non-prepending) loop and must be discarded, which is how both the
    paper and standard topology pipelines treat poisoned/looped paths.
    """
    hops = tuple(map(int, raw_hops))
    # Fast path: a path with no repeated AS at all has no prepending to
    # collapse and no loop to reject — the overwhelmingly common case.
    if len(set(hops)) == len(hops):
        return hops if hops else None
    collapsed: List[int] = []
    for hop in hops:
        if not collapsed or collapsed[-1] != hop:
            collapsed.append(hop)
    if len(set(collapsed)) != len(collapsed):
        return None
    return tuple(collapsed)


def unique_paths(observations: Iterable[ObservedRoute]) -> Set[Tuple[int, ...]]:
    """The set of distinct AS paths among the observations."""
    return {observation.path for observation in observations}


def unique_links(observations: Iterable[ObservedRoute]) -> Set[Link]:
    """The set of distinct AS links traversed by the observations."""
    links: Set[Link] = set()
    for observation in observations:
        links.update(observation.links())
    return links


def group_by_afi(
    observations: Iterable[ObservedRoute],
) -> Dict[AFI, List[ObservedRoute]]:
    """Split observations by address family."""
    groups: Dict[AFI, List[ObservedRoute]] = {AFI.IPV4: [], AFI.IPV6: []}
    for observation in observations:
        groups[observation.afi].append(observation)
    return groups


def group_by_vantage(
    observations: Iterable[ObservedRoute],
) -> Dict[int, List[ObservedRoute]]:
    """Group observations by vantage-point AS."""
    groups: Dict[int, List[ObservedRoute]] = {}
    for observation in observations:
        groups.setdefault(observation.vantage, []).append(observation)
    return groups
