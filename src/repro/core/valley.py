"""Valley-free validation and classification of AS paths.

An AS path is *valley-free* (Gao's rule) when it consists of zero or more
customer-to-provider hops, followed by at most one peer-to-peer hop,
followed by zero or more provider-to-customer hops.  Paths violating the
rule are *valley paths*.

The paper finds that 13 % of the observed IPv6 paths are valley paths and
that 16 % of those are explained by deliberate relaxation of the rule to
preserve IPv6 reachability (the partitioned IPv6 plane).  This module
implements:

* the path validator (with precise localisation of the violating hop),
* the classification of a valley path as *reachability-motivated* (no
  valley-free alternative exists between the path's endpoints in the
  annotated topology) or not, and
* aggregate statistics over a set of observations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.annotation import ToRAnnotation, directed_adjacency, valley_free_distances
from repro.core.observations import ObservedRoute
from repro.core.relationships import AFI, Link, Relationship


class PathValidity(enum.Enum):
    """Outcome of validating one path against an annotation."""

    VALLEY_FREE = "valley-free"
    VALLEY = "valley"
    UNKNOWN = "unknown"  # at least one hop has no known relationship

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class ValleyReason(enum.Enum):
    """Why a valley path exists."""

    REACHABILITY = "reachability"  # no valley-free alternative to the origin
    POLICY_VIOLATION = "policy-violation"  # an alternative exists; leak / TE / misconfig

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class PathValidation:
    """Detailed result of validating a single path.

    Attributes:
        path: The validated path.
        validity: Overall verdict.
        violating_hop: Index ``i`` such that the step ``path[i] ->
            path[i+1]`` is the first one violating the valley-free state
            machine (``None`` when the path is valid or unknown).
        unknown_hops: Indices of steps whose relationship is unknown.
    """

    path: Tuple[int, ...]
    validity: PathValidity
    violating_hop: Optional[int] = None
    unknown_hops: Tuple[int, ...] = ()

    @property
    def is_valley(self) -> bool:
        """True when the path violates the valley-free rule."""
        return self.validity is PathValidity.VALLEY


def validate_path(
    path: Sequence[int], annotation: ToRAnnotation
) -> PathValidation:
    """Validate a single AS path against a relationship annotation.

    The path is interpreted observer-side first (as archived by the
    collectors): hop ``i`` learned the route from hop ``i+1``.  Walking
    the path from the *origin* towards the observer therefore follows the
    direction of route propagation; the implementation walks the stored
    order and inverts the relationship accordingly.

    The state machine (observer → origin order) is the mirror image of
    the usual uphill/downhill formulation: the observer-side segment must
    be c2p hops, then at most one p2p hop, then p2c hops towards the
    origin.  Equivalently, once a hop other than c2p is taken, no further
    c2p or p2p hop may appear.
    """
    hops = tuple(int(asn) for asn in path)
    if len(hops) < 2:
        return PathValidation(path=hops, validity=PathValidity.VALLEY_FREE)
    relationships = [
        annotation.get(hops[index], hops[index + 1]) for index in range(len(hops) - 1)
    ]
    unknown = tuple(
        index for index, rel in enumerate(relationships) if not rel.is_known
    )
    if unknown:
        # A hop with unknown relationship makes the state machine
        # ambiguous; the paper (and this reproduction) only assesses
        # paths whose every link has a known relationship.
        return PathValidation(path=hops, validity=PathValidity.UNKNOWN, unknown_hops=unknown)
    # Phase 0: climbing away from the observer (towards the "top" of the
    # path); phase 1: descending towards the origin.
    descending = False
    for index, relationship in enumerate(relationships):
        if relationship is Relationship.SIBLING:
            continue
        if not descending:
            if relationship is Relationship.C2P:
                continue
            # A p2p or p2c hop switches the path to the descending phase.
            descending = True
            continue
        # Already descending: only p2c hops are allowed.
        if relationship is Relationship.P2C:
            continue
        return PathValidation(
            path=hops, validity=PathValidity.VALLEY, violating_hop=index
        )
    return PathValidation(path=hops, validity=PathValidity.VALLEY_FREE)


@dataclass(frozen=True)
class ValleyPath:
    """A valley path together with its classification."""

    validation: PathValidation
    reason: ValleyReason

    @property
    def path(self) -> Tuple[int, ...]:
        """The offending path."""
        return self.validation.path


@dataclass
class ValleyAnalysisReport:
    """Aggregate valley statistics over a set of paths.

    Attributes:
        total_paths: Number of distinct paths analysed.
        valley_free_paths: Paths satisfying the valley-free rule.
        valley_paths: The valley paths with their classification.
        unknown_paths: Paths that could not be fully validated because a
            hop's relationship is unknown.
    """

    total_paths: int = 0
    valley_free_paths: int = 0
    valley_paths: List[ValleyPath] = field(default_factory=list)
    unknown_paths: int = 0

    @property
    def valley_count(self) -> int:
        """Number of valley paths."""
        return len(self.valley_paths)

    @property
    def valley_fraction(self) -> float:
        """Fraction of analysed paths that are valley paths."""
        if self.total_paths == 0:
            return 0.0
        return self.valley_count / self.total_paths

    @property
    def reachability_motivated(self) -> List[ValleyPath]:
        """Valley paths with no valley-free alternative (the 16 %)."""
        return [vp for vp in self.valley_paths if vp.reason is ValleyReason.REACHABILITY]

    @property
    def reachability_fraction(self) -> float:
        """Fraction of valley paths that are reachability-motivated."""
        if not self.valley_paths:
            return 0.0
        return len(self.reachability_motivated) / len(self.valley_paths)

    def summary(self) -> Dict[str, float]:
        """Compact numeric summary used by reports and benchmarks."""
        return {
            "total_paths": float(self.total_paths),
            "valley_free_paths": float(self.valley_free_paths),
            "valley_paths": float(self.valley_count),
            "unknown_paths": float(self.unknown_paths),
            "valley_fraction": self.valley_fraction,
            "reachability_motivated": float(len(self.reachability_motivated)),
            "reachability_fraction": self.reachability_fraction,
        }


class ValleyAnalyzer:
    """Validate and classify a set of observed paths against an annotation."""

    def __init__(self, annotation: ToRAnnotation) -> None:
        self.annotation = annotation
        # Cache of valley-free reachability: source -> set of ASes with a
        # valley-free path from source.  Computed lazily per source.
        self._reachable_cache: Dict[int, Set[int]] = {}
        # Directed adjacency shared by every BFS source (built lazily;
        # the annotation must not be mutated while an analyzer uses it).
        self._directed = None

    # ------------------------------------------------------------------
    # classification helpers
    # ------------------------------------------------------------------
    def _valley_free_reachable(self, source: int) -> Set[int]:
        cached = self._reachable_cache.get(source)
        if cached is None:
            if self._directed is None:
                self._directed = directed_adjacency(self.annotation)
            cached = set(
                valley_free_distances(self.annotation, source, directed=self._directed)
            )
            self._reachable_cache[source] = cached
        return cached

    def has_valley_free_alternative(self, source: int, destination: int) -> bool:
        """True when a valley-free path from ``source`` to ``destination`` exists."""
        return destination in self._valley_free_reachable(source)

    def classify_valley(self, validation: PathValidation) -> ValleyPath:
        """Classify a valley path by whether a valley-free alternative exists.

        The classification follows the paper's argument: a valley path is
        *reachability-motivated* when the annotated topology offers no
        valley-free route between the path's first AS (the observer side)
        and its origin AS, so relaxing the rule is the only way to reach
        the prefix.
        """
        if validation.validity is not PathValidity.VALLEY:
            raise ValueError("only valley paths can be classified")
        source, destination = validation.path[0], validation.path[-1]
        if self.has_valley_free_alternative(source, destination):
            reason = ValleyReason.POLICY_VIOLATION
        else:
            reason = ValleyReason.REACHABILITY
        return ValleyPath(validation=validation, reason=reason)

    # ------------------------------------------------------------------
    # aggregate analysis
    # ------------------------------------------------------------------
    def _directed_view(self) -> Dict[Tuple[int, int], Relationship]:
        """Both directions of every known link, as a flat dict.

        ``view[(a, b)]`` equals ``annotation.get(a, b)`` for known
        relationships; absent pairs mean UNKNOWN.  Built once per
        analysis so the per-hop lookup is a plain dict probe instead of
        a ``Link`` construction.
        """
        view: Dict[Tuple[int, int], Relationship] = {}
        for link, relationship in self.annotation.items():
            if not relationship.is_known:
                continue
            view[(link.a, link.b)] = relationship
            view[(link.b, link.a)] = relationship.inverse
        return view

    def analyze_paths(self, paths: Iterable[Sequence[int]]) -> ValleyAnalysisReport:
        """Validate and classify a collection of AS paths.

        The verdict of each path is computed against a directed
        relationship view (mirroring :func:`validate_path`'s state
        machine); only the rare valley paths re-run the full
        :func:`validate_path` to carry the violating-hop detail into the
        report, so the result is identical to validating every path
        individually.
        """
        report = ValleyAnalysisReport()
        view = self._directed_view()
        get = view.get
        unknown = Relationship.UNKNOWN
        sibling = Relationship.SIBLING
        c2p = Relationship.C2P
        p2c = Relationship.P2C
        for path in paths:
            # Paths from the extraction pipeline are already int tuples;
            # only normalize foreign input.
            if type(path) is tuple and (not path or type(path[0]) is int):
                hops = path
            else:
                hops = tuple(int(asn) for asn in path)
            report.total_paths += 1
            if len(hops) < 2:
                report.valley_free_paths += 1
                continue
            relationships = [
                get((hops[index], hops[index + 1]), unknown)
                for index in range(len(hops) - 1)
            ]
            if unknown in relationships:
                report.unknown_paths += 1
                continue
            descending = False
            valley = False
            for relationship in relationships:
                if relationship is sibling:
                    continue
                if not descending:
                    if relationship is c2p:
                        continue
                    descending = True
                    continue
                if relationship is p2c:
                    continue
                valley = True
                break
            if not valley:
                report.valley_free_paths += 1
                continue
            validation = validate_path(hops, self.annotation)
            report.valley_paths.append(self.classify_valley(validation))
        return report

    def analyze(
        self, observations: Iterable[ObservedRoute], afi: Optional[AFI] = None
    ) -> ValleyAnalysisReport:
        """Analyse the distinct paths of a set of observations.

        An :class:`~repro.core.store.ObservationStore` input supplies its
        precomputed distinct-path table (same paths, same first-seen
        order) instead of being re-scanned.
        """
        from repro.core.store import ObservationStore

        if isinstance(observations, ObservationStore):
            return self.analyze_paths(observations.distinct_paths(afi))
        seen: Set[Tuple[int, ...]] = set()
        paths: List[Tuple[int, ...]] = []
        for observation in observations:
            if afi is not None and observation.afi is not afi:
                continue
            if observation.path in seen:
                continue
            seen.add(observation.path)
            paths.append(observation.path)
        return self.analyze_paths(paths)
