"""Type-of-Relationship annotations for a single address family.

A :class:`ToRAnnotation` is the object every relationship-producing and
relationship-consuming component exchanges: a mapping from canonical
:class:`~repro.core.relationships.Link` to
:class:`~repro.core.relationships.Relationship` for one address family,
together with the helpers needed to treat it as an annotated graph
(neighbour queries, customer cones, valley-free reachability ...).

Producers: the ground-truth topology, the Communities/LocPrf inference
(:mod:`repro.core.combined_inference`) and the baseline ToR algorithms
(:mod:`repro.inference`).  Consumers: hybrid detection, valley analysis,
customer-tree metrics and the Figure-2 correction experiment.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from repro.core.relationships import (
    AFI,
    Link,
    Relationship,
    RelationshipRecord,
    RelationshipSource,
    orient_relationship,
)


class ToRAnnotation:
    """Relationship annotation of the links of one address-family plane."""

    def __init__(
        self,
        afi: AFI,
        relationships: Optional[Mapping[Link, Relationship]] = None,
        source: RelationshipSource = RelationshipSource.MANUAL,
    ) -> None:
        self.afi = afi
        self.source = source
        self._relationships: Dict[Link, Relationship] = {}
        self._adjacency: Dict[int, Set[int]] = defaultdict(set)
        if relationships:
            for link, relationship in relationships.items():
                self.set(link.a, link.b, relationship)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def set(self, a: int, b: int, relationship: Relationship) -> None:
        """Set the relationship of link ``a-b`` as seen from ``a``."""
        link = Link(a, b)
        self._relationships[link] = orient_relationship(a, b, relationship)
        self._adjacency[link.a].add(link.b)
        self._adjacency[link.b].add(link.a)

    def set_canonical(self, link: Link, relationship: Relationship) -> None:
        """Set the relationship of a link already in canonical orientation."""
        self._relationships[link] = relationship
        self._adjacency[link.a].add(link.b)
        self._adjacency[link.b].add(link.a)

    def remove(self, a: int, b: int) -> None:
        """Remove a link from the annotation."""
        link = Link(a, b)
        if link in self._relationships:
            del self._relationships[link]
            self._adjacency[link.a].discard(link.b)
            self._adjacency[link.b].discard(link.a)

    def update(self, other: "ToRAnnotation", overwrite: bool = True) -> None:
        """Merge another annotation into this one.

        ``overwrite=False`` keeps existing entries and only fills gaps,
        which is how LocPrf-derived relationships complement (but never
        override) Communities-derived ones.
        """
        if other.afi is not self.afi:
            raise ValueError("cannot merge annotations of different address families")
        for link, relationship in other.items():
            if not overwrite and link in self._relationships:
                continue
            self.set_canonical(link, relationship)

    def copy(self) -> "ToRAnnotation":
        """An independent copy of this annotation."""
        return ToRAnnotation(self.afi, dict(self._relationships), source=self.source)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._relationships)

    def __contains__(self, link: Link) -> bool:
        return link in self._relationships

    def items(self) -> Iterator[Tuple[Link, Relationship]]:
        """Iterate over (link, canonical relationship) pairs."""
        return iter(self._relationships.items())

    def links(self) -> List[Link]:
        """All annotated links, sorted."""
        return sorted(self._relationships)

    @property
    def ases(self) -> List[int]:
        """All ASes appearing in the annotation."""
        return sorted(asn for asn, neighbors in self._adjacency.items() if neighbors)

    def get(self, a: int, b: int) -> Relationship:
        """Relationship of ``a-b`` from ``a``'s point of view (UNKNOWN if absent)."""
        if a == b:
            return Relationship.UNKNOWN
        link = Link(a, b)
        canonical = self._relationships.get(link, Relationship.UNKNOWN)
        if not canonical.is_known:
            return Relationship.UNKNOWN
        return link.relationship_from(a, canonical)

    def get_canonical(self, link: Link) -> Relationship:
        """Canonical relationship of a link (UNKNOWN if absent)."""
        return self._relationships.get(link, Relationship.UNKNOWN)

    def neighbors(self, asn: int) -> List[int]:
        """All annotated neighbours of an AS."""
        return sorted(self._adjacency.get(asn, ()))

    def providers_of(self, asn: int) -> List[int]:
        """Providers of an AS according to the annotation."""
        return [n for n in self.neighbors(asn) if self.get(asn, n) is Relationship.C2P]

    def customers_of(self, asn: int) -> List[int]:
        """Customers of an AS according to the annotation."""
        return [n for n in self.neighbors(asn) if self.get(asn, n) is Relationship.P2C]

    def peers_of(self, asn: int) -> List[int]:
        """Peers of an AS according to the annotation."""
        return [n for n in self.neighbors(asn) if self.get(asn, n) is Relationship.P2P]

    def records(self) -> List[RelationshipRecord]:
        """Export as a list of :class:`RelationshipRecord` objects."""
        return [
            RelationshipRecord(link=link, afi=self.afi, relationship=rel, source=self.source)
            for link, rel in sorted(self._relationships.items())
        ]

    # ------------------------------------------------------------------
    # comparisons
    # ------------------------------------------------------------------
    def agreement_with(self, other: "ToRAnnotation") -> Dict[str, int]:
        """Compare against another annotation over the common links.

        Returns counts of links that agree, disagree and are only present
        in one of the two annotations.
        """
        agree = disagree = 0
        mine = set(self._relationships)
        theirs = set(other._relationships)
        for link in mine & theirs:
            if self._relationships[link] is other._relationships[link]:
                agree += 1
            else:
                disagree += 1
        return {
            "common": agree + disagree,
            "agree": agree,
            "disagree": disagree,
            "only_self": len(mine - theirs),
            "only_other": len(theirs - mine),
        }

    def differing_links(self, other: "ToRAnnotation") -> List[Link]:
        """Common links whose relationship differs between the annotations."""
        result = []
        for link in set(self._relationships) & set(other._relationships):
            if self._relationships[link] is not other._relationships[link]:
                result.append(link)
        return sorted(result)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph, afi: AFI) -> "ToRAnnotation":
        """Extract the annotation of one plane from an annotated ASGraph."""
        annotation = cls(afi, source=RelationshipSource.GROUND_TRUTH)
        for link in graph.links(afi):
            record = graph.dual_stack_relationship(link.a, link.b)
            annotation.set_canonical(link, record.relationship(afi))
        return annotation

    @classmethod
    def from_records(
        cls, records: Iterable[RelationshipRecord], afi: AFI
    ) -> "ToRAnnotation":
        """Build an annotation from relationship records of one plane."""
        annotation = cls(afi)
        for record in records:
            if record.afi is not afi:
                continue
            annotation.set_canonical(record.link, record.relationship)
        return annotation


def directed_adjacency(
    annotation: ToRAnnotation,
) -> Dict[int, List[Tuple[int, Relationship]]]:
    """Known (neighbour, relationship-from-asn) lists per AS.

    One build replaces a sort plus a ``Link`` construction per edge
    visit in the valley-free BFS; callers running the BFS from many
    sources should build this once and pass it along.
    """
    directed: Dict[int, List[Tuple[int, Relationship]]] = {}
    for link, relationship in annotation.items():
        if not relationship.is_known:
            continue
        directed.setdefault(link.a, []).append((link.b, relationship))
        directed.setdefault(link.b, []).append((link.a, relationship.inverse))
    for edges in directed.values():
        edges.sort(key=lambda edge: edge[0])
    return directed


def valley_free_distances(
    annotation: ToRAnnotation,
    source: int,
    targets: Optional[Set[int]] = None,
    directed: Optional[Dict[int, List[Tuple[int, Relationship]]]] = None,
) -> Dict[int, int]:
    """Shortest valley-free path lengths (in AS hops) from ``source``.

    Implements the classic two-state BFS over the annotated graph:

    * In the **uphill** state the path may continue over c2p links (still
      climbing), or take a single p2p link or a p2c link, which switches
      it to the downhill state.
    * In the **downhill** state only p2c links may be taken.

    The returned mapping contains, for every reachable AS, the length of
    the shortest *valid* (valley-free) path from ``source``; ``source``
    itself maps to 0.  ``targets`` optionally stops the search early once
    all the requested targets have been reached.
    """
    UP, DOWN = 0, 1
    if directed is None:
        directed = directed_adjacency(annotation)
    best: Dict[Tuple[int, int], int] = {(source, UP): 0}
    distances: Dict[int, int] = {source: 0}
    remaining = set(targets) - {source} if targets is not None else None
    frontier: List[Tuple[int, int]] = [(source, UP)]
    depth = 0
    while frontier:
        if remaining is not None and not remaining:
            break
        depth += 1
        next_frontier: List[Tuple[int, int]] = []
        for asn, state in frontier:
            for neighbor, relationship in directed.get(asn, ()):
                if state == UP:
                    if relationship is Relationship.C2P:
                        new_state = UP
                    elif relationship in (Relationship.P2P, Relationship.P2C):
                        new_state = DOWN
                    elif relationship is Relationship.SIBLING:
                        new_state = UP
                    else:
                        continue
                else:  # DOWN
                    if relationship is Relationship.P2C:
                        new_state = DOWN
                    elif relationship is Relationship.SIBLING:
                        new_state = DOWN
                    else:
                        continue
                key = (neighbor, new_state)
                if key in best:
                    continue
                best[key] = depth
                next_frontier.append(key)
                if neighbor not in distances:
                    distances[neighbor] = depth
                    if remaining is not None:
                        remaining.discard(neighbor)
        frontier = next_frontier
    return distances
