"""Combining the Communities and LocPrf relationship evidence.

The paper extracts "the actual relationships" from both sources: the
Communities tags provide most of the coverage and also calibrate the
LocPrf values; the calibrated LocPrf values then add first-hop links that
carried no usable relationship community.  This module glues the two
inference stages together and reports coverage the same way the paper
does (fraction of visible links whose relationship was recovered, for all
IPv6 links and for the dual-stack subset).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.annotation import ToRAnnotation
from repro.core.communities_inference import (
    CommunitiesInference,
    CommunitiesInferenceResult,
)
from repro.core.locpref_inference import LocPrefInference, LocPrefInferenceResult
from repro.core.observations import ObservedRoute, group_by_afi, unique_links
from repro.core.relationships import AFI, Link, Relationship, RelationshipSource
from repro.irr.registry import IRRRegistry


@dataclass
class CoverageReport:
    """Relationship coverage over a set of visible links.

    Attributes:
        total_links: Number of links visible in the observations.
        annotated_links: Number of those links with an inferred relationship.
    """

    total_links: int
    annotated_links: int

    @property
    def fraction(self) -> float:
        """Covered fraction (0 when no links are visible)."""
        if self.total_links == 0:
            return 0.0
        return self.annotated_links / self.total_links


@dataclass
class CombinedInferenceResult:
    """Outcome of the combined Communities + LocPrf inference.

    Attributes:
        annotations: Final per-AFI annotations (communities take
            precedence; LocPrf fills gaps).
        communities: The intermediate communities-only result.
        locpref: The intermediate LocPrf-only result.
        coverage: Per-AFI coverage over the links visible in the input
            observations.
    """

    annotations: Dict[AFI, ToRAnnotation]
    communities: CommunitiesInferenceResult
    locpref: LocPrefInferenceResult
    coverage: Dict[AFI, CoverageReport] = field(default_factory=dict)

    def annotation(self, afi: AFI) -> ToRAnnotation:
        """The final annotation for one address family."""
        return self.annotations[afi]

    def relationship(self, a: int, b: int, afi: AFI) -> Relationship:
        """Inferred relationship of ``a-b`` in ``afi`` from ``a``'s view."""
        return self.annotations[afi].get(a, b)

    def dual_stack_coverage(self, dual_stack_links: Iterable[Link]) -> CoverageReport:
        """Coverage restricted to links visible in both planes.

        A dual-stack link counts as covered when its relationship is
        known in *both* planes — that is the set the hybrid analysis can
        work on (the paper's 81 %).
        """
        links = list(dual_stack_links)
        covered = sum(
            1
            for link in links
            if self.annotations[AFI.IPV4].get_canonical(link).is_known
            and self.annotations[AFI.IPV6].get_canonical(link).is_known
        )
        return CoverageReport(total_links=len(links), annotated_links=covered)


class CombinedInference:
    """Run the communities inference, then the LocPrf inference, and merge.

    Args:
        registry: IRR registry shared by both stages.
        communities: Optionally a pre-configured
            :class:`CommunitiesInference` (defaults are used otherwise).
        locpref: Optionally a pre-configured :class:`LocPrefInference`.
    """

    def __init__(
        self,
        registry: IRRRegistry,
        communities: Optional[CommunitiesInference] = None,
        locpref: Optional[LocPrefInference] = None,
    ) -> None:
        self.registry = registry
        self.communities = communities or CommunitiesInference(registry)
        self.locpref = locpref or LocPrefInference(registry)

    def infer(self, observations: Iterable[ObservedRoute]) -> CombinedInferenceResult:
        """Infer relationships for every link visible in the observations.

        An :class:`~repro.core.store.ObservationStore` input is passed
        through to both stages (which query its indexes) and supplies
        the per-plane visible-link sets without another scan.
        """
        from repro.core.store import ObservationStore

        store = observations if isinstance(observations, ObservationStore) else None
        if store is None:
            observations = list(observations)
        communities_result = self.communities.infer(observations)
        locpref_result = self.locpref.infer(observations)

        annotations: Dict[AFI, ToRAnnotation] = {}
        for afi in (AFI.IPV4, AFI.IPV6):
            merged = ToRAnnotation(afi, source=RelationshipSource.COMBINED)
            merged.update(communities_result.annotation(afi))
            # LocPrf evidence only fills links communities did not cover.
            merged.update(locpref_result.annotation(afi), overwrite=False)
            annotations[afi] = merged

        by_afi = None if store is not None else group_by_afi(observations)
        coverage = {}
        for afi in (AFI.IPV4, AFI.IPV6):
            visible = store.links(afi) if store is not None else unique_links(by_afi[afi])
            annotated = set(annotations[afi].links()) & visible
            coverage[afi] = CoverageReport(
                total_links=len(visible), annotated_links=len(annotated)
            )
        return CombinedInferenceResult(
            annotations=annotations,
            communities=communities_result,
            locpref=locpref_result,
            coverage=coverage,
        )
