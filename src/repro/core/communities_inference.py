"""Relationship inference from the BGP Communities attribute.

This is the first half of the paper's methodology (Section 2).  Operators
tag routes with communities whose documented meaning encodes the
relationship towards the neighbour the route was learned from
("65010:100 — routes learned from customers").  Given

* a set of :class:`~repro.core.observations.ObservedRoute` objects, and
* an :class:`~repro.irr.registry.IRRRegistry` with the documentation of
  (a subset of) the tagging ASes,

the inference walks every observed path, finds the communities whose
administering AS lies on the path, translates them through the registry
and records a *vote* for the relationship of the link between the tagging
AS and the AS it learned the route from.  Votes are aggregated per link
and address family; contradictory evidence is refused rather than
guessed, exactly as a conservative measurement study would.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, NamedTuple, Optional, Tuple

from repro.core.annotation import ToRAnnotation
from repro.core.observations import ObservedRoute
from repro.core.relationships import (
    AFI,
    Link,
    Relationship,
    RelationshipRecord,
    RelationshipSource,
    majority_relationship,
)
from repro.irr.registry import IRRRegistry


class RelationshipVote(NamedTuple):
    """One piece of community-derived evidence about a link.

    A ``NamedTuple`` rather than a dataclass: one vote is created per
    usable community of every tagged observation (tens of thousands per
    snapshot), and tuple construction is several times cheaper than the
    frozen-dataclass ``__setattr__`` dance while keeping value equality
    and named field access.

    Attributes:
        link: The link the vote is about.
        afi: Address family of the observation the vote came from.
        relationship: Canonical-orientation relationship implied by the
            community.
        tagger: The AS whose community produced the vote.
        observed_from: The vantage point of the observation.
    """

    link: Link
    afi: AFI
    relationship: Relationship
    tagger: int
    observed_from: int


@dataclass
class CommunitiesInferenceResult:
    """Outcome of the communities-based inference.

    Attributes:
        annotations: One :class:`ToRAnnotation` per address family with
            the links whose relationship could be established.
        votes: The raw per-link votes (useful for debugging, confidence
            reporting and the benchmarks' agreement statistics).
        conflicting_links: Links whose votes disagreed beyond the
            configured threshold and were therefore left unannotated.
    """

    annotations: Dict[AFI, ToRAnnotation]
    votes: Dict[Tuple[Link, AFI], List[RelationshipVote]] = field(default_factory=dict)
    conflicting_links: Dict[AFI, List[Link]] = field(default_factory=dict)

    def annotation(self, afi: AFI) -> ToRAnnotation:
        """The annotation for one address family."""
        return self.annotations[afi]

    def coverage(self, afi: AFI, observed_links: Iterable[Link]) -> float:
        """Fraction of ``observed_links`` that received a relationship."""
        observed = set(observed_links)
        if not observed:
            return 0.0
        annotated = set(self.annotations[afi].links())
        return len(observed & annotated) / len(observed)

    def records(self) -> List[RelationshipRecord]:
        """All inferred relationships as flat records."""
        result: List[RelationshipRecord] = []
        for annotation in self.annotations.values():
            result.extend(annotation.records())
        return result


class CommunitiesInference:
    """Infer per-link, per-AFI relationships from community tags.

    Args:
        registry: The IRR registry used to translate community values.
        min_votes: Minimum number of (known) votes required before a link
            is annotated.
        min_agreement: Minimum fraction of the votes that must agree on
            the winning relationship.
    """

    def __init__(
        self,
        registry: IRRRegistry,
        min_votes: int = 1,
        min_agreement: float = 0.75,
    ) -> None:
        if min_votes < 1:
            raise ValueError("min_votes must be at least 1")
        if not 0.0 < min_agreement <= 1.0:
            raise ValueError("min_agreement must be in (0, 1]")
        self.registry = registry
        self.min_votes = min_votes
        self.min_agreement = min_agreement

    # ------------------------------------------------------------------
    # vote extraction
    # ------------------------------------------------------------------
    def votes_for_route(self, route: ObservedRoute) -> List[RelationshipVote]:
        """Extract relationship votes from a single observed route.

        A community ``asn:value`` produces a vote only when

        * ``asn`` is an AS on the path (other than the origin), so that
          "the neighbour the route was learned from" is well defined, and
        * the registry documents ``asn:value`` as a relationship tag.

        The vote describes the relationship between ``asn`` and the next
        hop towards the origin, from ``asn``'s point of view.
        """
        votes: List[RelationshipVote] = []
        for community in route.communities:
            tagger = community.asn
            learned_from = route.next_hop_of(tagger)
            if learned_from is None:
                continue
            relationship = self.registry.relationship_for(community)
            if relationship is None or not relationship.is_known:
                continue
            link = Link(tagger, learned_from)
            # Express the tagger-centric relationship in canonical orientation.
            canonical = relationship if link.a == tagger else relationship.inverse
            votes.append(
                RelationshipVote(
                    link=link,
                    afi=route.afi,
                    relationship=canonical,
                    tagger=tagger,
                    observed_from=route.vantage,
                )
            )
        return votes

    def collect_votes(
        self, observations: Iterable[ObservedRoute]
    ) -> Dict[Tuple[Link, AFI], List[RelationshipVote]]:
        """Extract and group votes from many observations.

        Equivalent to running :meth:`votes_for_route` over every
        observation, but the hot quantities are memoized per distinct
        value instead of being recomputed per occurrence: snapshots carry
        only a few hundred distinct community values and a few thousand
        distinct tagger links, so the registry translation and the
        canonical ``Link`` construction are looked up, not re-derived.
        An :class:`~repro.core.store.ObservationStore` input additionally
        restricts the scan to the observations that carry communities
        (the only ones that can vote).  The grouped votes are identical
        to the naive scan.
        """
        from repro.core.store import ObservationStore

        if isinstance(observations, ObservationStore):
            routes: Iterable[ObservedRoute] = observations.with_communities
        else:
            routes = observations
        # Grouping is keyed by plain int tuples (lo, hi, afi value) while
        # collecting — hashing a Link (generated dataclass __hash__) and
        # an AFI (enum __hash__) per vote is measurably slower than
        # hashing three ints — and re-keyed to the public (Link, AFI)
        # form at the end, preserving first-vote insertion order.
        grouped: Dict[Tuple[int, int, int], List[RelationshipVote]] = defaultdict(list)
        # (community, learned_from) -> everything a vote needs that does
        # not vary per observation: the shared canonical Link, the
        # canonical-orientation relationship and the two grouping keys.
        # None marks communities that can never vote (undocumented or
        # non-relationship values).
        template_memo: Dict[
            Tuple[object, int],
            Optional[Tuple[Link, Relationship, Tuple[int, int, int], Tuple[int, int, int]]],
        ] = {}
        missing = object()
        ipv6 = AFI.IPV6
        relationship_for = self.registry.relationship_for
        for route in routes:
            path = route.path
            last = len(path) - 1
            afi = route.afi
            is_v6 = afi is ipv6
            vantage = path[0]
            for community in route.communities:
                tagger = community.asn
                # Equivalent to route.next_hop_of(tagger): paths are
                # loop-free, so the first (only) occurrence decides.
                try:
                    index = path.index(tagger)
                except ValueError:
                    continue
                if index == last:
                    continue
                learned_from = path[index + 1]
                template_key = (community, learned_from)
                entry = template_memo.get(template_key, missing)
                if entry is missing:
                    relationship = relationship_for(community)
                    if relationship is None or not relationship.is_known:
                        entry = None
                    else:
                        link = Link(tagger, learned_from)
                        canonical = (
                            relationship if link.a == tagger else relationship.inverse
                        )
                        entry = (
                            link,
                            canonical,
                            (link.a, link.b, AFI.IPV4.value),
                            (link.a, link.b, AFI.IPV6.value),
                        )
                    template_memo[template_key] = entry
                if entry is None:
                    continue
                grouped[entry[3] if is_v6 else entry[2]].append(
                    RelationshipVote(entry[0], afi, entry[1], tagger, vantage)
                )
        return {
            (votes[0].link, votes[0].afi): votes for votes in grouped.values()
        }

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def infer(self, observations: Iterable[ObservedRoute]) -> CommunitiesInferenceResult:
        """Run the full inference over a set of observations."""
        votes = self.collect_votes(observations)
        annotations = {
            AFI.IPV4: ToRAnnotation(AFI.IPV4, source=RelationshipSource.COMMUNITIES),
            AFI.IPV6: ToRAnnotation(AFI.IPV6, source=RelationshipSource.COMMUNITIES),
        }
        conflicts: Dict[AFI, List[Link]] = {AFI.IPV4: [], AFI.IPV6: []}
        for (link, afi), link_votes in votes.items():
            winner = majority_relationship(
                # vote[2] is vote.relationship; index access skips the
                # namedtuple descriptor on this per-vote hot path.
                [vote[2] for vote in link_votes],
                min_votes=self.min_votes,
                min_agreement=self.min_agreement,
            )
            if winner is None:
                conflicts[afi].append(link)
                continue
            annotations[afi].set_canonical(link, winner)
        for afi in conflicts:
            conflicts[afi].sort()
        return CommunitiesInferenceResult(
            annotations=annotations, votes=votes, conflicting_links=conflicts
        )
