"""Command-line interface for the reproduction.

Three subcommands cover the common workflows without writing any code::

    python -m repro section3  [--small | --paper-scale] [--json PATH]
    python -m repro figure2   [--small | --paper-scale] [--top N]
    python -m repro snapshot  --output DIR [--small | --paper-scale]

``section3`` prints the Section-3 statistics table, ``figure2`` prints
the correction-sweep series, and ``snapshot`` builds a synthetic snapshot
and writes its collector archive (bgpdump-style text files), the
dual-stack relationship ground truth and the IRR documentation corpus to
a directory, so the pipeline can also be exercised from files on disk.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis import compute_section3, format_series, format_summary, format_table
from repro.core.correction import CorrectionExperiment, plane_agnostic_annotation
from repro.core.relationships import AFI
from repro.datasets import (
    DatasetConfig,
    build_snapshot,
    paper_scale_config,
    small_config,
)
from repro.topology.serialization import write_dual_stack


def _config_from_args(args: argparse.Namespace) -> DatasetConfig:
    if args.paper_scale:
        config = paper_scale_config(seed=args.seed)
    else:
        config = small_config(seed=args.seed)
    return config


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    scale = parser.add_mutually_exclusive_group()
    scale.add_argument(
        "--small", action="store_true", help="small snapshot (default, seconds to build)"
    )
    scale.add_argument(
        "--paper-scale", action="store_true", help="larger snapshot (minutes to build)"
    )
    parser.add_argument("--seed", type=int, default=7, help="snapshot seed")


def _cmd_section3(args: argparse.Namespace) -> int:
    snapshot = build_snapshot(_config_from_args(args))
    artifacts = compute_section3(snapshot.store, snapshot.registry)
    print(format_table(artifacts.report.rows(), title="Section 3 statistics"))
    if args.json:
        payload = {
            "config": {"ases": snapshot.config.topology.total_ases, "seed": args.seed},
            "section3": artifacts.report.as_dict(),
        }
        Path(args.json).write_text(json.dumps(payload, indent=2), encoding="utf-8")
        print(f"\nwrote JSON report to {args.json}")
    return 0


def _cmd_figure2(args: argparse.Namespace) -> int:
    snapshot = build_snapshot(_config_from_args(args))
    artifacts = compute_section3(snapshot.store, snapshot.registry)
    reference = artifacts.inference.annotation(AFI.IPV6)
    misinferred = plane_agnostic_annotation(
        reference, artifacts.inference.annotation(AFI.IPV4)
    )
    experiment = CorrectionExperiment(misinferred, reference, max_sources=args.max_sources)
    series = experiment.run_with_visibility(
        artifacts.hybrid.hybrid_link_set(), artifacts.visibility, top=args.top
    )
    print(
        format_series(
            "corrected links",
            {"avg path length": series.averages, "diameter": series.diameters},
            title="Figure 2 — correction sweep",
        )
    )
    print()
    print(format_summary(series.improvement(), title="Start vs end"))
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    snapshot = build_snapshot(_config_from_args(args))
    output = Path(args.output)
    output.mkdir(parents=True, exist_ok=True)
    dumps = snapshot.archive.save(output / "rib-dumps")
    write_dual_stack(snapshot.graph, output / "ground-truth-asrel.txt")
    irr_dir = output / "irr"
    irr_dir.mkdir(exist_ok=True)
    for asn, lines in snapshot.registry.documentation_corpus().items():
        (irr_dir / f"AS{asn}.txt").write_text("\n".join(lines) + "\n", encoding="utf-8")
    print(f"snapshot written to {output}")
    print(f"  {len(dumps)} collector dump files")
    print(f"  ground truth: {output / 'ground-truth-asrel.txt'}")
    print(f"  IRR documentation for {len(snapshot.registry)} ASes in {irr_dir}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Detecting and Assessing the Hybrid "
        "IPv4/IPv6 AS Relationships' (Giotsas & Zhou, SIGCOMM 2011).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    section3 = subparsers.add_parser(
        "section3", help="compute the Section-3 statistics on a synthetic snapshot"
    )
    _add_common_options(section3)
    section3.add_argument("--json", help="also write the report as JSON to this path")
    section3.set_defaults(handler=_cmd_section3)

    figure2 = subparsers.add_parser(
        "figure2", help="run the Figure-2 correction sweep"
    )
    _add_common_options(figure2)
    figure2.add_argument("--top", type=int, default=20, help="links to correct")
    figure2.add_argument(
        "--max-sources", type=int, default=60,
        help="valley-free BFS sources sampled per step (0 = exact)",
    )
    figure2.set_defaults(handler=_cmd_figure2)

    snapshot = subparsers.add_parser(
        "snapshot", help="build a synthetic snapshot and write it to disk"
    )
    _add_common_options(snapshot)
    snapshot.add_argument("--output", required=True, help="output directory")
    snapshot.set_defaults(handler=_cmd_snapshot)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "max_sources", None) == 0:
        args.max_sources = None
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
