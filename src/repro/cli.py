"""Command-line interface for the reproduction.

Three subcommands cover the common workflows without writing any code::

    python -m repro section3  [--small | --paper-scale] [--json PATH]
                              [--cache-dir DIR | --from-snapshot DIR]
    python -m repro figure2   [--small | --paper-scale] [--top N] [--json PATH]
                              [--cache-dir DIR | --from-snapshot DIR]
    python -m repro snapshot  --output DIR [--small | --paper-scale]

``section3`` prints the Section-3 statistics table, ``figure2`` prints
the correction-sweep series, and ``snapshot`` builds a synthetic snapshot
and writes its collector archive (bgpdump-style text files), the
dual-stack relationship ground truth and the IRR documentation corpus to
a directory, so the pipeline can also be exercised from files on disk.

Two flags connect the commands into a staged workflow:

* ``--cache-dir DIR`` backs the run with the on-disk artifact cache of
  :mod:`repro.pipeline` — running ``figure2`` right after ``section3``
  with the same cache dir reuses the snapshot, extraction and inference
  artifacts and only computes the correction sweep.
* ``--from-snapshot DIR`` skips the synthetic builder entirely and runs
  the measurement pipeline on a snapshot directory previously written by
  ``repro snapshot`` (the archive, ground truth and IRR corpus are read
  back from disk).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis import format_series, format_summary, format_table
from repro.analysis.stats import Section3Artifacts, compute_section3
from repro.core.correction import CorrectionSeries, run_correction_sweep
from repro.core.relationships import AFI
from repro.datasets import (
    DatasetConfig,
    load_snapshot,
    paper_scale_config,
    save_snapshot,
    small_config,
)
from repro.pipeline import PipelineConfig, run_pipeline, section3_artifacts


def _config_from_args(args: argparse.Namespace) -> DatasetConfig:
    if args.paper_scale:
        config = paper_scale_config(seed=args.seed)
    else:
        config = small_config(seed=args.seed)
    return config


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    scale = parser.add_mutually_exclusive_group()
    scale.add_argument(
        "--small", action="store_true", help="small snapshot (default, seconds to build)"
    )
    scale.add_argument(
        "--paper-scale", action="store_true", help="larger snapshot (minutes to build)"
    )
    parser.add_argument("--seed", type=int, default=7, help="snapshot seed")


def _add_pipeline_options(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--cache-dir",
        help="artifact-cache directory: warm re-runs skip unchanged stages",
    )
    source.add_argument(
        "--from-snapshot",
        metavar="DIR",
        help="run from a snapshot directory written by 'repro snapshot' "
        "instead of building one (the --small/--paper-scale/--seed "
        "sizing flags do not apply and are rejected)",
    )


def _pipeline_config(args: argparse.Namespace) -> PipelineConfig:
    return PipelineConfig(
        dataset=_config_from_args(args),
        top=getattr(args, "top", 20),
        max_sources=getattr(args, "max_sources", 60),
    )


def _print_stage_summary(run) -> None:
    cached = run.cached_stages()
    if cached:
        print(f"[pipeline] reused cached stages: {', '.join(cached)}")


def _artifacts_from_disk(directory: str) -> Section3Artifacts:
    """The measurement pipeline over a snapshot directory on disk."""
    loaded = load_snapshot(Path(directory))
    from repro.analysis.paths import extract_from_archive

    extraction = extract_from_archive(loaded.archive)
    return compute_section3(extraction.store, loaded.registry)


def _cmd_section3(args: argparse.Namespace) -> int:
    if args.from_snapshot:
        artifacts = _artifacts_from_disk(args.from_snapshot)
        config_payload = {"snapshot_dir": args.from_snapshot}
    else:
        config = _pipeline_config(args)
        run = run_pipeline(
            config, cache_dir=args.cache_dir, targets=("section3",)
        )
        _print_stage_summary(run)
        artifacts = section3_artifacts(run)
        config_payload = {
            "ases": config.dataset.topology.total_ases,
            "seed": args.seed,
        }
    print(format_table(artifacts.report.rows(), title="Section 3 statistics"))
    if args.json:
        payload = {
            "config": config_payload,
            "section3": artifacts.report.as_dict(),
        }
        Path(args.json).write_text(json.dumps(payload, indent=2), encoding="utf-8")
        print(f"\nwrote JSON report to {args.json}")
    return 0


def _figure2_series(
    artifacts: Section3Artifacts, top: int, max_sources: Optional[int]
) -> CorrectionSeries:
    """The Figure-2 sweep from precomputed Section-3 artifacts (the
    same shared implementation the pipeline's ``correction`` stage
    runs)."""
    return run_correction_sweep(
        artifacts.inference.annotation(AFI.IPV4),
        artifacts.inference.annotation(AFI.IPV6),
        artifacts.hybrid.hybrid_link_set(),
        artifacts.visibility,
        top=top,
        max_sources=max_sources,
    )


def _cmd_figure2(args: argparse.Namespace) -> int:
    if args.from_snapshot:
        artifacts = _artifacts_from_disk(args.from_snapshot)
        series = _figure2_series(artifacts, args.top, args.max_sources)
        config_payload = {"snapshot_dir": args.from_snapshot}
    else:
        config = _pipeline_config(args)
        run = run_pipeline(
            config, cache_dir=args.cache_dir, targets=("correction",)
        )
        _print_stage_summary(run)
        series = run.value("correction")
        config_payload = {
            "ases": config.dataset.topology.total_ases,
            "seed": args.seed,
        }
    print(
        format_series(
            "corrected links",
            {"avg path length": series.averages, "diameter": series.diameters},
            title="Figure 2 — correction sweep",
        )
    )
    print()
    print(format_summary(series.improvement(), title="Start vs end"))
    if args.json:
        payload = {
            "config": config_payload,
            "figure2": {
                "top": args.top,
                "max_sources": args.max_sources,
                "corrected_links": [step.corrected_links for step in series.steps],
                "averages": series.averages,
                "diameters": series.diameters,
                "improvement": series.improvement(),
            },
        }
        Path(args.json).write_text(json.dumps(payload, indent=2), encoding="utf-8")
        print(f"\nwrote JSON report to {args.json}")
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.datasets import build_snapshot

    snapshot = build_snapshot(_config_from_args(args), cache_dir=args.cache_dir)
    output = Path(args.output)
    summary = save_snapshot(snapshot, output)
    manifest = summary["manifest"]
    print(f"snapshot written to {output}")
    print(f"  {len(summary['dump_files'])} collector dump files")
    print(f"  ground truth: {output / 'ground-truth-asrel.txt'}")
    print(
        f"  IRR documentation for {manifest['documented_ases']} ASes in "
        f"{output / 'irr'}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Detecting and Assessing the Hybrid "
        "IPv4/IPv6 AS Relationships' (Giotsas & Zhou, SIGCOMM 2011).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    section3 = subparsers.add_parser(
        "section3", help="compute the Section-3 statistics on a synthetic snapshot"
    )
    _add_common_options(section3)
    _add_pipeline_options(section3)
    section3.add_argument("--json", help="also write the report as JSON to this path")
    section3.set_defaults(handler=_cmd_section3)

    figure2 = subparsers.add_parser(
        "figure2", help="run the Figure-2 correction sweep"
    )
    _add_common_options(figure2)
    _add_pipeline_options(figure2)
    figure2.add_argument("--top", type=int, default=20, help="links to correct")
    figure2.add_argument(
        "--max-sources", type=int, default=60,
        help="valley-free BFS sources sampled per step (0 = exact)",
    )
    figure2.add_argument(
        "--json", help="also write the sweep series and summary as JSON to this path"
    )
    figure2.set_defaults(handler=_cmd_figure2)

    snapshot = subparsers.add_parser(
        "snapshot", help="build a synthetic snapshot and write it to disk"
    )
    _add_common_options(snapshot)
    snapshot.add_argument("--output", required=True, help="output directory")
    snapshot.add_argument(
        "--cache-dir",
        help="artifact-cache directory: reuse cached build stages",
    )
    snapshot.set_defaults(handler=_cmd_snapshot)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "max_sources", None) == 0:
        args.max_sources = None
    if getattr(args, "from_snapshot", None) and (args.small or args.paper_scale):
        # The snapshot on disk fixes the scale; a sizing flag alongside
        # it would be silently ignored, which reads like it worked.
        parser.error("--small/--paper-scale cannot be combined with --from-snapshot")
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
