"""Command-line interface for the reproduction.

Seven subcommands cover the common workflows without writing any code::

    python -m repro section3  [--small | --paper-scale] [--engine NAME]
                              [--compression MODE] [--json PATH]
                              [--cache-dir DIR | --from-snapshot DIR]
    python -m repro figure2   [--small | --paper-scale] [--engine NAME]
                              [--compression MODE] [--top N] [--json PATH]
                              [--cache-dir DIR | --from-snapshot DIR]
    python -m repro snapshot  --output DIR [--small | --paper-scale]
                              [--engine NAME] [--compression MODE]
    python -m repro sweep     --grid grid.json [--cache-dir DIR]
                              [--executor serial|thread|process|cluster]
                              [--distributed --queue-dir DIR
                               --local-workers N --task-timeout S]
                              [--cache-budget-bytes N]
                              [--json PATH] [--markdown PATH]
    python -m repro worker    --queue-dir DIR [--worker-id ID]
                              [--lease-seconds S] [--max-idle-seconds S]
                              [--task-timeout S]
    python -m repro queue     status --queue-dir DIR [--json]
    python -m repro trace     show | summary | profile  --trace-dir DIR [--json]
    python -m repro top       [--queue-dir DIR] [--trace-dir DIR]
                              [--once] [--json] [--serve PORT]
    python -m repro bench     record | compare  [--bench-dir DIR]
                              [--history-dir DIR] [--smoke]
    python -m repro cache     stats | prune  --cache-dir DIR

``section3`` prints the Section-3 statistics table, ``figure2`` prints
the correction-sweep series, and ``snapshot`` builds a synthetic snapshot
and writes its collector archive (bgpdump-style text files), the
dual-stack relationship ground truth and the IRR documentation corpus to
a directory, so the pipeline can also be exercised from files on disk.

``sweep`` expands a JSON parameter grid (see :mod:`repro.sweep.grid`)
into scenarios and runs them all over one shared artifact cache —
upstream stages two scenarios have in common are computed once and
reused — then prints/writes a cross-scenario report.  With
``--distributed`` the waves go through the durable task queue in
``--queue-dir`` and cooperating worker processes execute them:
``--local-workers N`` spawns N on this host, and any number of
``repro worker --queue-dir DIR`` processes started from other shells
can join the same queue.  The queue is a SQLite file (WAL mode), so
sharing it across *machines* requires a filesystem with coherent
SQLite locking — typical NFS is not; multi-host fan-out beyond that is
the networked-backend item on the roadmap.  ``queue status`` snapshots
a live (or finished) queue: per-state counts, running-task lease ages,
and the dead-letter records of quarantined tasks.  A ``repro worker``
drains gracefully on SIGTERM — it finishes its current task and exits
0; a second SIGTERM also releases the in-flight task back to the queue
(attempt refunded) for an immediate exit.  ``--task-timeout`` arms the
per-task watchdog that aborts stuck-but-heartbeating attempts (see
``docs/robustness.md``).  ``cache stats``
and ``cache prune`` keep those caches from growing unbounded —
``--cache-budget-bytes`` automates the prune after every sweep wave.
Every ``--cache-dir`` is a cache *spec*: a directory (the default
layout) or a ``*.sqlite`` / ``sqlite://`` object-store file; the cache
subcommands auto-detect which backend wrote a given cache.

Two flags connect the single-run commands into a staged workflow:

* ``--cache-dir DIR`` backs the run with the on-disk artifact cache of
  :mod:`repro.pipeline` — running ``figure2`` right after ``section3``
  with the same cache dir reuses the snapshot, extraction and inference
  artifacts and only computes the correction sweep.
* ``--from-snapshot DIR`` skips the synthetic builder entirely and runs
  the measurement pipeline on a snapshot directory previously written by
  ``repro snapshot`` (the archive, ground truth and IRR corpus are read
  back from disk).

Every ``--json`` report is written with sorted keys and carries a
``schema_version`` field, so golden files and cross-run diffs stay
stable.

``--engine`` selects the propagation backend (``event`` | ``equilibrium``
| ``array`` | ``auto``, see :mod:`repro.bgp.backends`).  Every engine
produces bit-identical reports — CI diffs the ``--json`` output across
engines — so the flag only trades build time, never results.  The engine
participates in the propagation stage fingerprint, so switching it on a
shared ``--cache-dir`` recomputes propagation instead of reusing a
stale artifact.

``--compression`` (``off`` | ``stubs`` | ``full``) collapses
policy-equivalent stub ASes into quotient nodes before propagation and
inflates the results back (see :mod:`repro.topology.compress`) — like
the engine it trades build time only, never results, and participates
in the stage fingerprints.  ``section3 --json`` reports carry a
``provenance`` block stating, per address family, which backend
actually ran, why ``auto`` fell back (if it did) and what compression
collapsed; CI strips that block before diffing reports across engine
and compression configurations.

``--trace-dir DIR`` (on ``section3``/``figure2``/``snapshot``/``sweep``
/``worker``) turns on structured telemetry: spans and counters are
appended to ``DIR/trace*.jsonl`` (see :mod:`repro.telemetry` and
``docs/observability.md``).  Tracing is off by default, adds no
overhead when off, and never changes a fingerprint or an output byte.
``trace show`` renders the reassembled span tree — for a distributed
sweep, the coordinator's and every worker's spans join into one tree —
and ``trace summary`` prints per-stage/per-engine rollups (count,
total, p50/p95, cache hit rate, retry and dead-letter counts).

``--profile`` (with ``--trace-dir``) additionally wraps the hot spans
in deterministic ``cProfile`` + ``tracemalloc`` capture; ``trace
profile`` renders the hot-function rollup.  ``repro top`` is the live
monitor over a distributed sweep's queue and trace (``--serve PORT``
exposes ``/metrics`` + ``/health`` over HTTP), and ``repro bench
record|compare`` maintains the benchmark-history ledger and regression
gate (see ``docs/observability.md`` and ``docs/performance.md``).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis import format_series, format_summary, format_table
from repro.analysis.report import write_json_report
from repro.analysis.stats import Section3Artifacts, compute_section3
from repro.core.correction import (
    CorrectionSeries,
    correction_payload,
    run_correction_sweep,
)
from repro.core.relationships import AFI
from repro.datasets import (
    DatasetConfig,
    load_snapshot,
    paper_scale_config,
    save_snapshot,
    small_config,
)
from repro.pipeline import (
    ArtifactCache,
    PipelineConfig,
    PropagationConfig,
    run_pipeline,
    section3_artifacts,
)
from repro.telemetry import TelemetryConfig

#: Schema version of the ``section3``/``figure2`` ``--json`` reports.
REPORT_SCHEMA_VERSION = 1


def _write_json_report(path: str, payload: dict) -> None:
    """CLI reports go through the shared stable writer
    (:func:`repro.analysis.report.write_json_report`) with this
    module's schema version."""
    write_json_report(payload, path, schema_version=REPORT_SCHEMA_VERSION)


def _config_from_args(args: argparse.Namespace) -> DatasetConfig:
    if args.paper_scale:
        config = paper_scale_config(seed=args.seed)
    else:
        config = small_config(seed=args.seed)
    fraction = getattr(args, "origin_fraction", None)
    if fraction is not None:
        config = dataclasses.replace(config, origin_fraction=fraction)
    return config


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    scale = parser.add_mutually_exclusive_group()
    scale.add_argument(
        "--small", action="store_true", help="small snapshot (default, seconds to build)"
    )
    scale.add_argument(
        "--paper-scale", action="store_true", help="larger snapshot (minutes to build)"
    )
    parser.add_argument("--seed", type=int, default=7, help="snapshot seed")
    parser.add_argument(
        "--engine",
        choices=("event", "equilibrium", "array", "auto"),
        default="event",
        help="propagation backend (all engines produce identical results; "
        "'auto' picks the equilibrium solver when the policies qualify)",
    )
    parser.add_argument(
        "--compression",
        choices=("off", "stubs", "full"),
        default="off",
        help="control-plane compression: collapse policy-equivalent stub "
        "ASes into quotient nodes before propagation and inflate results "
        "back (bit-identical reports; 'full' adds bisimulation refinement)",
    )
    parser.add_argument(
        "--origin-fraction",
        type=float,
        default=None,
        metavar="F",
        help="announce prefixes from only this fraction of the origin ASes "
        "(0 < F <= 1, default: the scale preset's value); non-announcing "
        "stubs become pure listeners that --compression can collapse",
    )


def _add_pipeline_options(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--cache-dir",
        help="artifact-cache directory: warm re-runs skip unchanged stages",
    )
    source.add_argument(
        "--from-snapshot",
        metavar="DIR",
        help="run from a snapshot directory written by 'repro snapshot' "
        "instead of building one (the --small/--paper-scale/--seed "
        "sizing flags do not apply and are rejected)",
    )


def _profiling_from_args(args: argparse.Namespace):
    if not getattr(args, "profile", False):
        return None
    from repro.telemetry import ProfilingConfig

    return ProfilingConfig()


def _telemetry_from_args(args: argparse.Namespace) -> Optional[TelemetryConfig]:
    trace_dir = getattr(args, "trace_dir", None)
    if not trace_dir:
        return None
    return TelemetryConfig(
        trace_dir=str(trace_dir), profiling=_profiling_from_args(args)
    )


def _add_trace_option(
    parser: argparse.ArgumentParser, profile: bool = True
) -> None:
    parser.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="write structured telemetry (spans + counters, JSONL) to this "
        "directory; inspect with 'repro trace show|summary'.  Off by "
        "default; tracing never changes fingerprints or outputs",
    )
    if profile:
        parser.add_argument(
            "--profile",
            action="store_true",
            help="also wrap stage/engine spans in cProfile + tracemalloc "
            "capture, writing profile*.jsonl beside the trace (requires "
            "--trace-dir); inspect with 'repro trace profile'.  Slows the "
            "run but never changes fingerprints or outputs",
        )


def _pipeline_config(args: argparse.Namespace) -> PipelineConfig:
    return PipelineConfig(
        dataset=_config_from_args(args),
        top=getattr(args, "top", 20),
        max_sources=getattr(args, "max_sources", 60),
        propagation=PropagationConfig(
            engine=getattr(args, "engine", "event"),
            compression=getattr(args, "compression", "off"),
        ),
        telemetry=_telemetry_from_args(args),
    )


def _print_stage_summary(run) -> None:
    cached = run.cached_stages()
    if cached:
        print(f"[pipeline] reused cached stages: {', '.join(cached)}")


def _artifacts_from_disk(directory: str) -> Section3Artifacts:
    """The measurement pipeline over a snapshot directory on disk."""
    loaded = load_snapshot(Path(directory))
    from repro.analysis.paths import extract_from_archive

    extraction = extract_from_archive(loaded.archive)
    return compute_section3(extraction.store, loaded.registry)


def _selection_provenance(config: PipelineConfig, run) -> dict:
    """Per-AFI backend + compression provenance for ``--json`` reports.

    The structured counterpart of
    :meth:`repro.bgp.engine.PropagationEngine.selection_report`: which
    backend each address family actually ran on (``auto`` may fall back
    per plane), why, and what the compression pass did.  CI strips this
    block before byte-comparing reports across engines — it is the one
    part of the report that *should* differ.
    """
    from repro.bgp.engine import PropagationEngine

    scenario = run.value("scenario")
    compression = config.propagation.compression
    engine = PropagationEngine(
        scenario.topology.graph,
        scenario.policies,
        keep_ribs_for=scenario.vantage_asns,
        engine=config.propagation.engine,
        compression=compression,
        compression_plan=(
            run.value("compress") if compression != "off" else None
        ),
    )
    return {
        afi.name.lower(): engine.selection_report(scenario.origins[afi])
        for afi in (AFI.IPV4, AFI.IPV6)
    }


def _cmd_section3(args: argparse.Namespace) -> int:
    provenance = None
    if args.from_snapshot:
        artifacts = _artifacts_from_disk(args.from_snapshot)
        config_payload = {"snapshot_dir": args.from_snapshot}
    else:
        config = _pipeline_config(args)
        run = run_pipeline(
            config, cache_dir=args.cache_dir, targets=("section3",)
        )
        _print_stage_summary(run)
        artifacts = section3_artifacts(run)
        config_payload = {
            "ases": config.dataset.topology.total_ases,
            "seed": args.seed,
        }
        provenance = _selection_provenance(config, run)
    print(format_table(artifacts.report.rows(), title="Section 3 statistics"))
    if args.json:
        payload = {"config": config_payload, "section3": artifacts.report.as_dict()}
        if provenance is not None:
            payload["provenance"] = provenance
        _write_json_report(args.json, payload)
        print(f"\nwrote JSON report to {args.json}")
    return 0


def _figure2_series(
    artifacts: Section3Artifacts, top: int, max_sources: Optional[int]
) -> CorrectionSeries:
    """The Figure-2 sweep from precomputed Section-3 artifacts (the
    same shared implementation the pipeline's ``correction`` stage
    runs)."""
    return run_correction_sweep(
        artifacts.inference.annotation(AFI.IPV4),
        artifacts.inference.annotation(AFI.IPV6),
        artifacts.hybrid.hybrid_link_set(),
        artifacts.visibility,
        top=top,
        max_sources=max_sources,
    )


def _cmd_figure2(args: argparse.Namespace) -> int:
    if args.from_snapshot:
        artifacts = _artifacts_from_disk(args.from_snapshot)
        series = _figure2_series(artifacts, args.top, args.max_sources)
        config_payload = {"snapshot_dir": args.from_snapshot}
    else:
        config = _pipeline_config(args)
        run = run_pipeline(
            config, cache_dir=args.cache_dir, targets=("correction",)
        )
        _print_stage_summary(run)
        series = run.value("correction")
        config_payload = {
            "ases": config.dataset.topology.total_ases,
            "seed": args.seed,
        }
    print(
        format_series(
            "corrected links",
            {"avg path length": series.averages, "diameter": series.diameters},
            title="Figure 2 — correction sweep",
        )
    )
    print()
    print(format_summary(series.improvement(), title="Start vs end"))
    if args.json:
        _write_json_report(
            args.json,
            {
                "config": config_payload,
                "figure2": correction_payload(series, args.top, args.max_sources),
            },
        )
        print(f"\nwrote JSON report to {args.json}")
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.datasets import build_snapshot

    snapshot = build_snapshot(
        _config_from_args(args),
        cache_dir=args.cache_dir,
        engine=getattr(args, "engine", "event"),
        compression=getattr(args, "compression", "off"),
        telemetry=_telemetry_from_args(args),
    )
    output = Path(args.output)
    summary = save_snapshot(snapshot, output)
    manifest = summary["manifest"]
    print(f"snapshot written to {output}")
    print(f"  {len(summary['dump_files'])} collector dump files")
    print(f"  ground truth: {output / 'ground-truth-asrel.txt'}")
    print(
        f"  IRR documentation for {manifest['documented_ases']} ASes in "
        f"{output / 'irr'}"
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sweep import (
        GridError,
        SweepGrid,
        build_report,
        plan_sweep,
        render_markdown,
        run_sweep,
        write_json_report,
    )

    try:
        grid = SweepGrid.from_json_file(args.grid)
        scenarios = grid.expand()
        targets = tuple(args.targets.split(","))
        plan = plan_sweep(scenarios, targets=targets)
    except (GridError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for line in plan.summary_lines():
        print(f"[sweep] {line}")
    if args.cache_dir is None:
        print(
            "[sweep] no --cache-dir: scenarios cannot share stages "
            "(every cell computes its full closure)"
        )

    if args.distributed and args.executor not in (None, "cluster"):
        print(
            f"error: --distributed conflicts with --executor {args.executor}",
            file=sys.stderr,
        )
        return 2
    executor = "cluster" if args.distributed else (args.executor or "thread")
    if executor == "cluster" and args.workers is not None:
        # Silently dropping --workers would leave the user with zero
        # spawned workers and a coordinator waiting forever.
        print(
            "error: use --local-workers (spawned worker processes) with a "
            "distributed sweep; --workers bounds in-process pools only",
            file=sys.stderr,
        )
        return 2
    if executor != "cluster" and (
        args.local_workers is not None
        or args.lease_seconds is not None
        or args.wave_timeout is not None
        or args.task_timeout is not None
    ):
        # The symmetric silent drop: cluster-only flags on a local
        # executor would be ignored, which reads like they worked.
        print(
            "error: --local-workers/--lease-seconds/--wave-timeout/"
            "--task-timeout require --distributed (or --executor cluster)",
            file=sys.stderr,
        )
        return 2
    workers = args.local_workers if executor == "cluster" else args.workers
    if executor == "cluster" and not args.local_workers and args.queue_dir:
        # Guarded on queue_dir: a missing one errors in run_sweep, and
        # a notice quoting '--queue-dir None' would be copy-paste bait.
        print(
            "[sweep] no --local-workers: waiting for external 'repro worker "
            f"--queue-dir {args.queue_dir}' processes to drain the queue"
        )
    from repro.cluster.backends import BackendError
    from repro.cluster.coordinator import ClusterError

    try:
        result = run_sweep(
            plan,  # the announced plan IS the executed plan
            cache_dir=args.cache_dir,
            executor=executor,
            workers=workers,
            propagation_workers=args.propagation_workers,
            queue_dir=args.queue_dir,
            cache_budget_bytes=args.cache_budget_bytes,
            lease_seconds=args.lease_seconds if args.lease_seconds is not None else 30.0,
            wave_timeout=args.wave_timeout,
            task_timeout_seconds=args.task_timeout,
            trace_dir=args.trace_dir,
            profiling=_profiling_from_args(args),
        )
    except (ValueError, ClusterError, BackendError) as exc:
        # Invalid option combinations, a cluster that cannot make
        # progress (all workers dead, wave timeout) or a broken cache
        # backend — scenario failures never raise here.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for scenario in result.results:
        if scenario.ok:
            print(
                f"[sweep] {scenario.scenario_id:<40} ok      "
                f"{len(scenario.computed_stages()):>2} computed "
                f"{len(scenario.stage_statuses) - len(scenario.computed_stages()):>2} cached "
                f"{scenario.seconds:7.2f}s"
            )
        else:
            print(f"[sweep] {scenario.scenario_id:<40} FAILED  {scenario.error}")
    if result.dead_letters:
        print(
            f"[sweep] {len(result.dead_letters)} task(s) quarantined "
            "(dead letters; full per-attempt history via "
            "'repro queue status'):"
        )
        for letter in result.dead_letters:
            print(
                f"[sweep]   {letter['task_id']} after {letter['attempts']} "
                f"attempt(s): {letter['error']}"
            )
    counters = result.cache_counters()
    print(
        f"[sweep] {len(result.results)} scenarios in {result.seconds:.2f}s: "
        f"{counters['computed']} stage invocations computed, "
        f"{counters['cached']} served from cache"
    )
    duplicates = result.duplicate_computes()
    if duplicates and args.cache_dir is not None:
        # Without a cache, shared fingerprints recompute per cell by
        # design — only a cached sweep promises exactly-once.
        print(
            f"[sweep] warning: {len(duplicates)} fingerprints computed more "
            "than once (a failure or a cache-budget eviction broke the "
            "exactly-once schedule)"
        )
    if result.fully_cached():
        print("[sweep] fully cached: nothing was recomputed")

    report = build_report(result, grid)
    variance = report["seed_variance"]["varying_metrics"]
    if variance:
        print(
            "[sweep] metrics varying across seeds at fixed config: "
            + ", ".join(variance)
        )
    if args.json:
        write_json_report(report, args.json)
        print(f"[sweep] wrote JSON report to {args.json}")
    if args.markdown:
        Path(args.markdown).write_text(render_markdown(report), encoding="utf-8")
        print(f"[sweep] wrote markdown report to {args.markdown}")
    return 1 if result.failed() else 0


def _cmd_worker(args: argparse.Namespace) -> int:
    import os
    import signal

    from repro.cluster.coordinator import queue_path
    from repro.cluster.worker import Worker, default_worker_id
    from repro.faults.plan import WORKER_ID_ENV

    queue_file = queue_path(args.queue_dir)
    worker_id = args.worker_id or default_worker_id()
    # Exported so fault plans (fault:// cache specs) can target one
    # worker of a pool deterministically by its id.
    os.environ[WORKER_ID_ENV] = worker_id
    worker = Worker(
        queue_file,
        worker_id=worker_id,
        lease_seconds=args.lease_seconds,
        poll_interval=args.poll_interval,
        task_timeout=args.task_timeout,
        trace_dir=args.trace_dir,
    )

    def _drain(signum: int, frame: object) -> None:
        # First SIGTERM: finish the in-flight task, then exit 0.
        # Second SIGTERM: release the in-flight task back to the queue
        # (attempt refunded) and exit 0 as soon as it is handed over.
        if worker.draining:
            print(
                f"[worker {worker_id}] second SIGTERM: releasing current task",
                flush=True,
            )
            worker.request_drain(release_current=True)
        else:
            print(
                f"[worker {worker_id}] SIGTERM: draining "
                "(finishing current task, claiming no more)",
                flush=True,
            )
            worker.request_drain()

    previous = signal.signal(signal.SIGTERM, _drain)
    print(f"[worker {worker_id}] polling {queue_file}", flush=True)
    try:
        processed = worker.run(
            max_tasks=args.max_tasks,
            exit_when_closed=not args.keep_alive,
            max_idle_seconds=args.max_idle_seconds,
        )
    finally:
        signal.signal(signal.SIGTERM, previous)
    verb = "drained" if worker.draining else "done"
    print(f"[worker {worker_id}] {verb}: {processed} tasks processed", flush=True)
    return 0


def _cmd_queue_status(args: argparse.Namespace) -> int:
    from repro.cluster.coordinator import queue_path
    from repro.cluster.queue import TaskQueue

    queue_file = queue_path(args.queue_dir)
    if not queue_file.exists():
        # Opening a TaskQueue would *create* an empty queue file — a
        # read-only status command must not.
        print(f"error: no task queue at {queue_file}", file=sys.stderr)
        return 2
    report = TaskQueue(queue_file).status_report()
    if args.json:
        print(
            json.dumps(
                {"schema_version": REPORT_SCHEMA_VERSION, **report},
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    print(f"task queue at {queue_file}")
    print(f"  state: {report['state']}, {report['total_tasks']} tasks")
    counts = report["counts"]
    if counts:
        # Column widths computed from the data: a status name longer
        # than 8 chars must not shear the count column off its grid.
        status_width = max(len(status) for status in counts)
        count_width = max(len(str(count)) for count in counts.values())
        for status in sorted(counts):
            print(f"  {status:<{status_width}} {counts[status]:>{count_width}}")
    for row in report["running"]:
        lease_age = row.get("lease_age_seconds")
        held = (
            f"lease held {lease_age:.1f}s, " if lease_age is not None else ""
        )
        print(
            f"  running {row['task_id']} (owner {row['owner']}, attempt "
            f"{row['attempts']}): {held}{row['seconds_since_update']:.1f}s "
            f"since last heartbeat, lease expires in "
            f"{row['lease_seconds_remaining']:.1f}s"
        )
    for letter in report["dead_letters"]:
        print(
            f"  dead    {letter['task_id']} after {letter['attempts']} "
            f"attempt(s): {letter['error']}"
        )
        for entry in letter["attempts_log"]:
            print(
                f"          attempt {entry.get('attempt')} "
                f"({entry.get('owner')}): {entry.get('error')}"
            )
    return 0


def _read_trace_records(args: argparse.Namespace):
    """Load a trace directory for the ``trace`` subcommands, or report
    why it cannot be (no files, malformed line) and return ``None``."""
    from repro.telemetry import read_trace

    try:
        return read_trace(args.trace_dir)
    except FileNotFoundError:
        print(
            f"error: no trace*.jsonl files under {args.trace_dir} "
            "(was the run started with --trace-dir?)",
            file=sys.stderr,
        )
        return None
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


def _cmd_trace_show(args: argparse.Namespace) -> int:
    from repro.telemetry import build_tree, render_tree

    records = _read_trace_records(args)
    if records is None:
        return 1
    if args.json:
        roots, orphans = build_tree(records)
        print(
            json.dumps(
                {
                    "schema_version": REPORT_SCHEMA_VERSION,
                    "roots": roots,
                    "orphans": orphans,
                },
                indent=2,
                sort_keys=True,
                default=str,
            )
        )
        return 0
    lines = render_tree(records)
    if not lines:
        print("(no spans recorded)")
    for line in lines:
        print(line)
    return 0


def _cmd_trace_summary(args: argparse.Namespace) -> int:
    from repro.telemetry import summarize

    records = _read_trace_records(args)
    if records is None:
        return 1
    summary = summarize(records, trace_dir=args.trace_dir)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True, default=str))
        return 0
    spans = summary["spans"]
    print(f"trace at {args.trace_dir}")
    print(
        f"  {summary['files']} file(s), {len(summary['runs'])} run(s), "
        f"{spans['total']} spans ({spans['roots']} roots, "
        f"{spans['orphans']} orphans, {spans['errors']} errors)"
    )
    if summary["stages"]:
        width = max(len(name) for name in summary["stages"])
        print("  stages:")
        for name in sorted(summary["stages"]):
            entry = summary["stages"][name]
            print(
                f"    {name:<{width}} x{entry['count']:<3} "
                f"total {entry['total_seconds']:8.3f}s  "
                f"p50 {entry['p50_seconds']:7.3f}s  "
                f"p95 {entry['p95_seconds']:7.3f}s  "
                f"computed {entry['computed']} cached {entry['cached']} "
                f"(hit rate {entry['cache_hit_rate']:.0%})"
            )
    if summary["engines"]:
        width = max(len(name) for name in summary["engines"])
        print("  engines:")
        for name in sorted(summary["engines"]):
            entry = summary["engines"][name]
            phases = ", ".join(
                f"{phase} {rollup['total_seconds']:.3f}s"
                for phase, rollup in sorted(entry["phases"].items())
            )
            print(
                f"    {name:<{width}} x{entry['count']:<3} "
                f"total {entry['total_seconds']:8.3f}s  "
                f"events {entry['events']}"
                + (f"  [{phases}]" if phases else "")
            )
    if summary["counters"]:
        width = max(len(name) for name in summary["counters"])
        print("  counters:")
        for name in sorted(summary["counters"]):
            print(f"    {name:<{width}} {summary['counters'][name]:g}")
    print(
        f"  retries: {summary['retries']}, "
        f"dead letters: {summary['dead_letters']}"
    )
    return 0


def _cmd_trace_profile(args: argparse.Namespace) -> int:
    from repro.telemetry import profile_rollup, read_profiles, render_profiles

    try:
        records = read_profiles(args.trace_dir)
    except FileNotFoundError:
        print(
            f"error: no profile*.jsonl files under {args.trace_dir} "
            "(was the run started with --trace-dir and --profile?)",
            file=sys.stderr,
        )
        return 1
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(
            json.dumps(
                {
                    "schema_version": REPORT_SCHEMA_VERSION,
                    "records": len(records),
                    "rollup": profile_rollup(records, top_n=args.top),
                },
                indent=2,
                sort_keys=True,
                default=str,
            )
        )
        return 0
    print(f"profiles at {args.trace_dir} ({len(records)} span capture(s))")
    for line in render_profiles(records, top_n=args.top):
        print(line)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import time as _time

    from repro.telemetry import monitor_snapshot, render_snapshot
    from repro.telemetry.monitor import MonitorServer

    if args.queue_dir is None and args.trace_dir is None:
        print("error: repro top needs --queue-dir and/or --trace-dir", file=sys.stderr)
        return 2
    if args.serve is not None:
        try:
            server = MonitorServer(
                queue_dir=args.queue_dir, trace_dir=args.trace_dir, port=args.serve
            )
        except OSError as exc:
            print(f"error: cannot bind port {args.serve}: {exc}", file=sys.stderr)
            return 2
        print(
            f"[top] serving {server.url}/metrics, {server.url}/health, "
            f"{server.url}/snapshot (Ctrl-C to stop)",
            flush=True,
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.shutdown()
        return 0

    while True:
        try:
            snap = monitor_snapshot(queue_dir=args.queue_dir, trace_dir=args.trace_dir)
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if args.json:
            print(json.dumps(snap, indent=2, sort_keys=True, default=str))
        else:
            for line in render_snapshot(snap):
                print(line)
        if args.once:
            verdict = (snap.get("health") or {}).get("verdict")
            return 0 if verdict in ("drained", "active", "empty", "idle") else 1
        if (snap.get("health") or {}).get("verdict") == "drained":
            return 0
        try:
            _time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0
        if not args.json:
            print()


def _cmd_bench_record(args: argparse.Namespace) -> int:
    from repro.telemetry.history import load_reports, record

    bench_dir = Path(args.bench_dir)
    reports = load_reports(bench_dir)
    if not reports:
        print(f"error: no BENCH_*.json under {bench_dir}", file=sys.stderr)
        return 2
    path = record(args.history_dir, reports, smoke=args.smoke)
    print(f"[bench] recorded {len(reports)} report(s) -> {path}")
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.telemetry.history import (
        baseline,
        compare,
        load_entries,
        load_reports,
        metrics_of_reports,
        render_comparison,
    )

    bench_dir = Path(args.bench_dir)
    reports = load_reports(bench_dir)
    if not reports:
        print(f"error: no BENCH_*.json under {bench_dir}", file=sys.stderr)
        return 2
    entries = load_entries(args.history_dir)
    if not entries:
        print(
            f"[bench] no history entries under {args.history_dir}: nothing to "
            "compare against (record a baseline with 'repro bench record')"
        )
        return 0
    host = next(iter(sorted(reports.items())))[1].get("host")
    base, used = baseline(
        entries, host, smoke=args.smoke, any_host=args.any_host
    )
    if not used:
        print(
            "[bench] no comparable history entries (same host key, same "
            "smoke/full kind); skipping — use --any-host to force a "
            "cross-host comparison"
        )
        return 0
    result = compare(
        metrics_of_reports(reports), base, threshold=args.threshold
    )
    result["baseline_entries"] = [
        {"recorded_at": e.get("recorded_at"), "commit": e.get("commit")}
        for e in used
    ]
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True, default=str))
    else:
        print(
            f"[bench] comparing {bench_dir} against {len(used)} history "
            f"entr{'y' if len(used) == 1 else 'ies'}"
        )
        for line in render_comparison(result):
            print(line)
    return 0 if result["ok"] else 1


def _open_cache(args: argparse.Namespace) -> Optional[ArtifactCache]:
    """Open a cache for ``cache stats|prune``, whatever backend wrote it.

    ``--cache-dir`` may name a cache directory *or* a SQLite
    object-store file (``*.sqlite`` / ``sqlite://``) — the spec sniffing
    in :meth:`ArtifactCache.from_spec` picks the right backend, so the
    hygiene commands work on caches written by distributed workers too.
    """
    from repro.cluster.backends import spec_path

    spec = str(args.cache_dir)
    path = spec_path(spec)
    if not path.exists():
        print(f"error: cache {path} does not exist", file=sys.stderr)
        return None
    try:
        return ArtifactCache.from_spec(spec)
    except OSError as exc:
        # E.g. --cache-dir pointing at a regular file that is not a
        # SQLite store, or a corrupt database (BackendError is OSError).
        print(f"error: cannot open cache {path}: {exc}", file=sys.stderr)
        return None


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    cache = _open_cache(args)
    if cache is None:
        return 2
    stats = cache.stats()
    if args.json:
        print(
            json.dumps(
                {"schema_version": REPORT_SCHEMA_VERSION, **stats.to_dict()},
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    print(f"artifact cache at {stats.root}")
    print(f"  {stats.entries} artifacts, {stats.total_bytes:,} bytes")
    for stage, bucket in sorted(stats.per_stage.items()):
        print(f"  {stage:<16} {bucket['entries']:>4} artifacts {bucket['bytes']:>12,} bytes")
    return 0


def _cmd_cache_prune(args: argparse.Namespace) -> int:
    if args.max_bytes is None and args.max_age is None:
        print("error: cache prune needs --max-bytes and/or --max-age", file=sys.stderr)
        return 2
    cache = _open_cache(args)
    if cache is None:
        return 2
    report = cache.prune(
        max_bytes=args.max_bytes,
        max_age_seconds=args.max_age * 86400.0 if args.max_age is not None else None,
        dry_run=args.dry_run,
    )
    verb = "would remove" if args.dry_run else "removed"
    print(
        f"{verb} {len(report.removed)} artifacts ({report.freed_bytes:,} bytes); "
        f"{report.remaining_entries} artifacts "
        f"({report.remaining_bytes:,} bytes) remain"
    )
    if report.temp_files_removed:
        swept = "would sweep" if args.dry_run else "swept"
        print(
            f"{swept} {report.temp_files_removed} orphaned temp file(s) "
            "left by crashed writers"
        )
    listed = report.removed[:20]
    for entry in listed:
        print(f"  {entry.stage}/{entry.fingerprint[:12]}  {entry.size_bytes:,} bytes")
    if len(report.removed) > len(listed):
        print(f"  ... and {len(report.removed) - len(listed)} more")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Detecting and Assessing the Hybrid "
        "IPv4/IPv6 AS Relationships' (Giotsas & Zhou, SIGCOMM 2011).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    section3 = subparsers.add_parser(
        "section3", help="compute the Section-3 statistics on a synthetic snapshot"
    )
    _add_common_options(section3)
    _add_pipeline_options(section3)
    _add_trace_option(section3)
    section3.add_argument("--json", help="also write the report as JSON to this path")
    section3.set_defaults(handler=_cmd_section3)

    figure2 = subparsers.add_parser(
        "figure2", help="run the Figure-2 correction sweep"
    )
    _add_common_options(figure2)
    _add_pipeline_options(figure2)
    _add_trace_option(figure2)
    figure2.add_argument("--top", type=int, default=20, help="links to correct")
    figure2.add_argument(
        "--max-sources", type=int, default=60,
        help="valley-free BFS sources sampled per step (0 = exact)",
    )
    figure2.add_argument(
        "--json", help="also write the sweep series and summary as JSON to this path"
    )
    figure2.set_defaults(handler=_cmd_figure2)

    snapshot = subparsers.add_parser(
        "snapshot", help="build a synthetic snapshot and write it to disk"
    )
    _add_common_options(snapshot)
    snapshot.add_argument("--output", required=True, help="output directory")
    snapshot.add_argument(
        "--cache-dir",
        help="artifact-cache directory: reuse cached build stages",
    )
    _add_trace_option(snapshot)
    snapshot.set_defaults(handler=_cmd_snapshot)

    sweep = subparsers.add_parser(
        "sweep",
        help="run a parameter grid of scenarios over one shared artifact cache",
    )
    sweep.add_argument(
        "--grid", required=True, help="JSON sweep grid (see repro.sweep.grid)"
    )
    sweep.add_argument(
        "--cache-dir",
        help="shared artifact cache: stages common to several scenarios "
        "are computed once and reused (strongly recommended)",
    )
    sweep.add_argument(
        "--targets",
        default="section3,correction",
        help="comma-separated pipeline targets per scenario "
        "(default: section3,correction)",
    )
    sweep.add_argument(
        "--executor",
        choices=("serial", "thread", "process", "cluster"),
        default=None,
        help="how scenarios of one wave run (default: thread; 'cluster' "
        "routes waves through the durable task queue, like --distributed)",
    )
    sweep.add_argument(
        "--workers", type=int, default=None, help="scenario-level worker bound"
    )
    sweep.add_argument(
        "--distributed",
        action="store_true",
        help="run the waves through the durable task queue in --queue-dir "
        "(equivalent to --executor cluster); requires --cache-dir",
    )
    sweep.add_argument(
        "--queue-dir",
        help="directory holding the task queue shared with 'repro worker' "
        "processes (required with --distributed)",
    )
    sweep.add_argument(
        "--local-workers",
        type=int,
        default=None,
        help="spawn this many local worker processes for a distributed "
        "sweep (external 'repro worker' processes may join the queue too)",
    )
    sweep.add_argument(
        "--lease-seconds",
        type=float,
        default=None,
        help="task lease for distributed workers: a dead worker's task is "
        "re-claimed after this long without a heartbeat (default: 30)",
    )
    sweep.add_argument(
        "--wave-timeout",
        type=float,
        default=None,
        help="fail a distributed sweep if one wave has not finished after "
        "this many seconds (default: wait indefinitely — workers may join "
        "late; set a bound when relying on external workers that could die)",
    )
    sweep.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="per-attempt watchdog for distributed tasks: an attempt still "
        "running after this many seconds is aborted and retried (or "
        "quarantined once attempts are exhausted), even if its worker is "
        "still heartbeating (default: no watchdog)",
    )
    sweep.add_argument(
        "--cache-budget-bytes",
        type=int,
        default=None,
        help="prune the artifact cache down to this many bytes after every "
        "sweep wave (the 'repro cache prune' logic, automated)",
    )
    sweep.add_argument(
        "--propagation-workers",
        type=int,
        default=None,
        help="parallelize the propagation stages inside each scenario via "
        "PropagationEngine.run_many (combine with --executor serial)",
    )
    sweep.add_argument(
        "--json", help="write the cross-scenario report as JSON to this path"
    )
    sweep.add_argument(
        "--markdown", help="write the cross-scenario report as markdown to this path"
    )
    _add_trace_option(sweep)
    sweep.set_defaults(handler=_cmd_sweep)

    worker = subparsers.add_parser(
        "worker",
        help="run a distributed-sweep worker over a shared task queue",
    )
    worker.add_argument(
        "--queue-dir", required=True,
        help="queue directory shared with the coordinating 'repro sweep "
        "--distributed' (and any other workers)",
    )
    worker.add_argument(
        "--worker-id", default=None,
        help="stable worker identity for leases/logs (default: host-pid)",
    )
    worker.add_argument(
        "--lease-seconds", type=float, default=30.0,
        help="lease granted per claimed task; heartbeats extend it while "
        "the scenario runs (default: 30)",
    )
    worker.add_argument(
        "--poll-interval", type=float, default=0.2,
        help="seconds between claim attempts when the queue is empty",
    )
    worker.add_argument(
        "--task-timeout", type=float, default=None,
        help="per-attempt watchdog: abort an attempt still running after "
        "this many seconds even while heartbeating (a task's own "
        "timeout_seconds takes precedence; default: no watchdog)",
    )
    worker.add_argument(
        "--max-tasks", type=int, default=None,
        help="exit after processing this many tasks (default: unbounded)",
    )
    worker.add_argument(
        "--max-idle-seconds", type=float, default=None,
        help="exit after this long without claimable work (default: wait "
        "until the coordinator closes the queue)",
    )
    worker.add_argument(
        "--keep-alive", action="store_true",
        help="do not exit when the queue is closed: keep polling for the "
        "next sweep (a reused queue directory is 'closed' between sweeps; "
        "the next coordinator reopens it).  Use for standing worker pools, "
        "ideally with --max-idle-seconds as a safety bound",
    )
    # No --profile here: a worker's profiling choice rides in the task's
    # trace context, stamped by the coordinator.
    _add_trace_option(worker, profile=False)
    worker.set_defaults(handler=_cmd_worker)

    queue = subparsers.add_parser(
        "queue", help="inspect a distributed-sweep task queue"
    )
    queue_commands = queue.add_subparsers(dest="queue_command", required=True)
    queue_status = queue_commands.add_parser(
        "status",
        help="queue state, per-state task counts, running-task lease ages "
        "and dead-letter records",
    )
    queue_status.add_argument(
        "--queue-dir", required=True,
        help="queue directory of the sweep (same as 'repro sweep/worker')",
    )
    queue_status.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    queue_status.set_defaults(handler=_cmd_queue_status)

    trace = subparsers.add_parser(
        "trace", help="inspect telemetry written by --trace-dir runs"
    )
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)
    trace_show = trace_commands.add_parser(
        "show",
        help="render the reassembled span tree (distributed runs merge "
        "into one tree via their shared run id)",
    )
    trace_show.add_argument(
        "--trace-dir", required=True,
        help="trace directory a run wrote (same as its --trace-dir)",
    )
    trace_show.add_argument(
        "--json", action="store_true", help="machine-readable span forest"
    )
    trace_show.set_defaults(handler=_cmd_trace_show)
    trace_summary = trace_commands.add_parser(
        "summary",
        help="per-stage and per-engine rollups (count, total, p50/p95, "
        "cache hit rate), counters, retry and dead-letter totals",
    )
    trace_summary.add_argument(
        "--trace-dir", required=True,
        help="trace directory a run wrote (same as its --trace-dir)",
    )
    trace_summary.add_argument(
        "--json", action="store_true", help="machine-readable rollup"
    )
    trace_summary.set_defaults(handler=_cmd_trace_summary)
    trace_profile = trace_commands.add_parser(
        "profile",
        help="hot-function rollup of profile*.jsonl records written by "
        "--profile runs (top cumulative-time functions per stage/engine)",
    )
    trace_profile.add_argument(
        "--trace-dir", required=True,
        help="trace directory a --profile run wrote",
    )
    trace_profile.add_argument(
        "--top", type=int, default=10,
        help="functions shown per profiled unit (default: 10)",
    )
    trace_profile.add_argument(
        "--json", action="store_true", help="machine-readable rollup"
    )
    trace_profile.set_defaults(handler=_cmd_trace_profile)

    top = subparsers.add_parser(
        "top",
        help="live view of a distributed sweep: wave progress, worker "
        "liveness, cache hit rate, ETA and a health verdict",
    )
    top.add_argument(
        "--queue-dir", default=None,
        help="queue directory of the sweep (same as 'repro sweep/worker')",
    )
    top.add_argument(
        "--trace-dir", default=None,
        help="trace directory of the sweep (adds cache/counter rollups)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="print one snapshot and exit (0 when healthy, 1 when "
        "stalled/degraded)",
    )
    top.add_argument(
        "--json", action="store_true", help="machine-readable snapshot(s)"
    )
    top.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between refreshes in poll mode (default: 2)",
    )
    top.add_argument(
        "--serve", type=int, default=None, metavar="PORT",
        help="serve /metrics (Prometheus text), /health and /snapshot "
        "over HTTP on this port instead of polling (0 = ephemeral)",
    )
    top.set_defaults(handler=_cmd_top)

    bench = subparsers.add_parser(
        "bench",
        help="benchmark-history ledger: record BENCH_*.json runs and "
        "gate on regressions",
    )
    bench_commands = bench.add_subparsers(dest="bench_command", required=True)
    bench_record = bench_commands.add_parser(
        "record",
        help="append one ledger entry (commit + host + wall-clock metrics) "
        "for a directory of BENCH_*.json reports",
    )
    bench_compare = bench_commands.add_parser(
        "compare",
        help="compare a directory of BENCH_*.json reports against the "
        "ledger's same-host best; exit 1 on regression",
    )
    for sub in (bench_record, bench_compare):
        sub.add_argument(
            "--bench-dir", default=None,
            help="directory holding BENCH_*.json (default: '.'; with "
            "--smoke: benchmarks/smoke)",
        )
        sub.add_argument(
            "--history-dir", default="benchmarks/history",
            help="ledger directory (default: benchmarks/history)",
        )
        sub.add_argument(
            "--smoke", action="store_true",
            help="the reports came from a --smoke run (tiny scale; kept "
            "separate in the ledger — smoke never gates against full runs)",
        )
    bench_record.set_defaults(handler=_cmd_bench_record)
    bench_compare.add_argument(
        "--threshold", type=float, default=None,
        help="relative slowdown tolerated before failing (default: 0.30 "
        "= 30%%)",
    )
    bench_compare.add_argument(
        "--any-host", action="store_true",
        help="compare against entries from other hosts too (wall-clock "
        "numbers across machines measure the machines; off by default)",
    )
    bench_compare.add_argument(
        "--json", action="store_true", help="machine-readable comparison"
    )
    bench_compare.set_defaults(handler=_cmd_bench_compare)

    cache = subparsers.add_parser(
        "cache", help="inspect or prune an artifact cache (directory or "
        "sqlite object store)"
    )
    cache_commands = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_commands.add_parser(
        "stats", help="per-stage entry counts and byte totals"
    )
    cache_stats.add_argument("--cache-dir", required=True)
    cache_stats.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    cache_stats.set_defaults(handler=_cmd_cache_stats)
    cache_prune = cache_commands.add_parser(
        "prune", help="evict artifacts by age and/or LRU down to a byte budget"
    )
    cache_prune.add_argument("--cache-dir", required=True)
    cache_prune.add_argument(
        "--max-bytes", type=int, help="evict least-recently-used artifacts "
        "until the cache fits this many bytes"
    )
    cache_prune.add_argument(
        "--max-age", type=float, metavar="DAYS",
        help="evict artifacts not used for this many days",
    )
    cache_prune.add_argument(
        "--dry-run", action="store_true", help="report without deleting"
    )
    cache_prune.set_defaults(handler=_cmd_cache_prune)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "max_sources", None) == 0:
        args.max_sources = None
    if getattr(args, "from_snapshot", None) and (args.small or args.paper_scale):
        # The snapshot on disk fixes the scale; a sizing flag alongside
        # it would be silently ignored, which reads like it worked.
        parser.error("--small/--paper-scale cannot be combined with --from-snapshot")
    if getattr(args, "profile", False) and not getattr(args, "trace_dir", None):
        # Profile records are written beside the trace; without a trace
        # dir the capture would run and then be dropped on the floor.
        parser.error("--profile requires --trace-dir")
    if getattr(args, "bench_command", None) and args.bench_dir is None:
        args.bench_dir = "benchmarks/smoke" if args.smoke else "."
    if getattr(args, "bench_command", None) == "compare" and args.threshold is None:
        from repro.telemetry.history import DEFAULT_THRESHOLD

        args.threshold = DEFAULT_THRESHOLD
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
