"""A policy-driven BGP speaker.

Each AS in the propagation simulator is represented by a
:class:`BGPSpeaker` that

* originates its own prefixes,
* imports announcements from neighbours (applying LOCAL_PREF assignment
  and community tagging according to its :class:`~repro.bgp.policy.RoutingPolicy`),
* runs the BGP decision process to maintain a Loc-RIB, and
* exports its best routes to neighbours, subject to the (possibly
  relaxed) valley-free export rules.

The decision process implements the attribute comparisons that matter
for the reproduction: highest LOCAL_PREF, then shortest AS path, then
lowest neighbour ASN as the deterministic tie breaker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.relationships import AFI, Relationship
from repro.bgp.attributes import ASPath, PathAttributes
from repro.bgp.messages import Announcement, Route
from repro.bgp.policy import RoutingPolicy
from repro.bgp.prefixes import Prefix
from repro.bgp.rib import AdjRibIn, LocRib, RibSnapshot


@dataclass(frozen=True)
class Neighbor:
    """A BGP adjacency and the relationship the local AS has towards it.

    ``relationship`` is from the local AS's point of view and may differ
    per address family (hybrid links!), hence one :class:`Neighbor` entry
    per AFI.
    """

    asn: int
    relationship: Relationship


class BGPSpeaker:
    """One AS participating in the route propagation."""

    def __init__(self, asn: int, policy: Optional[RoutingPolicy] = None) -> None:
        self.asn = asn
        self.policy = policy or RoutingPolicy(asn=asn)
        # Per-AFI neighbour tables: asn -> Neighbor.
        self._neighbors: Dict[AFI, Dict[int, Neighbor]] = {AFI.IPV4: {}, AFI.IPV6: {}}
        self._adj_rib_in: Dict[int, AdjRibIn] = {}
        self.loc_rib = LocRib()
        self._local_routes: Dict[Prefix, Route] = {}

    # ------------------------------------------------------------------
    # session management
    # ------------------------------------------------------------------
    def add_neighbor(self, asn: int, relationship: Relationship, afi: AFI) -> None:
        """Register a neighbour for one address family."""
        if asn == self.asn:
            raise ValueError("an AS cannot neighbour itself")
        if not relationship.is_known:
            raise ValueError("neighbour relationship must be known")
        self._neighbors[afi][asn] = Neighbor(asn=asn, relationship=relationship)
        self._adj_rib_in.setdefault(asn, AdjRibIn(asn))

    def neighbors(self, afi: AFI) -> List[Neighbor]:
        """All neighbours for one address family."""
        return sorted(self._neighbors[afi].values(), key=lambda n: n.asn)

    def relationship_to(self, asn: int, afi: AFI) -> Optional[Relationship]:
        """Relationship towards a neighbour (``None`` if not adjacent in ``afi``)."""
        neighbor = self._neighbors[afi].get(asn)
        return neighbor.relationship if neighbor else None

    # ------------------------------------------------------------------
    # origination and import
    # ------------------------------------------------------------------
    def originate(self, prefix: Prefix) -> Route:
        """Originate a prefix locally and install it as best."""
        route = Route.originate(prefix, self.asn)
        self._local_routes[prefix] = route
        self.loc_rib.install(route)
        return route

    def receive(self, announcement: Announcement) -> bool:
        """Import an announcement from a neighbour.

        Returns True when the best route for the prefix changed (and the
        new best therefore needs to be re-exported).
        """
        sender = announcement.sender
        relationship = self.relationship_to(sender, announcement.afi)
        if relationship is None:
            raise ValueError(
                f"AS{self.asn} received an announcement from non-neighbour AS{sender}"
            )
        # Standard loop prevention: reject paths that already contain us.
        if announcement.as_path.contains(self.asn):
            return False
        local_pref, override = self.policy.local_pref_for(
            sender, relationship, announcement.prefix
        )
        added_communities = self.policy.import_communities(relationship, override)
        attributes = announcement.attributes.add_communities(added_communities)
        attributes = PathAttributes(
            as_path=attributes.as_path,
            local_pref=local_pref,
            med=attributes.med,
            origin=attributes.origin,
            next_hop=attributes.next_hop,
            communities=attributes.communities,
        )
        route = Route(
            prefix=announcement.prefix,
            holder=self.asn,
            attributes=attributes,
            learned_from=sender,
            learned_relationship=relationship,
        )
        self._adj_rib_in[sender].update(route)
        return self._run_decision(announcement.prefix)

    def withdraw(self, prefix: Prefix, sender: int) -> bool:
        """Process a withdrawal from a neighbour; returns True if best changed."""
        rib = self._adj_rib_in.get(sender)
        if rib is None or rib.withdraw(prefix) is None:
            return False
        return self._run_decision(prefix)

    # ------------------------------------------------------------------
    # decision process
    # ------------------------------------------------------------------
    @staticmethod
    def _preference_key(route: Route) -> Tuple[int, int, int, int]:
        """Sort key: higher is better.

        Locally originated routes always win; otherwise higher
        LOCAL_PREF, then shorter AS path, then lower neighbour ASN.
        """
        if route.is_local:
            return (1, 0, 0, 0)
        local_pref = route.local_pref if route.local_pref is not None else 100
        # Negative values convert "smaller is better" into "larger is better".
        return (0, local_pref, -len(route.as_path.hops), -route.learned_from)

    def _candidates(self, prefix: Prefix) -> List[Route]:
        candidates: List[Route] = []
        local = self._local_routes.get(prefix)
        if local is not None:
            candidates.append(local)
        for rib in self._adj_rib_in.values():
            route = rib.route_for(prefix)
            if route is not None:
                candidates.append(route)
        return candidates

    def _run_decision(self, prefix: Prefix) -> bool:
        candidates = self._candidates(prefix)
        if not candidates:
            return self.loc_rib.remove(prefix) is not None
        best = max(candidates, key=self._preference_key)
        return self.loc_rib.install(best)

    def best_route(self, prefix: Prefix) -> Optional[Route]:
        """The current best route for a prefix (``None`` if unreachable)."""
        return self.loc_rib.best(prefix)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def export_to(self, neighbor_asn: int, prefix: Prefix) -> Optional[Announcement]:
        """Build the announcement of the best route towards one neighbour.

        Returns ``None`` when the route must not be exported (export
        policy) or when there is no best route for the prefix.
        """
        best = self.loc_rib.best(prefix)
        if best is None:
            return None
        afi = prefix.afi
        neighbor = self._neighbors[afi].get(neighbor_asn)
        if neighbor is None:
            return None
        # Never send a route back to the neighbour it was learned from.
        if best.learned_from == neighbor_asn:
            return None
        if not self.policy.export_allowed(
            best.learned_relationship, neighbor.relationship, neighbor_asn, afi
        ):
            return None
        # Locally originated routes already carry the origin AS as their
        # only hop; prepending again would duplicate it.
        exported_path = best.as_path if best.is_local else best.as_path.prepend(self.asn)
        communities = () if self.policy.strip_communities_on_export else best.communities
        attributes = PathAttributes(
            as_path=exported_path,
            local_pref=None,  # LOCAL_PREF is not propagated across EBGP sessions.
            med=0,
            origin=best.attributes.origin,
            next_hop="",
            communities=communities,
        )
        return Announcement(
            prefix=prefix, sender=self.asn, receiver=neighbor_asn, attributes=attributes
        )

    def exportable_neighbors(self, prefix: Prefix) -> List[int]:
        """Neighbours to which the current best route may be exported."""
        best = self.loc_rib.best(prefix)
        if best is None:
            return []
        afi = prefix.afi
        result = []
        for neighbor in self.neighbors(afi):
            if neighbor.asn == best.learned_from:
                continue
            if self.policy.export_allowed(
                best.learned_relationship, neighbor.relationship, neighbor.asn, afi
            ):
                result.append(neighbor.asn)
        return result

    # ------------------------------------------------------------------
    # memory management
    # ------------------------------------------------------------------
    def prune_prefix(self, prefix: Prefix, keep_best: bool = True) -> None:
        """Drop per-prefix state that is no longer needed after convergence.

        The Adj-RIB-In entries for ``prefix`` are always removed (they are
        only needed while the prefix is still propagating); the Loc-RIB
        entry is removed too unless ``keep_best`` is True.  The
        network-wide simulator uses this to keep memory proportional to
        the number of vantage points rather than to ASes x prefixes.
        """
        for rib in self._adj_rib_in.values():
            rib.withdraw(prefix)
        if not keep_best:
            self.loc_rib.remove(prefix)
            self._local_routes.pop(prefix, None)

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> RibSnapshot:
        """A frozen copy of the Loc-RIB, for the collectors."""
        return RibSnapshot(
            asn=self.asn, best_routes={route.prefix: route for route in self.loc_rib}
        )
